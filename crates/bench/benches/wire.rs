//! Micro-benchmark of the `plwg-wire` codec: encode and decode cost of the
//! frames the data plane moves in steady state (a single `Data` multicast
//! and a 16-entry packed `Batch`), at the payload sizes `throughput_sweep`
//! uses (64 B, 1 KB, 64 KB).
//!
//! Plain `harness = false` timing loop like `protocols.rs` — no external
//! bench framework. Run with `cargo bench --bench wire`; pass `--smoke`
//! (the CI throughput job does) to run a single fast iteration per case as
//! a correctness smoke test instead of a measurement.

use plwg_core::{HwgId, LwgId, LwgMsg, ViewId};
use plwg_sim::{decode_frame, encode_frame, family, Frame, NodeId};
use std::time::Instant;

/// Times `iters` runs of `f` over `per_iter` frames and prints the mean
/// per-frame cost plus throughput.
fn bench<F: FnMut() -> u64>(
    name: &str,
    iters: u32,
    per_iter: u64,
    bytes_per_frame: usize,
    mut f: F,
) {
    let mut sink = f(); // warm-up outside the timed window
    let mut samples: Vec<f64> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    let mean_s = samples.iter().sum::<f64>() / samples.len() as f64;
    let per_frame_ns = mean_s / per_iter as f64 * 1e9;
    let mib_s = (bytes_per_frame as f64 * per_iter as f64) / mean_s / (1024.0 * 1024.0);
    println!("{name:<28} {per_frame_ns:>9.0} ns/frame   {mib_s:>9.0} MiB/s ({iters} iters)");
    std::hint::black_box(sink);
}

fn data_msg(payload_bytes: usize) -> LwgMsg {
    LwgMsg::Data {
        lwg: LwgId(7),
        lwg_view: ViewId::new(NodeId(1), 3),
        data: Frame::from_vec(vec![0xA5; payload_bytes]),
    }
}

fn batch_msg(entries: usize, payload_bytes: usize) -> LwgMsg {
    LwgMsg::Batch {
        entries: (0..entries)
            .map(|i| {
                (
                    LwgId(1 + i as u64),
                    ViewId::new(NodeId(1), 3),
                    Frame::from_vec(vec![0xA5; payload_bytes]),
                )
            })
            .collect(),
    }
}

/// One encode+decode round trip as a correctness check (the smoke mode).
fn smoke(msg: &LwgMsg) {
    let frame = encode_frame(family::LWG, msg);
    let back = decode_frame::<LwgMsg>(family::LWG, &frame).expect("round trip");
    assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    // A decoded payload must slice the incoming allocation, not copy it.
    if let (LwgMsg::Data { data: a, .. }, LwgMsg::Data { data: b, .. }) = (msg, &back) {
        assert_eq!(a.bytes(), b.bytes());
        assert!(std::sync::Arc::ptr_eq(frame.backing(), b.backing()));
    }
}

fn main() {
    let smoke_only = std::env::args().any(|a| a == "--smoke");
    if smoke_only {
        for &size in &[64usize, 1024, 65536] {
            smoke(&data_msg(size));
            smoke(&batch_msg(16, size));
        }
        println!("wire codec smoke: encode/decode round trips ok (zero-copy decode verified)");
        return;
    }

    const FRAMES: u64 = 10_000;
    for &size in &[64usize, 1024, 65536] {
        let msg = data_msg(size);
        let encoded = encode_frame(family::LWG, &msg);
        let iters = if size >= 65536 { 20 } else { 100 };
        bench(&format!("encode/data_{size}B"), iters, FRAMES, size, || {
            let mut n = 0u64;
            for _ in 0..FRAMES {
                n = n.wrapping_add(encode_frame(family::LWG, &msg).len() as u64);
            }
            n
        });
        bench(&format!("decode/data_{size}B"), iters, FRAMES, size, || {
            let mut n = 0u64;
            for _ in 0..FRAMES {
                let m = decode_frame::<LwgMsg>(family::LWG, &encoded).expect("decodes");
                if let LwgMsg::Data { data, .. } = m {
                    n = n.wrapping_add(data.len() as u64);
                }
            }
            n
        });
    }

    const BATCHES: u64 = 2_000;
    let msg = batch_msg(16, 1024);
    let encoded = encode_frame(family::LWG, &msg);
    bench("encode/batch_16x1KB", 50, BATCHES, 16 * 1024, || {
        let mut n = 0u64;
        for _ in 0..BATCHES {
            n = n.wrapping_add(encode_frame(family::LWG, &msg).len() as u64);
        }
        n
    });
    bench("decode/batch_16x1KB", 50, BATCHES, 16 * 1024, || {
        let mut n = 0u64;
        for _ in 0..BATCHES {
            let m = decode_frame::<LwgMsg>(family::LWG, &encoded).expect("decodes");
            if let LwgMsg::Batch { entries } = m {
                n = n.wrapping_add(entries.len() as u64);
            }
        }
        n
    });

    // Keep `Redirect` (the one direct node-to-node message) covered too.
    let msg = LwgMsg::Redirect {
        lwg: LwgId(3),
        to: HwgId(9),
    };
    bench("encode/redirect", 50, FRAMES, 4, || {
        let mut n = 0u64;
        for _ in 0..FRAMES {
            n = n.wrapping_add(encode_frame(family::LWG, &msg).len() as u64);
        }
        n
    });
}
