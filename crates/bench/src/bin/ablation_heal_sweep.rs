//! Ablation A + the §6.4 single-flush claim: partition-heal cost as a
//! function of how many LWGs share the healed HWG.
//!
//! The MERGE-VIEWS protocol (paper Fig. 5) merges all concurrent views of
//! all co-mapped LWGs with one forced HWG flush, so both the reconvergence
//! time and the number of HWG flushes should stay (nearly) flat as the LWG
//! count grows, while the number of LWG view merges grows linearly — each
//! merge is a single extra multicast, not a flush.

use plwg_workload::{run_heal_sweep, Table};

fn main() {
    println!("Heal cost vs. number of LWGs co-mapped on the healed HWG");
    println!("(4 members split 2/2, partition heals, full reconvergence)\n");
    let results = run_heal_sweep(&[1, 2, 4, 8, 16, 32], 4, 7);
    let mut table = Table::new(&["lwgs", "reconverge", "hwg flushes", "lwg merges"]);
    for r in &results {
        table.row(&[
            r.lwgs.to_string(),
            format!("{}", r.reconverge),
            r.hwg_flushes.to_string(),
            r.lwg_merges.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("The paper's claim (§6.4): one flush serves all co-mapped groups —");
    println!("'Resource sharing is promoted because a flush for each light-weight");
    println!("group is avoided.'");
}
