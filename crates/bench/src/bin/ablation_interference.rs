//! Ablation B: **interference** between unrelated groups sharing an HWG
//! (the effect the paper's policies exist to minimise, §2/§3.3).
//!
//! Group X streams data while an unrelated group Y suffers a member crash.
//! When X and Y are co-mapped on one HWG (static service), Y's failure
//! recovery stalls X: the HWG flush stops *all* traffic on the HWG. When X
//! and Y ride disjoint HWGs (dynamic service), X barely notices.

use plwg_sim::SimDuration;
use plwg_workload::{fmt_us, ServiceMode, Table, Traffic, TwoSetsParams};

fn main() {
    println!("Interference: latency of group set A while a member of set B crashes");
    println!("(sets are disjoint; static co-maps them on one HWG, dynamic separates)\n");
    let mut table = Table::new(&["mode", "mean", "p95", "max", "recovery"]);
    for mode in [ServiceMode::StaticLwg, ServiceMode::DynamicLwg] {
        let params = TwoSetsParams {
            mode,
            groups_per_set: 2,
            members_per_group: 4,
            seed: 11,
            proc_time: SimDuration::from_micros(150),
            traffic: Traffic {
                // Long stream so the crash lands mid-traffic.
                msgs_per_group: 1500,
                interval: SimDuration::from_millis(10),
            },
            crash_member: true,
        };
        // The crash must land *during* set A's traffic, so this uses the
        // dedicated interference runner rather than `run_two_sets`.
        let r = plwg_workload::interference::run_interference(&params);
        table.row(&[
            mode.label().to_owned(),
            fmt_us(r.latency_us.mean),
            fmt_us(r.latency_us.p95 as f64),
            fmt_us(r.latency_us.max as f64),
            r.recovery.map_or_else(|| "-".into(), |d| format!("{d}")),
        ]);
    }
    println!("{}", table.render());
    println!("Static co-mapping: the victim's HWG flush freezes set A's groups");
    println!("(max latency includes the whole failure-detection + flush stall).");
    println!("Dynamic separation: set A is unaffected by set B's recovery.");
}
