//! Ablation D: MULTIPLE-MAPPINGS **callbacks vs. polling** (paper §6.1:
//! "One possible way is to require group members to periodically inquire
//! one of the reachable name servers. Unfortunately, this could load the
//! servers with unnecessary requests. Instead, we use the callback
//! approach.").
//!
//! Both variants run the same partition/heal scenario; the binary reports
//! the name-server request load and the reconciliation latency.

use plwg_core::{LwgConfig, LwgId};
use plwg_vsync::VsyncStack;

type LwgNode = plwg_core::LwgNode<VsyncStack>;
use plwg_naming::{NameServer, NamingConfig};
use plwg_sim::{NodeId, SimDuration, SimTime, World, WorldConfig};
use plwg_workload::Table;

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

struct Outcome {
    reads: u64,
    callbacks: u64,
    reconverged: Option<SimDuration>,
}

fn run(poll: Option<SimDuration>, lwgs: u64) -> Outcome {
    let mut w = World::new(WorldConfig {
        seed: 23,
        ..WorldConfig::default()
    });
    let ns_cfg = NamingConfig {
        push_callbacks: poll.is_none(),
        ..NamingConfig::default()
    };
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        ns_cfg.clone(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        ns_cfg,
    )));
    let servers = vec![s0, s1];
    let cfg = LwgConfig {
        ns_poll_interval: poll,
        ..LwgConfig::default()
    };
    let apps: Vec<NodeId> = (0..4)
        .map(|i| {
            w.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    // Found the groups in two partitions → inconsistent mappings on heal.
    w.split_at(
        at(1),
        vec![vec![s0, apps[0], apps[1]], vec![s1, apps[2], apps[3]]],
    );
    for g in 1..=lwgs {
        for (i, &m) in apps.iter().enumerate() {
            w.invoke_at(
                at(2) + SimDuration::from_millis(100 * g + 400 * (i as u64 % 2)),
                m,
                move |a: &mut LwgNode, ctx| a.service().join(ctx, LwgId(g)),
            );
        }
    }
    w.run_until(at(25));
    let reads_before = w.metrics().counter(plwg_naming::keys::READS);
    let callbacks_before = w.metrics().counter(plwg_naming::keys::CALLBACKS);
    w.heal_at(at(25));

    // Wait for every group to span all four members again.
    let mut reconverged = None;
    while w.now() < at(120) {
        w.run_for(SimDuration::from_millis(250));
        let ok = (1..=lwgs).all(|g| {
            apps.iter().all(|&m| {
                w.inspect(m, |a: &LwgNode| {
                    a.current_view(LwgId(g)).is_some_and(|v| v.len() == 4)
                })
            })
        });
        if ok {
            reconverged = Some(w.now().saturating_since(at(25)));
            break;
        }
    }
    // Run on a while to account for steady-state polling load.
    w.run_until(at(120));
    Outcome {
        reads: w.metrics().counter(plwg_naming::keys::READS) - reads_before,
        callbacks: w.metrics().counter(plwg_naming::keys::CALLBACKS) - callbacks_before,
        reconverged,
    }
}

fn main() {
    println!("Callbacks vs. polling for global peer discovery (paper §6.1)");
    println!("(4 nodes, groups founded in two partitions, heal at t=25s;");
    println!(" request counts cover the heal plus 95s of steady state)\n");
    let mut table = Table::new(&["lwgs", "variant", "ns reads", "callbacks", "reconverge"]);
    for &lwgs in &[2u64, 8] {
        for (label, poll) in [
            ("callback", None),
            ("poll 1s", Some(SimDuration::from_secs(1))),
            ("poll 5s", Some(SimDuration::from_secs(5))),
        ] {
            let o = run(poll, lwgs);
            table.row(&[
                lwgs.to_string(),
                label.to_owned(),
                o.reads.to_string(),
                o.callbacks.to_string(),
                o.reconverged
                    .map_or_else(|| "TIMEOUT".into(), |d| format!("{d}")),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Callbacks: server work only while an inconsistency exists.");
    println!("Polling: steady read load forever, and reconciliation waits for");
    println!("the next poll — slower heal at lower cost only if polled rarely.");
}
