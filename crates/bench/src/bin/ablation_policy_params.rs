//! Ablation C: mapping-policy behaviour vs. the `k_m`/`k_c` thresholds of
//! paper Figure 1 (§3.2: "poorly chosen local heuristics lead to
//! instability").
//!
//! A small (2-member) LWG is optimistically mapped onto a big (8-member)
//! HWG. Whether the interference rule rescues it depends on `k_m` (how
//! lopsided the mapping must be) and, once it moves, `k_c` (how snug the
//! target must fit). The binary reports the switch count and the final
//! mapping for a grid of thresholds.

use plwg_core::{LwgConfig, LwgId};
use plwg_vsync::VsyncStack;

type LwgNode = plwg_core::LwgNode<VsyncStack>;
use plwg_naming::{NameServer, NamingConfig};
use plwg_sim::{NodeId, SimDuration, World, WorldConfig};
use plwg_workload::Table;

const BIG: LwgId = LwgId(1);
const SMALL: LwgId = LwgId(2);

fn run(k_m: u32, k_c: u32) -> (u64, bool) {
    let mut w = World::new(WorldConfig {
        seed: 17,
        ..WorldConfig::default()
    });
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let servers = vec![s0, s1];
    let cfg = LwgConfig {
        k_m,
        k_c,
        policy_interval: SimDuration::from_secs(5),
        ..LwgConfig::default()
    };
    let apps: Vec<NodeId> = (0..8)
        .map(|i| {
            w.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    // Big group over all 8 → one 8-member HWG.
    for (i, &m) in apps.iter().enumerate() {
        w.invoke_at(
            w.now() + SimDuration::from_millis(300 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, BIG),
        );
    }
    w.run_for(SimDuration::from_secs(12));
    // Small group of 2 → optimistically mapped onto the big HWG.
    for (i, &m) in apps[..2].iter().enumerate() {
        w.invoke_at(
            w.now() + SimDuration::from_millis(300 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, SMALL),
        );
    }
    // Several policy rounds.
    w.run_for(SimDuration::from_secs(40));
    let switches = w.metrics().counter(plwg_core::keys::SWITCHES);
    let separated = {
        let hb = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(BIG));
        let hs = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(SMALL));
        hb != hs
    };
    (switches, separated)
}

fn main() {
    println!("Policy thresholds: a 2-member LWG optimistically mapped on an");
    println!("8-member HWG; does the interference rule separate it, and how");
    println!("many switches does the run perform?\n");
    let mut table = Table::new(&["k_m", "k_c", "switches", "separated"]);
    for &k_m in &[1u32, 2, 4, 8] {
        for &k_c in &[1u32, 4] {
            let (switches, separated) = run(k_m, k_c);
            table.row(&[
                k_m.to_string(),
                k_c.to_string(),
                switches.to_string(),
                separated.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("k_m in 2..=4 (the paper's prototype used 4): the 2-of-8 minority");
    println!("moves to its own HWG in one clean switch. k_m = 1 with loose");
    println!("thresholds keeps re-evaluating — the instability §3.2 warns about.");
    println!("k_m = 8 never treats 2-of-8 as a minority: interference persists.");
}
