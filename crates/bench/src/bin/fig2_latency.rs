//! Figure 2 (left panel): data-transfer **latency** vs. number of groups,
//! for the three service configurations.
//!
//! Expected shape (paper §3.3): *static* is the worst — interference makes
//! every process receive (and filter) both sets' traffic; *dynamic* tracks
//! *no-LWG* closely since each set's groups share a snug HWG.

use plwg_bench::{fig2_base, GROUP_COUNTS, MODES};
use plwg_workload::{fmt_us, run_two_sets, Table};

fn main() {
    println!("Figure 2 — latency vs. number of groups per set");
    println!("(2 disjoint sets of n groups, 4 processes each, 8 processes total)\n");
    let mut table = Table::new(&[
        "n",
        "mode",
        "mean",
        "p50",
        "p95",
        "max",
        "samples",
        "wire msgs",
    ]);
    for &n in GROUP_COUNTS {
        for &mode in MODES {
            let r = run_two_sets(&fig2_base(mode, n, 42));
            table.row(&[
                n.to_string(),
                mode.label().to_owned(),
                fmt_us(r.latency_us.mean),
                fmt_us(r.latency_us.p50 as f64),
                fmt_us(r.latency_us.p95 as f64),
                fmt_us(r.latency_us.max as f64),
                r.latency_us.count.to_string(),
                r.wire_msgs.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}
