//! Figure 2 (right panel): **time to recover from the crash of a member**
//! vs. number of groups, for the three service configurations.
//!
//! Expected shape (paper §3.3): with *no LWG service* the crashed process
//! belonged to n independent heavy-weight groups, each of which runs its
//! own full flush — recovery grows with n. With the LWG service (static or
//! dynamic) **one** HWG flush serves every co-mapped group (resource
//! sharing); per-group work shrinks to a single pruned-view announcement,
//! so recovery stays nearly flat.

use plwg_bench::{fig2_base, GROUP_COUNTS, MODES};
use plwg_sim::SimDuration;
use plwg_workload::{run_two_sets, Table, Traffic};

fn main() {
    println!("Figure 2 — crash-recovery time vs. number of groups per set");
    println!("(crash one member of set A; time until every group at every");
    println!(" survivor installs a view excluding it)\n");
    let mut table = Table::new(&["n", "mode", "recovery", "view-change", "hwgs/node"]);
    for &n in GROUP_COUNTS {
        for &mode in MODES {
            let mut params = fig2_base(mode, n, 44);
            params.crash_member = true;
            // Recovery is measured on an otherwise idle system. Protocol
            // processing is priced at 1 ms/message (SPARC-10-era stacks),
            // so the n independent flushes of the no-LWG baseline queue
            // visibly while the LWG modes run a single shared flush.
            params.proc_time = SimDuration::from_millis(1);
            params.traffic = Traffic {
                msgs_per_group: 5,
                interval: SimDuration::from_millis(50),
            };
            let r = run_two_sets(&params);
            // The failure detector needs `suspect_timeout` (500 ms) before
            // any protocol runs; the view-change column subtracts that
            // constant to expose the part that scales.
            let detect_us = 500_000u64;
            table.row(&[
                n.to_string(),
                mode.label().to_owned(),
                r.recovery
                    .map_or_else(|| "DID NOT RECOVER".to_owned(), |d| format!("{d}")),
                r.recovery.map_or_else(
                    || "-".to_owned(),
                    |d| {
                        format!(
                            "{:.1}ms",
                            (d.as_micros().saturating_sub(detect_us)) as f64 / 1e3
                        )
                    },
                ),
                format!("{:.1}", r.avg_hwgs_per_node),
            ]);
        }
    }
    println!("{}", table.render());
}
