//! Figure 2 (middle panel): data-transfer **throughput** vs. number of
//! groups, for the three service configurations.
//!
//! Expected shape (paper §3.3): *static* saturates first — every process
//! must examine both sets' traffic — while *dynamic* sustains the offered
//! load like *no-LWG* does.

use plwg_bench::{fig2_base, GROUP_COUNTS, MODES};
use plwg_sim::SimDuration;
use plwg_workload::{run_two_sets, Table, Traffic};

fn main() {
    println!("Figure 2 — throughput vs. number of groups per set");
    println!("(saturating senders: 500 msg/s per group)\n");
    let mut table = Table::new(&[
        "n",
        "mode",
        "delivered msg/s",
        "offered msg/s",
        "efficiency",
        "wire msgs",
    ]);
    for &n in GROUP_COUNTS {
        for &mode in MODES {
            let mut params = fig2_base(mode, n, 43);
            params.traffic = Traffic {
                msgs_per_group: 300,
                interval: SimDuration::from_millis(2),
            };
            let r = run_two_sets(&params);
            // Offered: 2n groups, 500 msg/s each, 3 remote receivers.
            let offered = (2 * n) as f64 * 500.0 * 3.0;
            table.row(&[
                n.to_string(),
                mode.label().to_owned(),
                format!("{:.0}", r.throughput_msgs_per_sec),
                format!("{offered:.0}"),
                format!("{:.2}", r.throughput_msgs_per_sec / offered),
                r.wire_msgs.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}
