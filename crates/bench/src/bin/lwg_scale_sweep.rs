//! Scale sweep: **how the sharded `GroupDirectory` behaves from 1k to
//! 1M LWGs** on a fixed node count.
//!
//! The paper's whole pitch is that light-weight groups are cheap enough
//! to create by the thousand; this sweep puts a number on "cheap" for the
//! directory that now backs them. One app process (plus one name server)
//! over the scripted substrate carries `L` singleton LWGs spread
//! round-robin across 16 HWGs, and per cell the sweep records only
//! **deterministic counters** — wall-clock is printed for the curious but
//! never written to `BENCH_scale.json`, so CI can regenerate the file and
//! gate on it byte-for-byte:
//!
//! * **bytes/LWG** — live heap delta across seeding, divided by `L`
//!   (allocation counts are deterministic in the simulated world);
//! * **directory lookup cost** — [`plwg_core::DirCounters`] deltas over a
//!   fixed probe window (2 s of ticks + 256 status lookups + 256 sends):
//!   `visited` is the index work a full-table scan used to spend O(L) on,
//!   so a flat value across cells *is* the tentpole's claim;
//! * **multicasts per delivered message** — the data plane must not
//!   amplify with the group count;
//! * **rebalance convergence** — a second world seeds the same `L` plus
//!   [`SKEW`] extra groups on one HWG, turns the rebalancer on, and counts
//!   moves and 300 ms rounds until two quiet rounds in a row.
//!
//! Cells: 1k/10k/100k by default, `--full` adds the 1M cell, `--smoke`
//! runs 1k+10k and asserts the flatness gates (CI's job).

use plwg_core::{DirCounters, HwgId, LwgConfig, LwgId, LwgMsg, ScriptedHwg, View, ViewId};
use plwg_naming::{NameServer, NamingConfig};
use plwg_sim::{Frame, NetConfig, NodeId, SimDuration, World, WorldConfig};
use plwg_workload::Table;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Tracks live heap bytes (allocated minus freed) so a cell can report
/// steady-state memory per LWG. Single-threaded process; relaxed ordering
/// is exact, and the counts are deterministic because the simulation is.
struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        FREED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn live_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed) - FREED_BYTES.load(Ordering::Relaxed)
}

type Node = plwg_core::LwgNode<ScriptedHwg>;

const HWGS: u64 = 16;
/// Status lookups and data sends per probe window.
const PROBE: usize = 256;
/// Extra groups piled onto HWG 1 for the convergence measurement.
const SKEW: u64 = 24;
const REBALANCE_EVERY: SimDuration = SimDuration::from_millis(300);

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn hwg(slot: u64) -> HwgId {
    HwgId(1 + slot)
}

fn cfg(rebalance: bool) -> LwgConfig {
    LwgConfig {
        naming: NamingConfig {
            gossip_interval: ms(500),
            ..NamingConfig::default()
        },
        lwg_join_timeout: ms(200),
        tick_interval: ms(100),
        pack_max_msgs: 1,
        rebalance_interval: rebalance.then_some(REBALANCE_EVERY),
        rebalance_max_moves: 8,
        ..LwgConfig::default()
    }
}

/// Measured outcome of one cell — deterministic counters only, plus the
/// wall-clock figures that are printed but kept out of the JSON.
struct Row {
    lwgs: u64,
    bytes_per_lwg: u64,
    probe_lookups: u64,
    probe_index_queries: u64,
    probe_visited: u64,
    sends: u64,
    delivered: u64,
    rebalance_moves: u64,
    converge_rounds: u64,
    seed_wall_ms: f64,
    rebalance_wall_ms: f64,
}

impl Row {
    fn multicasts_per_delivered(&self) -> f64 {
        self.sends as f64 / self.delivered.max(1) as f64
    }
    fn converge_ms(&self) -> u64 {
        self.converge_rounds * 300
    }
}

fn setup(rebalance: bool) -> (World, NodeId) {
    let mut w = World::new(WorldConfig {
        seed: 7,
        net: NetConfig {
            jitter: SimDuration::ZERO,
            ..NetConfig::default()
        },
        ..WorldConfig::default()
    });
    let server = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![],
        NamingConfig::default(),
    )));
    let app = w.add_node(Box::new(
        Node::builder(NodeId(1))
            .servers([server])
            .config(cfg(rebalance))
            .build()
            .expect("valid sweep config"),
    ));
    for slot in 0..HWGS {
        let view = View::initial(ViewId::new(app, 1), vec![app]);
        let h = hwg(slot);
        w.invoke(app, move |n: &mut Node, ctx| {
            n.service().hwg_stack_mut().inject_view(h, view);
            n.service().pump(ctx);
        });
    }
    w.run_for(ms(500));
    (w, app)
}

/// Seeds `count` singleton LWGs starting at id `first`, mapped onto
/// `target` (or round-robin over all 16 HWGs when `None`). `settle`
/// runs the world on afterwards; the convergence cell skips it so the
/// rebalancer's reaction is observed, not slept through.
fn seed(w: &mut World, a: NodeId, first: u64, count: u64, target: Option<HwgId>, settle: bool) {
    for i in 0..count {
        let lwg = LwgId(first + i);
        let h = target.unwrap_or_else(|| hwg(i % HWGS));
        let view = View::initial(ViewId::new(a, 1), vec![a]);
        w.invoke(a, move |n: &mut Node, ctx| {
            n.service().join(ctx, lwg);
            n.service().hwg_stack_mut().inject_data(
                h,
                a,
                LwgMsg::NewLwgView {
                    lwg,
                    flush: None,
                    view,
                    hwg: h,
                }
                .to_frame(),
            );
            n.service().pump(ctx);
        });
        // Drain the queued naming traffic in slices so the transient
        // event backlog stays bounded at the 1M cell.
        if i % 8192 == 8191 {
            w.run_for(ms(1));
        }
    }
    if settle {
        w.run_for(ms(2000));
    }
}

fn dir_counters(w: &mut World, a: NodeId) -> DirCounters {
    w.inspect(a, |n: &Node| n.service_ref().directory_counters())
}

/// Every `PROBE`-th id across `1..=l` — the status-lookup and send
/// samples, spread over the whole id range (and so over every shard).
fn sample_ids(l: u64) -> Vec<u64> {
    let step = (l / PROBE as u64).max(1);
    (0..PROBE as u64)
        .map(|i| 1 + i * step)
        .filter(|&id| id <= l)
        .collect()
}

fn run_cell(l: u64) -> Row {
    // --- world A: memory, lookup cost, data plane (rebalancer off) ----
    let (mut w, a) = setup(false);
    let live0 = live_bytes();
    let t0 = Instant::now();
    seed(&mut w, a, 1, l, None, true);
    let seed_wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let bytes_per_lwg = (live_bytes().saturating_sub(live0)) / l;

    // Fixed probe window: 2 s of ticks, then PROBE status lookups. The
    // directory-counter deltas must not scale with `l`.
    let before = dir_counters(&mut w, a);
    w.run_for(ms(2000));
    let ids = sample_ids(l);
    w.inspect(a, {
        let ids = ids.clone();
        move |n: &Node| {
            for &id in &ids {
                assert!(n.service_ref().lwg_status(LwgId(id)).is_some());
            }
        }
    });
    let after = dir_counters(&mut w, a);

    // Data-plane probe: one 64 B multicast on each sampled group.
    w.metrics_mut().reset();
    w.invoke(a, {
        let ids = ids.clone();
        move |n: &mut Node, ctx| {
            for &id in &ids {
                n.service()
                    .send(ctx, LwgId(id), Frame::from_vec(vec![0u8; 64]));
            }
            n.service().pump(ctx);
        }
    });
    w.run_for(ms(200));
    let sends = w.metrics().counter(plwg_core::keys::DATA_SENT);
    let delivered = w.metrics().counter(plwg_core::keys::DATA_DELIVERED);
    drop(w);

    // --- world B: rebalance convergence (rebalancer on) ---------------
    let (mut w, a) = setup(true);
    seed(&mut w, a, 1, l, None, true);
    seed(&mut w, a, l + 1, SKEW, Some(hwg(0)), false);
    let t0 = Instant::now();
    let (mut rounds, mut last_change, mut quiet) = (0u64, 0u64, 0u32);
    while quiet < 2 {
        let before = w.metrics().counter(plwg_core::keys::REBALANCE_MOVES);
        w.run_for(REBALANCE_EVERY);
        rounds += 1;
        if w.metrics().counter(plwg_core::keys::REBALANCE_MOVES) == before {
            quiet += 1;
        } else {
            quiet = 0;
            last_change = rounds;
        }
        assert!(rounds < 64, "rebalancer did not converge in 64 rounds");
    }
    let rebalance_wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let rebalance_moves = w.metrics().counter(plwg_core::keys::REBALANCE_MOVES);

    Row {
        lwgs: l,
        bytes_per_lwg,
        probe_lookups: after.lookups - before.lookups,
        probe_index_queries: after.index_queries - before.index_queries,
        probe_visited: after.visited - before.visited,
        sends,
        delivered,
        rebalance_moves,
        converge_rounds: last_change,
        seed_wall_ms,
        rebalance_wall_ms,
    }
}

fn json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"lwg_scale_sweep\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"lwgs\": {}, \"hwgs\": {HWGS}, \"bytes_per_lwg\": {}, \
             \"probe_lookups\": {}, \"probe_index_queries\": {}, \"probe_visited\": {}, \
             \"multicasts\": {}, \"delivered\": {}, \"multicasts_per_delivered\": {:.2}, \
             \"rebalance_moves\": {}, \"rebalance_converge_ms\": {}}}{}",
            r.lwgs,
            r.bytes_per_lwg,
            r.probe_lookups,
            r.probe_index_queries,
            r.probe_visited,
            r.sends,
            r.delivered,
            r.multicasts_per_delivered(),
            r.rebalance_moves,
            r.converge_ms(),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The CI gates: every figure here is a deterministic counter, so a
/// failure is a real regression, never flake. Wall clock is printed above
/// but deliberately not gated.
fn gate(rows: &[Row]) {
    let (small, big) = (&rows[0], &rows[rows.len() - 1]);
    assert!(
        big.bytes_per_lwg <= small.bytes_per_lwg * 3 / 2,
        "memory per LWG grew with L: {} B at {} vs {} B at {}",
        big.bytes_per_lwg,
        big.lwgs,
        small.bytes_per_lwg,
        small.lwgs
    );
    for r in rows {
        assert!(
            r.probe_visited <= small.probe_visited + 64,
            "index work scales with L: visited {} at {} vs {} at {}",
            r.probe_visited,
            r.lwgs,
            small.probe_visited,
            small.lwgs
        );
        assert!(
            r.probe_lookups <= small.probe_lookups + 64,
            "lookup count scales with L: {} at {} vs {} at {}",
            r.probe_lookups,
            r.lwgs,
            small.probe_lookups,
            small.lwgs
        );
        assert!(
            r.multicasts_per_delivered() <= 1.01,
            "data plane amplifies with L: {:.2} multicasts/delivered at {}",
            r.multicasts_per_delivered(),
            r.lwgs
        );
        assert!(
            (1..=SKEW).contains(&r.rebalance_moves),
            "rebalancer moved {} groups for a {SKEW}-group skew at {}",
            r.rebalance_moves,
            r.lwgs
        );
    }
    println!("gates: ok (memory/LWG flat, lookup cost O(1), no amplification)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full");
    let cells: &[u64] = if smoke {
        &[1_000, 10_000]
    } else if full {
        &[1_000, 10_000, 100_000, 1_000_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    println!("Directory scale sweep: L singleton LWGs round-robin on {HWGS} HWGs");
    println!("(1 app node + 1 name server, scripted substrate; probe = {PROBE} lookups + {PROBE} sends)\n");
    let mut table = Table::new(&[
        "lwgs",
        "B/lwg",
        "probe lookups",
        "probe visited",
        "mcast/delivered",
        "moves",
        "converge ms",
        "seed wall ms",
        "rebalance wall ms",
    ]);
    let mut rows = Vec::new();
    for &l in cells {
        let r = run_cell(l);
        table.row(&[
            r.lwgs.to_string(),
            r.bytes_per_lwg.to_string(),
            r.probe_lookups.to_string(),
            r.probe_visited.to_string(),
            format!("{:.2}", r.multicasts_per_delivered()),
            r.rebalance_moves.to_string(),
            r.converge_ms().to_string(),
            format!("{:.0}", r.seed_wall_ms),
            format!("{:.0}", r.rebalance_wall_ms),
        ]);
        rows.push(r);
    }
    println!("{}", table.render());

    if smoke {
        gate(&rows);
        return;
    }
    let path = "BENCH_scale.json";
    match std::fs::write(path, json(&rows)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
