//! Macro-benchmark: **wall-clock throughput of the real-socket data
//! plane** (`plwg-net`), the companion number to `throughput_sweep`'s
//! simulator-core msgs/s.
//!
//! Two `NetRuntime`s on loopback UDP, one per thread: the sender streams
//! fixed-size frames in paced bursts through the peer pool and socket;
//! the receiver's reactor counts what actually arrives. UDP is lossy
//! even on loopback when bursts outrun the socket buffer, so the bench
//! reports the delivery ratio alongside msgs/s — the number is the
//! transport's *sustained* rate, not an in-memory upper bound.
//!
//! Results land in `BENCH_net.json`. Unlike `BENCH_pack.json` /
//! `BENCH_throughput.json` this file is wall-clock and machine-dependent,
//! so CI runs only `--smoke` (small counts, sanity gates) and never diffs
//! the JSON.
//!
//! Run with: `cargo run --release -p plwg-bench --bin net_throughput`

use plwg_net::{NetOptions, NetRuntime};
use plwg_sim::{NodeId, Payload, Process, SimDuration, Transport};
use plwg_workload::Table;
use std::fmt::Write as _;
use std::sync::mpsc;
use std::time::Instant;

const SENDER: NodeId = NodeId(1);
const RECEIVER: NodeId = NodeId(2);
/// Bytes per burst before the sender lets its reactor breathe. The
/// reactor turn between bursts blocks in `recvfrom` for at least one
/// kernel timer tick (SO_RCVTIMEO granularity), so the burst has to be
/// large enough to amortise that — but small enough that loopback's
/// receive buffer absorbs it while the receiver drains.
const BURST_BYTES: u64 = 16 * 1024;

fn burst_frames(payload_bytes: usize) -> u64 {
    (BURST_BYTES / payload_bytes.max(1) as u64).max(16)
}

/// Receiver process: counts frames and timestamps the first/last one.
struct Counter {
    n: u64,
    first: Option<Instant>,
    last: Option<Instant>,
}

impl Process for Counter {
    fn on_message(&mut self, _ctx: &mut dyn Transport, _from: NodeId, _msg: Payload) {
        self.n += 1;
        let now = Instant::now();
        self.first.get_or_insert(now);
        self.last = Some(now);
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Sender process: pure source, nothing to receive.
struct Source;

impl Process for Source {
    fn on_message(&mut self, _ctx: &mut dyn Transport, _from: NodeId, _msg: Payload) {}
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Row {
    payload_bytes: usize,
    sent: u64,
    received: u64,
    wall_ms: f64,
    bytes_tx: u64,
}

impl Row {
    fn msgs_per_s(&self) -> f64 {
        self.received as f64 / (self.wall_ms / 1000.0).max(1e-9)
    }
    fn delivery_ratio(&self) -> f64 {
        self.received as f64 / self.sent.max(1) as f64
    }
    fn mib_per_s(&self) -> f64 {
        (self.received as f64 * self.payload_bytes as f64)
            / (1024.0 * 1024.0)
            / (self.wall_ms / 1000.0).max(1e-9)
    }
}

fn run(payload_bytes: usize, frames: u64) -> Row {
    let (addr_tx, addr_rx) = mpsc::channel();
    let (done_tx, done_rx) = mpsc::channel();

    // Receiver thread: bind, publish the address, count until the sender
    // is done and the pipe has drained (or 60 s pass).
    let rx_thread = std::thread::spawn(move || {
        let mut rt = NetRuntime::bind(RECEIVER, "127.0.0.1:0", NetOptions::default())
            .expect("bind receiver");
        addr_tx
            .send(rt.local_addr().expect("receiver addr"))
            .expect("publish addr");
        let mut counter = Counter {
            n: 0,
            first: None,
            last: None,
        };
        let deadline = Instant::now() + std::time::Duration::from_secs(60);
        let mut sender_done = false;
        let mut drained_turns = 0u32;
        while Instant::now() < deadline && drained_turns < 20 {
            let before = counter.n;
            rt.run_for(&mut counter, SimDuration::from_millis(25));
            sender_done |= done_rx.try_recv().is_ok();
            if sender_done {
                // Keep draining until the socket goes quiet.
                drained_turns = if counter.n == before {
                    drained_turns + 1
                } else {
                    0
                };
            }
            if counter.n >= frames {
                break;
            }
        }
        counter
    });

    let peer = addr_rx.recv().expect("receiver addr");
    let mut rt =
        NetRuntime::bind(SENDER, "127.0.0.1:0", NetOptions::default()).expect("bind sender");
    rt.add_peer(RECEIVER, peer);
    let mut src = Source;
    // Connect before timing: the handshake is not the data plane.
    while rt.peers_up() == 0 {
        rt.run_for(&mut src, SimDuration::from_millis(10));
    }

    let frame = Payload::from_vec(vec![7u8; payload_bytes]);
    // Frames are cheap to clone (shared buffer), so one template suffices.
    let mut sent = 0u64;
    let burst_cap = burst_frames(payload_bytes);
    while sent < frames {
        let burst = burst_cap.min(frames - sent);
        for _ in 0..burst {
            rt.send(RECEIVER, frame.clone());
        }
        sent += burst;
        // One reactor turn per burst: services heartbeats and paces the
        // stream to something loopback can mostly carry.
        rt.run_for(&mut src, SimDuration::from_micros(200));
    }
    let bytes_tx = rt.registry().counter(plwg_net::keys::NETIO_BYTES_TX);
    // The receiver may already have counted every frame and returned, in
    // which case the channel is closed — that is the success path.
    let _ = done_tx.send(());
    let counter = rx_thread.join().expect("receiver thread");

    let wall_ms = match (counter.first, counter.last) {
        (Some(a), Some(b)) => b.duration_since(a).as_secs_f64() * 1000.0,
        _ => 0.0,
    };
    Row {
        payload_bytes,
        sent,
        received: counter.n,
        wall_ms,
        bytes_tx,
    }
}

fn json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"net_throughput\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"payload_bytes\": {}, \"sent\": {}, \"received\": {}, \
             \"delivery_ratio\": {:.3}, \"wall_ms\": {:.1}, \"msgs_per_s\": {:.0}, \
             \"mib_per_s\": {:.1}, \"bytes_tx\": {}}}{}",
            r.payload_bytes,
            r.sent,
            r.received,
            r.delivery_ratio(),
            r.wall_ms,
            r.msgs_per_s(),
            r.mib_per_s(),
            r.bytes_tx,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn gate(rows: &[Row]) {
    for r in rows {
        assert!(
            r.received > 0,
            "{}B: nothing arrived over loopback",
            r.payload_bytes
        );
        assert!(
            r.delivery_ratio() > 0.5,
            "{}B: delivery ratio {:.2} — transport is dropping most of the stream",
            r.payload_bytes,
            r.delivery_ratio()
        );
        assert!(
            r.msgs_per_s() > 500.0,
            "{}B: {:.0} msgs/s is below any plausible loopback floor",
            r.payload_bytes,
            r.msgs_per_s()
        );
    }
    println!("gates: ok (frames flow, majority delivered, rate above floor)");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cells: &[(usize, u64)] = if smoke {
        &[(64, 5_000), (1024, 2_000)]
    } else {
        &[(64, 200_000), (1024, 50_000)]
    };

    println!(
        "Real-socket data plane: UDP loopback, two runtimes, paced {}KiB bursts\n",
        BURST_BYTES / 1024
    );
    let mut table = Table::new(&[
        "payload", "sent", "received", "delivery", "wall ms", "msg/s", "MiB/s",
    ]);
    let mut rows = Vec::new();
    for &(size, frames) in cells {
        let r = run(size, frames);
        table.row(&[
            format!("{}B", r.payload_bytes),
            r.sent.to_string(),
            r.received.to_string(),
            format!("{:.1}%", r.delivery_ratio() * 100.0),
            format!("{:.1}", r.wall_ms),
            format!("{:.0}", r.msgs_per_s()),
            format!("{:.1}", r.mib_per_s()),
        ]);
        rows.push(r);
    }
    println!("{}", table.render());
    println!("simulator-core baseline for the same payloads: BENCH_throughput.json");

    if smoke {
        gate(&rows);
        return;
    }
    let path = "BENCH_net.json";
    match std::fs::write(path, json(&rows)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
