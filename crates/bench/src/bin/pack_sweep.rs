//! Extension experiment: **message packing + subset delivery** on the
//! LWG data plane.
//!
//! Several small LWGs co-mapped on one big HWG are the paper's resource-
//! sharing win — and its interference cost: every HWG member receives and
//! filters every co-mapped group's traffic, and every LWG send costs one
//! full HWG multicast. This sweep quantifies the two data-plane
//! countermeasures:
//!
//! * **packing** (`pack_max_msgs`/`pack_delay`): one sender's bursty
//!   sends across its co-mapped groups ride a single `LwgMsg::Batch`
//!   multicast, amortising the per-multicast HWG cost;
//! * **subset delivery** (`subset_delivery`): co-mapped data is addressed
//!   only to the interested members (plus the HWG coordinator), so
//!   uninterested members stop paying the filtering cost.
//!
//! Topology: one 8-process group pins the HWG at 8 members; `G` co-mapped
//! groups over the first 4 processes carry the measured traffic (two
//! senders, bursts of one message per group every 10 ms for 2 s).
//! Baseline is `pack_max_msgs = 1`, subset delivery off — byte-identical
//! to the unpacked protocol. Results land in `BENCH_pack.json`.

use plwg_core::{LwgConfig, LwgId};
use plwg_vsync::VsyncStack;

type LwgNode = plwg_core::LwgNode<VsyncStack>;
use plwg_naming::{NameServer, NamingConfig};
use plwg_sim::{Frame, NodeId, SimDuration, World, WorldConfig};
use plwg_workload::Table;
use std::fmt::Write as _;

/// One swept configuration.
struct Cfg {
    label: &'static str,
    pack_max_msgs: usize,
    pack_delay: SimDuration,
    subset: bool,
}

/// Measured outcome of one run.
struct Row {
    label: &'static str,
    groups: usize,
    pack_max_msgs: usize,
    pack_delay_ms: f64,
    subset: bool,
    sent: u64,
    delivered: u64,
    hwg_multicasts: u64,
    filtered: u64,
    occupancy_mean: f64,
    throughput: f64,
    net_bytes: u64,
}

impl Row {
    fn multicasts_per_delivered(&self) -> f64 {
        self.hwg_multicasts as f64 / self.delivered.max(1) as f64
    }

    fn filtered_per_delivered(&self) -> f64 {
        self.filtered as f64 / self.delivered.max(1) as f64
    }

    /// Wire bytes handed to the network per delivered application message
    /// (printed only: `BENCH_pack.json` is a byte-identity guard for the
    /// zero-copy refactor and must not change shape).
    fn wire_bytes_per_delivered(&self) -> f64 {
        self.net_bytes as f64 / self.delivered.max(1) as f64
    }
}

const BIG: LwgId = LwgId(100);
const TRAFFIC_SECS: u64 = 2;
const BURSTS: u64 = 200; // one burst every 10 ms for 2 s
const SENDERS: usize = 2;

fn run(groups: usize, cfg: &Cfg, seed: u64) -> Row {
    let lwg_cfg = LwgConfig {
        pack_max_msgs: cfg.pack_max_msgs,
        pack_delay: if cfg.pack_delay > SimDuration::ZERO {
            cfg.pack_delay
        } else {
            SimDuration::from_millis(1)
        },
        subset_delivery: cfg.subset,
        // The interference rule would de-map the small groups mid-run;
        // this sweep measures the co-mapped regime the policies start
        // every group in.
        policy_interval: SimDuration::from_secs(600),
        ..LwgConfig::default()
    };
    let mut w = World::new(WorldConfig {
        seed,
        ..WorldConfig::default()
    });
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let servers = vec![s0, s1];
    let apps: Vec<NodeId> = (0..8)
        .map(|i| {
            w.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(lwg_cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    // The big group pins the HWG at all 8 processes.
    for (i, &n) in apps.iter().enumerate() {
        let t = w.now() + SimDuration::from_millis(300 * i as u64);
        w.invoke_at(t, n, move |a: &mut LwgNode, ctx| a.service().join(ctx, BIG));
    }
    w.run_for(SimDuration::from_secs(10));
    // G co-mapped groups over the first 4 processes.
    for g in 0..groups {
        let lwg = LwgId(1 + g as u64);
        for (i, &n) in apps[..4].iter().enumerate() {
            let t = w.now() + SimDuration::from_millis(200 * i as u64);
            w.invoke_at(t, n, move |a: &mut LwgNode, ctx| a.service().join(ctx, lwg));
        }
        w.run_for(SimDuration::from_secs(3));
    }
    w.run_for(SimDuration::from_secs(4));
    // Drop everything spent on membership; measure the data plane only.
    w.metrics_mut().reset();

    // Bursty traffic: each sender puts one message on every co-mapped
    // group per burst — the packing layer's best case, and exactly the
    // fan-in the Swiss-Exchange motivation describes (§1).
    for &sender in apps.iter().take(SENDERS) {
        for b in 0..BURSTS {
            let t = w.now() + SimDuration::from_millis(b * 10);
            w.invoke_at(t, sender, move |a: &mut LwgNode, ctx| {
                for g in 0..groups {
                    a.service()
                        .send(ctx, LwgId(1 + g as u64), Frame::from_u64(b));
                }
            });
        }
    }
    w.run_for(SimDuration::from_secs(TRAFFIC_SECS + 2));

    let m = w.metrics();
    let occupancy = m
        .histogram(plwg_core::keys::BATCH_OCCUPANCY)
        .map_or(0.0, |h| h.summary().mean);
    Row {
        label: cfg.label,
        groups,
        pack_max_msgs: cfg.pack_max_msgs,
        pack_delay_ms: cfg.pack_delay.as_micros() as f64 / 1000.0,
        subset: cfg.subset,
        sent: m.counter(plwg_core::keys::DATA_SENT),
        delivered: m.counter(plwg_core::keys::DATA_DELIVERED),
        hwg_multicasts: m.counter(plwg_vsync::keys::DATA_SENT),
        filtered: m.counter(plwg_core::keys::FILTERED),
        occupancy_mean: occupancy,
        throughput: m.counter(plwg_core::keys::DATA_DELIVERED) as f64 / TRAFFIC_SECS as f64,
        net_bytes: m.counter(plwg_sim::keys::NET_BYTES_SENT),
    }
}

fn json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"pack_sweep\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"config\": \"{}\", \"groups\": {}, \"pack_max_msgs\": {}, \
             \"pack_delay_ms\": {}, \"subset_delivery\": {}, \"lwg_sent\": {}, \
             \"lwg_delivered\": {}, \"hwg_data_multicasts\": {}, \"lwg_filtered\": {}, \
             \"multicasts_per_delivered\": {:.4}, \"filtered_per_delivered\": {:.4}, \
             \"batch_occupancy_mean\": {:.2}, \"throughput_msgs_per_s\": {:.1}}}{}",
            r.label,
            r.groups,
            r.pack_max_msgs,
            r.pack_delay_ms,
            r.subset,
            r.sent,
            r.delivered,
            r.hwg_multicasts,
            r.filtered,
            r.multicasts_per_delivered(),
            r.filtered_per_delivered(),
            r.occupancy_mean,
            r.throughput,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    println!("Packing + subset delivery: G co-mapped 4-member LWGs on an 8-member HWG");
    println!("({SENDERS} senders, 1 msg/group every 10 ms for {TRAFFIC_SECS} s; baseline = pack_max_msgs 1)\n");
    let configs = [
        Cfg {
            label: "baseline",
            pack_max_msgs: 1,
            pack_delay: SimDuration::ZERO,
            subset: false,
        },
        Cfg {
            label: "pack-2ms",
            pack_max_msgs: 16,
            pack_delay: SimDuration::from_millis(2),
            subset: false,
        },
        Cfg {
            label: "subset-only",
            pack_max_msgs: 1,
            pack_delay: SimDuration::ZERO,
            subset: true,
        },
        Cfg {
            label: "pack-1ms+subset",
            pack_max_msgs: 16,
            pack_delay: SimDuration::from_millis(1),
            subset: true,
        },
        Cfg {
            label: "pack-2ms+subset",
            pack_max_msgs: 16,
            pack_delay: SimDuration::from_millis(2),
            subset: true,
        },
        Cfg {
            label: "pack-5ms+subset",
            pack_max_msgs: 16,
            pack_delay: SimDuration::from_millis(5),
            subset: true,
        },
    ];
    let mut table = Table::new(&[
        "groups",
        "config",
        "delivered",
        "HWG multicasts",
        "mc/delivered",
        "filtered/delivered",
        "wire B/delivered",
        "occupancy",
        "msg/s",
    ]);
    let mut rows = Vec::new();
    for &groups in &[2usize, 4, 8] {
        let mut baseline_mpd = None;
        for cfg in &configs {
            let r = run(groups, cfg, 31);
            if cfg.label == "baseline" {
                baseline_mpd = Some(r.multicasts_per_delivered());
            }
            table.row(&[
                groups.to_string(),
                r.label.to_string(),
                r.delivered.to_string(),
                r.hwg_multicasts.to_string(),
                format!("{:.3}", r.multicasts_per_delivered()),
                format!("{:.3}", r.filtered_per_delivered()),
                format!("{:.0}", r.wire_bytes_per_delivered()),
                if r.occupancy_mean > 0.0 {
                    format!("{:.1}", r.occupancy_mean)
                } else {
                    "-".to_string()
                },
                format!("{:.0}", r.throughput),
            ]);
            rows.push(r);
        }
        if let (Some(base), Some(packed)) = (
            baseline_mpd,
            rows.iter()
                .rev()
                .find(|r| r.groups == groups && r.label == "pack-2ms+subset")
                .map(Row::multicasts_per_delivered),
        ) {
            println!(
                "G={groups}: pack-2ms+subset uses {:.1}x fewer HWG Data multicasts per delivered message than baseline",
                base / packed.max(f64::EPSILON)
            );
        }
    }
    println!("\n{}", table.render());
    let path = "BENCH_pack.json";
    match std::fs::write(path, json(&rows)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
