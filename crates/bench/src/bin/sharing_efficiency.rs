//! Extension experiment: **mapping quality under overlapping
//! subscriptions** — the paper's §1 motivation (the Swiss Exchange ran "as
//! many as 50 groups that may overlap") quantified.
//!
//! N subject groups with random 3–5-process subscriber sets over 8
//! processes. The dynamic service should use far fewer HWGs than subjects
//! (resource sharing) while keeping the backing HWG close to each subject's
//! own membership (bounded interference).

use plwg_sim::SimDuration;
use plwg_workload::overlap::{run_overlap, OverlapParams};
use plwg_workload::Table;

fn main() {
    println!("Mapping quality: N overlapping subject groups over 8 processes");
    println!("(subscribers drawn per subject: 3..=5; dynamic service)\n");
    let mut table = Table::new(&[
        "subjects",
        "distinct HWGs",
        "HWGs/node",
        "switches",
        "overhead |HWG|/|LWG|",
        "converged",
    ]);
    for &subjects in &[4usize, 8, 16, 32] {
        let r = run_overlap(&OverlapParams {
            subjects,
            processes: 8,
            subscribers: (3, 5),
            seed: 9,
            settle: SimDuration::from_secs(90),
        });
        table.row(&[
            subjects.to_string(),
            r.distinct_hwgs.to_string(),
            format!("{:.1}", r.avg_hwgs_per_node),
            r.switches.to_string(),
            format!("{:.2}", r.mean_overhead),
            r.converged.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("A stand-alone-group deployment would use exactly N HWGs; the");
    println!("service collapses overlapping subjects onto a small pool while");
    println!("the overhead column bounds the interference each subject pays.");
}
