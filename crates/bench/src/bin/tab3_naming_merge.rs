//! Table 3: after a partition heals, the reconciled naming database holds
//! **both** partitions' concurrent mappings for each LWG, side by side.
//!
//! Scenario (paper Figure 3): two LWGs spanning both sides of a partition;
//! while split, each side installs its own concurrent view of each LWG
//! (backed by its side's concurrent HWG views) and registers it with its
//! reachable name server. On heal, the servers' anti-entropy merge keeps
//! all of them — conflicts are surfaced, never silently dropped.

use plwg_bench::render_db;
use plwg_core::{LwgConfig, LwgId};
use plwg_vsync::VsyncStack;

type LwgNode = plwg_core::LwgNode<VsyncStack>;
use plwg_naming::{NameServer, NamingConfig};
use plwg_sim::{NodeId, SimDuration, SimTime, World, WorldConfig};

const LWG_A: LwgId = LwgId(1);
const LWG_B: LwgId = LwgId(2);

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn main() {
    let mut w = World::new(WorldConfig::default());
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let servers = vec![s0, s1];
    let apps: Vec<NodeId> = (0..8)
        .map(|i| {
            w.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();

    // LWG_a = {p0,p1,p4,p5}, LWG_b = {p2,p3,p6,p7}: each spans the future
    // partition boundary, and the two groups are disjoint so they ride
    // different HWGs (hwg_1, hwg_2 of the paper's figure).
    let members_a = [apps[0], apps[1], apps[4], apps[5]];
    let members_b = [apps[2], apps[3], apps[6], apps[7]];
    for (i, &m) in members_a.iter().enumerate() {
        w.invoke_at(
            at(0) + SimDuration::from_millis(400 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, LWG_A),
        );
    }
    for (i, &m) in members_b.iter().enumerate() {
        w.invoke_at(
            at(1) + SimDuration::from_millis(400 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, LWG_B),
        );
    }
    w.run_until(at(15));
    println!("== before the partition (one mapping per LWG) ==");
    w.inspect(s0, |s: &NameServer| print!("{}", render_db(s.db())));

    // Partition p = {s0, p0..p3} vs p' = {s1, p4..p7}.
    let mut side_p = vec![s0];
    side_p.extend(&apps[..4]);
    let mut side_q = vec![s1];
    side_q.extend(&apps[4..]);
    w.split_at(at(16), vec![side_p, side_q]);
    w.run_until(at(35));

    println!("\n== partition p (server 0's replica) ==");
    w.inspect(s0, |s: &NameServer| print!("{}", render_db(s.db())));
    println!("\n== partition p' (server 1's replica) ==");
    w.inspect(s1, |s: &NameServer| print!("{}", render_db(s.db())));

    // The Table 3 moment: what reconciliation produces when the two
    // replicas meet. (In the live system this state exists only briefly —
    // the MULTIPLE-MAPPINGS callbacks repair it within a second — so we
    // apply the reconciliation algorithm to the two partition replicas
    // directly, exactly as the healing servers do.)
    let db_p = w.inspect(s0, |s: &NameServer| s.db().clone());
    let db_q = w.inspect(s1, |s: &NameServer| s.db().clone());
    let mut merged = db_p.clone();
    let changed = merged.merge(&db_q);
    println!("\n== merged naming service (paper Table 3) ==");
    print!("{}", render_db(&merged));
    println!("  entries changed by the merge: {changed:?}");
    println!(
        "  inconsistent groups detected: {:?}",
        merged.inconsistent()
    );
    assert!(
        !merged.inconsistent().is_empty(),
        "Table 3 requires a conflict"
    );

    w.heal_at(at(35));

    // And the eventual collapse (Table 4's final stage).
    w.run_until(at(80));
    println!("\n== after reconciliation completes (paper Table 4, stage 4) ==");
    w.inspect(s0, |s: &NameServer| {
        print!("{}", render_db(s.db()));
        assert!(s.db().inconsistent().is_empty(), "must converge");
    });
}
