//! Table 4: the naming database's **evolution** through a partition heal —
//! merged (conflicting) naming service → merged HWGs → switched LWGs →
//! merged LWGs.
//!
//! To reproduce all four stages, the two LWGs are *founded while the
//! network is partitioned*: each side maps them onto its own freshly
//! created HWG, so reconciliation must run the full §6 pipeline, including
//! the step-2 **switch to the HWG with the highest group id**. Beacons and
//! gossip are slowed so each stage is observable; the binary samples server
//! 0's replica and prints every distinct state.

use plwg_bench::render_db;
use plwg_core::{LwgConfig, LwgId};
use plwg_vsync::VsyncStack;

type LwgNode = plwg_core::LwgNode<VsyncStack>;
use plwg_naming::{NameServer, NamingConfig};
use plwg_sim::{NodeId, SimDuration, SimTime, World, WorldConfig};

const LWG_A: LwgId = LwgId(1);
const LWG_B: LwgId = LwgId(2);

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn main() {
    let mut w = World::new(WorldConfig::default());
    let ns_cfg = NamingConfig {
        gossip_interval: SimDuration::from_millis(1_000),
        ..NamingConfig::default()
    };
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        ns_cfg.clone(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        ns_cfg,
    )));
    let servers = vec![s0, s1];
    // Spread the heal machinery out in time so each Table-4 stage is
    // visible in the samples.
    let mut cfg = LwgConfig::default();
    cfg.hwg.beacon_interval = SimDuration::from_millis(2_500);
    let apps: Vec<NodeId> = (0..4)
        .map(|i| {
            w.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();

    // Partition FIRST: {s0, p0, p1} | {s1, p2, p3}.
    w.split_at(
        at(1),
        vec![vec![s0, apps[0], apps[1]], vec![s1, apps[2], apps[3]]],
    );
    // Each side founds both LWGs independently → concurrent views mapped
    // onto *different* HWGs (paper Figure 3's inconsistent mappings).
    for lwg in [LWG_A, LWG_B] {
        for (i, &m) in apps.iter().enumerate() {
            w.invoke_at(
                at(2) + SimDuration::from_millis(400 * (i as u64 % 2) + 50 * lwg.0),
                m,
                move |a: &mut LwgNode, ctx| a.service().join(ctx, lwg),
            );
        }
    }
    w.run_until(at(25));
    println!("== while partitioned ==");
    println!("server 0 (partition p):");
    w.inspect(s0, |s: &NameServer| print!("{}", render_db(s.db())));
    println!("server 1 (partition p'):");
    w.inspect(s1, |s: &NameServer| print!("{}", render_db(s.db())));

    w.heal_at(at(25));
    println!("\nsampling server 0 after the heal at t=25s:");
    let mut last = w.inspect(s0, |s: &NameServer| render_db(s.db()));
    let mut stage = 0;
    while w.now() < at(70) {
        w.run_for(SimDuration::from_millis(10));
        let snapshot = w.inspect(s0, |s: &NameServer| render_db(s.db()));
        if snapshot != last {
            stage += 1;
            println!("\n-- stage {stage} (t = {}) --", w.now());
            print!("{snapshot}");
            last = snapshot;
        }
    }
    let (consistent, len) = w.inspect(s0, |s: &NameServer| {
        (s.db().inconsistent().is_empty(), s.db().len())
    });
    println!(
        "\nfinal state: {}",
        if consistent && len == 2 {
            "CONVERGED (one mapping per LWG)"
        } else {
            "NOT CONVERGED"
        }
    );
    // Every member agrees on a single 4-member view per group.
    for lwg in [LWG_A, LWG_B] {
        let v0 = w.inspect(apps[0], |a: &LwgNode| a.current_view(lwg).cloned());
        for &m in &apps {
            let v = w.inspect(m, |a: &LwgNode| a.current_view(lwg).cloned());
            assert_eq!(v, v0, "all members agree on {lwg}");
        }
        assert_eq!(v0.expect("view").len(), 4, "{lwg} spans all members");
    }
    assert!(consistent && len == 2);
}
