//! CI gate over the checked-in zero-copy refactor baselines
//! (`results/throughput_guard_{before,after}.json`).
//!
//! The two files were recorded with the same harness on the same machine,
//! immediately before and after the `Frame` refactor. The gate enforces
//! the dimensions of the comparison that are machine-independent:
//!
//! * **determinism** — `delivered` and `hwg_data_multicasts` must be
//!   identical per cell (the refactor must not change protocol behavior);
//! * **allocator traffic** — `allocs_per_delivered` after must be within
//!   +5% of before in every cell (in fact it dropped in all of them);
//!
//! and *reports* the wall-clock deltas the files record. Wall-clock is
//! not re-gated across machines — CI runners differ — but the recorded
//! deltas are printed so a regression in the checked-in baselines is
//! visible in the job log. Exits non-zero when a gate fails.

use std::process::ExitCode;

/// The gated slice of one sweep row.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cell {
    payload_bytes: u64,
    groups: u64,
    delivered: u64,
    hwg_data_multicasts: u64,
    wall_ms: f64,
    allocs_per_delivered: f64,
}

/// Pulls `"key": <number>` out of one JSON row line. The guard files are
/// written by this repo's own benches (one row object per line), so a
/// full JSON parser is not needed — and the workspace takes no deps.
fn field(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &row[row.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse(path: &str) -> Result<Vec<Cell>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut cells = Vec::new();
    for line in text.lines().filter(|l| l.contains("\"payload_bytes\"")) {
        let get = |key: &str| {
            field(line, key).ok_or_else(|| format!("{path}: row missing \"{key}\": {line}"))
        };
        cells.push(Cell {
            payload_bytes: get("payload_bytes")? as u64,
            groups: get("groups")? as u64,
            delivered: get("delivered")? as u64,
            hwg_data_multicasts: get("hwg_data_multicasts")? as u64,
            wall_ms: get("wall_ms")?,
            allocs_per_delivered: get("allocs_per_delivered")?,
        });
    }
    if cells.is_empty() {
        return Err(format!("{path}: no rows found"));
    }
    Ok(cells)
}

fn run() -> Result<(), String> {
    let before = parse("results/throughput_guard_before.json")?;
    let after = parse("results/throughput_guard_after.json")?;
    if before.len() != after.len() {
        return Err(format!(
            "row count mismatch: {} before vs {} after",
            before.len(),
            after.len()
        ));
    }

    let mut failures = Vec::new();
    println!(
        "{:>8} {:>6} | {:>9} {:>10} | {:>8} {:>8} {:>7} | {:>7} {:>7}",
        "payload",
        "groups",
        "delivered",
        "multicasts",
        "wall(b)",
        "wall(a)",
        "delta",
        "a/d(b)",
        "a/d(a)"
    );
    for (b, a) in before.iter().zip(&after) {
        if (b.payload_bytes, b.groups) != (a.payload_bytes, a.groups) {
            return Err(format!(
                "cell order mismatch: before {}B/G{} vs after {}B/G{}",
                b.payload_bytes, b.groups, a.payload_bytes, a.groups
            ));
        }
        let cell = format!("{}B/G{}", b.payload_bytes, b.groups);
        if b.delivered != a.delivered || b.hwg_data_multicasts != a.hwg_data_multicasts {
            failures.push(format!(
                "{cell}: deterministic counters changed (delivered {} -> {}, multicasts {} -> {})",
                b.delivered, a.delivered, b.hwg_data_multicasts, a.hwg_data_multicasts
            ));
        }
        // The ±5% gate on the machine-independent metric.
        if a.allocs_per_delivered > b.allocs_per_delivered * 1.05 {
            failures.push(format!(
                "{cell}: allocs/delivered regressed past +5%: {} -> {}",
                b.allocs_per_delivered, a.allocs_per_delivered
            ));
        }
        let delta = (a.wall_ms - b.wall_ms) / b.wall_ms * 100.0;
        println!(
            "{:>8} {:>6} | {:>9} {:>10} | {:>8.1} {:>8.1} {:>+6.0}% | {:>7.1} {:>7.1}",
            format!("{}B", b.payload_bytes),
            b.groups,
            b.delivered,
            b.hwg_data_multicasts,
            b.wall_ms,
            a.wall_ms,
            delta,
            b.allocs_per_delivered,
            a.allocs_per_delivered,
        );
    }

    if failures.is_empty() {
        println!("\nthroughput guard: ok (counters identical, allocs/delivered within gate)");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("throughput guard FAILED:\n{e}");
            ExitCode::FAILURE
        }
    }
}
