//! Macro-benchmark: **wall-clock throughput of the LWG data plane**.
//!
//! Where `pack_sweep` counts protocol messages in virtual time (a
//! determinism guard), this sweep measures what the paper's Swiss-Exchange
//! motivation actually cares about: how many application multicasts per
//! second of *host CPU* the stack pushes end to end, and how much
//! allocator traffic each delivered message costs. Payload sizes bracket
//! the interesting regimes (64 B ticker updates, 1 KB orders, 64 KB
//! snapshots); the group count sweeps the co-mapping fan-in like
//! `pack_sweep` does.
//!
//! Topology: one 8-process group pins the HWG at 8 members; `G` co-mapped
//! groups over the first 4 processes carry the measured traffic (two
//! senders, one message per group every 10 ms for 2 s, pack-2ms+subset —
//! the shipping configuration). Results land in `BENCH_throughput.json`;
//! the before/after wall-clock guard for the zero-copy refactor is
//! checked in under `results/throughput_guard_{before,after}.json`.

use plwg_core::{LwgConfig, LwgId};
use plwg_vsync::VsyncStack;

type LwgNode = plwg_core::LwgNode<VsyncStack>;
use plwg_naming::{NameServer, NamingConfig};
use plwg_sim::{Frame, NodeId, SimDuration, World, WorldConfig};
use plwg_workload::Table;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the sweep can report steady-state
/// allocations per delivered message (the zero-copy refactor's target
/// metric). Single-threaded process; relaxed ordering is exact.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BIG: LwgId = LwgId(100);
const TRAFFIC_SECS: u64 = 2;
const BURSTS: u64 = 200; // one burst every 10 ms for 2 s
const SENDERS: usize = 2;

/// Measured outcome of one (payload size, group count) cell.
struct Row {
    payload_bytes: usize,
    groups: usize,
    delivered: u64,
    hwg_multicasts: u64,
    bytes_multicast: u64,
    wall_ms: f64,
    allocs: u64,
    alloc_bytes: u64,
}

impl Row {
    fn msgs_per_s_core(&self) -> f64 {
        self.delivered as f64 / (self.wall_ms / 1000.0).max(1e-9)
    }
    fn allocs_per_delivered(&self) -> f64 {
        self.allocs as f64 / self.delivered.max(1) as f64
    }
    fn bytes_per_multicast(&self) -> f64 {
        self.bytes_multicast as f64 / self.hwg_multicasts.max(1) as f64
    }
}

fn run(groups: usize, payload_bytes: usize, seed: u64) -> Row {
    let lwg_cfg = LwgConfig {
        pack_max_msgs: 16,
        pack_delay: SimDuration::from_millis(2),
        subset_delivery: true,
        // Keep the co-mapped regime stable for the whole measurement.
        policy_interval: SimDuration::from_secs(600),
        ..LwgConfig::default()
    };
    let mut w = World::new(WorldConfig {
        seed,
        ..WorldConfig::default()
    });
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let servers = vec![s0, s1];
    let apps: Vec<NodeId> = (0..8)
        .map(|i| {
            w.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(lwg_cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    for (i, &n) in apps.iter().enumerate() {
        let t = w.now() + SimDuration::from_millis(300 * i as u64);
        w.invoke_at(t, n, move |a: &mut LwgNode, ctx| a.service().join(ctx, BIG));
    }
    w.run_for(SimDuration::from_secs(10));
    for g in 0..groups {
        let lwg = LwgId(1 + g as u64);
        for (i, &n) in apps[..4].iter().enumerate() {
            let t = w.now() + SimDuration::from_millis(200 * i as u64);
            w.invoke_at(t, n, move |a: &mut LwgNode, ctx| a.service().join(ctx, lwg));
        }
        w.run_for(SimDuration::from_secs(3));
    }
    w.run_for(SimDuration::from_secs(4));
    // Steady state reached: membership traffic is over. Measure the data
    // plane only — counters, wall-clock and allocations.
    w.metrics_mut().reset();

    for &sender in apps.iter().take(SENDERS) {
        for b in 0..BURSTS {
            let t = w.now() + SimDuration::from_millis(b * 10);
            w.invoke_at(t, sender, move |a: &mut LwgNode, ctx| {
                for g in 0..groups {
                    a.service().send(
                        ctx,
                        LwgId(1 + g as u64),
                        Frame::from_vec(vec![0u8; payload_bytes]),
                    );
                }
            });
        }
    }
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    w.run_for(SimDuration::from_secs(TRAFFIC_SECS + 2));
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs0;
    let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;

    let m = w.metrics();
    Row {
        payload_bytes,
        groups,
        delivered: m.counter(plwg_core::keys::DATA_DELIVERED),
        hwg_multicasts: m.counter(plwg_vsync::keys::DATA_SENT),
        bytes_multicast: m.counter(plwg_vsync::keys::BYTES_MULTICAST),
        wall_ms,
        allocs,
        alloc_bytes,
    }
}

fn json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"throughput_sweep\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"payload_bytes\": {}, \"groups\": {}, \"delivered\": {}, \
             \"hwg_data_multicasts\": {}, \"bytes_per_multicast\": {:.0}, \
             \"wall_ms\": {:.1}, \
             \"msgs_per_s_core\": {:.0}, \"allocs\": {}, \
             \"allocs_per_delivered\": {:.1}, \"alloc_mib\": {:.1}}}{}",
            r.payload_bytes,
            r.groups,
            r.delivered,
            r.hwg_multicasts,
            r.bytes_per_multicast(),
            r.wall_ms,
            r.msgs_per_s_core(),
            r.allocs,
            r.allocs_per_delivered(),
            r.alloc_bytes as f64 / (1024.0 * 1024.0),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    println!("Data-plane throughput: G co-mapped 4-member LWGs on an 8-member HWG");
    println!(
        "({SENDERS} senders, 1 msg/group every 10 ms for {TRAFFIC_SECS} s, pack-2ms+subset)\n"
    );
    let mut table = Table::new(&[
        "payload",
        "groups",
        "delivered",
        "B/multicast",
        "wall ms",
        "msg/s/core",
        "allocs/delivered",
        "alloc MiB",
    ]);
    let mut rows = Vec::new();
    for &size in &[64usize, 1024, 65536] {
        for &groups in &[2usize, 4, 8] {
            let r = run(groups, size, 31);
            table.row(&[
                format!("{}B", r.payload_bytes),
                r.groups.to_string(),
                r.delivered.to_string(),
                format!("{:.0}", r.bytes_per_multicast()),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.msgs_per_s_core()),
                format!("{:.1}", r.allocs_per_delivered()),
                format!("{:.1}", r.alloc_bytes as f64 / (1024.0 * 1024.0)),
            ]);
            rows.push(r);
        }
    }
    println!("{}", table.render());
    let path = "BENCH_throughput.json";
    match std::fs::write(path, json(&rows)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
