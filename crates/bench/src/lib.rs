//! # plwg-bench — the experiment harness
//!
//! One binary per table/figure of the paper (plus ablations), each printing
//! the rows/series the paper reports. See `EXPERIMENTS.md` at the
//! repository root for the full index and the recorded outputs.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2_latency` | Figure 2, data-transfer latency vs. #groups |
//! | `fig2_throughput` | Figure 2, throughput vs. #groups |
//! | `fig2_recovery` | Figure 2, crash-recovery time vs. #groups |
//! | `tab3_naming_merge` | Table 3, merged naming database |
//! | `tab4_evolution` | Table 4, naming database through the heal |
//! | `ablation_heal_sweep` | §6.4 single-flush claim + heal-time sweep |
//! | `ablation_interference` | §2/§3.3 interference quantification |
//! | `ablation_policy_params` | §3.2 policy stability vs. `k_m`/`k_c` |
//! | `ablation_ns_callback` | §6.1 callbacks vs. polling load |
//! | `sharing_efficiency` | §1 motivation, overlapping subscriptions |
//! | `pack_sweep` | extension: message packing + subset delivery |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use plwg_sim::SimDuration;
use plwg_workload::{ServiceMode, Traffic, TwoSetsParams};

/// The group counts swept on Figure 2's x-axis.
pub const GROUP_COUNTS: &[usize] = &[1, 2, 4, 8, 16];

/// The three service configurations compared throughout Figure 2.
pub const MODES: &[ServiceMode] = &[
    ServiceMode::NoLwg,
    ServiceMode::StaticLwg,
    ServiceMode::DynamicLwg,
];

/// Baseline parameters shared by the Figure-2 experiments.
pub fn fig2_base(mode: ServiceMode, n: usize, seed: u64) -> TwoSetsParams {
    TwoSetsParams {
        mode,
        groups_per_set: n,
        members_per_group: 4,
        seed,
        proc_time: SimDuration::from_micros(150),
        traffic: Traffic {
            msgs_per_group: 200,
            interval: SimDuration::from_millis(4),
        },
        crash_member: false,
    }
}

use plwg_naming::MappingDb;
use std::fmt::Write as _;

/// Renders a naming database the way the paper's Tables 3–4 do:
/// one line per LWG listing its current view-to-view mappings.
pub fn render_db(db: &MappingDb) -> String {
    let mut out = String::new();
    if db.is_empty() {
        out.push_str("  (empty)\n");
        return out;
    }
    for lwg in db.lwgs() {
        let cells: Vec<String> = db
            .read(lwg)
            .iter()
            .map(|m| format!("{} -> {} (view {})", m.lwg_view, m.hwg, m.hwg_view))
            .collect();
        let _ = writeln!(out, "  {lwg}: {}", cells.join(",  "));
    }
    out
}
