//! Per-HWG pack buffer for the message-packing optimisation.
//!
//! Co-mapped light-weight groups share one HWG; without packing, every
//! `LwgService::send` costs one HWG multicast, and every HWG member pays
//! the fixed per-multicast overhead (sequencing, hold-back, filtering)
//! even for groups it is not in. The service instead appends sends to a
//! [`PackBuffer`] per backing HWG and flushes the buffer into a single
//! [`crate::LwgMsg::Batch`] multicast when
//!
//! * the buffer reaches the configured count budget (`pack_max_msgs`),
//! * the pack-delay timer expires (latency bound), or
//! * a virtual-synchrony barrier is reached (LWG flush start, HWG view
//!   change, leave, switch, merge) — so a batch never straddles a view
//!   cut on either layer.

use crate::keys;
use plwg_hwg::ViewId;
use plwg_naming::LwgId;
use plwg_sim::{CounterKey, Payload};

/// Why a pack buffer was flushed (drives the `lwg.batch.flush_*`
/// metrics; the barrier reason is the one that keeps packing safe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushReason {
    /// The buffer reached `pack_max_msgs`.
    Full,
    /// The pack-delay timer expired.
    Timer,
    /// A virtual-synchrony boundary (flush, view change, leave, switch,
    /// merge) forced the buffer out before the cut.
    Barrier,
}

impl FlushReason {
    /// The metric counter recording this flush cause.
    pub(crate) fn metric(self) -> CounterKey {
        match self {
            FlushReason::Full => keys::BATCH_FLUSH_FULL,
            FlushReason::Timer => keys::BATCH_FLUSH_TIMER,
            FlushReason::Barrier => keys::BATCH_FLUSH_BARRIER,
        }
    }
}

/// Sends buffered towards one backing HWG, waiting to be packed into a
/// single `LwgMsg::Batch` multicast.
#[derive(Debug, Default)]
pub(crate) struct PackBuffer {
    entries: Vec<(LwgId, ViewId, Payload)>,
}

impl PackBuffer {
    /// Appends one send; returns the new occupancy.
    pub(crate) fn push(&mut self, lwg: LwgId, lwg_view: ViewId, data: Payload) -> usize {
        self.entries.push((lwg, lwg_view, data));
        self.entries.len()
    }

    /// Whether nothing is buffered.
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Takes the buffered sends, leaving the buffer empty.
    pub(crate) fn take(&mut self) -> Vec<(LwgId, ViewId, Payload)> {
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plwg_sim::{Frame, NodeId};

    #[test]
    fn push_take_roundtrip_preserves_order() {
        let mut b = PackBuffer::default();
        assert!(b.is_empty());
        let view = ViewId::new(NodeId(1), 1);
        assert_eq!(b.push(LwgId(1), view, Frame::from_u64(10)), 1);
        assert_eq!(b.push(LwgId(2), view, Frame::from_u64(20)), 2);
        let taken = b.take();
        assert!(b.is_empty());
        assert_eq!(
            taken.iter().map(|(l, _, _)| *l).collect::<Vec<_>>(),
            vec![LwgId(1), LwgId(2)]
        );
    }

    #[test]
    fn flush_reason_metrics_are_distinct() {
        let names = [
            FlushReason::Full.metric(),
            FlushReason::Timer.metric(),
            FlushReason::Barrier.metric(),
        ];
        assert_eq!(
            names
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            3
        );
    }
}
