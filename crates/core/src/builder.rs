//! Builder-style construction of [`LwgService`] and [`LwgNode`].
//!
//! The builders are the one place configuration is validated and the
//! substrate is created, and they return `Result` instead of panicking:
//!
//! ```
//! use plwg_core::{LwgConfig, LwgNode, ScriptedHwg};
//! use plwg_sim::NodeId;
//!
//! let node: LwgNode<ScriptedHwg> = LwgNode::builder(NodeId(3))
//!     .servers([NodeId(0)])
//!     .config(LwgConfig::default())
//!     .build()
//!     .expect("valid config");
//! # let _ = node;
//! ```
//!
//! A pre-built substrate endpoint (a pre-programmed
//! [`crate::ScriptedHwg`], a real-socket stack with out-of-band
//! construction) is injected with [`LwgBuilder::substrate`]; otherwise
//! [`HwgSubstrate::build`] creates one from the validated `cfg.hwg`.

use crate::config::LwgConfig;
use crate::error::LwgError;
use crate::events::LwgEvents;
use crate::node::LwgNode;
use crate::service::LwgService;
use plwg_hwg::HwgSubstrate;
use plwg_sim::NodeId;

/// Builds an [`LwgService`] for one node. Created by
/// [`LwgService::builder`]; most applications want the node-level
/// variant, [`LwgNode::builder`].
#[derive(Debug)]
pub struct LwgBuilder<S: HwgSubstrate> {
    me: NodeId,
    servers: Vec<NodeId>,
    cfg: LwgConfig,
    substrate: Option<S>,
}

impl<S: HwgSubstrate> LwgBuilder<S> {
    pub(crate) fn new(me: NodeId) -> Self {
        LwgBuilder {
            me,
            servers: Vec::new(),
            cfg: LwgConfig::default(),
            substrate: None,
        }
    }

    /// Sets the name servers the service registers mappings with. At
    /// least one is required; [`LwgBuilder::build`] rejects an empty list
    /// with [`LwgError::NoServers`].
    pub fn servers(mut self, servers: impl IntoIterator<Item = NodeId>) -> Self {
        self.servers = servers.into_iter().collect();
        self
    }

    /// Sets the service configuration (defaults to
    /// [`LwgConfig::default`]). `cfg.hwg.auto_stop_ok` is forced to
    /// `false` — the service answers `Stop` itself after advertising its
    /// views.
    pub fn config(mut self, cfg: LwgConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Injects an already-built substrate endpoint instead of having the
    /// builder create one from `cfg.hwg`. The endpoint must belong to the
    /// builder's node ([`LwgError::SubstrateNodeMismatch`] otherwise).
    pub fn substrate(mut self, substrate: S) -> Self {
        self.substrate = Some(substrate);
        self
    }

    /// Validates the configuration and assembles the service.
    pub fn build(self) -> Result<LwgService<S>, LwgError> {
        let mut cfg = self.cfg;
        cfg.hwg.auto_stop_ok = false;
        cfg.validate()?;
        if self.servers.is_empty() {
            return Err(LwgError::NoServers);
        }
        let substrate = match self.substrate {
            Some(s) => {
                if s.node() != self.me {
                    return Err(LwgError::SubstrateNodeMismatch {
                        expected: self.me,
                        actual: s.node(),
                    });
                }
                s
            }
            None => S::build(self.me, &cfg.hwg),
        };
        Ok(LwgService::from_parts(substrate, self.servers, cfg))
    }
}

/// Builds an [`LwgNode`] (the ready-made [`plwg_sim::Process`] wrapper).
/// Created by [`LwgNode::builder`]; same setters as [`LwgBuilder`].
#[derive(Debug)]
pub struct LwgNodeBuilder<S: HwgSubstrate> {
    inner: LwgBuilder<S>,
}

impl<S: HwgSubstrate> LwgNodeBuilder<S> {
    pub(crate) fn new(me: NodeId) -> Self {
        LwgNodeBuilder {
            inner: LwgBuilder::new(me),
        }
    }

    /// Sets the name servers (see [`LwgBuilder::servers`]).
    pub fn servers(mut self, servers: impl IntoIterator<Item = NodeId>) -> Self {
        self.inner = self.inner.servers(servers);
        self
    }

    /// Sets the service configuration (see [`LwgBuilder::config`]).
    pub fn config(mut self, cfg: LwgConfig) -> Self {
        self.inner = self.inner.config(cfg);
        self
    }

    /// Injects a pre-built substrate (see [`LwgBuilder::substrate`]).
    pub fn substrate(mut self, substrate: S) -> Self {
        self.inner = self.inner.substrate(substrate);
        self
    }

    /// Validates the configuration and assembles the node.
    pub fn build(self) -> Result<LwgNode<S>, LwgError> {
        Ok(LwgNode::from_service(
            self.inner.build()?,
            LwgEvents::default(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptedHwg;
    use plwg_sim::SimDuration;

    #[test]
    fn builds_with_defaults() {
        let svc: LwgService<ScriptedHwg> = LwgService::builder(NodeId(1))
            .servers([NodeId(0)])
            .build()
            .expect("valid");
        assert_eq!(svc.node(), NodeId(1));
        assert!(
            !svc.config().hwg.auto_stop_ok,
            "service answers Stop itself"
        );
    }

    #[test]
    fn rejects_missing_servers() {
        let err = LwgService::<ScriptedHwg>::builder(NodeId(1))
            .build()
            .expect_err("no servers");
        assert_eq!(err, LwgError::NoServers);
    }

    #[test]
    fn rejects_invalid_config_with_field() {
        let err = LwgNode::<ScriptedHwg>::builder(NodeId(1))
            .servers([NodeId(0)])
            .config(LwgConfig::default().with_packing(0, SimDuration::from_millis(2)))
            .build()
            .expect_err("invalid");
        match err {
            LwgError::Config(e) => assert_eq!(e.field, "pack_max_msgs"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_foreign_substrate() {
        let foreign = ScriptedHwg::new(NodeId(7));
        let err = LwgService::builder(NodeId(1))
            .servers([NodeId(0)])
            .substrate(foreign)
            .build()
            .expect_err("mismatch");
        assert_eq!(
            err,
            LwgError::SubstrateNodeMismatch {
                expected: NodeId(1),
                actual: NodeId(7),
            }
        );
    }

    #[test]
    fn accepts_matching_substrate() {
        let node = LwgNode::builder(NodeId(2))
            .servers([NodeId(0), NodeId(1)])
            .substrate(ScriptedHwg::new(NodeId(2)))
            .build()
            .expect("valid");
        assert_eq!(node.service_ref().node(), NodeId(2));
    }
}
