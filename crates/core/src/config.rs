//! Configuration of the light-weight group service.

use plwg_hwg::HwgConfig;
use plwg_naming::NamingConfig;
use plwg_sim::{ConfigError, SimDuration};

/// Tunables of the LWG service (paper §3.2 parameters plus protocol
/// timeouts).
///
/// Construct with [`Default`] and the `with_*` setters, then hand the
/// config to [`crate::LwgNode::builder`]; the builder runs
/// [`LwgConfig::validate`] (which also validates the nested
/// [`HwgConfig`] and [`NamingConfig`]) and surfaces rejections as
/// [`crate::LwgError::Config`] instead of panicking.
#[derive(Debug, Clone)]
pub struct LwgConfig {
    /// HWG-substrate configuration. `auto_stop_ok` is forced to `false` by
    /// the service — it answers `Stop` itself after piggybacking its view
    /// advertisement.
    pub hwg: HwgConfig,
    /// Naming-service client configuration.
    pub naming: NamingConfig,
    /// Minority threshold `k_m` (paper Fig. 1): `g1` is a minority of `g2`
    /// iff `|g1| <= |g2| / k_m`. The paper's prototype used 4.
    pub k_m: u32,
    /// Closeness threshold `k_c` (paper Fig. 1): `g1 ⊆ g2` are close iff
    /// `|g2| - |g1| <= |g2| / k_c`. The paper's prototype used 4.
    pub k_c: u32,
    /// Period of the mapping heuristics (paper ran them once a minute; the
    /// simulator default is faster so experiments converge quickly).
    pub policy_interval: SimDuration,
    /// Grace before the shrink rule makes a process leave an HWG with no
    /// LWG mapped onto it ("if this situation persists for some time").
    pub shrink_grace: SimDuration,
    /// How long a joiner waits for LWG admission before retrying, and after
    /// the retries, founding its own LWG view.
    pub lwg_join_timeout: SimDuration,
    /// Admission retries before founding a view.
    pub lwg_join_retries: u32,
    /// Watchdog for LWG-level flushes and switches; on expiry the
    /// coordinator restarts and stuck members fall back to re-joining.
    pub lwg_flush_timeout: SimDuration,
    /// How long a view-tagged message for an unknown concurrent view may
    /// sit before it triggers MERGE-VIEWS (local peer discovery fallback).
    pub foreign_data_timeout: SimDuration,
    /// Internal housekeeping tick.
    pub tick_interval: SimDuration,
    /// When set, LWG coordinators periodically poll `ns.read` for their
    /// groups instead of relying on server callbacks — the alternative the
    /// paper rejects in §6.1 ("this could load the servers with
    /// unnecessary requests"); kept for the ablation that quantifies it.
    pub ns_poll_interval: Option<SimDuration>,
    /// Maximum LWG data messages packed into one HWG multicast. `1`
    /// disables packing entirely (every send is its own HWG multicast,
    /// byte-identical to the unpacked protocol). Larger values amortise
    /// the per-multicast cost of co-mapped groups over bursts.
    pub pack_max_msgs: usize,
    /// How long a partially-filled pack buffer may wait for more sends
    /// before it is flushed anyway. Only consulted when `pack_max_msgs`
    /// is greater than 1; bounds the latency packing can add.
    pub pack_delay: SimDuration,
    /// Address co-mapped data only to the members interested in it (the
    /// union of the packed groups' LWG views, plus the HWG coordinator)
    /// instead of the whole HWG view. Non-addressed members receive a
    /// sequence-slot marker, so virtual synchrony is unaffected, but
    /// they no longer pay the interference cost of filtering the payload.
    pub subset_delivery: bool,
    /// When set, the service periodically rebalances LWGs between HWGs:
    /// coordinators of groups on crowded HWGs switch them to the least
    /// loaded admissible HWG (membership load first, the traffic window as
    /// tie-breaker). `None` disables the rebalancer entirely — the default,
    /// so the protocol is byte-identical to the pre-rebalancer service.
    pub rebalance_interval: Option<SimDuration>,
    /// Migrations a single rebalance round may start. Each move is a full
    /// switch protocol run; bounding the batch keeps rounds cheap and lets
    /// load accounts refresh between batches.
    pub rebalance_max_moves: usize,
}

impl Default for LwgConfig {
    fn default() -> Self {
        LwgConfig {
            hwg: HwgConfig::default(),
            naming: NamingConfig::default(),
            k_m: 4,
            k_c: 4,
            policy_interval: SimDuration::from_secs(10),
            shrink_grace: SimDuration::from_secs(15),
            lwg_join_timeout: SimDuration::from_millis(800),
            lwg_join_retries: 2,
            lwg_flush_timeout: SimDuration::from_secs(3),
            foreign_data_timeout: SimDuration::from_secs(2),
            tick_interval: SimDuration::from_millis(200),
            ns_poll_interval: None,
            pack_max_msgs: 1,
            pack_delay: SimDuration::from_millis(2),
            subset_delivery: false,
            rebalance_interval: None,
            rebalance_max_moves: 4,
        }
    }
}

impl LwgConfig {
    /// Sets the HWG-substrate configuration.
    pub fn with_hwg(mut self, hwg: HwgConfig) -> Self {
        self.hwg = hwg;
        self
    }

    /// Sets the naming-service client configuration.
    pub fn with_naming(mut self, naming: NamingConfig) -> Self {
        self.naming = naming;
        self
    }

    /// Sets the mapping-policy thresholds `k_m` (minority) and `k_c`
    /// (closeness) of paper Fig. 1. Both must be at least 1.
    pub fn with_thresholds(mut self, k_m: u32, k_c: u32) -> Self {
        self.k_m = k_m;
        self.k_c = k_c;
        self
    }

    /// Sets the mapping-heuristics period.
    pub fn with_policy_interval(mut self, v: SimDuration) -> Self {
        self.policy_interval = v;
        self
    }

    /// Sets the shrink-rule grace period.
    pub fn with_shrink_grace(mut self, v: SimDuration) -> Self {
        self.shrink_grace = v;
        self
    }

    /// Sets the LWG admission pair: per-attempt timeout and retries before
    /// the joiner founds its own view.
    pub fn with_join(mut self, timeout: SimDuration, retries: u32) -> Self {
        self.lwg_join_timeout = timeout;
        self.lwg_join_retries = retries;
        self
    }

    /// Sets the LWG flush/switch watchdog.
    pub fn with_flush_timeout(mut self, v: SimDuration) -> Self {
        self.lwg_flush_timeout = v;
        self
    }

    /// Sets how long a foreign view-tagged message may sit before it
    /// triggers MERGE-VIEWS.
    pub fn with_foreign_data_timeout(mut self, v: SimDuration) -> Self {
        self.foreign_data_timeout = v;
        self
    }

    /// Sets the internal housekeeping tick.
    pub fn with_tick_interval(mut self, v: SimDuration) -> Self {
        self.tick_interval = v;
        self
    }

    /// Enables the §6.1 polling ablation: coordinators poll `ns.read`
    /// every `interval` instead of relying on server callbacks.
    pub fn with_ns_polling(mut self, interval: SimDuration) -> Self {
        self.ns_poll_interval = Some(interval);
        self
    }

    /// Sets the packing pair: messages per HWG multicast and the flush
    /// delay of a partially-filled buffer. `max_msgs == 1` disables
    /// packing; otherwise `delay` must be positive (checked by
    /// [`LwgConfig::validate`]).
    pub fn with_packing(mut self, max_msgs: usize, delay: SimDuration) -> Self {
        self.pack_max_msgs = max_msgs;
        self.pack_delay = delay;
        self
    }

    /// Sets whether co-mapped data is addressed only to interested members.
    pub fn with_subset_delivery(mut self, v: bool) -> Self {
        self.subset_delivery = v;
        self
    }

    /// Enables the rebalancer: one round every `interval`, at most
    /// `max_moves` migrations per round (`max_moves` must be at least 1;
    /// checked by [`LwgConfig::validate`]).
    pub fn with_rebalancing(mut self, interval: SimDuration, max_moves: usize) -> Self {
        self.rebalance_interval = Some(interval);
        self.rebalance_max_moves = max_moves;
        self
    }

    /// Validates the configuration, including the nested [`HwgConfig`] and
    /// [`NamingConfig`]: thresholds and the pack budget must be at least 1,
    /// every period positive, `pack_delay` positive when packing is
    /// enabled, and the rebalancer knobs coherent when it is enabled.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.hwg.validate()?;
        self.naming.validate()?;
        if self.k_m < 1 || self.k_c < 1 {
            return Err(ConfigError::new("k_m/k_c", "thresholds must be >= 1"));
        }
        for (field, v) in [
            ("policy_interval", self.policy_interval),
            ("tick_interval", self.tick_interval),
            ("lwg_join_timeout", self.lwg_join_timeout),
            ("lwg_flush_timeout", self.lwg_flush_timeout),
            ("foreign_data_timeout", self.foreign_data_timeout),
        ] {
            if v <= SimDuration::ZERO {
                return Err(ConfigError::new(field, "period must be positive"));
            }
        }
        if let Some(poll) = self.ns_poll_interval {
            if poll <= SimDuration::ZERO {
                return Err(ConfigError::new(
                    "ns_poll_interval",
                    "period must be positive when polling is enabled",
                ));
            }
        }
        if self.pack_max_msgs < 1 {
            return Err(ConfigError::new("pack_max_msgs", "must be >= 1"));
        }
        if self.pack_max_msgs > 1 && self.pack_delay <= SimDuration::ZERO {
            return Err(ConfigError::new(
                "pack_delay",
                "must be positive when packing is enabled",
            ));
        }
        if let Some(i) = self.rebalance_interval {
            if i <= SimDuration::ZERO {
                return Err(ConfigError::new(
                    "rebalance_interval",
                    "must be positive when set",
                ));
            }
            if self.rebalance_max_moves < 1 {
                return Err(ConfigError::new(
                    "rebalance_max_moves",
                    "must be >= 1 when the rebalancer is enabled",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_uses_paper_parameters() {
        let cfg = LwgConfig::default();
        cfg.validate().expect("default valid");
        assert_eq!(cfg.k_m, 4);
        assert_eq!(cfg.k_c, 4);
    }

    #[test]
    fn zero_km_rejected() {
        let err = LwgConfig::default()
            .with_thresholds(0, 4)
            .validate()
            .expect_err("must reject");
        assert_eq!(err.field, "k_m/k_c");
    }

    #[test]
    fn packing_is_disabled_by_default() {
        let cfg = LwgConfig::default();
        assert_eq!(cfg.pack_max_msgs, 1);
        assert!(!cfg.subset_delivery);
    }

    #[test]
    fn zero_pack_budget_rejected() {
        let err = LwgConfig::default()
            .with_packing(0, SimDuration::from_millis(2))
            .validate()
            .expect_err("must reject");
        assert_eq!(err.field, "pack_max_msgs");
    }

    #[test]
    fn rebalancer_is_disabled_by_default() {
        let cfg = LwgConfig::default();
        assert!(cfg.rebalance_interval.is_none());
    }

    #[test]
    fn zero_rebalance_interval_rejected() {
        let err = LwgConfig::default()
            .with_rebalancing(SimDuration::ZERO, 4)
            .validate()
            .expect_err("must reject");
        assert_eq!(err.field, "rebalance_interval");
    }

    #[test]
    fn zero_rebalance_moves_rejected_when_enabled() {
        let err = LwgConfig::default()
            .with_rebalancing(SimDuration::from_secs(1), 0)
            .validate()
            .expect_err("must reject");
        assert_eq!(err.field, "rebalance_max_moves");
    }

    #[test]
    fn zero_pack_delay_rejected_when_packing() {
        let err = LwgConfig::default()
            .with_packing(8, SimDuration::ZERO)
            .validate()
            .expect_err("must reject");
        assert_eq!(err.field, "pack_delay");
    }

    #[test]
    fn nested_hwg_error_surfaces_through_lwg_validate() {
        let err = LwgConfig::default()
            .with_hwg(
                plwg_hwg::HwgConfig::default()
                    .with_heartbeat(SimDuration::from_millis(100), SimDuration::from_millis(10)),
            )
            .validate()
            .expect_err("must reject");
        assert_eq!(err.field, "hwg.suspect_timeout");
    }

    #[test]
    fn setters_cover_every_knob() {
        let cfg = LwgConfig::default()
            .with_naming(NamingConfig::default().with_push_callbacks(true))
            .with_thresholds(3, 5)
            .with_policy_interval(SimDuration::from_secs(5))
            .with_shrink_grace(SimDuration::from_secs(20))
            .with_join(SimDuration::from_millis(600), 3)
            .with_flush_timeout(SimDuration::from_secs(2))
            .with_foreign_data_timeout(SimDuration::from_secs(1))
            .with_tick_interval(SimDuration::from_millis(100))
            .with_ns_polling(SimDuration::from_secs(1))
            .with_packing(8, SimDuration::from_millis(2))
            .with_subset_delivery(true)
            .with_rebalancing(SimDuration::from_secs(30), 2);
        cfg.validate().expect("valid");
        assert_eq!(cfg.k_m, 3);
        assert_eq!(cfg.lwg_join_retries, 3);
        assert_eq!(cfg.ns_poll_interval, Some(SimDuration::from_secs(1)));
        assert!(cfg.subset_delivery);
    }
}
