//! Configuration of the light-weight group service.

use plwg_hwg::HwgConfig;
use plwg_naming::NamingConfig;
use plwg_sim::SimDuration;

/// Tunables of the LWG service (paper §3.2 parameters plus protocol
/// timeouts).
#[derive(Debug, Clone)]
pub struct LwgConfig {
    /// HWG-substrate configuration. `auto_stop_ok` is forced to `false` by
    /// the service — it answers `Stop` itself after piggybacking its view
    /// advertisement.
    pub hwg: HwgConfig,
    /// Naming-service client configuration.
    pub naming: NamingConfig,
    /// Minority threshold `k_m` (paper Fig. 1): `g1` is a minority of `g2`
    /// iff `|g1| <= |g2| / k_m`. The paper's prototype used 4.
    pub k_m: u32,
    /// Closeness threshold `k_c` (paper Fig. 1): `g1 ⊆ g2` are close iff
    /// `|g2| - |g1| <= |g2| / k_c`. The paper's prototype used 4.
    pub k_c: u32,
    /// Period of the mapping heuristics (paper ran them once a minute; the
    /// simulator default is faster so experiments converge quickly).
    pub policy_interval: SimDuration,
    /// Grace before the shrink rule makes a process leave an HWG with no
    /// LWG mapped onto it ("if this situation persists for some time").
    pub shrink_grace: SimDuration,
    /// How long a joiner waits for LWG admission before retrying, and after
    /// the retries, founding its own LWG view.
    pub lwg_join_timeout: SimDuration,
    /// Admission retries before founding a view.
    pub lwg_join_retries: u32,
    /// Watchdog for LWG-level flushes and switches; on expiry the
    /// coordinator restarts and stuck members fall back to re-joining.
    pub lwg_flush_timeout: SimDuration,
    /// How long a view-tagged message for an unknown concurrent view may
    /// sit before it triggers MERGE-VIEWS (local peer discovery fallback).
    pub foreign_data_timeout: SimDuration,
    /// Internal housekeeping tick.
    pub tick_interval: SimDuration,
    /// When set, LWG coordinators periodically poll `ns.read` for their
    /// groups instead of relying on server callbacks — the alternative the
    /// paper rejects in §6.1 ("this could load the servers with
    /// unnecessary requests"); kept for the ablation that quantifies it.
    pub ns_poll_interval: Option<SimDuration>,
    /// Maximum LWG data messages packed into one HWG multicast. `1`
    /// disables packing entirely (every send is its own HWG multicast,
    /// byte-identical to the unpacked protocol). Larger values amortise
    /// the per-multicast cost of co-mapped groups over bursts.
    pub pack_max_msgs: usize,
    /// How long a partially-filled pack buffer may wait for more sends
    /// before it is flushed anyway. Only consulted when `pack_max_msgs`
    /// is greater than 1; bounds the latency packing can add.
    pub pack_delay: SimDuration,
    /// Address co-mapped data only to the members interested in it (the
    /// union of the packed groups' LWG views, plus the HWG coordinator)
    /// instead of the whole HWG view. Non-addressed members receive a
    /// sequence-slot marker, so virtual synchrony is unaffected, but
    /// they no longer pay the interference cost of filtering the payload.
    pub subset_delivery: bool,
    /// When set, the service periodically rebalances LWGs between HWGs:
    /// coordinators of groups on crowded HWGs switch them to the least
    /// loaded admissible HWG (membership load first, the traffic window as
    /// tie-breaker). `None` disables the rebalancer entirely — the default,
    /// so the protocol is byte-identical to the pre-rebalancer service.
    pub rebalance_interval: Option<SimDuration>,
    /// Migrations a single rebalance round may start. Each move is a full
    /// switch protocol run; bounding the batch keeps rounds cheap and lets
    /// load accounts refresh between batches.
    pub rebalance_max_moves: usize,
}

impl Default for LwgConfig {
    fn default() -> Self {
        LwgConfig {
            hwg: HwgConfig::default(),
            naming: NamingConfig::default(),
            k_m: 4,
            k_c: 4,
            policy_interval: SimDuration::from_secs(10),
            shrink_grace: SimDuration::from_secs(15),
            lwg_join_timeout: SimDuration::from_millis(800),
            lwg_join_retries: 2,
            lwg_flush_timeout: SimDuration::from_secs(3),
            foreign_data_timeout: SimDuration::from_secs(2),
            tick_interval: SimDuration::from_millis(200),
            ns_poll_interval: None,
            pack_max_msgs: 1,
            pack_delay: SimDuration::from_millis(2),
            subset_delivery: false,
            rebalance_interval: None,
            rebalance_max_moves: 4,
        }
    }
}

impl LwgConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if sub-configurations are invalid, if `k_m`/`k_c` are zero,
    /// or any period is zero.
    pub fn validate(&self) {
        self.hwg.validate();
        self.naming.validate();
        assert!(self.k_m >= 1 && self.k_c >= 1, "k_m and k_c must be >= 1");
        assert!(
            self.policy_interval > SimDuration::ZERO
                && self.tick_interval > SimDuration::ZERO
                && self.lwg_join_timeout > SimDuration::ZERO
                && self.lwg_flush_timeout > SimDuration::ZERO
                && self.foreign_data_timeout > SimDuration::ZERO,
            "LWG periods must be positive"
        );
        assert!(self.pack_max_msgs >= 1, "pack_max_msgs must be >= 1");
        assert!(
            self.pack_max_msgs == 1 || self.pack_delay > SimDuration::ZERO,
            "pack_delay must be positive when packing is enabled"
        );
        assert!(
            self.rebalance_interval
                .is_none_or(|i| i > SimDuration::ZERO),
            "rebalance_interval must be positive when set"
        );
        assert!(
            self.rebalance_interval.is_none() || self.rebalance_max_moves >= 1,
            "rebalance_max_moves must be >= 1 when the rebalancer is enabled"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_uses_paper_parameters() {
        let cfg = LwgConfig::default();
        cfg.validate();
        assert_eq!(cfg.k_m, 4);
        assert_eq!(cfg.k_c, 4);
    }

    #[test]
    #[should_panic(expected = "k_m and k_c")]
    fn zero_km_rejected() {
        LwgConfig {
            k_m: 0,
            ..LwgConfig::default()
        }
        .validate();
    }

    #[test]
    fn packing_is_disabled_by_default() {
        let cfg = LwgConfig::default();
        assert_eq!(cfg.pack_max_msgs, 1);
        assert!(!cfg.subset_delivery);
    }

    #[test]
    #[should_panic(expected = "pack_max_msgs")]
    fn zero_pack_budget_rejected() {
        LwgConfig {
            pack_max_msgs: 0,
            ..LwgConfig::default()
        }
        .validate();
    }

    #[test]
    fn rebalancer_is_disabled_by_default() {
        let cfg = LwgConfig::default();
        assert!(cfg.rebalance_interval.is_none());
    }

    #[test]
    #[should_panic(expected = "rebalance_interval")]
    fn zero_rebalance_interval_rejected() {
        LwgConfig {
            rebalance_interval: Some(SimDuration::ZERO),
            ..LwgConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "rebalance_max_moves")]
    fn zero_rebalance_moves_rejected_when_enabled() {
        LwgConfig {
            rebalance_interval: Some(SimDuration::from_secs(1)),
            rebalance_max_moves: 0,
            ..LwgConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "pack_delay")]
    fn zero_pack_delay_rejected_when_packing() {
        LwgConfig {
            pack_max_msgs: 8,
            pack_delay: SimDuration::ZERO,
            ..LwgConfig::default()
        }
        .validate();
    }
}
