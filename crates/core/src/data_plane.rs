//! The data plane: user sends, message packing, subset delivery, and
//! delivery-side view filtering.
//!
//! Every LWG multicast rides the group's backing HWG as an
//! [`LwgMsg::Data`] (or, when packing is on, an [`LwgMsg::Batch`]) tagged
//! with the **LWG view id** it was sent in. Receivers deliver upward only
//! when the tag matches their installed view — the decoupling that lets
//! concurrent LWG views share one HWG (paper §6.3) and the source of the
//! interference cost the Figure-1 policies minimise.

use crate::batch::FlushReason;
use crate::events::LwgEvent;
use crate::keys;
use crate::msg::LwgMsg;
use crate::service::{LwgService, TOK_PACK};
use crate::state::{ForeignTag, Phase};
use crate::wire;
use plwg_hwg::{HwgId, HwgSubstrate, ViewId};
use plwg_naming::LwgId;
use plwg_sim::{NodeId, Payload, Transport};
use std::collections::BTreeSet;

impl<S: HwgSubstrate> LwgService<S> {
    /// Sends a multicast on `lwg` (buffered until a view is installed and
    /// no flush is in progress).
    pub fn send(&mut self, ctx: &mut dyn Transport, lwg: LwgId, data: Payload) {
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        let blocked = state.phase != Phase::Member
            || state.lflush.is_some()
            || state.follow_switch.is_some()
            || state.switching.is_some()
            || state.awaiting_prune.is_some();
        if blocked {
            state.pending_send.push(data);
            return;
        }
        let (lwg_view, hwg) = match (&state.view, state.hwg) {
            (Some(v), Some(h)) => (v.id, h),
            // `Phase::Member` always carries a view and a mapping; if the
            // invariant ever breaks, buffer like any other blocked send
            // instead of aborting the node.
            _ => {
                state.pending_send.push(data);
                return;
            }
        };
        drop(state);
        ctx.metrics().incr(keys::DATA_SENT);
        if self.cfg.pack_max_msgs > 1 {
            let occupancy = self.packs.entry(hwg).or_default().push(lwg, lwg_view, data);
            if occupancy >= self.cfg.pack_max_msgs {
                self.flush_pack(ctx, hwg, FlushReason::Full);
            } else if !self.pack_timer_armed {
                self.pack_timer_armed = true;
                ctx.set_timer(self.cfg.pack_delay, TOK_PACK);
            }
            return;
        }
        let msg = LwgMsg::Data {
            lwg,
            lwg_view,
            data,
        };
        self.send_data_on(ctx, hwg, &[lwg], msg);
    }

    /// The subset-multicast target set for data of `lwgs` on `hwg`: the
    /// union of the groups' current LWG views plus the HWG coordinator
    /// (whose retransmission store anchors flush pulls). `None` when
    /// subset delivery is disabled, the HWG view is unknown, or the set is
    /// not a *strict* subset of the HWG view — then a plain full multicast
    /// is both cheaper and simpler.
    fn subset_targets<I>(&self, hwg: HwgId, lwgs: I) -> Option<BTreeSet<NodeId>>
    where
        I: IntoIterator<Item = LwgId>,
    {
        if !self.cfg.subset_delivery {
            return None;
        }
        let hview = self.substrate.view_of(hwg)?;
        let mut targets: BTreeSet<NodeId> = BTreeSet::new();
        targets.insert(hview.coordinator());
        for lwg in lwgs {
            let view = self.dir.get(lwg)?.view.as_ref()?;
            targets.extend(view.members.iter().copied());
        }
        if targets.len() < hview.len() && targets.iter().all(|t| hview.contains(*t)) {
            Some(targets)
        } else {
            None
        }
    }

    /// Multicasts a data-plane message for `lwgs` on `hwg`, addressing
    /// only the interested members when the subset path applies.
    fn send_data_on(&mut self, ctx: &mut dyn Transport, hwg: HwgId, lwgs: &[LwgId], msg: LwgMsg) {
        // One data-plane multicast on this HWG: feed its traffic window
        // (the rebalancer's hotness signal). Skipped while the rebalancer
        // is off — the window's first entry per HWG allocates, and the
        // load-blind default must stay allocation-identical on the data
        // path (throughput guard). With the window empty, placement ties
        // break purely by id, exactly the legacy pick.
        if self.cfg.rebalance_interval.is_some() {
            self.dir.note_traffic(hwg);
        }
        // Serialize exactly once per multicast (a whole batch is one
        // encode); the substrate hands out refcount clones per receiver.
        let frame = wire::frame(&msg);
        if let Some(targets) = self.subset_targets(hwg, lwgs.iter().copied()) {
            ctx.metrics().incr(keys::SUBSET_SENDS);
            self.substrate.send_to(ctx, hwg, &targets, frame);
        } else {
            self.substrate.send(ctx, hwg, frame);
        }
    }

    /// Flushes the pack buffer of `hwg` into one [`LwgMsg::Batch`]
    /// multicast. Barrier callers invoke this *before* any flush, view or
    /// merge control message so a batch never crosses a view cut on
    /// either layer.
    pub(crate) fn flush_pack(&mut self, ctx: &mut dyn Transport, hwg: HwgId, reason: FlushReason) {
        let Some(buf) = self.packs.get_mut(&hwg) else {
            return;
        };
        if buf.is_empty() {
            return;
        }
        let entries = buf.take();
        ctx.metrics().incr(keys::BATCH_SENT);
        ctx.metrics().incr(reason.metric());
        ctx.metrics()
            .observe(keys::BATCH_OCCUPANCY, entries.len() as u64);
        let lwgs: Vec<LwgId> = entries.iter().map(|(l, _, _)| *l).collect();
        self.send_data_on(ctx, hwg, &lwgs, LwgMsg::Batch { entries });
    }

    /// Flushes every non-empty pack buffer (pack-delay timer path).
    pub(crate) fn flush_all_packs(&mut self, ctx: &mut dyn Transport, reason: FlushReason) {
        let hwgs: Vec<HwgId> = self
            .packs
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(&h, _)| h)
            .collect();
        for hwg in hwgs {
            self.flush_pack(ctx, hwg, reason);
        }
    }

    /// Delivery side: filter on the LWG view tag and surface
    /// [`LwgEvent::Data`] to the application (or record foreign-view
    /// evidence for the merge protocol).
    pub(crate) fn handle_lwg_data(
        &mut self,
        ctx: &mut dyn Transport,
        hwg: Option<HwgId>,
        lwg: LwgId,
        lwg_view: ViewId,
        src: NodeId,
        data: Payload,
    ) {
        let Some(state) = self.dir.get(lwg) else {
            // Filtering cost of co-mapped groups we are not a member of —
            // this is the "interference" the paper's policies minimise.
            ctx.metrics().incr(keys::FILTERED);
            return;
        };
        match &state.view {
            Some(view) if view.id == lwg_view => {
                ctx.metrics().incr(keys::DATA_DELIVERED);
                self.events.push(LwgEvent::Data { lwg, src, data });
            }
            Some(_) if state.history.contains(&lwg_view) => {
                // From a predecessor of our current view; superseded.
                ctx.metrics().incr(keys::DATA_STALE);
            }
            Some(_) => {
                // A view we never installed: evidence of a concurrent view
                // sharing our HWG (local peer discovery, paper §6.3 / Fig. 5
                // line 106). Remember it; the tick triggers MERGE-VIEWS if
                // no merge happens first.
                ctx.metrics().incr(keys::DATA_FOREIGN);
                if let Some(hwg) = hwg {
                    self.foreign.push(ForeignTag {
                        seen_at: ctx.now(),
                        hwg,
                        lwg,
                        view_id: lwg_view,
                    });
                }
            }
            None => {
                ctx.metrics().incr(keys::FILTERED);
            }
        }
    }
}
