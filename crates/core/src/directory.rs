//! The sharded group directory: every LWG record this node holds, with
//! maintained secondary indexes instead of table scans.
//!
//! The paper's light-weight-group economy assumes the LWG→HWG mapping
//! state stays cheap as group counts explode (thousands of LWGs over a
//! handful of HWGs). The flat `BTreeMap<LwgId, LwgState>` the service
//! grew up with made every structural question — "is this HWG still in
//! use?", "which joins are due?", "whose views ride this HWG?" — an O(L)
//! pass. The directory replaces those passes with indexes it maintains on
//! every mutation:
//!
//! - **records**, hash-sharded over [`SHARDS`] ordered maps (deterministic
//!   multiplicative hash on the group id — no `HashMap`, per the
//!   determinism rules);
//! - a **reverse index** from HWG id to the LWGs that reference it, split
//!   by *how* they reference it (current mapping, switch target, switch
//!   being followed) — `hwg_in_use` and the view-install scans become
//!   index reads;
//! - **phase and watchdog indexes** (per-phase id sets, busy
//!   flush/switch set, awaiting-prune set) — the housekeeping tick visits
//!   only candidates;
//! - **per-HWG load accounts** (mapped-LWG count plus a data-plane
//!   traffic window) — the substrate the placement policy and the
//!   rebalancer decide on.
//!
//! Mutable access goes through [`RecordMut`], a guard that snapshots the
//! record's indexed facets and re-syncs every index on drop: protocol code
//! mutates `LwgState` fields exactly as before and cannot forget to update
//! an index. All index sets are ordered, so every query yields ids in the
//! ascending order the old full-table scans produced — the refactor is
//! behaviour-preserving down to event and bench byte identity.

use crate::error::LwgError;
use crate::state::{LwgState, Phase};
use plwg_hwg::HwgId;
use plwg_naming::LwgId;
use plwg_sim::NodeId;
use std::cell::Cell;
use std::collections::{btree_map, BTreeMap, BTreeSet};
use std::ops::{Deref, DerefMut};

/// Record shard count (power of two; shard key = top Fibonacci-hash bits).
const SHARDS: usize = 16;

/// High bit marking HWG ids minted by [`GroupDirectory::alloc_hwg_id`]
/// (`0x8000…| node << 32 | counter`).
const ALLOC_BIT: u64 = 0x8000_0000_0000_0000;

fn shard_of(lwg: LwgId) -> usize {
    // Fibonacci hashing: deterministic, well-mixed even for dense small ids.
    (lwg.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (SHARDS - 1)
}

fn phase_slot(phase: Phase) -> usize {
    match phase {
        Phase::ReadingNs => 0,
        Phase::JoiningHwg => 1,
        Phase::AwaitingAdmission => 2,
        Phase::Member => 3,
        Phase::Leaving => 4,
    }
}

/// The indexed facets of one record — exactly the fields the secondary
/// indexes key on; [`RecordMut`] diffs a before/after pair to re-sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Facets {
    phase: Phase,
    hwg: Option<HwgId>,
    follow_to: Option<HwgId>,
    switch_to: Option<HwgId>,
    busy: bool,
    pruning: bool,
}

impl Facets {
    fn of(state: &LwgState) -> Facets {
        Facets {
            phase: state.phase,
            hwg: state.hwg,
            follow_to: state.follow_switch.as_ref().map(|(_, to)| *to),
            switch_to: state.switching.as_ref().map(|sw| sw.to),
            busy: state.lflush.is_some() || state.switching.is_some(),
            pruning: state.awaiting_prune.is_some(),
        }
    }
}

/// Snapshot of the directory's operation counters (see
/// [`crate::LwgService::directory_counters`]); the `lwg_scale_sweep` bench
/// records these to show lookup cost does not scale with the group count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirCounters {
    /// Record lookups (get / get-mut / insert / remove / contains).
    pub lookups: u64,
    /// Reverse- and phase-index queries answered.
    pub index_queries: u64,
    /// Index entries visited while materialising query results — the work
    /// a full-table scan used to spend O(L) on.
    pub visited: u64,
}

/// One HWG's load account: mapped local LWGs plus the data-plane
/// multicasts it carried in the current traffic window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwgLoad {
    /// The heavy-weight group.
    pub hwg: HwgId,
    /// LWGs currently mapped onto it at this node.
    pub lwgs: usize,
    /// Data-plane multicasts sent on it since the window was last reset.
    pub traffic: u64,
}

/// Secondary indexes plus bookkeeping; disjoint from the record shards so
/// [`RecordMut`] can borrow a record and the indexes simultaneously.
#[derive(Debug)]
struct DirIndex {
    me: NodeId,
    /// hwg → LWGs whose *current mapping* (`state.hwg`) is this HWG.
    by_hwg: BTreeMap<HwgId, BTreeSet<LwgId>>,
    /// hwg → LWGs following a switch to this HWG (member side).
    by_follow: BTreeMap<HwgId, BTreeSet<LwgId>>,
    /// hwg → LWGs switching to this HWG (coordinator side).
    by_switch: BTreeMap<HwgId, BTreeSet<LwgId>>,
    /// Per-phase id sets ([`phase_slot`] order).
    by_phase: [BTreeSet<LwgId>; 5],
    /// Records with an LWG flush or switch in progress (watchdog).
    busy: BTreeSet<LwgId>,
    /// Records awaiting a pruned-view announcement (watchdog).
    pruning: BTreeSet<LwgId>,
    /// Data-plane multicasts per HWG in the current traffic window.
    traffic: BTreeMap<HwgId, u64>,
    /// Highest counter observed in an HWG id carrying this node's
    /// allocation prefix — including ids re-learned from naming after a
    /// restart, which is what makes [`GroupDirectory::alloc_hwg_id`]
    /// collision-free.
    hwg_floor: u64,
    len: usize,
    lookups: Cell<u64>,
    index_queries: Cell<u64>,
    visited: Cell<u64>,
}

impl DirIndex {
    /// Records that an HWG id exists: ids carrying our allocation prefix
    /// raise the floor future [`GroupDirectory::alloc_hwg_id`] calls
    /// allocate above.
    fn note_hwg(&mut self, hwg: HwgId) {
        if hwg.0 & ALLOC_BIT != 0 && (hwg.0 >> 32) & 0x7FFF_FFFF == u64::from(self.me.0) {
            self.hwg_floor = self.hwg_floor.max(hwg.0 & 0xFFFF_FFFF);
        }
    }

    fn link(&mut self, lwg: LwgId, f: &Facets) {
        if let Some(h) = f.hwg {
            self.by_hwg.entry(h).or_default().insert(lwg);
            self.note_hwg(h);
        }
        if let Some(h) = f.follow_to {
            self.by_follow.entry(h).or_default().insert(lwg);
            self.note_hwg(h);
        }
        if let Some(h) = f.switch_to {
            self.by_switch.entry(h).or_default().insert(lwg);
            self.note_hwg(h);
        }
        self.by_phase[phase_slot(f.phase)].insert(lwg);
        if f.busy {
            self.busy.insert(lwg);
        }
        if f.pruning {
            self.pruning.insert(lwg);
        }
    }

    fn unlink(&mut self, lwg: LwgId, f: &Facets) {
        fn detach(map: &mut BTreeMap<HwgId, BTreeSet<LwgId>>, h: HwgId, lwg: LwgId) {
            if let btree_map::Entry::Occupied(mut e) = map.entry(h) {
                e.get_mut().remove(&lwg);
                if e.get().is_empty() {
                    e.remove();
                }
            }
        }
        if let Some(h) = f.hwg {
            detach(&mut self.by_hwg, h, lwg);
            if !self.by_hwg.contains_key(&h) {
                self.traffic.remove(&h);
            }
        }
        if let Some(h) = f.follow_to {
            detach(&mut self.by_follow, h, lwg);
        }
        if let Some(h) = f.switch_to {
            detach(&mut self.by_switch, h, lwg);
        }
        self.by_phase[phase_slot(f.phase)].remove(&lwg);
        self.busy.remove(&lwg);
        self.pruning.remove(&lwg);
    }

    fn resync(&mut self, lwg: LwgId, before: &Facets, after: &Facets) {
        if before != after {
            self.unlink(lwg, before);
            self.link(lwg, after);
        }
    }

    /// Materialises an index set as a sorted id list, counting the visit.
    fn collect(&self, set: Option<&BTreeSet<LwgId>>) -> Vec<LwgId> {
        self.index_queries.set(self.index_queries.get() + 1);
        let Some(set) = set else { return Vec::new() };
        self.visited.set(self.visited.get() + set.len() as u64);
        set.iter().copied().collect()
    }
}

/// The sharded LWG record store of one [`crate::LwgService`] — see the
/// module docs for the index inventory.
#[derive(Debug)]
pub(crate) struct GroupDirectory {
    shards: Vec<BTreeMap<LwgId, LwgState>>,
    index: DirIndex,
}

impl GroupDirectory {
    pub(crate) fn new(me: NodeId) -> Self {
        GroupDirectory {
            shards: (0..SHARDS).map(|_| BTreeMap::new()).collect(),
            index: DirIndex {
                me,
                by_hwg: BTreeMap::new(),
                by_follow: BTreeMap::new(),
                by_switch: BTreeMap::new(),
                by_phase: Default::default(),
                busy: BTreeSet::new(),
                pruning: BTreeSet::new(),
                traffic: BTreeMap::new(),
                hwg_floor: 0,
                len: 0,
                lookups: Cell::new(0),
                index_queries: Cell::new(0),
                visited: Cell::new(0),
            },
        }
    }

    // ------------------------------------------------------------------
    // Record access
    // ------------------------------------------------------------------

    pub(crate) fn len(&self) -> usize {
        self.index.len
    }

    pub(crate) fn contains(&self, lwg: LwgId) -> bool {
        self.get(lwg).is_some()
    }

    pub(crate) fn get(&self, lwg: LwgId) -> Option<&LwgState> {
        self.index.lookups.set(self.index.lookups.get() + 1);
        self.shards.get(shard_of(lwg))?.get(&lwg)
    }

    /// Mutable access through the index-maintaining guard.
    pub(crate) fn get_mut(&mut self, lwg: LwgId) -> Option<RecordMut<'_>> {
        self.index.lookups.set(self.index.lookups.get() + 1);
        let state = self.shards.get_mut(shard_of(lwg))?.get_mut(&lwg)?;
        let before = Facets::of(state);
        Some(RecordMut {
            lwg,
            before,
            state,
            index: &mut self.index,
        })
    }

    /// Like [`GroupDirectory::get_mut`] with a typed error — the protocol
    /// modules' re-borrow idiom (see [`crate::LwgError`]).
    pub(crate) fn record(&mut self, lwg: LwgId) -> Result<RecordMut<'_>, LwgError> {
        self.get_mut(lwg).ok_or(LwgError::UnknownGroup(lwg))
    }

    pub(crate) fn insert(&mut self, lwg: LwgId, state: LwgState) {
        self.index.lookups.set(self.index.lookups.get() + 1);
        let facets = Facets::of(&state);
        let Some(shard) = self.shards.get_mut(shard_of(lwg)) else {
            return;
        };
        if let Some(old) = shard.insert(lwg, state) {
            self.index.unlink(lwg, &Facets::of(&old));
        } else {
            self.index.len += 1;
        }
        self.index.link(lwg, &facets);
    }

    pub(crate) fn remove(&mut self, lwg: LwgId) -> Option<LwgState> {
        self.index.lookups.set(self.index.lookups.get() + 1);
        let state = self.shards.get_mut(shard_of(lwg))?.remove(&lwg)?;
        self.index.unlink(lwg, &Facets::of(&state));
        self.index.len -= 1;
        Some(state)
    }

    // ------------------------------------------------------------------
    // Index queries (each replaces a former O(L) scan)
    // ------------------------------------------------------------------

    /// LWGs whose current mapping is `hwg`, ascending.
    pub(crate) fn mapped_on(&self, hwg: HwgId) -> Vec<LwgId> {
        self.index.collect(self.index.by_hwg.get(&hwg))
    }

    /// LWGs following a switch onto `hwg` (member side), ascending.
    pub(crate) fn following_to(&self, hwg: HwgId) -> Vec<LwgId> {
        self.index.collect(self.index.by_follow.get(&hwg))
    }

    /// Whether any record references `hwg` — as its mapping, as a switch
    /// target, or as the switch it follows (the shrink rule's liveness
    /// test, formerly a full scan).
    pub(crate) fn hwg_in_use(&self, hwg: HwgId) -> bool {
        self.index
            .index_queries
            .set(self.index.index_queries.get() + 1);
        self.index.by_hwg.contains_key(&hwg)
            || self.index.by_follow.contains_key(&hwg)
            || self.index.by_switch.contains_key(&hwg)
    }

    /// Ids in any of `phases`, ascending (the tick's due-join and leaving
    /// candidate sets).
    pub(crate) fn in_phases(&self, phases: &[Phase]) -> Vec<LwgId> {
        self.index
            .index_queries
            .set(self.index.index_queries.get() + 1);
        let mut out: Vec<LwgId> = Vec::new();
        for &p in phases {
            let set = &self.index.by_phase[phase_slot(p)];
            self.index
                .visited
                .set(self.index.visited.get() + set.len() as u64);
            out.extend(set.iter().copied());
        }
        if phases.len() > 1 {
            out.sort_unstable();
        }
        out
    }

    /// Ids with a flush or switch in progress (watchdog candidates).
    pub(crate) fn busy_ids(&self) -> Vec<LwgId> {
        self.index.collect(Some(&self.index.busy))
    }

    /// Ids awaiting a pruned-view announcement (watchdog candidates).
    pub(crate) fn pruning_ids(&self) -> Vec<LwgId> {
        self.index.collect(Some(&self.index.pruning))
    }

    /// Every record in ascending id order — the one sanctioned full walk,
    /// used only by the operator status iterator (`plwg-tidy`'s
    /// directory-hygiene check bans it elsewhere).
    pub(crate) fn iter_all(&self) -> impl Iterator<Item = (LwgId, &LwgState)> + '_ {
        let mut heads: Vec<btree_map::Iter<'_, LwgId, LwgState>> =
            self.shards.iter().map(|s| s.iter()).collect();
        let mut peeked: Vec<Option<(LwgId, &LwgState)>> = heads
            .iter_mut()
            .map(|it| it.next().map(|(&l, s)| (l, s)))
            .collect();
        std::iter::from_fn(move || {
            let best = peeked
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.map(|(l, _)| (l, i)))
                .min()?
                .1;
            let out = peeked.get_mut(best)?.take();
            if let (Some(it), Some(slot)) = (heads.get_mut(best), peeked.get_mut(best)) {
                *slot = it.next().map(|(&l, s)| (l, s));
            }
            out
        })
    }

    // ------------------------------------------------------------------
    // Load accounts and id allocation
    // ------------------------------------------------------------------

    /// Data-plane multicast sent on `hwg`: feed its traffic window.
    pub(crate) fn note_traffic(&mut self, hwg: HwgId) {
        *self.index.traffic.entry(hwg).or_insert(0) += 1;
    }

    /// Load accounts of every HWG carrying at least one local LWG,
    /// ascending by HWG id.
    pub(crate) fn loads(&self) -> Vec<HwgLoad> {
        self.index
            .index_queries
            .set(self.index.index_queries.get() + 1);
        self.index
            .by_hwg
            .iter()
            .map(|(&hwg, set)| HwgLoad {
                hwg,
                lwgs: set.len(),
                traffic: self.index.traffic.get(&hwg).copied().unwrap_or(0),
            })
            .collect()
    }

    /// Mapped-LWG count of one HWG.
    pub(crate) fn hwg_load(&self, hwg: HwgId) -> usize {
        self.index
            .index_queries
            .set(self.index.index_queries.get() + 1);
        self.index.by_hwg.get(&hwg).map_or(0, BTreeSet::len)
    }

    /// Full load account of one HWG (zero for an HWG carrying nothing).
    pub(crate) fn load_of(&self, hwg: HwgId) -> HwgLoad {
        HwgLoad {
            hwg,
            lwgs: self.hwg_load(hwg),
            traffic: self.index.traffic.get(&hwg).copied().unwrap_or(0),
        }
    }

    /// Resets every traffic window (the rebalancer consumes a window per
    /// round).
    pub(crate) fn reset_traffic(&mut self) {
        for v in self.index.traffic.values_mut() {
            *v = 0;
        }
    }

    /// `(groups, loaded HWGs, most-crowded HWG's LWG count)` — the gauge
    /// summary the service publishes to the metrics registry.
    pub(crate) fn load_summary(&self) -> (usize, usize, usize) {
        let max = self
            .index
            .by_hwg
            .values()
            .map(BTreeSet::len)
            .max()
            .unwrap_or(0);
        (self.index.len, self.index.by_hwg.len(), max)
    }

    /// Allocates a fresh HWG id: node-prefixed, strictly above both every
    /// id this directory allocated before and every prefixed id it has
    /// *observed* (re-learned from naming after a restart) — the bump
    /// counter alone could collide with the latter.
    pub(crate) fn alloc_hwg_id(&mut self) -> HwgId {
        let next = self.index.hwg_floor + 1;
        self.index.hwg_floor = next;
        HwgId(ALLOC_BIT | (u64::from(self.index.me.0) << 32) | next)
    }

    /// Raises the allocation floor from an HWG id observed outside the
    /// record facets (e.g. a view installed for a not-yet-mapped HWG).
    pub(crate) fn observe_hwg(&mut self, hwg: HwgId) {
        self.index.note_hwg(hwg);
    }

    /// Operation counters since construction (monotone).
    pub(crate) fn counters(&self) -> DirCounters {
        DirCounters {
            lookups: self.index.lookups.get(),
            index_queries: self.index.index_queries.get(),
            visited: self.index.visited.get(),
        }
    }
}

/// Mutable borrow of one record that re-syncs the directory indexes on
/// drop. Dereferences to [`LwgState`]; protocol code mutates fields as it
/// always did. Because the guard holds the directory's index borrow,
/// the borrow checker forces it to be dropped before the next directory
/// query — exactly the point where the indexes must be current.
pub(crate) struct RecordMut<'a> {
    lwg: LwgId,
    before: Facets,
    state: &'a mut LwgState,
    index: &'a mut DirIndex,
}

impl Deref for RecordMut<'_> {
    type Target = LwgState;

    fn deref(&self) -> &LwgState {
        self.state
    }
}

impl DerefMut for RecordMut<'_> {
    fn deref_mut(&mut self) -> &mut LwgState {
        self.state
    }
}

impl Drop for RecordMut<'_> {
    fn drop(&mut self) {
        let after = Facets::of(self.state);
        self.index.resync(self.lwg, &self.before, &after);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::LFlushId;
    use crate::state::SwitchState;
    use plwg_sim::SimTime;

    fn dir() -> GroupDirectory {
        GroupDirectory::new(NodeId(3))
    }

    #[test]
    fn insert_indexes_phase_and_len() {
        let mut d = dir();
        d.insert(LwgId(1), LwgState::new());
        d.insert(LwgId(2), LwgState::new());
        assert_eq!(d.len(), 2);
        assert_eq!(
            d.in_phases(&[Phase::ReadingNs]),
            vec![LwgId(1), LwgId(2)],
            "fresh records sit in the reading-ns phase index"
        );
        assert!(d.in_phases(&[Phase::Member]).is_empty());
    }

    #[test]
    fn guard_resyncs_mapping_and_phase_indexes() {
        let mut d = dir();
        d.insert(LwgId(7), LwgState::new());
        {
            let mut r = d.get_mut(LwgId(7)).unwrap();
            r.phase = Phase::JoiningHwg;
            r.hwg = Some(HwgId(40));
        }
        assert_eq!(d.mapped_on(HwgId(40)), vec![LwgId(7)]);
        assert!(d.hwg_in_use(HwgId(40)));
        assert_eq!(d.in_phases(&[Phase::JoiningHwg]), vec![LwgId(7)]);
        {
            let mut r = d.get_mut(LwgId(7)).unwrap();
            r.hwg = Some(HwgId(41));
            r.phase = Phase::Member;
        }
        assert!(d.mapped_on(HwgId(40)).is_empty());
        assert!(!d.hwg_in_use(HwgId(40)));
        assert_eq!(d.mapped_on(HwgId(41)), vec![LwgId(7)]);
    }

    #[test]
    fn switch_and_follow_targets_keep_hwg_in_use() {
        let mut d = dir();
        d.insert(LwgId(1), LwgState::new());
        {
            let mut r = d.get_mut(LwgId(1)).unwrap();
            r.hwg = Some(HwgId(10));
            r.switching = Some(SwitchState {
                flush: LFlushId {
                    initiator: NodeId(3),
                    nonce: 1,
                },
                to: HwgId(99),
                members: vec![NodeId(3)],
                ready: BTreeSet::new(),
                started_at: SimTime::ZERO,
            });
        }
        assert!(d.hwg_in_use(HwgId(99)), "switch target counts as in use");
        assert_eq!(d.busy_ids(), vec![LwgId(1)]);
        {
            let mut r = d.get_mut(LwgId(1)).unwrap();
            r.switching = None;
        }
        assert!(!d.hwg_in_use(HwgId(99)));
        assert!(d.busy_ids().is_empty());
    }

    #[test]
    fn remove_clears_every_index() {
        let mut d = dir();
        d.insert(LwgId(5), LwgState::new());
        {
            let mut r = d.get_mut(LwgId(5)).unwrap();
            r.phase = Phase::Member;
            r.hwg = Some(HwgId(2));
            r.awaiting_prune = Some(SimTime::ZERO);
        }
        assert_eq!(d.pruning_ids(), vec![LwgId(5)]);
        assert!(d.remove(LwgId(5)).is_some());
        assert_eq!(d.len(), 0);
        assert!(d.mapped_on(HwgId(2)).is_empty());
        assert!(d.pruning_ids().is_empty());
        assert!(!d.hwg_in_use(HwgId(2)));
    }

    #[test]
    fn iter_all_is_globally_ordered_across_shards() {
        let mut d = dir();
        // Ids chosen to land in several different shards.
        for i in (0..64).rev() {
            d.insert(LwgId(i), LwgState::new());
        }
        let ids: Vec<u64> = d.iter_all().map(|(l, _)| l.0).collect();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn alloc_hwg_id_matches_legacy_bump_counter() {
        let mut d = dir();
        // Without restart evidence the sequence is the seed's: counter
        // 1, 2, 3 … under the node prefix (bench byte-identity).
        assert_eq!(
            d.alloc_hwg_id(),
            HwgId(0x8000_0000_0000_0000 | (3 << 32) | 1)
        );
        assert_eq!(
            d.alloc_hwg_id(),
            HwgId(0x8000_0000_0000_0000 | (3 << 32) | 2)
        );
    }

    #[test]
    fn alloc_hwg_id_skips_ids_relearned_after_restart() {
        let mut d = dir();
        // A pre-restart allocation of ours (counter 7) comes back from the
        // naming service as a record's mapping target…
        d.insert(LwgId(1), LwgState::new());
        {
            let mut r = d.get_mut(LwgId(1)).unwrap();
            r.hwg = Some(HwgId(0x8000_0000_0000_0000 | (3 << 32) | 7));
        }
        // …so the next allocation lands above it, not at counter 1.
        assert_eq!(
            d.alloc_hwg_id(),
            HwgId(0x8000_0000_0000_0000 | (3 << 32) | 8)
        );
        // Another node's prefixed ids do not move our floor.
        d.observe_hwg(HwgId(0x8000_0000_0000_0000 | (9 << 32) | 100));
        assert_eq!(
            d.alloc_hwg_id(),
            HwgId(0x8000_0000_0000_0000 | (3 << 32) | 9)
        );
    }

    #[test]
    fn load_accounts_track_mappings_and_traffic() {
        let mut d = dir();
        for i in 0..3 {
            d.insert(LwgId(i), LwgState::new());
            let mut r = d.get_mut(LwgId(i)).unwrap();
            r.hwg = Some(HwgId(if i < 2 { 10 } else { 11 }));
        }
        d.note_traffic(HwgId(10));
        d.note_traffic(HwgId(10));
        let loads = d.loads();
        assert_eq!(
            loads,
            vec![
                HwgLoad {
                    hwg: HwgId(10),
                    lwgs: 2,
                    traffic: 2
                },
                HwgLoad {
                    hwg: HwgId(11),
                    lwgs: 1,
                    traffic: 0
                },
            ]
        );
        assert_eq!(d.load_summary(), (3, 2, 2));
        d.reset_traffic();
        assert_eq!(d.loads()[0].traffic, 0);
        assert_eq!(d.hwg_load(HwgId(10)), 2);
    }

    #[test]
    fn counters_count_lookups_not_scans() {
        let mut d = dir();
        for i in 0..100 {
            d.insert(LwgId(i), LwgState::new());
        }
        let before = d.counters();
        let _ = d.get(LwgId(42));
        let _ = d.hwg_in_use(HwgId(1));
        let after = d.counters();
        assert_eq!(after.lookups - before.lookups, 1);
        assert_eq!(after.index_queries - before.index_queries, 1);
        assert_eq!(after.visited, before.visited, "no entries visited");
    }
}
