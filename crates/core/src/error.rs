//! Typed failures of internal protocol steps.
//!
//! The hot-path modules are panic-free (enforced by `plwg-tidy`'s `panic`
//! check): a step that finds its precondition broken — a group the local
//! table no longer knows, a member without an installed view — returns an
//! [`LwgError`] instead of unwrapping. Callers treat these as benign
//! races: membership messages legitimately arrive after a group was
//! dissolved or while a node re-joins, so the protocol's answer is to
//! drop the step, never to abort the node.

use plwg_hwg::HwgId;
use plwg_naming::LwgId;
use std::fmt;

/// Why an internal protocol step could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LwgError {
    /// The group is not (or no longer) in the local table.
    UnknownGroup(LwgId),
    /// The group has no installed view at this node.
    NoView(LwgId),
    /// The group has no LWG→HWG mapping at this node.
    NoMapping(LwgId),
    /// The backing HWG has no installed view at this node.
    NoHwgView(HwgId),
}

impl fmt::Display for LwgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LwgError::UnknownGroup(lwg) => write!(f, "unknown group {lwg:?}"),
            LwgError::NoView(lwg) => write!(f, "no installed view for {lwg:?}"),
            LwgError::NoMapping(lwg) => write!(f, "no HWG mapping for {lwg:?}"),
            LwgError::NoHwgView(hwg) => write!(f, "no installed view for HWG {hwg:?}"),
        }
    }
}

impl std::error::Error for LwgError {}
