//! Typed failures of protocol steps and node construction.
//!
//! The hot-path modules are panic-free (enforced by `plwg-tidy`'s `panic`
//! check): a step that finds its precondition broken — a group the local
//! table no longer knows, a member without an installed view — returns an
//! [`LwgError`] instead of unwrapping. Callers treat these as benign
//! races: membership messages legitimately arrive after a group was
//! dissolved or while a node re-joins, so the protocol's answer is to
//! drop the step, never to abort the node.
//!
//! The same enum carries construction failures surfaced by
//! [`crate::LwgBuilder::build`] (invalid config, empty server list),
//! so the builder API has a single error type.

use plwg_hwg::HwgId;
use plwg_naming::LwgId;
use plwg_sim::{ConfigError, NodeId};
use std::fmt;

/// Why an internal protocol step could not run, or a node could not be
/// built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LwgError {
    /// The group is not (or no longer) in the local table.
    UnknownGroup(LwgId),
    /// The group has no installed view at this node.
    NoView(LwgId),
    /// The group has no LWG→HWG mapping at this node.
    NoMapping(LwgId),
    /// The backing HWG has no installed view at this node.
    NoHwgView(HwgId),
    /// The configuration handed to the builder failed validation.
    Config(ConfigError),
    /// The builder was given no name servers — the service cannot
    /// register or look up a single mapping without one.
    NoServers,
    /// The substrate handed to the builder belongs to a different node
    /// than the one the builder was created for.
    SubstrateNodeMismatch {
        /// The node the builder was created for.
        expected: NodeId,
        /// The node the provided substrate was built for.
        actual: NodeId,
    },
}

impl fmt::Display for LwgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LwgError::UnknownGroup(lwg) => write!(f, "unknown group {lwg:?}"),
            LwgError::NoView(lwg) => write!(f, "no installed view for {lwg:?}"),
            LwgError::NoMapping(lwg) => write!(f, "no HWG mapping for {lwg:?}"),
            LwgError::NoHwgView(hwg) => write!(f, "no installed view for HWG {hwg:?}"),
            LwgError::Config(e) => write!(f, "{e}"),
            LwgError::NoServers => write!(f, "need at least one name server"),
            LwgError::SubstrateNodeMismatch { expected, actual } => write!(
                f,
                "substrate was built for {actual} but the builder is for {expected}"
            ),
        }
    }
}

impl std::error::Error for LwgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LwgError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for LwgError {
    fn from(e: ConfigError) -> Self {
        LwgError::Config(e)
    }
}
