//! Upcalls from the LWG service to the application — the user-facing half
//! of paper Table 1 (`View`, `Data`; `Stop` is hidden by the service, as
//! the paper permits).

use plwg_hwg::View;
use plwg_naming::LwgId;
use plwg_sim::{NodeId, Payload};

/// An event delivered to the application by [`crate::LwgService`].
#[derive(Debug, Clone)]
pub enum LwgEvent {
    /// A new view of `lwg` was installed at this member.
    View {
        /// The light-weight group.
        lwg: LwgId,
        /// The installed view (id, members, predecessors).
        view: View,
    },
    /// A multicast sent on `lwg` was delivered.
    Data {
        /// The light-weight group.
        lwg: LwgId,
        /// The member that sent it.
        src: NodeId,
        /// Opaque application payload.
        data: Payload,
    },
    /// This process is no longer a member of `lwg` (leave completed).
    Left {
        /// The light-weight group.
        lwg: LwgId,
    },
}

/// The recorded upcall stream of an [`crate::LwgNode`]: a full in-order
/// history plus a drain cursor, so applications consume events by
/// subscription (`node.events().drain()`) instead of polling accessors.
///
/// Draining advances the cursor without discarding history —
/// [`LwgEvents::history`] keeps serving assertions over the whole run.
#[derive(Debug, Default)]
pub struct LwgEvents {
    log: Vec<LwgEvent>,
    cursor: usize,
}

impl LwgEvents {
    pub(crate) fn record(&mut self, ev: LwgEvent) {
        self.log.push(ev);
    }

    /// Events recorded since the previous `drain` call, oldest first.
    pub fn drain(&mut self) -> Vec<LwgEvent> {
        let new = self.log[self.cursor..].to_vec();
        self.cursor = self.log.len();
        new
    }

    /// Every event recorded over the node's lifetime, in delivery order
    /// (including already-drained ones).
    pub fn history(&self) -> &[LwgEvent] {
        &self.log
    }

    /// All views installed for `lwg`, in installation order.
    pub fn views_of(&self, lwg: LwgId) -> Vec<&View> {
        self.log
            .iter()
            .filter_map(|ev| match ev {
                LwgEvent::View { lwg: l, view } if *l == lwg => Some(view),
                _ => None,
            })
            .collect()
    }

    /// Groups this node has left, in completion order.
    pub fn lefts(&self) -> Vec<LwgId> {
        self.log
            .iter()
            .filter_map(|ev| match ev {
                LwgEvent::Left { lwg } => Some(*lwg),
                _ => None,
            })
            .collect()
    }

    /// Payloads delivered on `lwg` from `src`, decoded as the 8-byte
    /// little-endian integers the test harnesses send (test convenience;
    /// see [`plwg_sim::Frame::from_u64`]).
    ///
    /// # Panics
    ///
    /// Panics if a matching delivery is not an 8-byte frame.
    pub fn data_from(&self, lwg: LwgId, src: NodeId) -> Vec<u64> {
        self.frames_from(lwg, src)
            .iter()
            .map(|f| f.try_u64().expect("u64 payload"))
            .collect()
    }

    /// The raw payload frames delivered on `lwg` from `src`, in delivery
    /// order.
    pub fn frames_from(&self, lwg: LwgId, src: NodeId) -> Vec<Payload> {
        self.log
            .iter()
            .filter_map(|ev| match ev {
                LwgEvent::Data {
                    lwg: l,
                    src: s,
                    data,
                } if *l == lwg && *s == src => Some(data.clone()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plwg_sim::Frame;

    #[test]
    fn drain_advances_cursor_but_keeps_history() {
        let mut evs = LwgEvents::default();
        evs.record(LwgEvent::Left { lwg: LwgId(1) });
        evs.record(LwgEvent::Data {
            lwg: LwgId(2),
            src: NodeId(3),
            data: Frame::from_u64(7),
        });
        assert_eq!(evs.drain().len(), 2);
        assert!(evs.drain().is_empty());
        evs.record(LwgEvent::Left { lwg: LwgId(2) });
        assert_eq!(evs.drain().len(), 1);
        assert_eq!(evs.history().len(), 3);
        assert_eq!(evs.data_from(LwgId(2), NodeId(3)), vec![7]);
        assert_eq!(evs.frames_from(LwgId(2), NodeId(3)).len(), 1);
    }
}
