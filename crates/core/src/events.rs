//! Upcalls from the LWG service to the application — the user-facing half
//! of paper Table 1 (`View`, `Data`; `Stop` is hidden by the service, as
//! the paper permits).

use plwg_hwg::View;
use plwg_naming::LwgId;
use plwg_sim::{NodeId, Payload};

/// An event delivered to the application by [`crate::LwgService`].
#[derive(Debug)]
pub enum LwgEvent {
    /// A new view of `lwg` was installed at this member.
    View {
        /// The light-weight group.
        lwg: LwgId,
        /// The installed view (id, members, predecessors).
        view: View,
    },
    /// A multicast sent on `lwg` was delivered.
    Data {
        /// The light-weight group.
        lwg: LwgId,
        /// The member that sent it.
        src: NodeId,
        /// Opaque application payload.
        data: Payload,
    },
    /// This process is no longer a member of `lwg` (leave completed).
    Left {
        /// The light-weight group.
        lwg: LwgId,
    },
}
