//! LWG membership changes: the user-facing `join`/`leave` down-calls
//! (paper Table 1) and the LWG-level flush that installs successor views.
//!
//! An LWG flush mirrors the HWG layer's in miniature: the coordinator
//! multicasts `Flush`, members stop sending, flush their pack buffers and
//! answer `FlushOk`; once every reachable member has acknowledged, the
//! coordinator announces the successor view with `NewLwgView`, and each
//! member installs it. Prune views (members that fell out of the backing
//! HWG) skip the LWG flush entirely — the HWG flush that produced the new
//! HWG view already equalised the delivered sets (see
//! `LwgService::handle_hwg_view`).

use crate::batch::FlushReason;
use crate::events::LwgEvent;
use crate::keys;
use crate::msg::{LFlushId, LwgMsg};
use crate::protocol_events::LwgProtocolEvent;
use crate::service::LwgService;
use crate::state::{LwgFlush, LwgState, NsPurpose, Phase};
use crate::wire;
use plwg_hwg::{GroupStatus, HwgId, HwgSubstrate, View, ViewId};
use plwg_naming::{LwgId, Mapping};
use plwg_sim::{NodeId, Transport, TransportExt};
use std::collections::BTreeSet;

impl<S: HwgSubstrate> LwgService<S> {
    // ------------------------------------------------------------------
    // Public API (paper Table 1, user side)
    // ------------------------------------------------------------------

    /// Joins light-weight group `lwg`. The `View` upcall confirms
    /// membership. No-op if already joining or a member.
    pub fn join(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        if self.dir.contains(lwg) {
            return;
        }
        self.dir.insert(lwg, LwgState::new());
        ctx.emit(|| LwgProtocolEvent::JoinStart { lwg });
        let req = self.ns.read(ctx, lwg);
        self.ns_lookups.insert(req, (lwg, NsPurpose::JoinLookup));
    }

    /// Leaves `lwg`; the `Left` upcall confirms.
    pub fn leave(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        let Some(phase) = self.dir.get(lwg).map(|s| s.phase) else {
            return;
        };
        match phase {
            Phase::ReadingNs | Phase::JoiningHwg | Phase::AwaitingAdmission => {
                // Not admitted anywhere yet: just abandon the join.
                self.dir.remove(lwg);
                self.events.push(LwgEvent::Left { lwg });
            }
            Phase::Member => {
                let Some(view) = self.dir.get(lwg).and_then(|s| s.view.clone()) else {
                    // `Phase::Member` always carries a view; tolerate a
                    // broken invariant by ignoring the leave (the next
                    // view install re-runs it) rather than aborting.
                    return;
                };
                if view.len() == 1 {
                    // Sole member: dissolve the group.
                    let hwg = self.dir.get(lwg).and_then(|s| s.hwg);
                    self.dir.remove(lwg);
                    self.ns.unset(ctx, lwg, view.id);
                    self.events.push(LwgEvent::Left { lwg });
                    if let Some(h) = hwg {
                        self.note_idle_if_unused(ctx, h);
                    }
                    return;
                }
                let me = self.me;
                let Some(mut state) = self.dir.get_mut(lwg) else {
                    return;
                };
                state.phase = Phase::Leaving;
                state.pending_leaves.insert(me);
                let hwg = state.hwg;
                drop(state);
                if let Some(hwg) = hwg {
                    // Barrier: our buffered data must precede the leave
                    // request in the per-sender FIFO stream.
                    self.flush_pack(ctx, hwg, FlushReason::Barrier);
                    self.substrate
                        .send(ctx, hwg, wire::frame(&LwgMsg::LeaveReq { lwg }));
                }
                self.maybe_start_lwg_flush(ctx, lwg);
            }
            Phase::Leaving => {}
        }
    }

    // ------------------------------------------------------------------
    // Admission and leave requests (coordinator side)
    // ------------------------------------------------------------------

    pub(crate) fn handle_join_req(
        &mut self,
        ctx: &mut dyn Transport,
        arrived_on: Option<HwgId>,
        lwg: LwgId,
        from: NodeId,
    ) {
        let is_member = self.dir.get(lwg).is_some_and(|s| s.view.is_some());
        if is_member {
            let mapping = self.dir.get(lwg).and_then(|s| s.hwg);
            if let Some(to) = mapping {
                if arrived_on.is_some() && arrived_on != Some(to) {
                    // The joiner used an outdated mapping: the request
                    // reached us on an HWG the group no longer rides. Point
                    // it at the current one (paper §3.1's forward-pointer
                    // behaviour, here served by a member directly).
                    ctx.metrics().incr(keys::REDIRECTS_SENT);
                    ctx.send(from, wire::frame(&LwgMsg::Redirect { lwg, to }));
                    return;
                }
            }
            if self.lwg_coordinator(lwg) == Some(self.me) {
                let Ok(mut state) = self.dir.record(lwg) else {
                    return;
                };
                if !state.view.as_ref().is_some_and(|v| v.contains(from)) {
                    state.pending_joins.insert(from);
                    drop(state);
                    self.maybe_start_lwg_flush(ctx, lwg);
                }
            }
        } else if let Some(&to) = self.forward.get(&lwg) {
            // We are not a member but remember where the group went.
            ctx.metrics().incr(keys::REDIRECTS_SENT);
            ctx.send(from, wire::frame(&LwgMsg::Redirect { lwg, to }));
        }
    }

    pub(crate) fn handle_leave_req(&mut self, ctx: &mut dyn Transport, lwg: LwgId, from: NodeId) {
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        if state.view.as_ref().is_some_and(|v| v.contains(from)) {
            state.pending_leaves.insert(from);
            drop(state);
            self.maybe_start_lwg_flush(ctx, lwg);
        }
    }

    // ------------------------------------------------------------------
    // The LWG flush protocol
    // ------------------------------------------------------------------

    /// Member side of an LWG flush (also the old-HWG half of a switch when
    /// `switch_to` is set): stop sending, acknowledge, and for a switch,
    /// start joining the target HWG.
    pub(crate) fn handle_lwg_flush(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        flush: LFlushId,
        members: Vec<NodeId>,
        switch_to: Option<HwgId>,
    ) {
        let me = self.me;
        let now = ctx.now();
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        let Some(view) = &state.view else { return };
        if !view.contains(me) || !members.contains(&me) {
            return;
        }
        // Supersede rule mirrors the HWG layer: more senior initiator (in
        // LWG view order) or newer nonce from the same initiator wins.
        if let Some(cur) = &state.lflush {
            let rank = |m: NodeId| view.rank(m).unwrap_or(usize::MAX);
            let supersedes = rank(flush.initiator) < rank(cur.flush.initiator)
                || (flush.initiator == cur.flush.initiator && flush.nonce > cur.flush.nonce);
            if !supersedes {
                return;
            }
        }
        let mut oks = BTreeSet::new();
        state.early_oks.retain(|(f, n)| {
            if *f == flush {
                oks.insert(*n);
                false
            } else {
                true
            }
        });
        state.lflush = Some(LwgFlush {
            flush,
            members: members.clone(),
            oks,
            new_view: None,
            started_at: now,
        });
        let hwg = state.hwg;
        if let Some(to) = switch_to {
            state.follow_switch = Some((flush, to));
        }
        drop(state);
        if let Some(hwg) = hwg {
            // Barrier: data we buffered in the closing LWG view must
            // precede our FlushOk in the per-sender FIFO stream, so every
            // member drains it before installing the successor view.
            self.flush_pack(ctx, hwg, FlushReason::Barrier);
            self.substrate
                .send(ctx, hwg, wire::frame(&LwgMsg::FlushOk { lwg, flush }));
        }
        if let Some(to) = switch_to {
            // Join the target HWG (the coordinator pre-created it).
            if self.substrate.status_of(to) == GroupStatus::Left {
                self.substrate.join(ctx, to);
            } else if self
                .substrate
                .view_of(to)
                .is_some_and(|v| v.contains(self.me))
            {
                // Already a member: report ready immediately.
                self.substrate
                    .send(ctx, to, wire::frame(&LwgMsg::SwitchReady { lwg, flush }));
            }
        }
    }

    pub(crate) fn handle_flush_ok(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        flush: LFlushId,
        from: NodeId,
    ) {
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        let matches = state.lflush.as_ref().is_some_and(|lf| lf.flush == flush);
        if !matches {
            state.early_oks.push((flush, from));
            return;
        }
        if let Some(lf) = state.lflush.as_mut() {
            lf.oks.insert(from);
        }
        drop(state);
        self.try_conclude_lwg_flush(ctx, lwg);
    }

    pub(crate) fn handle_new_lwg_view(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        flush: Option<LFlushId>,
        view: View,
        on_hwg: HwgId,
    ) {
        if !view.contains(self.me) {
            // Excludes us: our leave completed (or we were pruned).
            let Some(state) = self.dir.get(lwg) else {
                return;
            };
            let ours = state
                .view
                .as_ref()
                .is_some_and(|v| view.predecessors.contains(&v.id));
            if ours {
                let hwg = state.hwg;
                self.dir.remove(lwg);
                self.events.push(LwgEvent::Left { lwg });
                if let Some(h) = hwg {
                    self.note_idle_if_unused(ctx, h);
                }
            }
            return;
        }
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        match flush {
            Some(f) => {
                // Ordinary join/leave/switch view: wait for the flush to
                // complete (all FlushOks) before installing.
                match state.lflush.as_mut() {
                    None => {
                        // We were admitted as a *joiner*: no old view to drain.
                        let fresh = state.view.is_none();
                        drop(state);
                        if fresh {
                            self.install_lwg_view(ctx, lwg, view, on_hwg);
                        }
                    }
                    Some(lf) if lf.flush == f => {
                        lf.new_view = Some((view, on_hwg));
                        drop(state);
                        self.try_conclude_lwg_flush(ctx, lwg);
                    }
                    Some(_) => {}
                }
            }
            None => {
                // Merge path: the HWG flush already drained the old views.
                let acceptable = match &state.view {
                    Some(cur) => view.predecessors.contains(&cur.id) || view.id == cur.id,
                    None => true,
                };
                let differs = state.view.as_ref().map(|v| v.id) != Some(view.id);
                drop(state);
                if acceptable && differs {
                    self.install_lwg_view(ctx, lwg, view, on_hwg);
                }
            }
        }
    }

    /// Installs `view` if its flush (when any) has fully acknowledged.
    pub(crate) fn try_conclude_lwg_flush(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        let Some(lf) = &state.lflush else { return };
        let all_ok = lf.members.iter().all(|m| lf.oks.contains(m));
        match lf.new_view.clone() {
            None => {
                // Coordinator side: once every member acknowledged, announce
                // the successor view.
                if all_ok && lf.flush.initiator == self.me && state.switching.is_none() {
                    self.announce_successor_view(ctx, lwg);
                }
            }
            Some((view, on_hwg)) => {
                if all_ok {
                    self.install_lwg_view(ctx, lwg, view, on_hwg);
                }
            }
        }
    }

    /// Coordinator: all FlushOks are in — compute and multicast the
    /// successor view (join/leave/prune path).
    fn announce_successor_view(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        let Some(view) = state.view.clone() else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let Some(lf) = &state.lflush else { return };
        let flush = lf.flush;
        let hview_members: Vec<NodeId> = self
            .substrate
            .view_of(hwg)
            .map(|v| v.members.clone())
            .unwrap_or_default();
        let me = self.me;
        let mut members: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|m| hview_members.contains(m) && !state.pending_leaves.contains(m))
            .collect();
        let mut joiners: Vec<NodeId> = state
            .pending_joins
            .iter()
            .copied()
            .filter(|j| hview_members.contains(j) && !view.contains(*j))
            .collect();
        joiners.sort_unstable();
        members.extend(joiners);
        if members.is_empty() {
            // Everybody left: dissolve the group (no successor view).
            ctx.emit(|| LwgProtocolEvent::Dissolve { lwg });
            self.ns.unset(ctx, lwg, view.id);
            self.substrate
                .send(ctx, hwg, wire::frame(&LwgMsg::Dissolved { lwg, flush }));
            return;
        }
        let Some(seq) = self.dir.get_mut(lwg).map(|mut s| s.take_view_seq()) else {
            return;
        };
        let new_view = View::with_predecessors(ViewId::new(me, seq), members, vec![view.id]);
        ctx.emit(|| LwgProtocolEvent::ViewAnnounce {
            lwg,
            view: new_view.clone(),
        });
        self.substrate.send(
            ctx,
            hwg,
            wire::frame(&LwgMsg::NewLwgView {
                lwg,
                flush: Some(flush),
                view: new_view,
                hwg,
            }),
        );
    }

    /// Coordinator: announce the view with the members that fell out of
    /// the HWG removed (no LWG flush needed — see
    /// `LwgService::handle_hwg_view`).
    pub(crate) fn announce_pruned_view(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        hview: &View,
    ) {
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        if state.lflush.is_some() || state.switching.is_some() {
            return; // an explicit flush is already reshaping the view
        }
        let Some(view) = state.view.clone() else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let members: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|m| hview.contains(*m))
            .collect();
        if members.is_empty() {
            return;
        }
        let Some(seq) = self.dir.get_mut(lwg).map(|mut s| s.take_view_seq()) else {
            return;
        };
        let pruned = View::with_predecessors(ViewId::new(self.me, seq), members, vec![view.id]);
        ctx.emit(|| LwgProtocolEvent::Prune {
            lwg,
            view: pruned.clone(),
        });
        ctx.metrics().incr(keys::PRUNES);
        self.substrate.send(
            ctx,
            hwg,
            wire::frame(&LwgMsg::NewLwgView {
                lwg,
                flush: None,
                view: pruned,
                hwg,
            }),
        );
    }

    pub(crate) fn install_lwg_view(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        view: View,
        on_hwg: HwgId,
    ) {
        let me = self.me;
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        let old_hwg = state.hwg;
        if let Some(old) = &state.view {
            let old_id = old.id;
            state.history.insert(old_id);
        }
        for p in &view.predecessors {
            state.history.insert(*p);
        }
        state.bump_view_seq(if view.id.coordinator == me {
            view.id.seq
        } else {
            0
        });
        ctx.emit(|| LwgProtocolEvent::ViewInstall {
            lwg,
            view: view.clone(),
            hwg: on_hwg,
        });
        ctx.metrics().incr(keys::VIEWS_INSTALLED);
        state.view = Some(view.clone());
        state.hwg = Some(on_hwg);
        state.phase = Phase::Member;
        state.join_deadline = None;
        state.join_attempts = 0;
        state.lflush = None;
        state.switching = None;
        state.follow_switch = None;
        state.early_oks.clear();
        state.awaiting_prune = None;
        for m in &view.members {
            state.pending_joins.remove(m);
        }
        state.pending_leaves.retain(|l| view.contains(*l));
        let pending = std::mem::take(&mut state.pending_send);
        drop(state);
        self.idle_hwgs.remove(&on_hwg);
        self.events.push(LwgEvent::View {
            lwg,
            view: view.clone(),
        });
        // If the mapping moved, leave a forward pointer and consider
        // shrinking the old HWG.
        if let Some(old) = old_hwg {
            if old != on_hwg {
                self.forward.insert(lwg, on_hwg);
                self.note_idle_if_unused(ctx, old);
            }
        }
        // Coordinator records the mapping.
        if self.lwg_coordinator(lwg) == Some(self.me) {
            self.refresh_mapping(ctx, lwg);
        }
        // Release buffered sends in the new view.
        for data in pending {
            self.send(ctx, lwg, data);
        }
        // Queued membership changes are handled in a follow-up flush.
        self.maybe_start_lwg_flush(ctx, lwg);
    }

    /// Writes the current view-to-view mapping to the naming service.
    pub(crate) fn refresh_mapping(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        let Some(view) = &state.view else { return };
        let Some(hwg) = state.hwg else { return };
        let Some(hview) = self.substrate.view_of(hwg) else {
            return;
        };
        let mapping = Mapping {
            lwg_view: view.id,
            members: view.members.clone(),
            hwg,
            hwg_view: hview.id,
        };
        let preds = view.predecessors.clone();
        self.ns.set(ctx, lwg, mapping, preds);
    }

    /// Starts an LWG flush if this node coordinates `lwg` and membership
    /// changes are pending (join/leave/members fallen out of the HWG).
    pub(crate) fn maybe_start_lwg_flush(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        if self.lwg_coordinator(lwg) != Some(self.me) {
            return;
        }
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        if state.lflush.is_some() || state.switching.is_some() {
            return;
        }
        let Some(view) = &state.view else { return };
        let Some(hwg) = state.hwg else { return };
        let Some(hview) = self.substrate.view_of(hwg) else {
            return;
        };
        let has_join = state
            .pending_joins
            .iter()
            .any(|j| hview.contains(*j) && !view.contains(*j));
        let has_leave = state.pending_leaves.iter().any(|l| view.contains(*l));
        if !(has_join || has_leave) {
            return;
        }
        // Members still reachable participate in the flush.
        let members: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|m| hview.contains(*m))
            .collect();
        if members.is_empty() {
            return;
        }
        let me = self.me;
        let Some(nonce) = self.dir.get_mut(lwg).map(|mut s| s.take_flush_nonce()) else {
            return;
        };
        let flush = LFlushId {
            initiator: me,
            nonce,
        };
        ctx.emit(|| LwgProtocolEvent::FlushStart {
            lwg,
            flush,
            members: members.clone(),
        });
        ctx.metrics().incr(keys::FLUSHES);
        // Barrier: the flush announcement must not overtake our own
        // buffered data for the closing view.
        self.flush_pack(ctx, hwg, FlushReason::Barrier);
        self.substrate.send(
            ctx,
            hwg,
            wire::frame(&LwgMsg::Flush {
                lwg,
                flush,
                members,
            }),
        );
    }

    pub(crate) fn handle_dissolved(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        flush: LFlushId,
    ) {
        let leaving = self.dir.get(lwg).is_some_and(|s| {
            s.phase == Phase::Leaving || s.lflush.as_ref().is_some_and(|f| f.flush == flush)
        });
        if leaving {
            let hwg = self.dir.get(lwg).and_then(|s| s.hwg);
            self.dir.remove(lwg);
            self.events.push(LwgEvent::Left { lwg });
            if let Some(h) = hwg {
                self.note_idle_if_unused(ctx, h);
            }
        }
    }
}
