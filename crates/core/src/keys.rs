//! Canonical metric keys of the light-weight group service.
//!
//! Every counter and histogram the service records lives here as a typed
//! key, so readers (benches, workloads, tests) reference the same constant
//! the protocol increments instead of re-typing the string name.

use plwg_sim::{CounterKey, GaugeKey, HistogramKey};

// --- membership / view lifecycle -----------------------------------------

/// LWG views installed (join, leave, prune, switch and merge paths).
pub const VIEWS_INSTALLED: CounterKey = CounterKey::new("lwg.views_installed");
/// LWG-level flush rounds started by a coordinator.
pub const FLUSHES: CounterKey = CounterKey::new("lwg.flushes");
/// Pruned views announced (members fell out of the backing HWG).
pub const PRUNES: CounterKey = CounterKey::new("lwg.prunes");
/// Switches started (policy, reconciliation or operator initiated).
pub const SWITCHES: CounterKey = CounterKey::new("lwg.switches");
/// Idle HWGs left under the shrink rule.
pub const SHRINKS: CounterKey = CounterKey::new("lwg.shrinks");

// --- partition healing ----------------------------------------------------

/// MULTIPLE-MAPPINGS notifications processed (paper §6.2 step 2).
pub const RECONCILIATIONS: CounterKey = CounterKey::new("lwg.reconciliations");
/// `MergeViews` requests multicast (paper Fig. 5).
pub const MERGE_VIEWS_SENT: CounterKey = CounterKey::new("lwg.merge_views_sent");
/// Merge rounds observed (first `MergeViews` per round).
pub const MERGE_VIEWS_OBSERVED: CounterKey = CounterKey::new("lwg.merge_views_observed");
/// Merged views computed and announced after a MERGE-VIEWS flush.
pub const VIEWS_MERGED: CounterKey = CounterKey::new("lwg.views_merged");
/// Forward-pointer redirects sent to joiners with outdated mappings.
pub const REDIRECTS_SENT: CounterKey = CounterKey::new("lwg.redirects_sent");
/// Redirects followed (join retargeted).
pub const REDIRECTS_FOLLOWED: CounterKey = CounterKey::new("lwg.redirects_followed");

// --- data plane -----------------------------------------------------------

/// User multicasts submitted via `LwgService::send`.
pub const DATA_SENT: CounterKey = CounterKey::new("lwg.data_sent");
/// Multicasts delivered upward to the application.
pub const DATA_DELIVERED: CounterKey = CounterKey::new("lwg.data_delivered");
/// Multicasts dropped: tagged with a predecessor of the current view.
pub const DATA_STALE: CounterKey = CounterKey::new("lwg.data_stale");
/// Multicasts tagged with a concurrent (never installed) view — the
/// local peer discovery evidence of paper §6.3.
pub const DATA_FOREIGN: CounterKey = CounterKey::new("lwg.data_foreign");
/// Multicasts filtered because this node is not in the group — the
/// interference cost the Figure-1 policies minimise.
pub const FILTERED: CounterKey = CounterKey::new("lwg.filtered");
/// Incoming frames of the LWG wire family that failed to decode (dropped;
/// never panicked on).
pub const DECODE_ERRORS: CounterKey = CounterKey::new("lwg.decode_errors");
/// Data-plane multicasts addressed to a strict subset of the HWG view.
pub const SUBSET_SENDS: CounterKey = CounterKey::new("lwg.subset_sends");

// --- message packing ------------------------------------------------------

/// `Batch` multicasts sent (each packs ≥1 user sends).
pub const BATCH_SENT: CounterKey = CounterKey::new("lwg.batch.sent");
/// Pack buffers flushed because they reached `pack_max_msgs`.
pub const BATCH_FLUSH_FULL: CounterKey = CounterKey::new("lwg.batch.flush_full");
/// Pack buffers flushed by the pack-delay timer.
pub const BATCH_FLUSH_TIMER: CounterKey = CounterKey::new("lwg.batch.flush_timer");
/// Pack buffers flushed at a virtual-synchrony barrier.
pub const BATCH_FLUSH_BARRIER: CounterKey = CounterKey::new("lwg.batch.flush_barrier");
/// Batch occupancy (sends per batch) distribution.
pub const BATCH_OCCUPANCY: HistogramKey = HistogramKey::new("lwg.batch.occupancy");

// --- group directory / rebalancing ---------------------------------------

/// Light-weight groups currently in the directory (any phase).
pub const DIR_GROUPS: GaugeKey = GaugeKey::new("lwg.dir.groups");
/// HWGs carrying at least one mapped LWG.
pub const DIR_HWGS_LOADED: GaugeKey = GaugeKey::new("lwg.dir.hwgs_loaded");
/// Membership load of the most crowded HWG (LWGs mapped onto it).
pub const DIR_MAX_HWG_LWGS: GaugeKey = GaugeKey::new("lwg.dir.max_hwg_lwgs");
/// LWG migrations started by the rebalancer (each is one switch).
pub const REBALANCE_MOVES: CounterKey = CounterKey::new("lwg.rebalance.moves");
/// Rebalance rounds run (timer fired and the load accounts were scanned).
pub const REBALANCE_ROUNDS: CounterKey = CounterKey::new("lwg.rebalance.rounds");
