//! # plwg-core — the partitionable light-weight group service
//!
//! This crate is the reproduction of the paper's contribution: a
//! *Light-Weight Group Service* that maps many user-level groups (LWGs)
//! onto a small pool of virtually-synchronous heavy-weight groups (HWGs,
//! any [`HwgSubstrate`] — production uses `plwg_vsync::VsyncStack`, tests
//! can use the in-memory [`ScriptedHwg`]), preserving the full interface of
//! paper Table 1 towards the user while sharing failure detection,
//! flushes and transport — and that keeps working across **network
//! partitions**, reconciling the inconsistent mapping decisions concurrent
//! partitions inevitably make (paper §4–§6).
//!
//! ## Architecture
//!
//! ```text
//!   application            LwgEvent::{View,Data,Left}   join/leave/send
//!        ▲                                                   │
//!   ┌────┴───────────────────────────────────────────────────▼────┐
//!   │ LwgService<S>  mapping table · policies (Fig. 1) · healing  │
//!   ├──────────────────────────┬───────────────────────────────────┤
//!   │ S: HwgSubstrate (Table 1)│ NsClient → replicated NameServers  │
//!   │  VsyncStack / ScriptedHwg│                                    │
//!   └──────────────────────────┴───────────────────────────────────┘
//! ```
//!
//! The service multiplexes each LWG's traffic onto its HWG as
//! [`LwgMsg::Data`] messages tagged with the **LWG view id** they were sent
//! in — delivered upward only to members of that view, which is what lets
//! concurrent LWG views coexist on one HWG and be discovered (paper §6.3).
//!
//! ## Partition healing (paper §6)
//!
//! 1. **Global peer discovery** — the naming service detects concurrent
//!    mappings during reconciliation and calls members back with
//!    MULTIPLE-MAPPINGS.
//! 2. **Mapping reconciliation** — the coordinator of each concurrent view
//!    switches its view to the HWG with the *highest group id*.
//! 3. **Local peer discovery** — a view-tagged message (or an HWG merge)
//!    reveals concurrent views sharing one HWG view.
//! 4. **Merge-views** — one forced HWG flush (paper Fig. 5) merges *all*
//!    concurrent views of *all* LWGs on that HWG at once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod builder;
mod config;
mod data_plane;
mod directory;
mod error;
mod events;
mod flush;
pub mod keys;
mod mapping;
mod merge;
mod msg;
mod node;
mod policy;
mod protocol_events;
mod rebalance;
mod scripted;
mod service;
mod state;
mod switch;
mod wire;

pub use builder::{LwgBuilder, LwgNodeBuilder};
pub use config::LwgConfig;
pub use directory::{DirCounters, HwgLoad};
pub use error::LwgError;
pub use events::{LwgEvent, LwgEvents};
pub use msg::{LFlushId, LwgMsg};
pub use node::LwgNode;
pub use policy::{
    closeness, interference_rule, is_minority, placement_rule, rebalance_improves, share_rule,
    share_rule_collapses, PolicyAction,
};
pub use protocol_events::LwgProtocolEvent;
pub use scripted::ScriptedHwg;
pub use service::LwgService;
pub use state::{LwgStatus, ServiceStats};

// Re-export the identifier, view and substrate types user code needs.
pub use plwg_hwg::{GroupStatus, HwgConfig, HwgEvent, HwgId, HwgSubstrate, View, ViewId};
pub use plwg_naming::{LwgId, Mapping};
