//! Naming-service interaction and the LWG→HWG mapping policies: the join
//! flow (paper §3.1 and Table 2), MULTIPLE-MAPPINGS reconciliation (§6.2
//! step 2), the housekeeping tick, the Figure-1 interference/share rules,
//! and the shrink rule that releases idle HWGs.
//!
//! Every question this module used to answer by scanning the whole LWG
//! table ("which joins are due?", "who is leaving?", "is this HWG still
//! in use?") is now an indexed [`crate::directory`] query.

use crate::directory::HwgLoad;
use crate::keys;
use crate::msg::LwgMsg;
use crate::policy::{self, PolicyAction};
use crate::protocol_events::LwgProtocolEvent;
use crate::service::LwgService;
use crate::state::{LwgState, NsPurpose, Phase};
use crate::wire;
use plwg_hwg::{GroupStatus, HwgId, HwgSubstrate, ViewId};
use plwg_naming::{LwgId, Mapping, NsEvent};
use plwg_sim::{NodeId, Transport, TransportExt};
use std::collections::BTreeSet;

impl<S: HwgSubstrate> LwgService<S> {
    // ------------------------------------------------------------------
    // Naming events: join lookups and MULTIPLE-MAPPINGS reconciliation
    // ------------------------------------------------------------------

    pub(crate) fn handle_ns_event(&mut self, ctx: &mut dyn Transport, ev: NsEvent) {
        match ev {
            NsEvent::Reply { req, lwg, mappings } => match self.ns_lookups.remove(&req) {
                Some((_, NsPurpose::JoinLookup)) => self.continue_join(ctx, lwg, &mappings),
                Some((_, NsPurpose::FoundClaim)) => self.resolve_found_claim(ctx, lwg, &mappings),
                Some((_, NsPurpose::Poll)) if mappings.len() > 1 => {
                    self.reconcile(ctx, lwg, &mappings);
                }
                Some((_, NsPurpose::Poll)) | None => {}
            },
            NsEvent::MultipleMappings { lwg, mappings } => {
                self.reconcile(ctx, lwg, &mappings);
            }
        }
    }

    /// Join step 2: the naming lookup answered; pick the target HWG.
    fn continue_join(&mut self, ctx: &mut dyn Transport, lwg: LwgId, mappings: &[Mapping]) {
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        if state.phase != Phase::ReadingNs {
            return;
        }
        if let Some(best) = mappings.iter().max_by_key(|m| m.hwg) {
            // Follow the recorded mapping (reconciliation rule picks the
            // highest HWG id when several exist).
            let hwg = best.hwg;
            self.begin_hwg_join(ctx, lwg, hwg, false);
        } else if let Some(&fwd) = self.forward.get(&lwg) {
            self.begin_hwg_join(ctx, lwg, fwd, false);
        } else {
            // No mapping anywhere: optimistic placement — reuse an HWG we
            // are already in (preferring the least-loaded one that carries
            // our LWGs over idle leftovers; highest id breaks ties, which
            // is the pre-directory behaviour when loads are equal), else
            // allocate a fresh one.
            let member_hwgs = self.hwgs();
            let candidates: Vec<HwgLoad> = member_hwgs
                .iter()
                .copied()
                .filter(|&h| self.hwg_in_use(h))
                .map(|h| self.dir.load_of(h))
                .collect();
            let existing =
                policy::placement_rule(&candidates).or_else(|| member_hwgs.into_iter().max());
            match existing {
                Some(hwg) => self.begin_hwg_join(ctx, lwg, hwg, false),
                None => {
                    let hwg = self.fresh_hwg_id();
                    self.begin_hwg_join(ctx, lwg, hwg, true);
                }
            }
        }
    }

    pub(crate) fn begin_hwg_join(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        hwg: HwgId,
        create: bool,
    ) {
        let deadline = ctx.now() + self.cfg.lwg_join_timeout;
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        state.phase = Phase::JoiningHwg;
        state.hwg = Some(hwg);
        state.create_hwg = create;
        state.join_attempts = 0;
        state.join_deadline = Some(deadline);
        drop(state);
        match self.substrate.status_of(hwg) {
            GroupStatus::Left => {
                if create {
                    self.substrate.create(ctx, hwg);
                } else {
                    self.substrate.join(ctx, hwg);
                }
            }
            GroupStatus::Member => {
                if self
                    .substrate
                    .view_of(hwg)
                    .is_some_and(|v| v.contains(self.me))
                {
                    self.request_admission(ctx, lwg, hwg);
                }
            }
            GroupStatus::Joining | GroupStatus::Leaving => {}
        }
    }

    /// Join step 3: we are an HWG member; ask the LWG coordinator (if any)
    /// to admit us.
    pub(crate) fn request_admission(&mut self, ctx: &mut dyn Transport, lwg: LwgId, hwg: HwgId) {
        let deadline = ctx.now() + self.cfg.lwg_join_timeout;
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        state.phase = Phase::AwaitingAdmission;
        state.join_deadline = Some(deadline);
        drop(state);
        self.substrate
            .send(ctx, hwg, wire::frame(&LwgMsg::JoinReq { lwg }));
    }

    /// Join fallback, part 1: nobody admitted us — claim the mapping with
    /// `ns.testset` (paper Table 2) *before* founding a view. If another
    /// founder won the race we follow its mapping instead of creating a
    /// competing view.
    fn claim_founding(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let planned = ViewId::new(self.me, state.next_view_seq + 1);
        let Some(hview) = self.substrate.view_of(hwg) else {
            return;
        };
        let mapping = Mapping {
            lwg_view: planned,
            members: vec![self.me],
            hwg,
            hwg_view: hview.id,
        };
        ctx.emit(|| LwgProtocolEvent::Claim { lwg, planned, hwg });
        let req = self.ns.testset(ctx, lwg, mapping, vec![]);
        self.ns_lookups.insert(req, (lwg, NsPurpose::FoundClaim));
        // Push the deadline out while the claim is in flight.
        let deadline = ctx.now() + self.cfg.lwg_join_timeout;
        if let Some(mut state) = self.dir.get_mut(lwg) {
            state.join_deadline = Some(deadline);
        }
    }

    /// Join fallback, part 2: the test-and-set answered.
    fn resolve_found_claim(&mut self, ctx: &mut dyn Transport, lwg: LwgId, mappings: &[Mapping]) {
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        if state.phase != Phase::AwaitingAdmission {
            return;
        }
        let won = mappings
            .iter()
            .any(|m| m.lwg_view.coordinator == self.me && state.hwg == Some(m.hwg));
        if won {
            self.found_lwg_view(ctx, lwg);
        } else if let Some(best) = mappings.iter().max_by_key(|m| m.hwg) {
            // Someone else holds the mapping: follow it.
            let hwg = best.hwg;
            let Ok(mut state) = self.dir.record(lwg) else {
                return;
            };
            state.join_attempts = 0;
            drop(state);
            self.begin_hwg_join(ctx, lwg, hwg, false);
        }
    }

    /// Installs the group's founding (singleton) view on the target HWG.
    fn found_lwg_view(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let seq = state.take_view_seq();
        drop(state);
        let view = plwg_hwg::View::initial(ViewId::new(self.me, seq), vec![self.me]);
        ctx.emit(|| LwgProtocolEvent::Found {
            lwg,
            view: view.clone(),
            hwg,
        });
        self.install_lwg_view(ctx, lwg, view, hwg);
        // Concurrent founders on the same HWG merge via Fig. 5.
        self.trigger_merge_views(ctx, hwg);
    }

    /// Step 2 of partition healing (paper §6.2): on MULTIPLE-MAPPINGS, the
    /// coordinator of each concurrent view switches deterministically to
    /// the HWG with the **highest group identifier**.
    fn reconcile(&mut self, ctx: &mut dyn Transport, lwg: LwgId, mappings: &[Mapping]) {
        ctx.metrics().incr(keys::RECONCILIATIONS);
        let Some(target) = mappings.iter().map(|m| m.hwg).max() else {
            return;
        };
        if self.lwg_coordinator(lwg) != Some(self.me) {
            return;
        }
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        let current = state.hwg;
        if current == Some(target) {
            // We are already on the winning HWG. A MERGE-VIEWS barrier only
            // helps once the other views' members actually share our HWG
            // view; before that (the HWG itself is still partitioned or
            // mid-merge) it would just churn flushes.
            let others_present = {
                let hview = self.substrate.view_of(target);
                mappings.iter().all(|m| {
                    m.members
                        .iter()
                        .all(|mm| hview.is_some_and(|v| v.contains(*mm)))
                })
            };
            if others_present {
                self.trigger_merge_views(ctx, target);
            }
        } else {
            ctx.emit(|| LwgProtocolEvent::Reconcile {
                lwg,
                current,
                target,
            });
            self.start_switch(ctx, lwg, target, false);
        }
    }

    /// A `Redirect` forward pointer arrived: our mapping information was
    /// outdated — retarget the join.
    pub(crate) fn handle_redirect(&mut self, ctx: &mut dyn Transport, lwg: LwgId, to: HwgId) {
        let retarget = self.dir.get(lwg).is_some_and(|s| {
            matches!(s.phase, Phase::JoiningHwg | Phase::AwaitingAdmission) && s.hwg != Some(to)
        });
        if retarget {
            ctx.metrics().incr(keys::REDIRECTS_FOLLOWED);
            ctx.emit(|| LwgProtocolEvent::Redirect { lwg, to });
            let old = self.dir.get(lwg).and_then(|s| s.hwg);
            self.begin_hwg_join(ctx, lwg, to, false);
            if let Some(old) = old {
                self.note_idle_if_unused(ctx, old);
            }
        }
    }

    // ------------------------------------------------------------------
    // Housekeeping tick
    // ------------------------------------------------------------------

    pub(crate) fn tick(&mut self, ctx: &mut dyn Transport) {
        let now = ctx.now();

        // Join deadlines: retry admission, then found our own view. The
        // phase index narrows the candidates; the deadline filter runs on
        // the (few) joiners only.
        for lwg in self
            .dir
            .in_phases(&[Phase::JoiningHwg, Phase::AwaitingAdmission])
        {
            let Ok(mut state) = self.dir.record(lwg) else {
                continue;
            };
            if state.join_deadline.is_none_or(|d| now < d) {
                continue;
            }
            state.join_attempts += 1;
            let attempts = state.join_attempts;
            let phase = state.phase;
            let hwg = state.hwg;
            let in_hwg = hwg.filter(|&h| {
                self.substrate
                    .view_of(h)
                    .is_some_and(|v| v.contains(self.me))
            });
            let Some(hwg) = in_hwg else {
                // Still waiting for HWG membership; extend.
                state.join_deadline = Some(now + self.cfg.lwg_join_timeout);
                continue;
            };
            drop(state);
            if phase == Phase::JoiningHwg || attempts <= self.cfg.lwg_join_retries {
                self.request_admission(ctx, lwg, hwg);
            } else {
                self.claim_founding(ctx, lwg);
            }
        }

        // Leaving members keep nudging the coordinator.
        for lwg in self.dir.in_phases(&[Phase::Leaving]) {
            let Some(hwg) = self.dir.get(lwg).and_then(|s| s.hwg) else {
                continue;
            };
            self.substrate
                .send(ctx, hwg, wire::frame(&LwgMsg::LeaveReq { lwg }));
            self.maybe_start_lwg_flush(ctx, lwg);
        }

        // LWG flush / switch watchdogs (busy index = flush or switch in
        // progress).
        for lwg in self.dir.busy_ids() {
            let Ok(mut state) = self.dir.record(lwg) else {
                continue;
            };
            let timed_out =
                state.lflush.as_ref().is_some_and(|f| {
                    now.saturating_since(f.started_at) >= self.cfg.lwg_flush_timeout
                }) || state.switching.as_ref().is_some_and(|sw| {
                    now.saturating_since(sw.started_at) >= self.cfg.lwg_flush_timeout
                });
            if !timed_out {
                continue;
            }
            ctx.emit(|| LwgProtocolEvent::FlushAbandon { lwg });
            state.lflush = None;
            state.switching = None;
            state.follow_switch = None;
            // The abandoned flush froze the data plane; release the sends it
            // buffered back into the still-installed view, or they would stay
            // queued until the next view install (which the vanished
            // initiator may never produce).
            let pending = std::mem::take(&mut state.pending_send);
            drop(state);
            for data in pending {
                self.send(ctx, lwg, data);
            }
            // Re-evaluate: the coordinator will re-flush with the members
            // still reachable.
            self.maybe_start_lwg_flush(ctx, lwg);
        }

        // A pruned-view announcement that never arrived (lost, coordinator
        // died): release the send buffer; the acting-coordinator rule will
        // re-announce on the next HWG view change.
        for lwg in self.dir.pruning_ids() {
            let expired = self.dir.get(lwg).is_some_and(|s| {
                s.awaiting_prune
                    .is_some_and(|t| now.saturating_since(t) >= self.cfg.lwg_flush_timeout)
            });
            if !expired {
                continue;
            }
            let hview = self
                .dir
                .get(lwg)
                .and_then(|s| s.hwg)
                .and_then(|h| self.substrate.view_of(h))
                .cloned();
            if let Some(mut state) = self.dir.get_mut(lwg) {
                state.awaiting_prune = None;
            }
            if let Some(hview) = hview {
                if self.lwg_coordinator(lwg) == Some(self.me) {
                    self.announce_pruned_view(ctx, lwg, &hview);
                }
            }
        }

        // Foreign-tagged data: if still unexplained after the grace period,
        // trigger MERGE-VIEWS on the HWG (Fig. 5 line 106).
        let deadline = self.cfg.foreign_data_timeout;
        let mut trigger: BTreeSet<HwgId> = BTreeSet::new();
        self.foreign.retain(|f| {
            let expired = now.saturating_since(f.seen_at) >= deadline;
            if expired {
                let still_unknown = self.dir.get(f.lwg).is_some_and(|s| {
                    s.view.as_ref().is_some_and(|v| v.id != f.view_id)
                        && !s.history.contains(&f.view_id)
                });
                if still_unknown {
                    trigger.insert(f.hwg);
                }
                false
            } else {
                true
            }
        });
        for hwg in trigger {
            self.trigger_merge_views(ctx, hwg);
        }

        // Callback-vs-polling ablation: coordinators poll the naming
        // service for their groups (instead of being called back).
        if let Some(interval) = self.cfg.ns_poll_interval {
            if now.saturating_since(self.last_ns_poll) >= interval {
                self.last_ns_poll = now;
                for lwg in self.dir.in_phases(&[Phase::Member]) {
                    if self.lwg_coordinator(lwg) == Some(self.me) {
                        let req = self.ns.read(ctx, lwg);
                        self.ns_lookups.insert(req, (lwg, NsPurpose::Poll));
                    }
                }
            }
        }

        // Shrink rule: leave HWGs that have had no local LWG for a while.
        self.refresh_idle_hwgs(ctx);
        let to_leave: Vec<HwgId> = self
            .idle_hwgs
            .iter()
            .filter(|(_, &since)| now.saturating_since(since) >= self.cfg.shrink_grace)
            .map(|(&h, _)| h)
            .collect();
        for hwg in to_leave {
            ctx.emit(|| LwgProtocolEvent::Shrink { hwg });
            ctx.metrics().incr(keys::SHRINKS);
            self.idle_hwgs.remove(&hwg);
            self.substrate.leave(ctx, hwg);
        }

        // Publish the directory's load accounts as gauges (the operator /
        // bench view of the mapping economy). Only while the rebalancer —
        // their consumer — is enabled: the first publication allocates the
        // gauge entries, and the load-blind default configuration must
        // stay allocation-identical on the data path (throughput guard).
        if self.cfg.rebalance_interval.is_some() {
            let (groups, loaded, max_load) = self.dir.load_summary();
            let metrics = ctx.metrics();
            metrics.set_gauge(keys::DIR_GROUPS, groups as i64);
            metrics.set_gauge(keys::DIR_HWGS_LOADED, loaded as i64);
            metrics.set_gauge(keys::DIR_MAX_HWG_LWGS, max_load as i64);
        }

        self.pump(ctx);
    }

    // ------------------------------------------------------------------
    // Policies (paper Fig. 1)
    // ------------------------------------------------------------------

    pub(crate) fn run_policies(&mut self, ctx: &mut dyn Transport) {
        let known: Vec<(HwgId, BTreeSet<NodeId>)> = self
            .hwgs()
            .into_iter()
            .filter_map(|h| {
                self.substrate
                    .view_of(h)
                    .map(|v| (h, v.members.iter().copied().collect()))
            })
            .collect();
        for lwg in self.dir.in_phases(&[Phase::Member]) {
            if self.lwg_coordinator(lwg) != Some(self.me) {
                continue;
            }
            let Some(state) = self.dir.get(lwg) else {
                continue;
            };
            if state.lflush.is_some() || state.switching.is_some() {
                continue;
            }
            let Some(view) = &state.view else { continue };
            let Some(hwg) = state.hwg else { continue };
            let lwg_members: BTreeSet<NodeId> = view.members.iter().copied().collect();
            let Some((_, hwg_members)) = known.iter().find(|(h, _)| *h == hwg) else {
                continue;
            };
            // Interference rule first (it protects small groups), then the
            // share rule (it consolidates similar HWGs).
            let action = match policy::interference_rule(
                &lwg_members,
                (hwg, hwg_members),
                &known,
                self.cfg.k_m,
                self.cfg.k_c,
            ) {
                PolicyAction::Stay => policy::share_rule((hwg, hwg_members), &known, self.cfg.k_m),
                other => other,
            };
            match action {
                PolicyAction::Stay => {}
                PolicyAction::SwitchTo(target) => {
                    ctx.emit(|| LwgProtocolEvent::PolicySwitch { lwg, target });
                    self.start_switch(ctx, lwg, target, false);
                }
                PolicyAction::CreateAndSwitch => {
                    let fresh = self.fresh_hwg_id();
                    ctx.emit(|| LwgProtocolEvent::PolicyCreate { lwg, fresh });
                    self.start_switch(ctx, lwg, fresh, true);
                }
            }
        }
        self.pump(ctx);
    }

    // ------------------------------------------------------------------
    // Shrink-rule bookkeeping
    // ------------------------------------------------------------------

    pub(crate) fn hwg_in_use(&self, hwg: HwgId) -> bool {
        self.dir.hwg_in_use(hwg)
    }

    pub(crate) fn note_idle_if_unused(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        if self.substrate.status_of(hwg) == GroupStatus::Member && !self.hwg_in_use(hwg) {
            self.idle_hwgs.entry(hwg).or_insert(ctx.now());
        }
    }

    fn refresh_idle_hwgs(&mut self, ctx: &mut dyn Transport) {
        let now = ctx.now();
        let member_hwgs: Vec<HwgId> = self.hwgs();
        for hwg in member_hwgs {
            if self.substrate.status_of(hwg) != GroupStatus::Member {
                continue;
            }
            if self.hwg_in_use(hwg) {
                self.idle_hwgs.remove(&hwg);
            } else {
                self.idle_hwgs.entry(hwg).or_insert(now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Misc
    // ------------------------------------------------------------------

    /// A fresh node-prefixed HWG id from the directory's allocation index
    /// — strictly above every prefixed id this node has allocated *or
    /// observed*, so a restarted node never re-allocates an id it will
    /// re-learn from the naming service.
    pub(crate) fn fresh_hwg_id(&mut self) -> HwgId {
        self.dir.alloc_hwg_id()
    }

    /// Restarts the join flow for a group whose transport vanished.
    pub(crate) fn restart_join(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        let had_view = state.view.clone();
        *state = LwgState::new();
        if let Some(v) = had_view {
            state.history.insert(v.id);
            state.bump_view_seq(if v.id.coordinator == self.me {
                v.id.seq
            } else {
                0
            });
        }
        drop(state);
        ctx.emit(|| LwgProtocolEvent::Rejoin { lwg });
        let req = self.ns.read(ctx, lwg);
        self.ns_lookups.insert(req, (lwg, NsPurpose::JoinLookup));
    }
}
