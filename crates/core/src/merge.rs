//! MERGE-VIEWS: healing concurrent LWG views that share one HWG with a
//! **single** HWG flush (paper Fig. 5, step 4 of the §6 procedure).
//!
//! Any member that suspects concurrent views multicasts `MergeViews`; the
//! HWG coordinator turns it into a forced flush. Every member piggybacks
//! its LWG view advertisements (`AllViews`) on the flush, so when the new
//! HWG view is delivered every member holds the same set of advertised
//! views and can deterministically compute the merged views — no extra
//! agreement round.

use crate::batch::FlushReason;
use crate::keys;
use crate::msg::LwgMsg;
use crate::protocol_events::LwgProtocolEvent;
use crate::service::LwgService;
use crate::wire;
use plwg_hwg::{HwgId, HwgSubstrate, View, ViewId};
use plwg_naming::LwgId;
use plwg_sim::{NodeId, Transport, TransportExt};
use std::collections::{BTreeMap, BTreeSet};

impl<S: HwgSubstrate> LwgService<S> {
    /// Requests a merge round on `hwg` (rate-limited): multicast
    /// `MergeViews` so the HWG coordinator forces the Fig. 5 flush barrier.
    pub(crate) fn trigger_merge_views(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        // Cooldown: repeated MERGE-VIEWS within a second only repeat the
        // same barrier flush — and a constant stream of forced flushes
        // starves the HWG layer's own beacon-driven merge (the flush
        // machinery and the merge machinery are mutually exclusive).
        let now = ctx.now();
        if let Some(&last) = self.last_merge_views.get(&hwg) {
            if now.saturating_since(last) < plwg_sim::SimDuration::from_secs(1) {
                return;
            }
        }
        self.last_merge_views.insert(hwg, now);
        ctx.metrics().incr(keys::MERGE_VIEWS_SENT);
        // Barrier: the merge request forces an HWG flush; buffered data
        // belongs to the views being merged and must go out first.
        self.flush_pack(ctx, hwg, FlushReason::Barrier);
        self.substrate
            .send(ctx, hwg, wire::frame(&LwgMsg::MergeViews));
    }

    /// A `MergeViews` request arrived on `hwg`: note the round and, as the
    /// coordinator's deterministic stand-in, force the flush barrier.
    pub(crate) fn handle_merge_views_msg(&mut self, ctx: &mut dyn Transport, hwg: Option<HwgId>) {
        if let Some(hwg) = hwg {
            let round = self.rounds.entry(hwg).or_default();
            if !round.triggered {
                round.triggered = true;
                ctx.metrics().incr(keys::MERGE_VIEWS_OBSERVED);
            }
            // The HWG coordinator turns the request into the flush
            // barrier of Fig. 5.
            self.substrate.force_flush(ctx, hwg);
        }
    }

    /// An `AllViews` advertisement arrived on `hwg`: record the advertised
    /// views for the round that concludes with the next HWG view.
    pub(crate) fn handle_all_views(&mut self, hwg: Option<HwgId>, views: &[(LwgId, View)]) {
        if let Some(hwg) = hwg {
            let round = self.rounds.entry(hwg).or_default();
            for (lwg, view) in views {
                round
                    .collected
                    .entry(*lwg)
                    .or_default()
                    .insert(view.id, view.clone());
            }
        }
    }

    /// After an HWG flush: merge every set of concurrent LWG views the
    /// AllViews exchange revealed.
    pub(crate) fn complete_merge_round(
        &mut self,
        ctx: &mut dyn Transport,
        hwg: HwgId,
        hview: &View,
    ) {
        let Some(round) = self.rounds.remove(&hwg) else {
            return;
        };
        for (lwg, mut views) in round.collected {
            // Add our own current view.
            if let Some(state) = self.dir.get(lwg) {
                if state.hwg == Some(hwg) {
                    if let Some(v) = &state.view {
                        views.insert(v.id, v.clone());
                    }
                }
            }
            // Drop views that are ancestors of other collected views.
            let ids: Vec<ViewId> = views.keys().copied().collect();
            let is_anc = |a: ViewId, b: ViewId, views: &BTreeMap<ViewId, View>| -> bool {
                // Transitive check over the collected predecessor edges.
                let mut stack = vec![b];
                let mut seen = BTreeSet::new();
                while let Some(v) = stack.pop() {
                    if let Some(view) = views.get(&v) {
                        for &p in &view.predecessors {
                            if p == a {
                                return true;
                            }
                            if seen.insert(p) {
                                stack.push(p);
                            }
                        }
                    }
                }
                false
            };
            let concurrent: Vec<ViewId> = ids
                .iter()
                .copied()
                .filter(|&v| !ids.iter().any(|&o| is_anc(v, o, &views)))
                .collect();
            if concurrent.len() < 2 {
                continue;
            }
            // Deterministic merged membership: views in id order, members
            // concatenated, only members present in the current HWG view.
            let mut members: Vec<NodeId> = Vec::new();
            for vid in &concurrent {
                let Some(view) = views.get(vid) else {
                    continue;
                };
                for &m in &view.members {
                    if hview.contains(m) && !members.contains(&m) {
                        members.push(m);
                    }
                }
            }
            // The merged view's coordinator (most senior member) announces
            // it; an empty merged membership has no coordinator.
            if members.first() != Some(&self.me) {
                continue;
            }
            let Some(seq) = self.dir.get_mut(lwg).map(|mut s| s.take_view_seq()) else {
                continue;
            };
            let merged =
                View::with_predecessors(ViewId::new(self.me, seq), members, concurrent.clone());
            ctx.emit(|| LwgProtocolEvent::Merge {
                lwg,
                concurrent: concurrent.clone(),
                merged: merged.clone(),
            });
            ctx.metrics().incr(keys::VIEWS_MERGED);
            self.substrate.send(
                ctx,
                hwg,
                wire::frame(&LwgMsg::NewLwgView {
                    lwg,
                    flush: None,
                    view: merged,
                    hwg,
                }),
            );
        }
    }

    /// The LWG views of groups this node maps onto `hwg` (the AllViews
    /// advertisement piggybacked on every HWG flush) — an indexed query,
    /// in ascending group-id order like the full scan it replaced.
    pub(crate) fn my_views_on(&self, hwg: HwgId) -> Vec<(LwgId, View)> {
        self.dir
            .mapped_on(hwg)
            .into_iter()
            .filter_map(|l| self.dir.get(l).and_then(|s| s.view.clone().map(|v| (l, v))))
            .collect()
    }
}
