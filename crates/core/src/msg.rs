//! LWG-layer protocol messages.
//!
//! Most of these travel *inside* HWG multicasts (the payload of a
//! [`plwg_vsync::VsMsg::Data`]); `Redirect` is the only one sent directly
//! node-to-node (the forward-pointer reply of paper §3.1).

use plwg_hwg::{HwgId, View, ViewId};
use plwg_naming::LwgId;
use plwg_sim::{NodeId, Payload};
use std::fmt;

/// Identifies one LWG-level flush round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LFlushId {
    /// The LWG coordinator driving the flush.
    pub initiator: NodeId,
    /// Initiator-local round counter.
    pub nonce: u64,
}

impl fmt::Display for LFlushId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}~{}", self.initiator, self.nonce)
    }
}

/// The messages of the light-weight group service.
#[derive(Clone)]
pub enum LwgMsg {
    /// A user multicast, encapsulated as `(DATA, lwg_id, data)` (paper
    /// §3.1) and additionally tagged with the LWG **view** it was sent in
    /// (the partitionable extension of §5.1): members of other concurrent
    /// views must not deliver it — receiving one is exactly how concurrent
    /// views discover each other (paper Fig. 5, local peer discovery).
    Data {
        /// The light-weight group.
        lwg: LwgId,
        /// The LWG view the sender was in.
        lwg_view: ViewId,
        /// Application payload.
        data: Payload,
    },
    /// Several user multicasts packed into one HWG multicast (the packing
    /// optimisation): co-mapped groups amortise the per-multicast cost of
    /// the HWG layer over bursts. Each entry is one [`LwgMsg::Data`]
    /// triple; receivers unpack in order, so per-sender FIFO is preserved.
    /// A batch is always sent and delivered entirely within one HWG view
    /// (the service flushes its pack buffers at every flush/view barrier),
    /// so virtual synchrony is unaffected.
    Batch {
        /// The packed `(lwg, lwg_view, data)` triples, in send order.
        entries: Vec<(LwgId, ViewId, Payload)>,
    },
    /// A process (already an HWG member) asks the LWG coordinator for
    /// admission.
    JoinReq {
        /// Group to join.
        lwg: LwgId,
    },
    /// A member asks to be excluded from the next LWG view.
    LeaveReq {
        /// Group to leave.
        lwg: LwgId,
    },
    /// LWG-level flush: members stop sending on `lwg` and answer
    /// [`LwgMsg::FlushOk`]. Because the HWG multicast is FIFO per sender, a
    /// member that has seen every `FlushOk` has also seen every message
    /// sent before them — the flush makes "all in-transit messages
    /// delivered before the new view" (paper §3.1) without touching the
    /// HWG.
    Flush {
        /// The group being flushed.
        lwg: LwgId,
        /// Round identifier.
        flush: LFlushId,
        /// Members of the view being flushed (the set whose `FlushOk`s are
        /// awaited).
        members: Vec<NodeId>,
    },
    /// A member's confirmation that it stopped sending in the old view.
    FlushOk {
        /// The group being flushed.
        lwg: LwgId,
        /// Round identifier.
        flush: LFlushId,
    },
    /// Installs a new LWG view. With `flush: Some(..)` the receiver waits
    /// until the flush's `FlushOk`s are complete (ordinary join/leave/
    /// switch); with `None` it installs immediately (merge path — the HWG
    /// flush already drained the old views).
    NewLwgView {
        /// The group.
        lwg: LwgId,
        /// The flush this view concludes, if any.
        flush: Option<LFlushId>,
        /// The view to install.
        view: View,
        /// The HWG the view is mapped onto.
        hwg: HwgId,
    },
    /// Coordinator tells the members of `lwg` to re-map onto `to`: the
    /// switching protocol (paper §3, §6.2). Doubles as a `Flush` of the
    /// old mapping.
    SwitchTo {
        /// The group being switched.
        lwg: LwgId,
        /// Flush round on the *old* HWG.
        flush: LFlushId,
        /// Target HWG.
        to: HwgId,
        /// Members expected to move.
        members: Vec<NodeId>,
    },
    /// A member reports (on the *target* HWG) that it has joined and is
    /// ready to install the switched view.
    SwitchReady {
        /// The group being switched.
        lwg: LwgId,
        /// The switch's flush round.
        flush: LFlushId,
    },
    /// MERGE-VIEWS (paper Fig. 5): asks the HWG coordinator to force a
    /// flush so all concurrent LWG views on this HWG merge at once.
    MergeViews,
    /// ALL-VIEWS (paper Fig. 5): the sender's current LWG views mapped on
    /// this HWG, exchanged during the flush so every member can merge
    /// deterministically.
    AllViews {
        /// `(lwg, current view)` pairs of the sender.
        views: Vec<(LwgId, View)>,
    },
    /// The group dissolved: every member of the flushed view asked to
    /// leave, so there is no successor view.
    Dissolved {
        /// The group.
        lwg: LwgId,
        /// The flush this concludes.
        flush: LFlushId,
    },
    /// Forward-pointer reply (paper §3.1): the LWG asked about has been
    /// switched to `to`; sent directly to a joiner that used an outdated
    /// mapping.
    Redirect {
        /// The group asked about.
        lwg: LwgId,
        /// Where it lives now.
        to: HwgId,
    },
}

impl LwgMsg {
    /// Encodes this message as a ready-to-send wire frame (family `LWG`) —
    /// exactly the bytes the service multicasts. Exposed so tests and
    /// scripted substrates can inject protocol traffic.
    pub fn to_frame(&self) -> Payload {
        crate::wire::frame(self)
    }
}

impl fmt::Debug for LwgMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LwgMsg::Data { lwg, lwg_view, .. } => write!(f, "LData({lwg},{lwg_view})"),
            LwgMsg::Batch { entries } => write!(f, "LBatch({} msgs)", entries.len()),
            LwgMsg::JoinReq { lwg } => write!(f, "LJoinReq({lwg})"),
            LwgMsg::LeaveReq { lwg } => write!(f, "LLeaveReq({lwg})"),
            LwgMsg::Flush { lwg, flush, .. } => write!(f, "LFlush({lwg},{flush})"),
            LwgMsg::FlushOk { lwg, flush } => write!(f, "LFlushOk({lwg},{flush})"),
            LwgMsg::NewLwgView { lwg, view, hwg, .. } => {
                write!(f, "LNewView({lwg},{view} on {hwg})")
            }
            LwgMsg::SwitchTo { lwg, to, .. } => write!(f, "LSwitchTo({lwg}->{to})"),
            LwgMsg::SwitchReady { lwg, .. } => write!(f, "LSwitchReady({lwg})"),
            LwgMsg::Dissolved { lwg, .. } => write!(f, "LDissolved({lwg})"),
            LwgMsg::MergeViews => write!(f, "LMergeViews"),
            LwgMsg::AllViews { views } => write!(f, "LAllViews({} views)", views.len()),
            LwgMsg::Redirect { lwg, to } => write!(f, "LRedirect({lwg}->{to})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        let m = LwgMsg::Redirect {
            lwg: LwgId(3),
            to: HwgId(9),
        };
        assert_eq!(format!("{m:?}"), "LRedirect(lwg3->hwg9)");
        let b = LwgMsg::Batch {
            entries: vec![(
                LwgId(1),
                ViewId::new(NodeId(2), 1),
                plwg_sim::Frame::from_u64(0),
            )],
        };
        assert_eq!(format!("{b:?}"), "LBatch(1 msgs)");
        assert_eq!(
            LFlushId {
                initiator: NodeId(1),
                nonce: 2
            }
            .to_string(),
            "n1~2"
        );
    }
}
