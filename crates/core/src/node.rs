//! A ready-made [`plwg_sim::Process`] wrapping an [`LwgService`] — the
//! easiest way to put the light-weight group service on a simulated node.
//!
//! Applications either embed [`LwgService`] in their own process type (for
//! custom reaction logic) or use [`LwgNode`] and subscribe to its upcall
//! stream via [`LwgNode::events`].

use crate::config::LwgConfig;
use crate::events::LwgEvents;
use crate::service::LwgService;
use plwg_hwg::{HwgSubstrate, View};
use plwg_naming::LwgId;
use plwg_sim::{Context, NodeId, Payload, Process, TimerToken};
use std::any::Any;

/// A simulated node running the LWG service over substrate `S`, recording
/// all upcalls into a drainable [`LwgEvents`] stream.
///
/// ```ignore
/// for ev in world.node_as::<LwgNode<VsyncStack>>(n1).events().drain() {
///     match ev {
///         LwgEvent::Data { lwg, src, data } => { /* ... */ }
///         LwgEvent::View { lwg, view } => { /* ... */ }
///         LwgEvent::Left { lwg } => { /* ... */ }
///     }
/// }
/// ```
pub struct LwgNode<S: HwgSubstrate> {
    service: LwgService<S>,
    events: LwgEvents,
}

impl<S: HwgSubstrate> LwgNode<S> {
    /// Creates a node for `me`, using the given name servers.
    pub fn new(me: NodeId, servers: Vec<NodeId>, cfg: LwgConfig) -> Self {
        LwgNode {
            service: LwgService::new(me, servers, cfg),
            events: LwgEvents::default(),
        }
    }

    /// The wrapped service (join/leave/send and introspection).
    pub fn service(&mut self) -> &mut LwgService<S> {
        &mut self.service
    }

    /// Immutable access to the wrapped service.
    pub fn service_ref(&self) -> &LwgService<S> {
        &self.service
    }

    /// The recorded upcall stream: `events().drain()` consumes the events
    /// since the previous drain, `events().history()` keeps the full run.
    pub fn events(&mut self) -> &mut LwgEvents {
        &mut self.events
    }

    /// Read-only view of the upcall stream (no draining).
    pub fn events_ref(&self) -> &LwgEvents {
        &self.events
    }

    /// The group's *live* view at this node (`None` once the node has left
    /// the group). For the historic record use `events_ref().views_of(..)`.
    pub fn current_view(&self, lwg: LwgId) -> Option<&View> {
        self.service.view_of(lwg)
    }

    fn pump_events(&mut self) {
        for ev in self.service.drain_events() {
            self.events.record(ev);
        }
    }
}

impl<S: HwgSubstrate + 'static> Process for LwgNode<S> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.service.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Payload) {
        if self.service.on_message(ctx, from, &msg) {
            self.pump_events();
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        if self.service.on_timer(ctx, token) {
            self.pump_events();
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<S: HwgSubstrate> std::fmt::Debug for LwgNode<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LwgNode")
            .field("service", &self.service)
            .field("events", &self.events.history().len())
            .finish()
    }
}
