//! A ready-made [`plwg_sim::Process`] wrapping an [`LwgService`] — the
//! easiest way to put the light-weight group service on a simulated node.
//!
//! Applications either embed [`LwgService`] in their own process type (for
//! custom reaction logic) or use [`LwgNode`] and subscribe to its upcall
//! stream via [`LwgNode::events`].

use crate::config::LwgConfig;
use crate::events::LwgEvents;
use crate::service::LwgService;
use plwg_hwg::{HwgSubstrate, View};
use plwg_naming::LwgId;
use plwg_sim::{NodeId, Payload, Process, TimerToken, Transport};
use std::any::Any;

/// A simulated node running the LWG service over substrate `S`, recording
/// all upcalls into a drainable [`LwgEvents`] stream.
///
/// ```ignore
/// for ev in world.node_as::<LwgNode<VsyncStack>>(n1).events().drain() {
///     match ev {
///         LwgEvent::Data { lwg, src, data } => { /* ... */ }
///         LwgEvent::View { lwg, view } => { /* ... */ }
///         LwgEvent::Left { lwg } => { /* ... */ }
///     }
/// }
/// ```
pub struct LwgNode<S: HwgSubstrate> {
    service: LwgService<S>,
    events: LwgEvents,
}

impl<S: HwgSubstrate> LwgNode<S> {
    /// Starts building a node for `me`: set the name servers (and
    /// optionally a config or pre-built substrate), then call
    /// [`crate::LwgNodeBuilder::build`]:
    ///
    /// ```
    /// use plwg_core::{LwgConfig, LwgNode, ScriptedHwg};
    /// use plwg_sim::NodeId;
    ///
    /// let node: LwgNode<ScriptedHwg> = LwgNode::builder(NodeId(1))
    ///     .servers([NodeId(0)])
    ///     .config(LwgConfig::default())
    ///     .build()
    ///     .expect("valid config");
    /// # let _ = node;
    /// ```
    pub fn builder(me: NodeId) -> crate::LwgNodeBuilder<S> {
        crate::LwgNodeBuilder::new(me)
    }

    /// Creates a node for `me`, using the given name servers.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or `servers` is empty.
    #[deprecated(
        since = "0.1.0",
        note = "use `LwgNode::builder(me).servers(..).config(cfg).build()`"
    )]
    pub fn new(me: NodeId, servers: Vec<NodeId>, cfg: LwgConfig) -> Self {
        Self::builder(me)
            .servers(servers)
            .config(cfg)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    pub(crate) fn from_service(service: LwgService<S>, events: LwgEvents) -> Self {
        LwgNode { service, events }
    }

    /// The wrapped service (join/leave/send and introspection).
    pub fn service(&mut self) -> &mut LwgService<S> {
        &mut self.service
    }

    /// Immutable access to the wrapped service.
    pub fn service_ref(&self) -> &LwgService<S> {
        &self.service
    }

    /// The recorded upcall stream: `events().drain()` consumes the events
    /// since the previous drain, `events().history()` keeps the full run.
    pub fn events(&mut self) -> &mut LwgEvents {
        &mut self.events
    }

    /// Read-only view of the upcall stream (no draining).
    pub fn events_ref(&self) -> &LwgEvents {
        &self.events
    }

    /// The group's *live* view at this node (`None` once the node has left
    /// the group). For the historic record use `events_ref().views_of(..)`.
    pub fn current_view(&self, lwg: LwgId) -> Option<&View> {
        self.service.view_of(lwg)
    }

    fn pump_events(&mut self) {
        for ev in self.service.drain_events() {
            self.events.record(ev);
        }
    }
}

impl<S: HwgSubstrate + 'static> Process for LwgNode<S> {
    fn on_start(&mut self, ctx: &mut dyn Transport) {
        self.service.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
        if self.service.on_message(ctx, from, &msg) {
            self.pump_events();
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
        if self.service.on_timer(ctx, token) {
            self.pump_events();
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<S: HwgSubstrate> std::fmt::Debug for LwgNode<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LwgNode")
            .field("service", &self.service)
            .field("events", &self.events.history().len())
            .finish()
    }
}
