//! A ready-made [`plwg_sim::Process`] wrapping an [`LwgService`] — the
//! easiest way to put the light-weight group service on a simulated node.
//!
//! Applications either embed [`LwgService`] in their own process type (for
//! custom reaction logic) or use [`LwgNode`] and inspect its recorded
//! upcalls / drive it with [`plwg_sim::World::invoke`].

use crate::config::LwgConfig;
use crate::events::LwgEvent;
use crate::service::LwgService;
use plwg_hwg::{HwgSubstrate, View};
use plwg_naming::LwgId;
use plwg_sim::{Context, NodeId, Payload, Process, TimerToken};
use std::any::Any;

/// A simulated node running the LWG service over substrate `S`, recording
/// all upcalls.
pub struct LwgNode<S: HwgSubstrate> {
    service: LwgService<S>,
    /// Every view installed, in order.
    views: Vec<(LwgId, View)>,
    /// Every delivery, in order.
    delivered: Vec<(LwgId, NodeId, Payload)>,
    /// Groups left.
    lefts: Vec<LwgId>,
}

impl<S: HwgSubstrate> LwgNode<S> {
    /// Creates a node for `me`, using the given name servers.
    pub fn new(me: NodeId, servers: Vec<NodeId>, cfg: LwgConfig) -> Self {
        LwgNode {
            service: LwgService::new(me, servers, cfg),
            views: Vec::new(),
            delivered: Vec::new(),
            lefts: Vec::new(),
        }
    }

    /// The wrapped service (join/leave/send and introspection).
    pub fn service(&mut self) -> &mut LwgService<S> {
        &mut self.service
    }

    /// Immutable access to the wrapped service.
    pub fn service_ref(&self) -> &LwgService<S> {
        &self.service
    }

    /// The group's *live* view at this node (`None` once the node has left
    /// the group). For the historic record use [`LwgNode::views`].
    pub fn current_view(&self, lwg: LwgId) -> Option<&View> {
        self.service.view_of(lwg)
    }

    /// All recorded view installations.
    pub fn views(&self) -> &[(LwgId, View)] {
        &self.views
    }

    /// All recorded deliveries.
    pub fn delivered(&self) -> &[(LwgId, NodeId, Payload)] {
        &self.delivered
    }

    /// Payloads delivered for `lwg` from `src`, downcast to `T` (test
    /// convenience; panics on a type mismatch).
    pub fn delivered_values<T: Clone + 'static>(&self, lwg: LwgId, src: NodeId) -> Vec<T> {
        self.delivered
            .iter()
            .filter(|(l, s, _)| *l == lwg && *s == src)
            .map(|(_, _, p)| plwg_sim::cast::<T>(p).expect("payload type").clone())
            .collect()
    }

    /// Groups this node has left.
    pub fn lefts(&self) -> &[LwgId] {
        &self.lefts
    }

    fn drain(&mut self) {
        for ev in self.service.drain_events() {
            match ev {
                LwgEvent::View { lwg, view } => self.views.push((lwg, view)),
                LwgEvent::Data { lwg, src, data } => self.delivered.push((lwg, src, data)),
                LwgEvent::Left { lwg } => self.lefts.push(lwg),
            }
        }
    }
}

impl<S: HwgSubstrate + 'static> Process for LwgNode<S> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.service.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Payload) {
        if self.service.on_message(ctx, from, &msg) {
            self.drain();
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        if self.service.on_timer(ctx, token) {
            self.drain();
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<S: HwgSubstrate> std::fmt::Debug for LwgNode<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LwgNode")
            .field("service", &self.service)
            .field("views", &self.views.len())
            .field("delivered", &self.delivered.len())
            .finish()
    }
}
