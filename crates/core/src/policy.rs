//! The mapping policies of paper Figure 1, as pure functions over
//! membership sets — deterministic, locally evaluated, unit-testable.
//!
//! The twin goals (paper §2): **increase resource sharing** (map LWGs with
//! similar membership onto one HWG — the share rule) and **minimise
//! interference** (don't make a small LWG ride a much larger HWG — the
//! interference rule); the shrink rule cleans up HWGs nobody maps onto.

use crate::directory::HwgLoad;
use plwg_hwg::HwgId;
use plwg_sim::NodeId;
use std::cmp::Reverse;
use std::collections::BTreeSet;

/// `g1` is a *minority* of `g2` iff `|g1| <= |g2| / k_m` (paper Fig. 1).
///
/// Both the share and interference rules use this to detect a small group
/// riding a much larger one.
///
/// ```
/// // The paper's k_m = 4: "the mapping remains stable until this number
/// // is reduced to 25%".
/// assert!(plwg_core::is_minority(2, 8, 4));
/// assert!(!plwg_core::is_minority(3, 8, 4));
/// ```
pub fn is_minority(g1_len: usize, g2_len: usize, k_m: u32) -> bool {
    g1_len * (k_m as usize) <= g2_len
}

/// `g1 ⊆ g2` are *close enough* iff `|g2| - |g1| <= |g2| / k_c`
/// (paper Fig. 1) — the interference rule's fit test for a candidate HWG.
///
/// ```
/// // k_c = 4: a 6-member group fits an 8-member HWG…
/// assert!(plwg_core::closeness(6, 8, 4));
/// // …but a 5-member group does not (3 > 8/4).
/// assert!(!plwg_core::closeness(5, 8, 4));
/// ```
pub fn closeness(g1_len: usize, g2_len: usize, k_c: u32) -> bool {
    debug_assert!(g1_len <= g2_len, "closeness requires g1 ⊆ g2");
    (g2_len - g1_len) * (k_c as usize) <= g2_len
}

/// The share rule's collapse test for an HWG pair (paper Fig. 1): with
/// `|hwg1| = n1 + k`, `|hwg2| = n2 + k` and `k = |hwg1 ∩ hwg2|`, the pair
/// collapses when the overlap is large — `k > sqrt(2·n1·n2)` — unless one
/// is a minority subset of the other (in which case collapsing would just
/// re-create interference).
pub fn share_rule_collapses(hwg1: &BTreeSet<NodeId>, hwg2: &BTreeSet<NodeId>, k_m: u32) -> bool {
    let k = hwg1.intersection(hwg2).count();
    let n1 = hwg1.len() - k;
    let n2 = hwg2.len() - k;
    let minority_subset = (hwg1.is_subset(hwg2) && is_minority(hwg1.len(), hwg2.len(), k_m))
        || (hwg2.is_subset(hwg1) && is_minority(hwg2.len(), hwg1.len(), k_m));
    if minority_subset {
        return false;
    }
    (k * k) as f64 > 2.0 * n1 as f64 * n2 as f64
}

/// A decision produced by the policy evaluation for one LWG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyAction {
    /// Leave the mapping as is.
    Stay,
    /// Switch the LWG to an existing HWG.
    SwitchTo(HwgId),
    /// Create a fresh HWG with membership identical to the LWG and switch
    /// to it (interference rule's else-branch).
    CreateAndSwitch,
}

/// Evaluates the interference rule (paper Fig. 1) for one LWG.
///
/// * `lwg_members` — the LWG view's membership;
/// * `current` — its current HWG and membership;
/// * `known_hwgs` — every `(id, membership)` this process knows (paper:
///   the heuristics compare "all LWGs and HWGs that are known to that
///   process"), including the current one.
///
/// If the LWG is a minority of its HWG, pick the *close-enough* candidate
/// that contains all LWG members, breaking ties by the total order of
/// group identifiers (highest id wins — the same deterministic rule the
/// reconciliation step uses); if none fits, ask for a fresh HWG.
pub fn interference_rule(
    lwg_members: &BTreeSet<NodeId>,
    current: (HwgId, &BTreeSet<NodeId>),
    known_hwgs: &[(HwgId, BTreeSet<NodeId>)],
    k_m: u32,
    k_c: u32,
) -> PolicyAction {
    let (current_id, current_members) = current;
    if !is_minority(lwg_members.len(), current_members.len(), k_m) {
        return PolicyAction::Stay;
    }
    let mut best: Option<HwgId> = None;
    for (id, members) in known_hwgs {
        if *id == current_id {
            continue;
        }
        if lwg_members.is_subset(members) && closeness(lwg_members.len(), members.len(), k_c) {
            best = Some(best.map_or(*id, |b: HwgId| b.max(*id)));
        }
    }
    match best {
        Some(id) => PolicyAction::SwitchTo(id),
        None => PolicyAction::CreateAndSwitch,
    }
}

/// Evaluates the share rule (paper Fig. 1) for one LWG mapped on
/// `current`: if some other known HWG overlaps `current` enough to
/// collapse, move toward the HWG with the *higher* group id (each LWG
/// coordinator applying the same deterministic rule makes the pair
/// collapse without central coordination).
pub fn share_rule(
    current: (HwgId, &BTreeSet<NodeId>),
    known_hwgs: &[(HwgId, BTreeSet<NodeId>)],
    k_m: u32,
) -> PolicyAction {
    let (current_id, current_members) = current;
    let mut best: Option<HwgId> = None;
    for (id, members) in known_hwgs {
        if *id <= current_id {
            // Only ever move "up" the id order; the lower-id HWG of a
            // collapsing pair is the one that empties out.
            continue;
        }
        if share_rule_collapses(current_members, members, k_m) {
            best = Some(best.map_or(*id, |b: HwgId| b.max(*id)));
        }
    }
    best.map_or(PolicyAction::Stay, PolicyAction::SwitchTo)
}

/// The load-aware placement rule: among admissible candidate HWGs, pick
/// the one carrying the fewest LWGs; break load ties by the lighter
/// data-plane traffic window, then by the **highest** group id — the same
/// deterministic total order the reconciliation and share rules use (and
/// exactly the pre-directory behaviour when all loads are equal).
///
/// Admissibility (membership fit under the interference/share rules) is
/// the caller's filter; this function only ranks.
pub fn placement_rule(candidates: &[HwgLoad]) -> Option<HwgId> {
    candidates
        .iter()
        .min_by_key(|c| (c.lwgs, c.traffic, Reverse(c.hwg)))
        .map(|c| c.hwg)
}

/// Whether migrating one LWG from a donor HWG carrying `from_load` LWGs
/// to a receiver carrying `to_load` *strictly* reduces the load spread.
/// Requiring strict improvement (`from > to + 1`) is what makes the
/// rebalancer convergent: once loads are within one of each other no move
/// helps, so a quiescent system plans no moves and nothing oscillates.
pub fn rebalance_improves(from_load: usize, to_load: usize) -> bool {
    from_load > to_load + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    fn load(hwg: u64, lwgs: usize, traffic: u64) -> HwgLoad {
        HwgLoad {
            hwg: HwgId(hwg),
            lwgs,
            traffic,
        }
    }

    #[test]
    fn placement_picks_least_loaded() {
        let c = [load(1, 5, 0), load(2, 2, 9), load(3, 7, 0)];
        assert_eq!(placement_rule(&c), Some(HwgId(2)));
    }

    #[test]
    fn placement_breaks_load_ties_by_traffic_then_highest_id() {
        let c = [load(1, 3, 7), load(2, 3, 2), load(3, 3, 7)];
        assert_eq!(placement_rule(&c), Some(HwgId(2)));
        // All equal: highest id — the legacy optimistic rule.
        let eq = [load(1, 3, 0), load(5, 3, 0), load(4, 3, 0)];
        assert_eq!(placement_rule(&eq), Some(HwgId(5)));
    }

    #[test]
    fn placement_of_nothing_is_none() {
        assert_eq!(placement_rule(&[]), None);
    }

    #[test]
    fn placement_degenerates_to_highest_id_for_single_candidate() {
        assert_eq!(placement_rule(&[load(9, 100, 50)]), Some(HwgId(9)));
    }

    #[test]
    fn rebalance_requires_strict_improvement() {
        assert!(rebalance_improves(3, 1));
        assert!(!rebalance_improves(2, 1), "a 2/1 split cannot improve");
        assert!(!rebalance_improves(1, 1));
        assert!(!rebalance_improves(0, 5));
    }

    #[test]
    fn minority_threshold_matches_paper_prose() {
        // k_m = 4: "common members must be greater than 75% of the size of
        // the HWG" — a 1-member LWG on a 4-member HWG is a minority…
        assert!(is_minority(1, 4, 4));
        // …while 2 of 4 is not.
        assert!(!is_minority(2, 4, 4));
        assert!(!is_minority(4, 4, 4));
    }

    #[test]
    fn closeness_threshold() {
        // k_c = 4: |g2| - |g1| <= |g2|/4.
        assert!(closeness(4, 4, 4));
        assert!(closeness(3, 4, 4)); // 1 <= 1
        assert!(!closeness(2, 4, 4)); // 2 > 1
        assert!(closeness(6, 8, 4)); // 2 <= 2
        assert!(!closeness(5, 8, 4));
    }

    #[test]
    fn share_rule_collapses_identical_groups() {
        let a = set(&[0, 1, 2, 3]);
        // k = 4, n1 = n2 = 0: 16 > 0 and not a minority subset.
        assert!(share_rule_collapses(&a, &a.clone(), 4));
    }

    #[test]
    fn share_rule_ignores_disjoint_groups() {
        let a = set(&[0, 1, 2, 3]);
        let b = set(&[4, 5, 6, 7]);
        // k = 0: 0 > 2·16 is false.
        assert!(!share_rule_collapses(&a, &b, 4));
    }

    #[test]
    fn share_rule_spares_minority_subset() {
        let small = set(&[0]);
        let big = set(&[0, 1, 2, 3]);
        // small ⊂ big and |small| <= |big|/4: collapsing would merge a tiny
        // group into a big one — exactly the interference the rule avoids.
        assert!(!share_rule_collapses(&small, &big, 4));
        // With k_m = 1 the minority exemption disappears (1*1 <= 4 still
        // minority at k_m=1? 1 <= 4 yes). Use a 2-of-4 subset: not minority.
        let half = set(&[0, 1]);
        // k = 2, n1 = 0, n2 = 2: 4 > 0 → collapse.
        assert!(share_rule_collapses(&half, &big, 4));
    }

    #[test]
    fn share_rule_threshold_boundary() {
        // |h1| = 3, |h2| = 3, overlap k = 2, n1 = n2 = 1: k² = 4 > 2 → yes.
        assert!(share_rule_collapses(&set(&[0, 1, 2]), &set(&[1, 2, 3]), 4));
        // overlap 1 of 3+3: k² = 1 > 2·2·2 = 8? no.
        assert!(!share_rule_collapses(&set(&[0, 1, 2]), &set(&[2, 3, 4]), 4));
    }

    #[test]
    fn interference_rule_stays_when_not_minority() {
        let lwg = set(&[0, 1, 2, 3]);
        let hwg = set(&[0, 1, 2, 3, 4]);
        let action = interference_rule(&lwg, (HwgId(1), &hwg), &[], 4, 4);
        assert_eq!(action, PolicyAction::Stay);
    }

    #[test]
    fn interference_rule_switches_to_close_candidate() {
        let lwg = set(&[0, 1]);
        let big = set(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let snug = set(&[0, 1]);
        let known = vec![(HwgId(1), big.clone()), (HwgId(5), snug)];
        let action = interference_rule(&lwg, (HwgId(1), &big), &known, 4, 4);
        assert_eq!(action, PolicyAction::SwitchTo(HwgId(5)));
    }

    #[test]
    fn interference_rule_creates_when_no_candidate_fits() {
        let lwg = set(&[0, 1]);
        let big = set(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let known = vec![(HwgId(1), big.clone())];
        let action = interference_rule(&lwg, (HwgId(1), &big), &known, 4, 4);
        assert_eq!(action, PolicyAction::CreateAndSwitch);
    }

    #[test]
    fn interference_rule_ties_break_to_highest_id() {
        let lwg = set(&[0, 1]);
        let big = set(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let known = vec![
            (HwgId(1), big.clone()),
            (HwgId(3), set(&[0, 1])),
            (HwgId(9), set(&[0, 1])),
        ];
        let action = interference_rule(&lwg, (HwgId(1), &big), &known, 4, 4);
        assert_eq!(action, PolicyAction::SwitchTo(HwgId(9)));
    }

    #[test]
    fn interference_candidate_must_contain_lwg() {
        let lwg = set(&[0, 1]);
        let big = set(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let known = vec![(HwgId(1), big.clone()), (HwgId(9), set(&[2, 3]))];
        let action = interference_rule(&lwg, (HwgId(1), &big), &known, 4, 4);
        assert_eq!(action, PolicyAction::CreateAndSwitch);
    }

    #[test]
    fn share_rule_moves_up_the_id_order_only() {
        let mine = set(&[0, 1, 2, 3]);
        let same = mine.clone();
        // An identical HWG with a *lower* id: my LWG stays; the other HWG's
        // LWGs will move to me.
        let known_low = vec![(HwgId(1), same.clone())];
        assert_eq!(
            share_rule((HwgId(5), &mine), &known_low, 4),
            PolicyAction::Stay
        );
        // With a higher id, I move.
        let known_high = vec![(HwgId(9), same)];
        assert_eq!(
            share_rule((HwgId(5), &mine), &known_high, 4),
            PolicyAction::SwitchTo(HwgId(9))
        );
    }

    #[test]
    fn policy_is_deterministic() {
        let lwg = set(&[0, 1]);
        let big = set(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let known = vec![(HwgId(1), big.clone()), (HwgId(7), set(&[0, 1, 2]))];
        let a1 = interference_rule(&lwg, (HwgId(1), &big), &known, 4, 4);
        let a2 = interference_rule(&lwg, (HwgId(1), &big), &known, 4, 4);
        assert_eq!(a1, a2, "same configuration, same decision (paper §3.2)");
    }
}
