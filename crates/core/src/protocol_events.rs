//! Typed trace events of the light-weight group service.
//!
//! The LWG layer's side of the workspace-wide typed event model
//! ([`plwg_sim::ProtocolEvent`]): every protocol transition the service
//! used to describe with an ad-hoc string now has a variant carrying the
//! actual protocol values, plus causal [`EventRefs`] — the view lineage
//! (`view` + `parents`) and flush identity links that let `plwg-obs`
//! assemble cross-node timelines of the paper's four-step heal.

use crate::msg::LFlushId;
use plwg_hwg::{view_key, HwgId, View, ViewId};
use plwg_naming::LwgId;
use plwg_sim::{EventRefs, NodeId, ProtocolEvent, TraceLayer};

/// One protocol transition of the LWG service.
#[derive(Debug, Clone)]
pub enum LwgProtocolEvent {
    /// `join(lwg)` was called; the naming lookup is under way.
    JoinStart {
        /// The group being joined.
        lwg: LwgId,
    },
    /// Every member of the flushed view left: the group dissolves with no
    /// successor view.
    Dissolve {
        /// The dissolved group.
        lwg: LwgId,
    },
    /// Coordinator: all `FlushOk`s are in — the successor view is being
    /// announced (join/leave path).
    ViewAnnounce {
        /// The group.
        lwg: LwgId,
        /// The announced successor view.
        view: View,
    },
    /// Coordinator: announcing the view with members that fell out of the
    /// backing HWG removed (no LWG flush needed).
    Prune {
        /// The group.
        lwg: LwgId,
        /// The pruned successor view.
        view: View,
    },
    /// A new LWG view was installed at this member.
    ViewInstall {
        /// The group.
        lwg: LwgId,
        /// The installed view.
        view: View,
        /// The HWG the view is mapped onto.
        hwg: HwgId,
    },
    /// Coordinator started an LWG flush round.
    FlushStart {
        /// The group being flushed.
        lwg: LwgId,
        /// The flush round.
        flush: LFlushId,
        /// Members whose `FlushOk`s are awaited.
        members: Vec<NodeId>,
    },
    /// A flush or switch timed out and was abandoned (watchdog).
    FlushAbandon {
        /// The group.
        lwg: LwgId,
    },
    /// Join fallback: claiming the mapping with `ns.testset` before
    /// founding a view (paper Table 2).
    Claim {
        /// The group.
        lwg: LwgId,
        /// The view id the founding view will use if the claim wins.
        planned: ViewId,
        /// The HWG the claim maps the group onto.
        hwg: HwgId,
    },
    /// The claim won: the founding (singleton) view is installed.
    Found {
        /// The group.
        lwg: LwgId,
        /// The founding view.
        view: View,
        /// The HWG it is mapped onto.
        hwg: HwgId,
    },
    /// MULTIPLE-MAPPINGS reconciliation (paper §6.2 step 2): the
    /// coordinator switches to the HWG with the highest group id.
    Reconcile {
        /// The group with concurrent mappings.
        lwg: LwgId,
        /// The HWG currently backing the group here.
        current: Option<HwgId>,
        /// The winning HWG being switched to.
        target: HwgId,
    },
    /// A forward-pointer redirect arrived: the join is retargeted.
    Redirect {
        /// The group.
        lwg: LwgId,
        /// Where the group lives now.
        to: HwgId,
    },
    /// Shrink rule: leaving an HWG that carried no local LWG for a while.
    Shrink {
        /// The HWG being left.
        hwg: HwgId,
    },
    /// The Figure-1 policies decided to switch the group to another HWG.
    PolicySwitch {
        /// The group.
        lwg: LwgId,
        /// The target HWG.
        target: HwgId,
    },
    /// The Figure-1 policies decided to create a fresh HWG and switch.
    PolicyCreate {
        /// The group.
        lwg: LwgId,
        /// The freshly allocated HWG id.
        fresh: HwgId,
    },
    /// The group's transport vanished; the join flow restarts from the
    /// naming service.
    Rejoin {
        /// The group.
        lwg: LwgId,
    },
    /// Coordinator started switching the group to another HWG (paper §3;
    /// step 2 of the §6.2 heal).
    SwitchStart {
        /// The group being switched.
        lwg: LwgId,
        /// The HWG being left.
        from: HwgId,
        /// The target HWG.
        to: HwgId,
    },
    /// Every member reported ready on the target HWG: the switched view is
    /// announced there.
    SwitchComplete {
        /// The group.
        lwg: LwgId,
        /// The target HWG.
        to: HwgId,
        /// The switched view.
        view: View,
    },
    /// MERGE-VIEWS concluded (paper Fig. 5): concurrent views merged into
    /// one successor after a single HWG flush.
    Merge {
        /// The group.
        lwg: LwgId,
        /// The concurrent views being merged.
        concurrent: Vec<ViewId>,
        /// The merged successor view.
        merged: View,
    },
    /// The backing HWG installed a new view (the LWG layer reacts: prune,
    /// merge round, naming refresh).
    HwgView {
        /// The HWG.
        hwg: HwgId,
        /// Its new view.
        view: View,
    },
    /// A rebalance round scanned the per-HWG load accounts and planned a
    /// batch of migrations.
    RebalancePlan {
        /// The most crowded HWG's membership load (LWGs mapped onto it).
        max_load: usize,
        /// Migrations the round decided to start.
        moves: usize,
    },
    /// The rebalancer migrates one LWG to a less loaded HWG (the migration
    /// primitive is the ordinary switch protocol).
    RebalanceMove {
        /// The group being migrated.
        lwg: LwgId,
        /// The crowded HWG it is leaving.
        from: HwgId,
        /// The less loaded target HWG.
        to: HwgId,
    },
}

/// The (coordinator, nonce) causal key of an LWG flush round.
fn lflush_key(f: LFlushId) -> (u32, u64) {
    (f.initiator.0, f.nonce)
}

impl ProtocolEvent for LwgProtocolEvent {
    fn layer(&self) -> TraceLayer {
        TraceLayer::Lwg
    }

    fn kind(&self) -> &'static str {
        match self {
            LwgProtocolEvent::JoinStart { .. } => "lwg.join.start",
            LwgProtocolEvent::Dissolve { .. } => "lwg.dissolve",
            LwgProtocolEvent::ViewAnnounce { .. } => "lwg.view.announce",
            LwgProtocolEvent::Prune { .. } => "lwg.prune",
            LwgProtocolEvent::ViewInstall { .. } => "lwg.view.install",
            LwgProtocolEvent::FlushStart { .. } => "lwg.flush.start",
            LwgProtocolEvent::FlushAbandon { .. } => "lwg.flush.abandon",
            LwgProtocolEvent::Claim { .. } => "lwg.claim",
            LwgProtocolEvent::Found { .. } => "lwg.found",
            LwgProtocolEvent::Reconcile { .. } => "lwg.reconcile",
            LwgProtocolEvent::Redirect { .. } => "lwg.redirect",
            LwgProtocolEvent::Shrink { .. } => "lwg.shrink",
            LwgProtocolEvent::PolicySwitch { .. } => "lwg.policy.switch",
            LwgProtocolEvent::PolicyCreate { .. } => "lwg.policy.create",
            LwgProtocolEvent::Rejoin { .. } => "lwg.rejoin",
            LwgProtocolEvent::SwitchStart { .. } => "lwg.switch.start",
            LwgProtocolEvent::SwitchComplete { .. } => "lwg.switch.complete",
            LwgProtocolEvent::Merge { .. } => "lwg.merge",
            LwgProtocolEvent::HwgView { .. } => "lwg.hwg_view",
            LwgProtocolEvent::RebalancePlan { .. } => "lwg.rebalance.plan",
            LwgProtocolEvent::RebalanceMove { .. } => "lwg.rebalance.move",
        }
    }

    fn refs(&self) -> EventRefs {
        let mut refs = EventRefs::default();
        match self {
            LwgProtocolEvent::JoinStart { lwg }
            | LwgProtocolEvent::Dissolve { lwg }
            | LwgProtocolEvent::FlushAbandon { lwg }
            | LwgProtocolEvent::Rejoin { lwg } => refs.lwg = Some(lwg.0),
            LwgProtocolEvent::ViewAnnounce { lwg, view }
            | LwgProtocolEvent::Prune { lwg, view } => {
                refs.lwg = Some(lwg.0);
                refs.view = Some(view_key(view.id));
                refs.parents = view.predecessors.iter().copied().map(view_key).collect();
            }
            LwgProtocolEvent::ViewInstall { lwg, view, hwg }
            | LwgProtocolEvent::Found { lwg, view, hwg } => {
                refs.lwg = Some(lwg.0);
                refs.hwg = Some(hwg.0);
                refs.view = Some(view_key(view.id));
                refs.parents = view.predecessors.iter().copied().map(view_key).collect();
            }
            LwgProtocolEvent::FlushStart { lwg, flush, .. } => {
                refs.lwg = Some(lwg.0);
                refs.flush = Some(lflush_key(*flush));
            }
            LwgProtocolEvent::Claim { lwg, planned, hwg } => {
                refs.lwg = Some(lwg.0);
                refs.hwg = Some(hwg.0);
                refs.view = Some(view_key(*planned));
            }
            LwgProtocolEvent::Reconcile { lwg, target, .. } => {
                refs.lwg = Some(lwg.0);
                refs.hwg = Some(target.0);
            }
            LwgProtocolEvent::Redirect { lwg, to } => {
                refs.lwg = Some(lwg.0);
                refs.hwg = Some(to.0);
            }
            LwgProtocolEvent::Shrink { hwg } => refs.hwg = Some(hwg.0),
            LwgProtocolEvent::PolicySwitch { lwg, target } => {
                refs.lwg = Some(lwg.0);
                refs.hwg = Some(target.0);
            }
            LwgProtocolEvent::PolicyCreate { lwg, fresh } => {
                refs.lwg = Some(lwg.0);
                refs.hwg = Some(fresh.0);
            }
            LwgProtocolEvent::SwitchStart { lwg, to, .. } => {
                refs.lwg = Some(lwg.0);
                refs.hwg = Some(to.0);
            }
            LwgProtocolEvent::SwitchComplete { lwg, to, view } => {
                refs.lwg = Some(lwg.0);
                refs.hwg = Some(to.0);
                refs.view = Some(view_key(view.id));
                refs.parents = view.predecessors.iter().copied().map(view_key).collect();
            }
            LwgProtocolEvent::Merge {
                lwg,
                concurrent,
                merged,
            } => {
                refs.lwg = Some(lwg.0);
                refs.view = Some(view_key(merged.id));
                refs.parents = concurrent.iter().copied().map(view_key).collect();
            }
            LwgProtocolEvent::HwgView { hwg, view } => {
                refs.hwg = Some(hwg.0);
                refs.view = Some(view_key(view.id));
                refs.parents = view.predecessors.iter().copied().map(view_key).collect();
            }
            LwgProtocolEvent::RebalancePlan { .. } => {}
            LwgProtocolEvent::RebalanceMove { lwg, to, .. } => {
                refs.lwg = Some(lwg.0);
                refs.hwg = Some(to.0);
            }
        }
        refs
    }

    fn detail(&self) -> String {
        match self {
            LwgProtocolEvent::JoinStart { lwg }
            | LwgProtocolEvent::Dissolve { lwg }
            | LwgProtocolEvent::FlushAbandon { lwg }
            | LwgProtocolEvent::Rejoin { lwg } => format!("{lwg}"),
            LwgProtocolEvent::ViewAnnounce { lwg, view }
            | LwgProtocolEvent::Prune { lwg, view } => {
                format!("{lwg} {view}")
            }
            LwgProtocolEvent::ViewInstall { lwg, view, hwg } => format!("{lwg} {view} on {hwg}"),
            LwgProtocolEvent::FlushStart {
                lwg,
                flush,
                members,
            } => format!("{lwg} {flush} members {members:?}"),
            LwgProtocolEvent::Claim { lwg, planned, hwg } => format!("{lwg} {planned} on {hwg}"),
            LwgProtocolEvent::Found { lwg, view, hwg } => format!("{lwg} {view} on {hwg}"),
            LwgProtocolEvent::Reconcile {
                lwg,
                current,
                target,
            } => format!("{lwg}: switch {current:?} -> {target}"),
            LwgProtocolEvent::Redirect { lwg, to } => format!("{lwg} -> {to}"),
            LwgProtocolEvent::Shrink { hwg } => format!("leaving {hwg}"),
            LwgProtocolEvent::PolicySwitch { lwg, target } => format!("{lwg} -> {target}"),
            LwgProtocolEvent::PolicyCreate { lwg, fresh } => format!("{lwg} -> {fresh}"),
            LwgProtocolEvent::SwitchStart { lwg, from, to } => format!("{lwg}: {from} -> {to}"),
            LwgProtocolEvent::SwitchComplete { lwg, to, view } => {
                format!("{lwg} -> {to} as {view}")
            }
            LwgProtocolEvent::Merge {
                lwg,
                concurrent,
                merged,
            } => format!("{lwg}: {concurrent:?} -> {merged}"),
            LwgProtocolEvent::HwgView { hwg, view } => format!("{hwg} {view}"),
            LwgProtocolEvent::RebalancePlan { max_load, moves } => {
                format!("max load {max_load}, {moves} moves")
            }
            LwgProtocolEvent::RebalanceMove { lwg, from, to } => {
                format!("{lwg}: {from} -> {to}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_refs_link_concurrent_parents() {
        let a = ViewId::new(NodeId(1), 3);
        let b = ViewId::new(NodeId(4), 2);
        let merged = View::with_predecessors(
            ViewId::new(NodeId(1), 4),
            vec![NodeId(1), NodeId(4)],
            vec![a, b],
        );
        let e = LwgProtocolEvent::Merge {
            lwg: LwgId(7),
            concurrent: vec![a, b],
            merged: merged.clone(),
        };
        assert_eq!(e.kind(), "lwg.merge");
        let refs = e.refs();
        assert_eq!(refs.lwg, Some(7));
        assert_eq!(refs.view, Some(view_key(merged.id)));
        assert_eq!(refs.parents, vec![view_key(a), view_key(b)]);
    }

    #[test]
    fn flush_start_carries_flush_key() {
        let e = LwgProtocolEvent::FlushStart {
            lwg: LwgId(2),
            flush: LFlushId {
                initiator: NodeId(5),
                nonce: 9,
            },
            members: vec![NodeId(5), NodeId(6)],
        };
        assert_eq!(e.kind(), "lwg.flush.start");
        assert_eq!(e.refs().flush, Some((5, 9)));
        assert_eq!(e.detail(), "lwg2 n5~9 members [NodeId(5), NodeId(6)]");
    }

    #[test]
    fn rebalance_move_links_group_and_target() {
        let e = LwgProtocolEvent::RebalanceMove {
            lwg: LwgId(4),
            from: HwgId(2),
            to: HwgId(7),
        };
        assert_eq!(e.kind(), "lwg.rebalance.move");
        assert_eq!(e.detail(), "lwg4: hwg2 -> hwg7");
        let refs = e.refs();
        assert_eq!(refs.lwg, Some(4));
        assert_eq!(refs.hwg, Some(7));
    }

    #[test]
    fn rebalance_plan_summarises_the_round() {
        let e = LwgProtocolEvent::RebalancePlan {
            max_load: 9,
            moves: 2,
        };
        assert_eq!(e.kind(), "lwg.rebalance.plan");
        assert_eq!(e.detail(), "max load 9, 2 moves");
    }

    #[test]
    fn switch_detail_matches_legacy_format() {
        let e = LwgProtocolEvent::SwitchStart {
            lwg: LwgId(1),
            from: HwgId(3),
            to: HwgId(9),
        };
        assert_eq!(e.kind(), "lwg.switch.start");
        assert_eq!(e.detail(), "lwg1: hwg3 -> hwg9");
        assert_eq!(e.refs().hwg, Some(9));
    }
}
