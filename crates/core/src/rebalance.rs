//! The rebalancer: migrating LWGs off crowded HWGs using the ordinary
//! switch protocol as its migration primitive.
//!
//! The directory's per-HWG load accounts (membership counts plus a
//! traffic window fed by the data plane) tell each node how crowded every
//! HWG it uses is. Periodically — `LwgConfig::rebalance_interval`, off by
//! default — the service scans those accounts, plans a bounded batch of
//! migrations (hottest donors shed first, receivers picked by the same
//! [`crate::policy::placement_rule`] that places joiners), and starts one
//! switch per planned move. A move is only planned when it is a *strict*
//! improvement ([`crate::policy::rebalance_improves`]), so a balanced
//! system plans nothing and no group ever oscillates between two HWGs.
//!
//! Only LWG coordinators migrate their groups, and only onto HWGs whose
//! current view already contains every group member — the same
//! closeness/interference admissibility the Figure-1 policies use, and it
//! keeps a migration down to one switch round with no HWG joins.

use crate::keys;
use crate::protocol_events::LwgProtocolEvent;
use crate::service::LwgService;
use plwg_hwg::{HwgId, HwgSubstrate};
use plwg_naming::LwgId;
use plwg_sim::{Transport, TransportExt};
use std::cmp::Reverse;

impl<S: HwgSubstrate> LwgService<S> {
    /// Runs one rebalance round now: scan the per-HWG load accounts, plan
    /// up to `rebalance_max_moves` strictly-improving migrations, and
    /// start a switch for each. Driven by the `rebalance_interval` timer;
    /// public so experiments and tests can force a round directly.
    pub fn run_rebalance(&mut self, ctx: &mut dyn Transport) {
        self.last_rebalance = ctx.now();
        ctx.metrics().incr(keys::REBALANCE_ROUNDS);
        let mut loads = self.dir.loads();
        // Each round consumes the traffic window: hotness is judged per
        // interval, not over all time.
        self.dir.reset_traffic();
        let max_load = loads.iter().map(|l| l.lwgs).max().unwrap_or(0);
        if loads.len() < 2 {
            return; // nowhere to move anything
        }

        // Hottest donors shed first: membership load, then the traffic
        // window, then lowest id for determinism.
        let mut order: Vec<usize> = (0..loads.len()).collect();
        order.sort_by_key(|&i| {
            (
                Reverse(loads[i].lwgs),
                Reverse(loads[i].traffic),
                loads[i].hwg,
            )
        });

        let mut planned: Vec<(LwgId, HwgId, HwgId)> = Vec::new();
        'donors: for di in order {
            let donor = loads[di].hwg;
            for lwg in self.dir.mapped_on(donor) {
                if planned.len() >= self.cfg.rebalance_max_moves {
                    break 'donors;
                }
                if loads[di].lwgs <= 1 {
                    break; // the donor is down to one group: balanced enough
                }
                if !self.rebalance_candidate(lwg) {
                    continue;
                }
                let Some(view) = self.dir.get(lwg).and_then(|s| s.view.clone()) else {
                    continue;
                };
                // Admissible receivers: a different HWG, strictly less
                // loaded (accounting for moves already planned this
                // round), whose current view holds every group member.
                let admissible: Vec<crate::directory::HwgLoad> = loads
                    .iter()
                    .filter(|c| {
                        c.hwg != donor
                            && crate::policy::rebalance_improves(loads[di].lwgs, c.lwgs)
                            && self
                                .substrate
                                .view_of(c.hwg)
                                .is_some_and(|hv| view.members.iter().all(|&m| hv.contains(m)))
                    })
                    .copied()
                    .collect();
                let Some(target) = crate::policy::placement_rule(&admissible) else {
                    continue;
                };
                planned.push((lwg, donor, target));
                loads[di].lwgs -= 1;
                if let Some(t) = loads.iter_mut().find(|l| l.hwg == target) {
                    t.lwgs += 1;
                }
            }
        }

        if planned.is_empty() {
            return;
        }
        let moves = planned.len();
        ctx.emit(|| LwgProtocolEvent::RebalancePlan { max_load, moves });
        for (lwg, from, to) in planned {
            ctx.emit(|| LwgProtocolEvent::RebalanceMove { lwg, from, to });
            ctx.metrics().incr(keys::REBALANCE_MOVES);
            self.start_switch(ctx, lwg, to, false);
        }
    }

    /// Whether `lwg` may be migrated by the rebalancer right now: a stable
    /// member (no flush, switch or prune in flight) whose coordinator is
    /// this node. `start_switch` re-checks all of this, but testing first
    /// keeps the planner from wasting its move budget on no-op switches.
    fn rebalance_candidate(&self, lwg: LwgId) -> bool {
        if self.lwg_coordinator(lwg) != Some(self.me) {
            return false;
        }
        self.dir.get(lwg).is_some_and(|s| {
            s.phase == crate::state::Phase::Member
                && s.view.is_some()
                && s.lflush.is_none()
                && s.switching.is_none()
                && s.follow_switch.is_none()
                && s.awaiting_prune.is_none()
        })
    }
}
