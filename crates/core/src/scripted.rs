//! A deterministic, scriptable [`HwgSubstrate`] for protocol tests.
//!
//! [`ScriptedHwg`] implements just enough of the Table-1 contract to drive
//! every LWG protocol path without the full virtual-synchrony stack: no
//! failure detector, no retransmission, no HWG-level merging — it relies on
//! the simulator's reliable FIFO links (`jitter = 0`, `loss = 0`) and lets
//! the **test** decide when HWG views change, by injecting them directly.
//!
//! What it does implement faithfully:
//!
//! - `create` installs an immediate singleton view (a fresh HWG trivially
//!   has one member).
//! - `send`/`send_to` multicast to the current HWG view over the simulated
//!   network, with synchronous self-delivery — per-sender FIFO holds.
//! - `force_flush` (coordinator only) runs a real two-phase flush: a
//!   `Flush` multicast raises `Stop` at every member, each answers
//!   [`HwgSubstrate::stop_ok`] (after piggybacking whatever the service
//!   wants inside the closing view), and once all acks are in the
//!   coordinator multicasts the successor view with the old view as its
//!   predecessor — exactly the barrier MERGE-VIEWS (paper Fig. 5) needs.
//! - `join` only records intent: admission is granted by the test
//!   injecting a view that contains the joiner (the scripted stand-in for
//!   the HWG membership protocol).
//!
//! Tests drive it through [`crate::LwgService::hwg_stack_mut`] followed by
//! [`crate::LwgService::pump`], e.g.
//! `svc.hwg_stack_mut().inject_view(hwg, view); svc.pump(ctx);`.

use plwg_hwg::{GroupStatus, HwgConfig, HwgEvent, HwgId, HwgSubstrate, View, ViewId};
use plwg_sim::{
    decode_frame, encode_frame, family, peek_family, Decode, Encode, NodeId, Payload, Reader,
    TimerToken, Transport, WireError,
};
use std::collections::{BTreeMap, BTreeSet};

/// Wire messages of the scripted substrate (frame family `SCRIPTED`).
#[derive(Clone)]
enum ScriptedMsg {
    /// Plain multicast data within `view_id`.
    Data {
        hwg: HwgId,
        view_id: ViewId,
        data: Payload,
    },
    /// Coordinator starts a flush: stop sending and ack.
    Flush { hwg: HwgId, nonce: u64 },
    /// A member finished stopping for the flush.
    StopAck { hwg: HwgId, nonce: u64 },
    /// Coordinator announces the successor view.
    NewView { hwg: HwgId, view: View },
}

// Variant tags; wire-stable, append-only.
const T_DATA: u8 = 0;
const T_FLUSH: u8 = 1;
const T_STOP_ACK: u8 = 2;
const T_NEW_VIEW: u8 = 3;

impl Encode for ScriptedMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ScriptedMsg::Data { hwg, view_id, data } => {
                out.push(T_DATA);
                hwg.encode_into(out);
                view_id.encode_into(out);
                data.encode_into(out);
            }
            ScriptedMsg::Flush { hwg, nonce } => {
                out.push(T_FLUSH);
                hwg.encode_into(out);
                nonce.encode_into(out);
            }
            ScriptedMsg::StopAck { hwg, nonce } => {
                out.push(T_STOP_ACK);
                hwg.encode_into(out);
                nonce.encode_into(out);
            }
            ScriptedMsg::NewView { hwg, view } => {
                out.push(T_NEW_VIEW);
                hwg.encode_into(out);
                view.encode_into(out);
            }
        }
    }
}

impl Decode for ScriptedMsg {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            T_DATA => Ok(ScriptedMsg::Data {
                hwg: Decode::decode_from(r)?,
                view_id: Decode::decode_from(r)?,
                data: Decode::decode_from(r)?,
            }),
            T_FLUSH => Ok(ScriptedMsg::Flush {
                hwg: Decode::decode_from(r)?,
                nonce: Decode::decode_from(r)?,
            }),
            T_STOP_ACK => Ok(ScriptedMsg::StopAck {
                hwg: Decode::decode_from(r)?,
                nonce: Decode::decode_from(r)?,
            }),
            T_NEW_VIEW => Ok(ScriptedMsg::NewView {
                hwg: Decode::decode_from(r)?,
                view: Decode::decode_from(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "ScriptedMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

/// An in-progress two-phase flush at the coordinator.
#[derive(Debug)]
struct FlushRound {
    nonce: u64,
    acks: BTreeSet<NodeId>,
}

#[derive(Debug)]
struct Group {
    status: GroupStatus,
    view: Option<View>,
    /// Set while a flush `Stop` is outstanding locally (cleared by
    /// `stop_ok`). `Some(nonce)` for a coordinator-driven flush, `None`
    /// for a test-injected `Stop`.
    stopping: Option<Option<u64>>,
    /// Coordinator-side flush bookkeeping.
    round: Option<FlushRound>,
    next_seq: u64,
    next_nonce: u64,
    /// How many times the service answered `stop_ok` on this group.
    stop_oks: u64,
}

impl Group {
    fn new() -> Self {
        Group {
            status: GroupStatus::Joining,
            view: None,
            stopping: None,
            round: None,
            next_seq: 0,
            next_nonce: 0,
            stop_oks: 0,
        }
    }
}

/// The scripted Table-1 substrate (see the module docs).
pub struct ScriptedHwg {
    me: NodeId,
    groups: BTreeMap<HwgId, Group>,
    events: Vec<HwgEvent>,
    /// Join intents recorded by [`HwgSubstrate::join`] (the test grants
    /// them by injecting views).
    join_requests: Vec<HwgId>,
}

impl ScriptedHwg {
    /// Creates the substrate for node `me`.
    pub fn new(me: NodeId) -> Self {
        ScriptedHwg {
            me,
            groups: BTreeMap::new(),
            events: Vec::new(),
            join_requests: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Test injection API
    // ------------------------------------------------------------------

    /// Installs `view` on `hwg` as if the membership protocol delivered
    /// it, raising the `View` upcall. A view that does not contain this
    /// node evicts it (raises `Left`) if it was a member.
    pub fn inject_view(&mut self, hwg: HwgId, view: View) {
        if !view.contains(self.me) {
            if self.groups.remove(&hwg).is_some() {
                self.events.push(HwgEvent::Left { hwg });
            }
            return;
        }
        let g = self.groups.entry(hwg).or_insert_with(Group::new);
        g.status = GroupStatus::Member;
        g.next_seq = g.next_seq.max(view.id.seq);
        g.view = Some(view.clone());
        g.stopping = None;
        g.round = None;
        self.events.push(HwgEvent::View { hwg, view });
    }

    /// Raises a `Stop` upcall out of band (a flush started elsewhere).
    /// The service's `stop_ok` answer is counted in [`Self::stop_oks`].
    pub fn inject_stop(&mut self, hwg: HwgId) {
        if let Some(g) = self.groups.get_mut(&hwg) {
            g.stopping = Some(None);
            self.events.push(HwgEvent::Stop { hwg });
        }
    }

    /// Raises a `Data` upcall as if `src` had multicast `data` in the
    /// current HWG view (requires an installed view).
    pub fn inject_data(&mut self, hwg: HwgId, src: NodeId, data: Payload) {
        let Some(view_id) = self
            .groups
            .get(&hwg)
            .and_then(|g| g.view.as_ref().map(|v| v.id))
        else {
            return;
        };
        self.events.push(HwgEvent::Data {
            hwg,
            view_id,
            src,
            data,
        });
    }

    /// Evicts this node from `hwg`, raising `Left`.
    pub fn inject_left(&mut self, hwg: HwgId) {
        if self.groups.remove(&hwg).is_some() {
            self.events.push(HwgEvent::Left { hwg });
        }
    }

    /// HWGs this node asked to join (and has not been granted a view on).
    pub fn join_requests(&self) -> &[HwgId] {
        &self.join_requests
    }

    /// How many times the service answered `stop_ok` on `hwg`.
    pub fn stop_oks(&self, hwg: HwgId) -> u64 {
        self.groups.get(&hwg).map_or(0, |g| g.stop_oks)
    }

    /// Whether a flush `Stop` is outstanding locally on `hwg`.
    pub fn is_stopping(&self, hwg: HwgId) -> bool {
        self.groups.get(&hwg).is_some_and(|g| g.stopping.is_some())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn multicast(&mut self, ctx: &mut dyn Transport, hwg: HwgId, msg: ScriptedMsg) {
        let Some(view) = self.groups.get(&hwg).and_then(|g| g.view.clone()) else {
            return;
        };
        // Encode once; every receiver gets a refcount clone of the frame.
        let wire = encode_frame(family::SCRIPTED, &msg);
        for &m in view.members.iter().filter(|&&m| m != self.me) {
            ctx.send(m, wire.clone());
        }
        // Synchronous self-delivery keeps per-sender FIFO intact.
        self.deliver(ctx, self.me, &msg);
    }

    fn deliver(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &ScriptedMsg) {
        match msg {
            ScriptedMsg::Data { hwg, view_id, data } => {
                let member = self
                    .groups
                    .get(hwg)
                    .is_some_and(|g| g.status == GroupStatus::Member);
                if member {
                    self.events.push(HwgEvent::Data {
                        hwg: *hwg,
                        view_id: *view_id,
                        src: from,
                        data: data.clone(),
                    });
                }
            }
            ScriptedMsg::Flush { hwg, nonce } => {
                if let Some(g) = self.groups.get_mut(hwg) {
                    if g.status == GroupStatus::Member && g.stopping.is_none() {
                        g.stopping = Some(Some(*nonce));
                        self.events.push(HwgEvent::Stop { hwg: *hwg });
                    }
                }
            }
            ScriptedMsg::StopAck { hwg, nonce } => {
                let done = {
                    let Some(g) = self.groups.get_mut(hwg) else {
                        return;
                    };
                    let Some(round) = &mut g.round else { return };
                    if round.nonce != *nonce {
                        return;
                    }
                    round.acks.insert(from);
                    let members = g.view.as_ref().map(|v| v.members.clone());
                    members.is_some_and(|m| m.iter().all(|n| round.acks.contains(n)))
                };
                if done {
                    self.conclude_flush(ctx, *hwg);
                }
            }
            ScriptedMsg::NewView { hwg, view } => {
                self.inject_view(*hwg, view.clone());
            }
        }
    }

    /// All members acked: install and multicast the successor view.
    fn conclude_flush(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        let Some(g) = self.groups.get_mut(&hwg) else {
            return;
        };
        g.round = None;
        let Some(old) = g.view.clone() else { return };
        g.next_seq += 1;
        let view = View::with_predecessors(
            ViewId::new(self.me, g.next_seq),
            old.members.clone(),
            vec![old.id],
        );
        self.multicast(ctx, hwg, ScriptedMsg::NewView { hwg, view });
    }
}

impl HwgSubstrate for ScriptedHwg {
    fn build(me: NodeId, _cfg: &HwgConfig) -> Self {
        ScriptedHwg::new(me)
    }

    fn node(&self) -> NodeId {
        self.me
    }

    fn start(&mut self, _ctx: &mut dyn Transport) {}

    fn join(&mut self, _ctx: &mut dyn Transport, hwg: HwgId) {
        let g = self.groups.entry(hwg).or_insert_with(Group::new);
        if g.status != GroupStatus::Member {
            g.status = GroupStatus::Joining;
            self.join_requests.push(hwg);
        }
    }

    fn create(&mut self, _ctx: &mut dyn Transport, hwg: HwgId) {
        let g = self.groups.entry(hwg).or_insert_with(Group::new);
        if g.status == GroupStatus::Member {
            return;
        }
        g.status = GroupStatus::Member;
        g.next_seq += 1;
        let view = View::initial(ViewId::new(self.me, g.next_seq), vec![self.me]);
        g.view = Some(view.clone());
        self.events.push(HwgEvent::View { hwg, view });
    }

    fn leave(&mut self, _ctx: &mut dyn Transport, hwg: HwgId) {
        if self.groups.remove(&hwg).is_some() {
            self.events.push(HwgEvent::Left { hwg });
        }
    }

    fn send(&mut self, ctx: &mut dyn Transport, hwg: HwgId, data: Payload) {
        let Some(view_id) = self
            .groups
            .get(&hwg)
            .and_then(|g| g.view.as_ref().map(|v| v.id))
        else {
            return;
        };
        self.multicast(ctx, hwg, ScriptedMsg::Data { hwg, view_id, data });
    }

    fn send_to(
        &mut self,
        ctx: &mut dyn Transport,
        hwg: HwgId,
        targets: &BTreeSet<NodeId>,
        data: Payload,
    ) {
        let Some(view) = self.groups.get(&hwg).and_then(|g| g.view.clone()) else {
            return;
        };
        let msg = ScriptedMsg::Data {
            hwg,
            view_id: view.id,
            data,
        };
        let wire = encode_frame(family::SCRIPTED, &msg);
        for &m in view
            .members
            .iter()
            .filter(|&&m| m != self.me && targets.contains(&m))
        {
            ctx.send(m, wire.clone());
        }
        if targets.contains(&self.me) {
            self.deliver(ctx, self.me, &msg);
        }
    }

    fn force_flush(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        // Only the coordinator drives the flush (non-coordinator requests
        // are a no-op, mirroring the production stack's behaviour for the
        // MERGE-VIEWS relay).
        if !self.is_coordinator(hwg) {
            return;
        }
        let Some(g) = self.groups.get_mut(&hwg) else {
            return;
        };
        if g.round.is_some() {
            return;
        }
        g.next_nonce += 1;
        let nonce = g.next_nonce;
        g.round = Some(FlushRound {
            nonce,
            acks: BTreeSet::new(),
        });
        self.multicast(ctx, hwg, ScriptedMsg::Flush { hwg, nonce });
    }

    fn stop_ok(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        let (initiator, ack) = {
            let Some(g) = self.groups.get_mut(&hwg) else {
                return;
            };
            let Some(stopping) = g.stopping.take() else {
                return;
            };
            g.stop_oks += 1;
            let coord = g.view.as_ref().map(View::coordinator);
            match (stopping, coord) {
                (Some(nonce), Some(c)) => (c, Some(nonce)),
                _ => return, // test-injected Stop: just count the answer
            }
        };
        let Some(nonce) = ack else { return };
        let msg = ScriptedMsg::StopAck { hwg, nonce };
        if initiator == self.me {
            self.deliver(ctx, self.me, &msg);
        } else {
            ctx.send(initiator, encode_frame(family::SCRIPTED, &msg));
        }
    }

    fn view_of(&self, hwg: HwgId) -> Option<&View> {
        self.groups.get(&hwg).and_then(|g| g.view.as_ref())
    }

    fn status_of(&self, hwg: HwgId) -> GroupStatus {
        self.groups
            .get(&hwg)
            .map_or(GroupStatus::Left, |g| g.status)
    }

    fn is_coordinator(&self, hwg: HwgId) -> bool {
        self.view_of(hwg)
            .is_some_and(|v| v.coordinator() == self.me)
    }

    fn groups(&self) -> Vec<HwgId> {
        self.groups
            .iter()
            .filter(|(_, g)| g.status == GroupStatus::Member)
            .map(|(&h, _)| h)
            .collect()
    }

    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &Payload) -> bool {
        if peek_family(msg) != Some(family::SCRIPTED) {
            return false;
        }
        // A malformed scripted frame is a test-harness bug; this substrate
        // runs over reliable links, so drop it silently rather than panic.
        if let Ok(sm) = decode_frame::<ScriptedMsg>(family::SCRIPTED, msg) {
            self.deliver(ctx, from, &sm);
        }
        true
    }

    fn on_timer(&mut self, _ctx: &mut dyn Transport, _token: TimerToken) -> bool {
        false
    }

    fn drain_events(&mut self) -> Vec<HwgEvent> {
        std::mem::take(&mut self.events)
    }

    fn drain_events_into(&mut self, out: &mut Vec<HwgEvent>) {
        out.append(&mut self.events);
    }
}

impl std::fmt::Debug for ScriptedHwg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedHwg")
            .field("me", &self.me)
            .field("groups", &self.groups.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}
