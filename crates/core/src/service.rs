//! The light-weight group service: struct, plumbing, and upcall dispatch.
//!
//! One [`LwgService`] runs at each application node. It owns the node's
//! HWG substrate (any [`HwgSubstrate`] — [`plwg_hwg`] Table-1
//! implementation) and naming stub ([`plwg_naming::NsClient`]), maintains
//! the local mapping table, runs the Figure-1 policies, and implements the
//! four-step partition-heal procedure of paper §6.
//!
//! The protocol itself lives in sibling modules, one per concern:
//!
//! | module                | concern                                        |
//! |-----------------------|------------------------------------------------|
//! | [`crate::mapping`]    | naming-service interaction, LWG→HWG policies   |
//! | [`crate::data_plane`] | send / pack / subset delivery                  |
//! | [`crate::flush`]      | LWG flushes, join/leave, view installation     |
//! | [`crate::switch`]     | re-mapping a group onto another HWG (§3, §6.2) |
//! | [`crate::merge`]      | MERGE-VIEWS single-flush healing (Fig. 5)      |

use crate::batch::{FlushReason, PackBuffer};
use crate::config::LwgConfig;
use crate::directory::{DirCounters, GroupDirectory};
use crate::events::LwgEvent;
use crate::msg::LwgMsg;
use crate::protocol_events::LwgProtocolEvent;
use crate::state::{ForeignTag, LwgStatus, MergeRound, NsPurpose, Phase, ServiceStats};
use crate::wire;
use plwg_hwg::{HwgEvent, HwgId, HwgSubstrate, View};
use plwg_naming::{LwgId, NsClient, RequestId};
use plwg_sim::{
    decode_frame, family, peek_family, NodeId, Payload, SimTime, TimerToken, Transport,
    TransportExt,
};
use std::collections::BTreeMap;

pub(crate) const TOK_POLICY: TimerToken = TimerToken(0x0300_0000_0000_0001);
pub(crate) const TOK_TICK: TimerToken = TimerToken(0x0300_0000_0000_0002);
pub(crate) const TOK_PACK: TimerToken = TimerToken(0x0300_0000_0000_0003);
pub(crate) const TOK_REBALANCE: TimerToken = TimerToken(0x0300_0000_0000_0004);

/// The light-weight group service at one node, generic over the Table-1
/// substrate `S` that carries its traffic.
///
/// The owner process forwards messages/timers and drains [`LwgEvent`]s;
/// [`crate::LwgNode`] is a ready-made wrapper that does exactly that.
/// Production code instantiates `LwgService<plwg_vsync::VsyncStack>`;
/// protocol tests use `LwgService<`[`crate::ScriptedHwg`]`>`.
pub struct LwgService<S: HwgSubstrate> {
    pub(crate) me: NodeId,
    pub(crate) cfg: LwgConfig,
    pub(crate) substrate: S,
    pub(crate) ns: NsClient,
    /// The sharded, indexed LWG record store (see [`crate::directory`]).
    pub(crate) dir: GroupDirectory,
    pub(crate) rounds: BTreeMap<HwgId, MergeRound>,
    /// Forward pointers left behind by switches (paper §3.1).
    pub(crate) forward: BTreeMap<LwgId, HwgId>,
    /// Naming requests awaiting a reply, with their purpose.
    pub(crate) ns_lookups: BTreeMap<RequestId, (LwgId, NsPurpose)>,
    pub(crate) foreign: Vec<ForeignTag>,
    /// HWGs with no local LWG mapped, and since when (shrink rule).
    pub(crate) idle_hwgs: BTreeMap<HwgId, SimTime>,
    pub(crate) last_ns_poll: SimTime,
    /// Last time the rebalancer ran (rate limit; see [`crate::rebalance`]).
    pub(crate) last_rebalance: SimTime,
    /// Rate limit for MERGE-VIEWS per HWG: a forced flush is pointless (and
    /// starves the HWG-level beacon merge) more than ~once a second.
    pub(crate) last_merge_views: BTreeMap<HwgId, SimTime>,
    /// Sends waiting to be packed into one HWG multicast, per backing HWG
    /// (empty unless `pack_max_msgs > 1`).
    pub(crate) packs: BTreeMap<HwgId, PackBuffer>,
    /// Whether a `TOK_PACK` timer is outstanding (one timer serves all
    /// buffers; it fires, flushes everything non-empty, and is re-armed by
    /// the next buffered send).
    pub(crate) pack_timer_armed: bool,
    pub(crate) events: Vec<LwgEvent>,
    /// Reusable buffer for [`LwgService::pump`] (capacity persists across
    /// pumps so draining the substrate is allocation-free).
    hwg_scratch: Vec<HwgEvent>,
}

impl<S: HwgSubstrate> LwgService<S> {
    /// Starts building a service for node `me`: set the name servers (and
    /// optionally a config or pre-built substrate), then call
    /// [`crate::LwgBuilder::build`].
    pub fn builder(me: NodeId) -> crate::LwgBuilder<S> {
        crate::LwgBuilder::new(me)
    }

    /// Creates the service for node `me`, talking to the given name
    /// servers. The substrate is built from `cfg.hwg` via
    /// [`HwgSubstrate::build`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or `servers` is empty.
    #[deprecated(
        since = "0.1.0",
        note = "use `LwgService::builder(me).servers(..).config(cfg).build()`"
    )]
    pub fn new(me: NodeId, servers: Vec<NodeId>, cfg: LwgConfig) -> Self {
        Self::builder(me)
            .servers(servers)
            .config(cfg)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates the service around an already-built substrate endpoint
    /// (tests that pre-programme a [`crate::ScriptedHwg`], alternative
    /// backends with out-of-band construction).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or `servers` is empty.
    #[deprecated(
        since = "0.1.0",
        note = "use `LwgService::builder(me).substrate(s).servers(..).config(cfg).build()`"
    )]
    pub fn with_substrate(substrate: S, servers: Vec<NodeId>, cfg: LwgConfig) -> Self {
        Self::builder(substrate.node())
            .substrate(substrate)
            .servers(servers)
            .config(cfg)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Assembles the service from parts the builder has already checked:
    /// `cfg` validated (with `auto_stop_ok` forced off), `servers`
    /// non-empty, `substrate` belonging to this node.
    pub(crate) fn from_parts(substrate: S, servers: Vec<NodeId>, cfg: LwgConfig) -> Self {
        let me = substrate.node();
        LwgService {
            me,
            substrate,
            ns: NsClient::new(me, servers, cfg.naming.clone()),
            cfg,
            dir: GroupDirectory::new(me),
            rounds: BTreeMap::new(),
            forward: BTreeMap::new(),
            ns_lookups: BTreeMap::new(),
            foreign: Vec::new(),
            idle_hwgs: BTreeMap::new(),
            last_ns_poll: SimTime::ZERO,
            last_rebalance: SimTime::ZERO,
            last_merge_views: BTreeMap::new(),
            packs: BTreeMap::new(),
            pack_timer_armed: false,
            events: Vec::new(),
            hwg_scratch: Vec::new(),
        }
    }

    /// The node this service runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The configuration the service was built with (post-validation;
    /// `hwg.auto_stop_ok` is always `false` here).
    pub fn config(&self) -> &LwgConfig {
        &self.cfg
    }

    /// Must be called from the owner's `on_start`.
    pub fn start(&mut self, ctx: &mut dyn Transport) {
        self.substrate.start(ctx);
        ctx.set_timer(self.cfg.tick_interval, TOK_TICK);
        ctx.set_timer(self.cfg.policy_interval, TOK_POLICY);
        if let Some(interval) = self.cfg.rebalance_interval {
            ctx.set_timer(interval, TOK_REBALANCE);
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The current view of `lwg` at this member.
    pub fn view_of(&self, lwg: LwgId) -> Option<&View> {
        self.dir.get(lwg).and_then(|s| s.view.as_ref())
    }

    /// The HWG `lwg` is currently mapped onto here.
    pub fn mapping_of(&self, lwg: LwgId) -> Option<HwgId> {
        self.dir.get(lwg).and_then(|s| s.hwg)
    }

    /// HWGs this node is currently a member of.
    pub fn hwgs(&self) -> Vec<HwgId> {
        self.substrate.groups()
    }

    /// Whether this node is the acting coordinator of `lwg`.
    pub fn is_lwg_coordinator(&self, lwg: LwgId) -> bool {
        self.lwg_coordinator(lwg) == Some(self.me)
    }

    /// Direct access to the HWG substrate (experiments and tests).
    pub fn hwg_stack(&self) -> &S {
        &self.substrate
    }

    /// Mutable access to the HWG substrate (tests that script it).
    pub fn hwg_stack_mut(&mut self) -> &mut S {
        &mut self.substrate
    }

    /// Takes the application upcalls produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<LwgEvent> {
        std::mem::take(&mut self.events)
    }

    /// A point-in-time summary of this node's resources — counts only;
    /// per-group status is served by the indexed
    /// [`LwgService::lwg_status`] / [`LwgService::iter_status`] queries
    /// instead of a clone-everything snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            groups: self.dir.len(),
            hwgs: self.hwgs(),
            forward_pointers: self.forward.len(),
            pending_ns_requests: self.ns_lookups.len(),
        }
    }

    /// Status of one group — an indexed O(log L) lookup.
    pub fn lwg_status(&self, lwg: LwgId) -> Option<LwgStatus> {
        self.dir.get(lwg).map(|s| self.status_of(lwg, s))
    }

    /// Status of every local group, ascending by id. Lazily materialised:
    /// callers that stop early never pay for the rest of the table.
    pub fn iter_status(&self) -> impl Iterator<Item = LwgStatus> + '_ {
        // tidy-allow(directory-hygiene): iter_status is the one sanctioned full walk
        self.dir.iter_all().map(|(lwg, s)| self.status_of(lwg, s))
    }

    /// Directory operation counters (monotone) — recorded by the
    /// `lwg_scale_sweep` bench to show lookup cost independent of the
    /// total group count.
    pub fn directory_counters(&self) -> DirCounters {
        self.dir.counters()
    }

    fn status_of(&self, lwg: LwgId, s: &crate::state::LwgState) -> LwgStatus {
        LwgStatus {
            lwg,
            phase: match s.phase {
                Phase::ReadingNs => "reading-ns",
                Phase::JoiningHwg => "joining-hwg",
                Phase::AwaitingAdmission => "awaiting-admission",
                Phase::Member => "member",
                Phase::Leaving => "leaving",
            },
            view: s.view.as_ref().map(|v| v.id),
            members: s.view.as_ref().map_or(0, View::len),
            hwg: s.hwg,
            coordinator: self.lwg_coordinator(lwg) == Some(self.me),
            busy: s.lflush.is_some()
                || s.switching.is_some()
                || s.follow_switch.is_some()
                || s.awaiting_prune.is_some(),
        }
    }

    /// The acting coordinator of `lwg`: its most senior member that is
    /// still in the backing HWG view.
    pub(crate) fn lwg_coordinator(&self, lwg: LwgId) -> Option<NodeId> {
        let state = self.dir.get(lwg)?;
        let view = state.view.as_ref()?;
        let hwg = state.hwg?;
        let hview = self.substrate.view_of(hwg)?;
        view.members.iter().copied().find(|&m| hview.contains(m))
    }

    // ------------------------------------------------------------------
    // Plumbing
    // ------------------------------------------------------------------

    /// Routes an incoming message. Returns `true` when consumed.
    pub fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &Payload) -> bool {
        if self.substrate.on_message(ctx, from, msg) {
            self.pump(ctx);
            return true;
        }
        if self.ns.on_message(ctx, from, msg) {
            self.pump_ns(ctx);
            return true;
        }
        if peek_family(msg) == Some(family::LWG) {
            // Direct node-to-node LWG message (Redirect).
            match decode_frame::<LwgMsg>(family::LWG, msg) {
                Ok(lm) => self.handle_lwg_msg(ctx, None, from, &lm),
                Err(_) => ctx.metrics().incr(crate::keys::DECODE_ERRORS),
            }
            return true;
        }
        false
    }

    /// Routes a timer. Returns `true` when consumed.
    pub fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) -> bool {
        if self.substrate.on_timer(ctx, token) {
            self.pump(ctx);
            return true;
        }
        if self.ns.on_timer(ctx, token) {
            self.pump_ns(ctx);
            return true;
        }
        match token {
            TOK_TICK => {
                self.tick(ctx);
                ctx.set_timer(self.cfg.tick_interval, TOK_TICK);
                true
            }
            TOK_POLICY => {
                self.run_policies(ctx);
                ctx.set_timer(self.cfg.policy_interval, TOK_POLICY);
                true
            }
            TOK_PACK => {
                self.pack_timer_armed = false;
                self.flush_all_packs(ctx, FlushReason::Timer);
                self.pump(ctx);
                true
            }
            TOK_REBALANCE => {
                if let Some(interval) = self.cfg.rebalance_interval {
                    self.run_rebalance(ctx);
                    ctx.set_timer(interval, TOK_REBALANCE);
                }
                true
            }
            _ => false,
        }
    }

    /// Drains and handles buffered substrate events until quiescent:
    /// handling one event can enqueue more (e.g. `stop_ok` completes a
    /// flush which installs a view). Called automatically from the
    /// message/timer plumbing; public so tests that inject events straight
    /// into a scripted substrate can make the service observe them.
    pub fn pump(&mut self, ctx: &mut dyn Transport) {
        // The scratch buffer is taken for the duration of the pump (so a
        // re-entrant pump simply allocates afresh) and put back with its
        // capacity intact: the steady-state loop allocates nothing.
        let mut events = std::mem::take(&mut self.hwg_scratch);
        loop {
            events.clear();
            self.substrate.drain_events_into(&mut events);
            if events.is_empty() {
                break;
            }
            for ev in events.drain(..) {
                self.handle_hwg_event(ctx, ev);
            }
        }
        self.hwg_scratch = events;
    }

    fn pump_ns(&mut self, ctx: &mut dyn Transport) {
        for ev in self.ns.drain_events() {
            self.handle_ns_event(ctx, ev);
        }
    }

    // ------------------------------------------------------------------
    // HWG upcalls
    // ------------------------------------------------------------------

    fn handle_hwg_event(&mut self, ctx: &mut dyn Transport, ev: HwgEvent) {
        match ev {
            HwgEvent::Stop { hwg } => {
                // Barrier: buffered packs must go out before stop_ok so
                // they are part of the closing view's message set — a
                // batch never straddles the HWG view cut.
                self.flush_pack(ctx, hwg, FlushReason::Barrier);
                // Piggyback our LWG view advertisement on every HWG flush:
                // sent before stop_ok, it is part of the closing view's
                // message set, so after the flush every member knows every
                // LWG view present (the ALL-VIEWS exchange of Fig. 5).
                let views = self.my_views_on(hwg);
                if !views.is_empty() {
                    self.substrate
                        .send(ctx, hwg, wire::frame(&LwgMsg::AllViews { views }));
                }
                self.substrate.stop_ok(ctx, hwg);
            }
            HwgEvent::Data {
                hwg,
                view_id: _,
                src,
                data,
            } => {
                // The payload of an HWG multicast is itself a complete LWG
                // frame; anything else (a raw application payload on a bare
                // substrate) is not ours to interpret.
                if peek_family(&data) == Some(family::LWG) {
                    match decode_frame::<LwgMsg>(family::LWG, &data) {
                        Ok(lm) => self.handle_lwg_msg(ctx, Some(hwg), src, &lm),
                        Err(_) => ctx.metrics().incr(crate::keys::DECODE_ERRORS),
                    }
                }
            }
            HwgEvent::View { hwg, view } => self.handle_hwg_view(ctx, hwg, view),
            HwgEvent::Left { hwg } => {
                self.idle_hwgs.remove(&hwg);
                self.rounds.remove(&hwg);
                // The transport is gone; buffered packs can no longer be
                // multicast (the stranded LWGs re-join from scratch).
                self.packs.remove(&hwg);
                // Any LWG still mapped there lost its transport: restart
                // its join flow from the naming service.
                for lwg in self.dir.mapped_on(hwg) {
                    self.restart_join(ctx, lwg);
                }
            }
        }
    }

    /// Reacts to a new HWG view: complete joins/switches that were waiting
    /// for HWG membership, run the merge round, refresh naming, prune LWG
    /// members that fell out of the HWG.
    fn handle_hwg_view(&mut self, ctx: &mut dyn Transport, hwg: HwgId, hview: View) {
        ctx.emit(|| LwgProtocolEvent::HwgView {
            hwg,
            view: hview.clone(),
        });

        // Feed the directory's HWG-id allocation floor: ids re-learned
        // after a restart must never be re-allocated.
        self.dir.observe_hwg(hwg);

        // Barrier (belt and braces — the Stop upcall already flushed):
        // anything still buffered is multicast now, entirely inside the
        // new view, before any announcement below.
        self.flush_pack(ctx, hwg, FlushReason::Barrier);

        // 1. Joiners waiting for this HWG ask for admission now (the
        //    reverse index holds joiners under their *target* HWG).
        for lwg in self.dir.mapped_on(hwg) {
            if self
                .dir
                .get(lwg)
                .is_some_and(|s| s.phase == Phase::JoiningHwg)
                && hview.contains(self.me)
            {
                self.request_admission(ctx, lwg, hwg);
            }
        }

        // 2. Members following a switch to this HWG report readiness.
        for lwg in self.dir.following_to(hwg) {
            let flush = self
                .dir
                .get(lwg)
                .and_then(|s| s.follow_switch.as_ref().map(|(f, _)| *f));
            if let Some(flush) = flush {
                if hview.contains(self.me) {
                    self.substrate
                        .send(ctx, hwg, wire::frame(&LwgMsg::SwitchReady { lwg, flush }));
                }
            }
        }

        // 3. Merge round: the flush that produced this view carried every
        //    member's AllViews; merge concurrent LWG views now.
        self.complete_merge_round(ctx, hwg, &hview);

        // 4. An HWG *merge* (several predecessors) means concurrent LWG
        //    views may now share this HWG without knowing it: trigger
        //    MERGE-VIEWS (step 3→4 of paper §6). Any member may send it;
        //    the HWG coordinator does, deterministically.
        if hview.predecessors.len() > 1 && self.substrate.is_coordinator(hwg) {
            self.trigger_merge_views(ctx, hwg);
        }

        // 5. Coordinators refresh the naming service with the new HWG view
        //    (paper Table 4 stage 2) and prune members that fell out.
        //
        //    Pruning needs no LWG-level flush: the HWG flush that produced
        //    this view already guaranteed all members the same delivered
        //    set. One announcement installs the pruned view; until it
        //    arrives, members buffer their sends (`awaiting_prune`). This
        //    is the resource sharing the paper measures in Figure 2's
        //    recovery panel: one HWG flush serves every co-mapped group.
        for lwg in self.dir.mapped_on(hwg) {
            let Some(stale) = self
                .dir
                .get(lwg)
                .and_then(|s| s.view.as_ref())
                .map(|view| view.members.iter().any(|m| !hview.contains(*m)))
            else {
                continue; // no installed view (still joining)
            };
            if stale {
                if let Some(mut state) = self.dir.get_mut(lwg) {
                    if state.awaiting_prune.is_none() {
                        state.awaiting_prune = Some(ctx.now());
                    }
                }
            }
            if self.lwg_coordinator(lwg) != Some(self.me) {
                continue;
            }
            if stale {
                self.announce_pruned_view(ctx, lwg, &hview);
            } else {
                self.refresh_mapping(ctx, lwg);
                self.maybe_start_lwg_flush(ctx, lwg);
            }
        }

        self.note_idle_if_unused(ctx, hwg);
    }

    // ------------------------------------------------------------------
    // LWG message dispatch
    // ------------------------------------------------------------------

    pub(crate) fn handle_lwg_msg(
        &mut self,
        ctx: &mut dyn Transport,
        hwg: Option<HwgId>,
        from: NodeId,
        msg: &LwgMsg,
    ) {
        match msg {
            LwgMsg::Data {
                lwg,
                lwg_view,
                data,
            } => {
                self.handle_lwg_data(ctx, hwg, *lwg, *lwg_view, from, data.clone());
            }
            LwgMsg::Batch { entries } => {
                // Unpack in send order: per-sender FIFO within a batch is
                // the sender's append order, across batches the HWG's
                // per-sender sequencing.
                for (lwg, lwg_view, data) in entries {
                    self.handle_lwg_data(ctx, hwg, *lwg, *lwg_view, from, data.clone());
                }
            }
            LwgMsg::JoinReq { lwg } => self.handle_join_req(ctx, hwg, *lwg, from),
            LwgMsg::LeaveReq { lwg } => self.handle_leave_req(ctx, *lwg, from),
            LwgMsg::Flush {
                lwg,
                flush,
                members,
            } => self.handle_lwg_flush(ctx, *lwg, *flush, members.clone(), None),
            LwgMsg::FlushOk { lwg, flush } => {
                self.handle_flush_ok(ctx, *lwg, *flush, from);
            }
            LwgMsg::NewLwgView {
                lwg,
                flush,
                view,
                hwg: on_hwg,
            } => self.handle_new_lwg_view(ctx, *lwg, *flush, view.clone(), *on_hwg),
            LwgMsg::SwitchTo {
                lwg,
                flush,
                to,
                members,
            } => {
                // A switch doubles as a flush of the old mapping…
                self.handle_lwg_flush(ctx, *lwg, *flush, members.clone(), Some(*to));
            }
            LwgMsg::SwitchReady { lwg, flush } => {
                self.handle_switch_ready(ctx, *lwg, *flush, from);
            }
            LwgMsg::MergeViews => self.handle_merge_views_msg(ctx, hwg),
            LwgMsg::AllViews { views } => self.handle_all_views(hwg, views),
            LwgMsg::Dissolved { lwg, flush } => self.handle_dissolved(ctx, *lwg, *flush),
            LwgMsg::Redirect { lwg, to } => self.handle_redirect(ctx, *lwg, *to),
        }
    }
}

impl<S: HwgSubstrate> std::fmt::Debug for LwgService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LwgService")
            .field("me", &self.me)
            .field("groups", &self.dir.len())
            .field("hwgs", &self.hwgs())
            .finish_non_exhaustive()
    }
}

/// The service is also a [`plwg_sim::Endpoint`], so
/// `plwg_sim::Driver<LwgService<S>>` puts it on a simulated node without a
/// hand-written [`plwg_sim::Process`] demux ([`crate::LwgNode`] remains the
/// richer wrapper that additionally indexes the recorded upcalls).
impl<S: HwgSubstrate> plwg_sim::Endpoint for LwgService<S> {
    type Event = LwgEvent;

    fn start(&mut self, ctx: &mut dyn Transport) {
        LwgService::start(self, ctx);
    }

    fn handle_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &Payload) -> bool {
        LwgService::on_message(self, ctx, from, msg)
    }

    fn handle_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) -> bool {
        LwgService::on_timer(self, ctx, token)
    }

    fn drain(&mut self) -> Vec<LwgEvent> {
        LwgService::drain_events(self)
    }
}
