//! The light-weight group service state machine.
//!
//! One [`LwgService`] runs at each application node. It owns the node's
//! HWG stack ([`plwg_vsync::VsyncStack`]) and naming stub
//! ([`plwg_naming::NsClient`]), maintains the local mapping table, runs the
//! Figure-1 policies, and implements the four-step partition-heal procedure
//! of paper §6.

use crate::batch::{FlushReason, PackBuffer};
use crate::config::LwgConfig;
use crate::events::LwgEvent;
use crate::msg::{LFlushId, LwgMsg};
use crate::policy::{self, PolicyAction};
use plwg_naming::{LwgId, Mapping, NsClient, NsEvent, RequestId};
use plwg_sim::{cast, payload, Context, NodeId, Payload, SimTime, TimerToken};
use plwg_vsync::{GroupStatus, HwgId, View, ViewId, VsEvent, VsyncStack};
use std::collections::{BTreeMap, BTreeSet, HashSet};

const TOK_POLICY: TimerToken = TimerToken(0x0300_0000_0000_0001);
const TOK_TICK: TimerToken = TimerToken(0x0300_0000_0000_0002);
const TOK_PACK: TimerToken = TimerToken(0x0300_0000_0000_0003);

/// Why a naming request was issued (routes the reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NsPurpose {
    /// Initial `ns.read` of the join flow.
    JoinLookup,
    /// `ns.testset` claiming the mapping before founding the group's
    /// first view.
    FoundClaim,
    /// Periodic coordinator poll (callback-vs-polling ablation).
    Poll,
}

/// Where a group member currently stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the naming service to answer the join lookup.
    ReadingNs,
    /// Waiting to become a member of the target HWG.
    JoiningHwg,
    /// HWG member; asked the LWG coordinator for admission.
    AwaitingAdmission,
    /// Full member of an installed LWG view.
    Member,
    /// Asked to leave; waiting for the view that excludes us.
    Leaving,
}

/// Member-side state of an in-progress LWG flush (join/leave/switch).
#[derive(Debug)]
struct LwgFlush {
    flush: LFlushId,
    /// Members whose `FlushOk` is awaited.
    members: Vec<NodeId>,
    oks: BTreeSet<NodeId>,
    /// The successor view, once announced.
    new_view: Option<(View, HwgId)>,
    started_at: SimTime,
}

/// Coordinator-side state of an in-progress switch (paper §3: the
/// switching protocol; also step 2 of partition healing, §6.2).
#[derive(Debug)]
struct SwitchState {
    flush: LFlushId,
    to: HwgId,
    members: Vec<NodeId>,
    ready: BTreeSet<NodeId>,
    started_at: SimTime,
}

/// Per-LWG state at one node.
#[derive(Debug)]
struct LwgState {
    phase: Phase,
    /// Current LWG view (when `Member`/`Leaving`).
    view: Option<View>,
    /// Ids of LWG views this node has installed.
    history: HashSet<ViewId>,
    /// The HWG the group is currently mapped onto (target HWG during the
    /// join flow).
    hwg: Option<HwgId>,
    /// Create the target HWG instead of probing for it (fresh allocation).
    create_hwg: bool,
    /// Sends buffered while no view is installed or a flush is running.
    pending_send: Vec<Payload>,
    /// Admission bookkeeping (joiner side).
    join_deadline: Option<SimTime>,
    join_attempts: u32,
    /// Coordinator bookkeeping.
    pending_joins: BTreeSet<NodeId>,
    pending_leaves: BTreeSet<NodeId>,
    lflush: Option<LwgFlush>,
    switching: Option<SwitchState>,
    /// Member-side: the switch we are following (stop data, join target,
    /// report ready).
    follow_switch: Option<(LFlushId, HwgId)>,
    /// `FlushOk`s that arrived before their `Flush` (FIFO is per sender;
    /// a peer's ack can overtake the coordinator's flush announcement).
    early_oks: Vec<(LFlushId, NodeId)>,
    /// Set when the backing HWG view dropped some of this LWG's members:
    /// a pruned view announcement is imminent (sends are buffered until it
    /// arrives so no member delivers messages others will not see).
    awaiting_prune: Option<SimTime>,
    next_view_seq: u64,
    next_flush_nonce: u64,
}

impl LwgState {
    fn new() -> Self {
        LwgState {
            phase: Phase::ReadingNs,
            view: None,
            history: HashSet::new(),
            hwg: None,
            create_hwg: false,
            pending_send: Vec::new(),
            join_deadline: None,
            join_attempts: 0,
            pending_joins: BTreeSet::new(),
            pending_leaves: BTreeSet::new(),
            lflush: None,
            switching: None,
            follow_switch: None,
            early_oks: Vec::new(),
            awaiting_prune: None,
            next_view_seq: 0,
            next_flush_nonce: 0,
        }
    }

    fn take_view_seq(&mut self) -> u64 {
        self.next_view_seq += 1;
        self.next_view_seq
    }

    fn bump_view_seq(&mut self, seen: u64) {
        self.next_view_seq = self.next_view_seq.max(seen);
    }

    fn take_flush_nonce(&mut self) -> u64 {
        self.next_flush_nonce += 1;
        self.next_flush_nonce
    }
}

/// Per-HWG merge-views round: the LWG views advertised by members during
/// the current HWG view (via `AllViews` piggybacked on every flush).
#[derive(Debug, Default)]
struct MergeRound {
    /// Whether MERGE-VIEWS was multicast/observed in this HWG view.
    triggered: bool,
    /// lwg → (view id → view) collected from `AllViews`.
    collected: BTreeMap<LwgId, BTreeMap<ViewId, View>>,
}

/// Recently seen data tagged with an LWG view we do not know — potential
/// evidence of a concurrent view (local peer-discovery fallback).
#[derive(Debug)]
struct ForeignTag {
    seen_at: SimTime,
    hwg: HwgId,
    lwg: LwgId,
    view_id: ViewId,
}

/// A snapshot of one group's state at this node (see
/// [`LwgService::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LwgStatus {
    /// The group.
    pub lwg: LwgId,
    /// Lifecycle phase, as a stable label: `"reading-ns"`,
    /// `"joining-hwg"`, `"awaiting-admission"`, `"member"`, `"leaving"`.
    pub phase: &'static str,
    /// Current view id, when installed.
    pub view: Option<ViewId>,
    /// Number of members in the current view.
    pub members: usize,
    /// The HWG the group is mapped onto (or targeted at, while joining).
    pub hwg: Option<HwgId>,
    /// Whether this node acts as the group's coordinator.
    pub coordinator: bool,
    /// Whether a flush/switch/prune is in progress.
    pub busy: bool,
}

/// A point-in-time summary of the whole service at this node (see
/// [`LwgService::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Per-group status, ordered by group id.
    pub lwgs: Vec<LwgStatus>,
    /// HWGs this node is currently a member of.
    pub hwgs: Vec<HwgId>,
    /// Forward pointers held (LWGs known to have switched away).
    pub forward_pointers: usize,
    /// Naming requests awaiting a reply.
    pub pending_ns_requests: usize,
}

/// The light-weight group service at one node.
///
/// The owner process forwards messages/timers and drains [`LwgEvent`]s;
/// [`crate::LwgNode`] is a ready-made wrapper that does exactly that.
pub struct LwgService {
    me: NodeId,
    cfg: LwgConfig,
    stack: VsyncStack,
    ns: NsClient,
    lwgs: BTreeMap<LwgId, LwgState>,
    rounds: BTreeMap<HwgId, MergeRound>,
    /// Forward pointers left behind by switches (paper §3.1).
    forward: BTreeMap<LwgId, HwgId>,
    /// Naming requests awaiting a reply, with their purpose.
    ns_lookups: BTreeMap<RequestId, (LwgId, NsPurpose)>,
    foreign: Vec<ForeignTag>,
    /// HWGs with no local LWG mapped, and since when (shrink rule).
    idle_hwgs: BTreeMap<HwgId, SimTime>,
    next_hwg_counter: u64,
    last_ns_poll: SimTime,
    /// Rate limit for MERGE-VIEWS per HWG: a forced flush is pointless (and
    /// starves the HWG-level beacon merge) more than ~once a second.
    last_merge_views: BTreeMap<HwgId, SimTime>,
    /// Sends waiting to be packed into one HWG multicast, per backing HWG
    /// (empty unless `pack_max_msgs > 1`).
    packs: BTreeMap<HwgId, PackBuffer>,
    /// Whether a `TOK_PACK` timer is outstanding (one timer serves all
    /// buffers; it fires, flushes everything non-empty, and is re-armed by
    /// the next buffered send).
    pack_timer_armed: bool,
    events: Vec<LwgEvent>,
}

impl LwgService {
    /// Creates the service for node `me`, talking to the given name
    /// servers.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or `servers` is empty.
    pub fn new(me: NodeId, servers: Vec<NodeId>, mut cfg: LwgConfig) -> Self {
        // The service answers Stop itself, after advertising its views.
        cfg.vsync.auto_stop_ok = false;
        cfg.validate();
        LwgService {
            me,
            stack: VsyncStack::new(me, cfg.vsync.clone()),
            ns: NsClient::new(me, servers, cfg.naming.clone()),
            cfg,
            lwgs: BTreeMap::new(),
            rounds: BTreeMap::new(),
            forward: BTreeMap::new(),
            ns_lookups: BTreeMap::new(),
            foreign: Vec::new(),
            idle_hwgs: BTreeMap::new(),
            next_hwg_counter: 0,
            last_ns_poll: SimTime::ZERO,
            last_merge_views: BTreeMap::new(),
            packs: BTreeMap::new(),
            pack_timer_armed: false,
            events: Vec::new(),
        }
    }

    /// The node this service runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Must be called from the owner's `on_start`.
    pub fn start(&mut self, ctx: &mut Context<'_>) {
        self.stack.start(ctx);
        ctx.set_timer(self.cfg.tick_interval, TOK_TICK);
        ctx.set_timer(self.cfg.policy_interval, TOK_POLICY);
    }

    // ------------------------------------------------------------------
    // Public API (paper Table 1, user side)
    // ------------------------------------------------------------------

    /// Joins light-weight group `lwg`. The `View` upcall confirms
    /// membership. No-op if already joining or a member.
    pub fn join(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        if self.lwgs.contains_key(&lwg) {
            return;
        }
        let state = LwgState::new();
        self.lwgs.insert(lwg, state);
        ctx.trace("lwg.join.start", || format!("{lwg}"));
        let req = self.ns.read(ctx, lwg);
        self.ns_lookups.insert(req, (lwg, NsPurpose::JoinLookup));
    }

    /// Leaves `lwg`; the `Left` upcall confirms.
    pub fn leave(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        match state.phase {
            Phase::ReadingNs | Phase::JoiningHwg | Phase::AwaitingAdmission => {
                // Not admitted anywhere yet: just abandon the join.
                self.lwgs.remove(&lwg);
                self.events.push(LwgEvent::Left { lwg });
            }
            Phase::Member => {
                let view = state.view.clone().expect("member has a view");
                if view.len() == 1 {
                    // Sole member: dissolve the group.
                    let hwg = state.hwg;
                    self.lwgs.remove(&lwg);
                    self.ns.unset(ctx, lwg, view.id);
                    self.events.push(LwgEvent::Left { lwg });
                    if let Some(h) = hwg {
                        self.note_idle_if_unused(ctx, h);
                    }
                    return;
                }
                state.phase = Phase::Leaving;
                state.pending_leaves.insert(self.me);
                let hwg = state.hwg;
                if let Some(hwg) = hwg {
                    // Barrier: our buffered data must precede the leave
                    // request in the per-sender FIFO stream.
                    self.flush_pack(ctx, hwg, FlushReason::Barrier);
                    self.stack.send(ctx, hwg, payload(LwgMsg::LeaveReq { lwg }));
                }
                self.maybe_start_lwg_flush(ctx, lwg);
            }
            Phase::Leaving => {}
        }
    }

    /// Sends a multicast on `lwg` (buffered until a view is installed and
    /// no flush is in progress).
    pub fn send(&mut self, ctx: &mut Context<'_>, lwg: LwgId, data: Payload) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        let blocked = state.phase != Phase::Member
            || state.lflush.is_some()
            || state.follow_switch.is_some()
            || state.switching.is_some()
            || state.awaiting_prune.is_some();
        if blocked {
            state.pending_send.push(data);
            return;
        }
        let lwg_view = state.view.as_ref().expect("member has a view").id;
        let hwg = state.hwg.expect("member has a mapping");
        ctx.metrics().incr("lwg.data_sent");
        if self.cfg.pack_max_msgs > 1 {
            let occupancy = self.packs.entry(hwg).or_default().push(lwg, lwg_view, data);
            if occupancy >= self.cfg.pack_max_msgs {
                self.flush_pack(ctx, hwg, FlushReason::Full);
            } else if !self.pack_timer_armed {
                self.pack_timer_armed = true;
                ctx.set_timer(self.cfg.pack_delay, TOK_PACK);
            }
            return;
        }
        let msg = LwgMsg::Data {
            lwg,
            lwg_view,
            data,
        };
        self.send_data_on(ctx, hwg, &[lwg], msg);
    }

    // ------------------------------------------------------------------
    // Message packing + subset delivery (data-plane optimisations)
    // ------------------------------------------------------------------

    /// The subset-multicast target set for data of `lwgs` on `hwg`: the
    /// union of the groups' current LWG views plus the HWG coordinator
    /// (whose retransmission store anchors flush pulls). `None` when
    /// subset delivery is disabled, the HWG view is unknown, or the set is
    /// not a *strict* subset of the HWG view — then a plain full multicast
    /// is both cheaper and simpler.
    fn subset_targets<I>(&self, hwg: HwgId, lwgs: I) -> Option<BTreeSet<NodeId>>
    where
        I: IntoIterator<Item = LwgId>,
    {
        if !self.cfg.subset_delivery {
            return None;
        }
        let hview = self.stack.view_of(hwg)?;
        let mut targets: BTreeSet<NodeId> = BTreeSet::new();
        targets.insert(hview.coordinator());
        for lwg in lwgs {
            let view = self.lwgs.get(&lwg)?.view.as_ref()?;
            targets.extend(view.members.iter().copied());
        }
        if targets.len() < hview.len() && targets.iter().all(|t| hview.contains(*t)) {
            Some(targets)
        } else {
            None
        }
    }

    /// Multicasts a data-plane message for `lwgs` on `hwg`, addressing
    /// only the interested members when the subset path applies.
    fn send_data_on(&mut self, ctx: &mut Context<'_>, hwg: HwgId, lwgs: &[LwgId], msg: LwgMsg) {
        if let Some(targets) = self.subset_targets(hwg, lwgs.iter().copied()) {
            ctx.metrics().incr("lwg.subset_sends");
            self.stack.send_to(ctx, hwg, &targets, payload(msg));
        } else {
            self.stack.send(ctx, hwg, payload(msg));
        }
    }

    /// Flushes the pack buffer of `hwg` into one [`LwgMsg::Batch`]
    /// multicast. Barrier callers invoke this *before* any flush, view or
    /// merge control message so a batch never crosses a view cut on
    /// either layer.
    fn flush_pack(&mut self, ctx: &mut Context<'_>, hwg: HwgId, reason: FlushReason) {
        let Some(buf) = self.packs.get_mut(&hwg) else {
            return;
        };
        if buf.is_empty() {
            return;
        }
        let entries = buf.take();
        ctx.metrics().incr("lwg.batch.sent");
        ctx.metrics().incr(reason.metric());
        ctx.metrics()
            .observe("lwg.batch.occupancy", entries.len() as u64);
        let lwgs: Vec<LwgId> = entries.iter().map(|(l, _, _)| *l).collect();
        self.send_data_on(ctx, hwg, &lwgs, LwgMsg::Batch { entries });
    }

    /// Flushes every non-empty pack buffer (pack-delay timer path).
    fn flush_all_packs(&mut self, ctx: &mut Context<'_>, reason: FlushReason) {
        let hwgs: Vec<HwgId> = self
            .packs
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(&h, _)| h)
            .collect();
        for hwg in hwgs {
            self.flush_pack(ctx, hwg, reason);
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The current view of `lwg` at this member.
    pub fn view_of(&self, lwg: LwgId) -> Option<&View> {
        self.lwgs.get(&lwg).and_then(|s| s.view.as_ref())
    }

    /// The HWG `lwg` is currently mapped onto here.
    pub fn mapping_of(&self, lwg: LwgId) -> Option<HwgId> {
        self.lwgs.get(&lwg).and_then(|s| s.hwg)
    }

    /// HWGs this node is currently a member of.
    pub fn hwgs(&self) -> Vec<HwgId> {
        self.stack.groups().collect()
    }

    /// Whether this node is the acting coordinator of `lwg`.
    pub fn is_lwg_coordinator(&self, lwg: LwgId) -> bool {
        self.lwg_coordinator(lwg) == Some(self.me)
    }

    /// Direct access to the HWG stack (experiments and tests).
    pub fn hwg_stack(&self) -> &VsyncStack {
        &self.stack
    }

    /// Takes the application upcalls produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<LwgEvent> {
        std::mem::take(&mut self.events)
    }

    /// A point-in-time summary of this node's groups and resources —
    /// the operator's view of the mapping table.
    pub fn stats(&self) -> ServiceStats {
        let lwgs = self
            .lwgs
            .iter()
            .map(|(&lwg, s)| LwgStatus {
                lwg,
                phase: match s.phase {
                    Phase::ReadingNs => "reading-ns",
                    Phase::JoiningHwg => "joining-hwg",
                    Phase::AwaitingAdmission => "awaiting-admission",
                    Phase::Member => "member",
                    Phase::Leaving => "leaving",
                },
                view: s.view.as_ref().map(|v| v.id),
                members: s.view.as_ref().map_or(0, View::len),
                hwg: s.hwg,
                coordinator: self.lwg_coordinator(lwg) == Some(self.me),
                busy: s.lflush.is_some()
                    || s.switching.is_some()
                    || s.follow_switch.is_some()
                    || s.awaiting_prune.is_some(),
            })
            .collect();
        ServiceStats {
            lwgs,
            hwgs: self.hwgs(),
            forward_pointers: self.forward.len(),
            pending_ns_requests: self.ns_lookups.len(),
        }
    }

    /// The acting coordinator of `lwg`: its most senior member that is
    /// still in the backing HWG view.
    fn lwg_coordinator(&self, lwg: LwgId) -> Option<NodeId> {
        let state = self.lwgs.get(&lwg)?;
        let view = state.view.as_ref()?;
        let hwg = state.hwg?;
        let hview = self.stack.view_of(hwg)?;
        view.members.iter().copied().find(|&m| hview.contains(m))
    }

    // ------------------------------------------------------------------
    // Plumbing
    // ------------------------------------------------------------------

    /// Routes an incoming message. Returns `true` when consumed.
    pub fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: &Payload) -> bool {
        if self.stack.on_message(ctx, from, msg) {
            self.pump_vsync(ctx);
            return true;
        }
        if self.ns.on_message(ctx, from, msg) {
            self.pump_ns(ctx);
            return true;
        }
        if let Some(lm) = cast::<LwgMsg>(msg) {
            // Direct node-to-node LWG message (Redirect).
            self.handle_lwg_msg(ctx, None, from, lm);
            return true;
        }
        false
    }

    /// Routes a timer. Returns `true` when consumed.
    pub fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) -> bool {
        if self.stack.on_timer(ctx, token) {
            self.pump_vsync(ctx);
            return true;
        }
        if self.ns.on_timer(ctx, token) {
            self.pump_ns(ctx);
            return true;
        }
        match token {
            TOK_TICK => {
                self.tick(ctx);
                ctx.set_timer(self.cfg.tick_interval, TOK_TICK);
                true
            }
            TOK_POLICY => {
                self.run_policies(ctx);
                ctx.set_timer(self.cfg.policy_interval, TOK_POLICY);
                true
            }
            TOK_PACK => {
                self.pack_timer_armed = false;
                self.flush_all_packs(ctx, FlushReason::Timer);
                self.pump_vsync(ctx);
                true
            }
            _ => false,
        }
    }

    fn pump_vsync(&mut self, ctx: &mut Context<'_>) {
        // Drain-and-handle until quiescent: handling one event can enqueue
        // more (e.g. stop_ok completes a flush which installs a view).
        loop {
            let events = self.stack.drain_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                self.handle_vs_event(ctx, ev);
            }
        }
    }

    fn pump_ns(&mut self, ctx: &mut Context<'_>) {
        for ev in self.ns.drain_events() {
            self.handle_ns_event(ctx, ev);
        }
    }

    // ------------------------------------------------------------------
    // HWG upcalls
    // ------------------------------------------------------------------

    fn handle_vs_event(&mut self, ctx: &mut Context<'_>, ev: VsEvent) {
        match ev {
            VsEvent::Stop { hwg } => {
                // Barrier: buffered packs must go out before stop_ok so
                // they are part of the closing view's message set — a
                // batch never straddles the HWG view cut.
                self.flush_pack(ctx, hwg, FlushReason::Barrier);
                // Piggyback our LWG view advertisement on every HWG flush:
                // sent before stop_ok, it is part of the closing view's
                // message set, so after the flush every member knows every
                // LWG view present (the ALL-VIEWS exchange of Fig. 5).
                let views = self.my_views_on(hwg);
                if !views.is_empty() {
                    self.stack
                        .send(ctx, hwg, payload(LwgMsg::AllViews { views }));
                }
                self.stack.stop_ok(ctx, hwg);
            }
            VsEvent::Data {
                hwg,
                view_id: _,
                src,
                data,
            } => {
                if let Some(lm) = cast::<LwgMsg>(&data) {
                    self.handle_lwg_msg(ctx, Some(hwg), src, lm);
                }
            }
            VsEvent::View { hwg, view } => self.handle_hwg_view(ctx, hwg, view),
            VsEvent::Left { hwg } => {
                self.idle_hwgs.remove(&hwg);
                self.rounds.remove(&hwg);
                // The transport is gone; buffered packs can no longer be
                // multicast (the stranded LWGs re-join from scratch).
                self.packs.remove(&hwg);
                // Any LWG still mapped there lost its transport: restart
                // its join flow from the naming service.
                let stranded: Vec<LwgId> = self
                    .lwgs
                    .iter()
                    .filter(|(_, s)| s.hwg == Some(hwg))
                    .map(|(&l, _)| l)
                    .collect();
                for lwg in stranded {
                    self.restart_join(ctx, lwg);
                }
            }
        }
    }

    /// Reacts to a new HWG view: complete joins/switches that were waiting
    /// for HWG membership, run the merge round, refresh naming, prune LWG
    /// members that fell out of the HWG.
    fn handle_hwg_view(&mut self, ctx: &mut Context<'_>, hwg: HwgId, hview: View) {
        ctx.trace("lwg.hwg_view", || format!("{hwg} {hview}"));

        // Barrier (belt and braces — the Stop upcall already flushed):
        // anything still buffered is multicast now, entirely inside the
        // new view, before any announcement below.
        self.flush_pack(ctx, hwg, FlushReason::Barrier);

        // 1. Joiners waiting for this HWG ask for admission now.
        let waiting: Vec<LwgId> = self
            .lwgs
            .iter()
            .filter(|(_, s)| s.phase == Phase::JoiningHwg && s.hwg == Some(hwg))
            .map(|(&l, _)| l)
            .collect();
        for lwg in waiting {
            if hview.contains(self.me) {
                self.request_admission(ctx, lwg, hwg);
            }
        }

        // 2. Members following a switch to this HWG report readiness.
        let following: Vec<(LwgId, LFlushId)> = self
            .lwgs
            .iter()
            .filter_map(|(&l, s)| {
                s.follow_switch
                    .as_ref()
                    .filter(|(_, to)| *to == hwg)
                    .map(|(f, _)| (l, *f))
            })
            .collect();
        for (lwg, flush) in following {
            if hview.contains(self.me) {
                self.stack
                    .send(ctx, hwg, payload(LwgMsg::SwitchReady { lwg, flush }));
            }
        }

        // 3. Merge round: the flush that produced this view carried every
        //    member's AllViews; merge concurrent LWG views now.
        self.complete_merge_round(ctx, hwg, &hview);

        // 4. An HWG *merge* (several predecessors) means concurrent LWG
        //    views may now share this HWG without knowing it: trigger
        //    MERGE-VIEWS (step 3→4 of paper §6). Any member may send it;
        //    the HWG coordinator does, deterministically.
        if hview.predecessors.len() > 1 && self.stack.is_coordinator(hwg) {
            self.trigger_merge_views(ctx, hwg);
        }

        // 5. Coordinators refresh the naming service with the new HWG view
        //    (paper Table 4 stage 2) and prune members that fell out.
        //
        //    Pruning needs no LWG-level flush: the HWG flush that produced
        //    this view already guaranteed all members the same delivered
        //    set. One announcement installs the pruned view; until it
        //    arrives, members buffer their sends (`awaiting_prune`). This
        //    is the resource sharing the paper measures in Figure 2's
        //    recovery panel: one HWG flush serves every co-mapped group.
        let mapped: Vec<LwgId> = self
            .lwgs
            .iter()
            .filter(|(_, s)| s.hwg == Some(hwg) && s.view.is_some())
            .map(|(&l, _)| l)
            .collect();
        for lwg in mapped {
            let stale = {
                let state = self.lwgs.get(&lwg).expect("listed");
                let view = state.view.as_ref().expect("filtered");
                view.members.iter().any(|m| !hview.contains(*m))
            };
            if stale {
                let state = self.lwgs.get_mut(&lwg).expect("listed");
                if state.awaiting_prune.is_none() {
                    state.awaiting_prune = Some(ctx.now());
                }
            }
            if self.lwg_coordinator(lwg) != Some(self.me) {
                continue;
            }
            if stale {
                self.announce_pruned_view(ctx, lwg, &hview);
            } else {
                self.refresh_mapping(ctx, lwg);
                self.maybe_start_lwg_flush(ctx, lwg);
            }
        }

        self.note_idle_if_unused(ctx, hwg);
    }

    // ------------------------------------------------------------------
    // LWG message handling
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn handle_lwg_msg(
        &mut self,
        ctx: &mut Context<'_>,
        hwg: Option<HwgId>,
        from: NodeId,
        msg: &LwgMsg,
    ) {
        match msg {
            LwgMsg::Data {
                lwg,
                lwg_view,
                data,
            } => {
                self.handle_lwg_data(ctx, hwg, *lwg, *lwg_view, from, data.clone());
            }
            LwgMsg::Batch { entries } => {
                // Unpack in send order: per-sender FIFO within a batch is
                // the sender's append order, across batches the HWG's
                // per-sender sequencing.
                for (lwg, lwg_view, data) in entries {
                    self.handle_lwg_data(ctx, hwg, *lwg, *lwg_view, from, data.clone());
                }
            }
            LwgMsg::JoinReq { lwg } => self.handle_join_req(ctx, hwg, *lwg, from),
            LwgMsg::LeaveReq { lwg } => {
                if let Some(state) = self.lwgs.get_mut(lwg) {
                    if state.view.as_ref().is_some_and(|v| v.contains(from)) {
                        state.pending_leaves.insert(from);
                        self.maybe_start_lwg_flush(ctx, *lwg);
                    }
                }
            }
            LwgMsg::Flush {
                lwg,
                flush,
                members,
            } => self.handle_lwg_flush(ctx, *lwg, *flush, members.clone(), None),
            LwgMsg::FlushOk { lwg, flush } => {
                self.handle_flush_ok(ctx, *lwg, *flush, from);
            }
            LwgMsg::NewLwgView {
                lwg,
                flush,
                view,
                hwg: on_hwg,
            } => self.handle_new_lwg_view(ctx, *lwg, *flush, view.clone(), *on_hwg),
            LwgMsg::SwitchTo {
                lwg,
                flush,
                to,
                members,
            } => {
                // A switch doubles as a flush of the old mapping…
                self.handle_lwg_flush(ctx, *lwg, *flush, members.clone(), Some(*to));
            }
            LwgMsg::SwitchReady { lwg, flush } => {
                let mut complete = false;
                if let Some(state) = self.lwgs.get_mut(lwg) {
                    if let Some(sw) = &mut state.switching {
                        if sw.flush == *flush {
                            sw.ready.insert(from);
                            complete = sw.ready.len() == sw.members.len();
                        }
                    }
                }
                if complete {
                    self.complete_switch(ctx, *lwg);
                }
            }
            LwgMsg::MergeViews => {
                if let Some(hwg) = hwg {
                    let round = self.rounds.entry(hwg).or_default();
                    if !round.triggered {
                        round.triggered = true;
                        ctx.metrics().incr("lwg.merge_views_observed");
                    }
                    // The HWG coordinator turns the request into the flush
                    // barrier of Fig. 5.
                    self.stack.force_flush(ctx, hwg);
                }
            }
            LwgMsg::AllViews { views } => {
                if let Some(hwg) = hwg {
                    let round = self.rounds.entry(hwg).or_default();
                    for (lwg, view) in views {
                        round
                            .collected
                            .entry(*lwg)
                            .or_default()
                            .insert(view.id, view.clone());
                    }
                }
            }
            LwgMsg::Dissolved { lwg, flush } => {
                let leaving = self.lwgs.get(lwg).is_some_and(|s| {
                    s.phase == Phase::Leaving
                        || s.lflush.as_ref().is_some_and(|f| f.flush == *flush)
                });
                if leaving {
                    let hwg = self.lwgs.get(lwg).and_then(|s| s.hwg);
                    self.lwgs.remove(lwg);
                    self.events.push(LwgEvent::Left { lwg: *lwg });
                    if let Some(h) = hwg {
                        self.note_idle_if_unused(ctx, h);
                    }
                }
            }
            LwgMsg::Redirect { lwg, to } => {
                // Forward pointer: our mapping information was outdated.
                let retarget = self.lwgs.get(lwg).is_some_and(|s| {
                    matches!(s.phase, Phase::JoiningHwg | Phase::AwaitingAdmission)
                        && s.hwg != Some(*to)
                });
                if retarget {
                    ctx.metrics().incr("lwg.redirects_followed");
                    ctx.trace("lwg.redirect", || format!("{lwg} -> {to}"));
                    let old = self.lwgs.get(lwg).and_then(|s| s.hwg);
                    self.begin_hwg_join(ctx, *lwg, *to, false);
                    if let Some(old) = old {
                        self.note_idle_if_unused(ctx, old);
                    }
                }
            }
        }
    }

    fn handle_lwg_data(
        &mut self,
        ctx: &mut Context<'_>,
        hwg: Option<HwgId>,
        lwg: LwgId,
        lwg_view: ViewId,
        src: NodeId,
        data: Payload,
    ) {
        let Some(state) = self.lwgs.get(&lwg) else {
            // Filtering cost of co-mapped groups we are not a member of —
            // this is the "interference" the paper's policies minimise.
            ctx.metrics().incr("lwg.filtered");
            return;
        };
        match &state.view {
            Some(view) if view.id == lwg_view => {
                ctx.metrics().incr("lwg.data_delivered");
                self.events.push(LwgEvent::Data { lwg, src, data });
            }
            Some(_) if state.history.contains(&lwg_view) => {
                // From a predecessor of our current view; superseded.
                ctx.metrics().incr("lwg.data_stale");
            }
            Some(_) => {
                // A view we never installed: evidence of a concurrent view
                // sharing our HWG (local peer discovery, paper §6.3 / Fig. 5
                // line 106). Remember it; the tick triggers MERGE-VIEWS if
                // no merge happens first.
                ctx.metrics().incr("lwg.data_foreign");
                if let Some(hwg) = hwg {
                    self.foreign.push(ForeignTag {
                        seen_at: ctx.now(),
                        hwg,
                        lwg,
                        view_id: lwg_view,
                    });
                }
            }
            None => {
                ctx.metrics().incr("lwg.filtered");
            }
        }
    }

    fn handle_join_req(
        &mut self,
        ctx: &mut Context<'_>,
        arrived_on: Option<HwgId>,
        lwg: LwgId,
        from: NodeId,
    ) {
        let is_member = self.lwgs.get(&lwg).is_some_and(|s| s.view.is_some());
        if is_member {
            let mapping = self.lwgs.get(&lwg).and_then(|s| s.hwg);
            if let Some(to) = mapping {
                if arrived_on.is_some() && arrived_on != Some(to) {
                    // The joiner used an outdated mapping: the request
                    // reached us on an HWG the group no longer rides. Point
                    // it at the current one (paper §3.1's forward-pointer
                    // behaviour, here served by a member directly).
                    ctx.metrics().incr("lwg.redirects_sent");
                    ctx.send(from, payload(LwgMsg::Redirect { lwg, to }));
                    return;
                }
            }
            if self.lwg_coordinator(lwg) == Some(self.me) {
                let state = self.lwgs.get_mut(&lwg).expect("checked");
                if !state.view.as_ref().is_some_and(|v| v.contains(from)) {
                    state.pending_joins.insert(from);
                    self.maybe_start_lwg_flush(ctx, lwg);
                }
            }
        } else if let Some(&to) = self.forward.get(&lwg) {
            // We are not a member but remember where the group went.
            ctx.metrics().incr("lwg.redirects_sent");
            ctx.send(from, payload(LwgMsg::Redirect { lwg, to }));
        }
    }

    /// Member side of an LWG flush (also the old-HWG half of a switch when
    /// `switch_to` is set): stop sending, acknowledge, and for a switch,
    /// start joining the target HWG.
    fn handle_lwg_flush(
        &mut self,
        ctx: &mut Context<'_>,
        lwg: LwgId,
        flush: LFlushId,
        members: Vec<NodeId>,
        switch_to: Option<HwgId>,
    ) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        let Some(view) = &state.view else { return };
        if !view.contains(self.me) || !members.contains(&self.me) {
            return;
        }
        // Supersede rule mirrors the HWG layer: more senior initiator (in
        // LWG view order) or newer nonce from the same initiator wins.
        if let Some(cur) = &state.lflush {
            let rank = |m: NodeId| view.rank(m).unwrap_or(usize::MAX);
            let supersedes = rank(flush.initiator) < rank(cur.flush.initiator)
                || (flush.initiator == cur.flush.initiator && flush.nonce > cur.flush.nonce);
            if !supersedes {
                return;
            }
        }
        let mut oks = BTreeSet::new();
        state.early_oks.retain(|(f, n)| {
            if *f == flush {
                oks.insert(*n);
                false
            } else {
                true
            }
        });
        state.lflush = Some(LwgFlush {
            flush,
            members: members.clone(),
            oks,
            new_view: None,
            started_at: ctx.now(),
        });
        let hwg = state.hwg;
        if let Some(to) = switch_to {
            state.follow_switch = Some((flush, to));
        }
        if let Some(hwg) = hwg {
            // Barrier: data we buffered in the closing LWG view must
            // precede our FlushOk in the per-sender FIFO stream, so every
            // member drains it before installing the successor view.
            self.flush_pack(ctx, hwg, FlushReason::Barrier);
            self.stack
                .send(ctx, hwg, payload(LwgMsg::FlushOk { lwg, flush }));
        }
        if let Some(to) = switch_to {
            // Join the target HWG (the coordinator pre-created it).
            if self.stack.status_of(to) == GroupStatus::Left {
                self.stack.join(ctx, to);
            } else if self.stack.view_of(to).is_some_and(|v| v.contains(self.me)) {
                // Already a member: report ready immediately.
                self.stack
                    .send(ctx, to, payload(LwgMsg::SwitchReady { lwg, flush }));
            }
        }
    }

    fn handle_flush_ok(
        &mut self,
        ctx: &mut Context<'_>,
        lwg: LwgId,
        flush: LFlushId,
        from: NodeId,
    ) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        let Some(lf) = &mut state.lflush else {
            state.early_oks.push((flush, from));
            return;
        };
        if lf.flush != flush {
            state.early_oks.push((flush, from));
            return;
        }
        lf.oks.insert(from);
        self.try_conclude_lwg_flush(ctx, lwg);
    }

    fn handle_new_lwg_view(
        &mut self,
        ctx: &mut Context<'_>,
        lwg: LwgId,
        flush: Option<LFlushId>,
        view: View,
        on_hwg: HwgId,
    ) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        if !view.contains(self.me) {
            // Excludes us: our leave completed (or we were pruned).
            let ours = state
                .view
                .as_ref()
                .is_some_and(|v| view.predecessors.contains(&v.id));
            if ours {
                let hwg = state.hwg;
                self.lwgs.remove(&lwg);
                self.events.push(LwgEvent::Left { lwg });
                if let Some(h) = hwg {
                    self.note_idle_if_unused(ctx, h);
                }
            }
            return;
        }
        match flush {
            Some(f) => {
                // Ordinary join/leave/switch view: wait for the flush to
                // complete (all FlushOks) before installing.
                let Some(lf) = &mut state.lflush else {
                    // We were admitted as a *joiner*: no old view to drain.
                    if state.view.is_none() {
                        self.install_lwg_view(ctx, lwg, view, on_hwg);
                    }
                    return;
                };
                if lf.flush == f {
                    lf.new_view = Some((view, on_hwg));
                    self.try_conclude_lwg_flush(ctx, lwg);
                }
            }
            None => {
                // Merge path: the HWG flush already drained the old views.
                let acceptable = match &state.view {
                    Some(cur) => view.predecessors.contains(&cur.id) || view.id == cur.id,
                    None => true,
                };
                if acceptable && state.view.as_ref().map(|v| v.id) != Some(view.id) {
                    self.install_lwg_view(ctx, lwg, view, on_hwg);
                }
            }
        }
    }

    /// Installs `view` if its flush (when any) has fully acknowledged.
    fn try_conclude_lwg_flush(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        let Some(lf) = &state.lflush else { return };
        let Some((view, on_hwg)) = lf.new_view.clone() else {
            // Coordinator side: once every member acknowledged, announce
            // the successor view.
            let all_ok = lf.members.iter().all(|m| lf.oks.contains(m));
            if all_ok && lf.flush.initiator == self.me && state.switching.is_none() {
                self.announce_successor_view(ctx, lwg);
            }
            return;
        };
        let all_ok = lf.members.iter().all(|m| lf.oks.contains(m));
        if all_ok {
            self.install_lwg_view(ctx, lwg, view, on_hwg);
        }
    }

    /// Coordinator: all FlushOks are in — compute and multicast the
    /// successor view (join/leave/prune path).
    fn announce_successor_view(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        let Some(view) = state.view.clone() else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let Some(lf) = &state.lflush else { return };
        let flush = lf.flush;
        let hview_members: Vec<NodeId> = self
            .stack
            .view_of(hwg)
            .map(|v| v.members.clone())
            .unwrap_or_default();
        let state = self.lwgs.get_mut(&lwg).expect("still present");
        let mut members: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|m| hview_members.contains(m) && !state.pending_leaves.contains(m))
            .collect();
        let mut joiners: Vec<NodeId> = state
            .pending_joins
            .iter()
            .copied()
            .filter(|j| hview_members.contains(j) && !view.contains(*j))
            .collect();
        joiners.sort_unstable();
        members.extend(joiners);
        if members.is_empty() {
            // Everybody left: dissolve the group (no successor view).
            ctx.trace("lwg.dissolve", || format!("{lwg}"));
            self.ns.unset(ctx, lwg, view.id);
            self.stack
                .send(ctx, hwg, payload(LwgMsg::Dissolved { lwg, flush }));
            return;
        }
        let new_view = View::with_predecessors(
            ViewId::new(self.me, state.take_view_seq()),
            members,
            vec![view.id],
        );
        ctx.trace("lwg.view.announce", || format!("{lwg} {new_view}"));
        self.stack.send(
            ctx,
            hwg,
            payload(LwgMsg::NewLwgView {
                lwg,
                flush: Some(flush),
                view: new_view,
                hwg,
            }),
        );
    }

    /// Coordinator: announce the view with the members that fell out of
    /// the HWG removed (no LWG flush needed — see `handle_hwg_view`).
    fn announce_pruned_view(&mut self, ctx: &mut Context<'_>, lwg: LwgId, hview: &View) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        if state.lflush.is_some() || state.switching.is_some() {
            return; // an explicit flush is already reshaping the view
        }
        let Some(view) = state.view.clone() else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let members: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|m| hview.contains(*m))
            .collect();
        if members.is_empty() {
            return;
        }
        let pruned = View::with_predecessors(
            ViewId::new(self.me, state.take_view_seq()),
            members,
            vec![view.id],
        );
        ctx.trace("lwg.prune", || format!("{lwg} {pruned}"));
        ctx.metrics().incr("lwg.prunes");
        self.stack.send(
            ctx,
            hwg,
            payload(LwgMsg::NewLwgView {
                lwg,
                flush: None,
                view: pruned,
                hwg,
            }),
        );
    }

    fn install_lwg_view(&mut self, ctx: &mut Context<'_>, lwg: LwgId, view: View, on_hwg: HwgId) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        let old_hwg = state.hwg;
        if let Some(old) = &state.view {
            state.history.insert(old.id);
        }
        for p in &view.predecessors {
            state.history.insert(*p);
        }
        state.bump_view_seq(if view.id.coordinator == self.me {
            view.id.seq
        } else {
            0
        });
        ctx.trace("lwg.view.install", || format!("{lwg} {view} on {on_hwg}"));
        ctx.metrics().incr("lwg.views_installed");
        state.view = Some(view.clone());
        state.hwg = Some(on_hwg);
        state.phase = Phase::Member;
        state.join_deadline = None;
        state.join_attempts = 0;
        state.lflush = None;
        state.switching = None;
        state.follow_switch = None;
        state.early_oks.clear();
        state.awaiting_prune = None;
        for m in &view.members {
            state.pending_joins.remove(m);
        }
        state.pending_leaves.retain(|l| view.contains(*l));
        let pending = std::mem::take(&mut state.pending_send);
        self.idle_hwgs.remove(&on_hwg);
        self.events.push(LwgEvent::View {
            lwg,
            view: view.clone(),
        });
        // If the mapping moved, leave a forward pointer and consider
        // shrinking the old HWG.
        if let Some(old) = old_hwg {
            if old != on_hwg {
                self.forward.insert(lwg, on_hwg);
                self.note_idle_if_unused(ctx, old);
            }
        }
        // Coordinator records the mapping.
        if self.lwg_coordinator(lwg) == Some(self.me) {
            self.refresh_mapping(ctx, lwg);
        }
        // Release buffered sends in the new view.
        for data in pending {
            self.send(ctx, lwg, data);
        }
        // Queued membership changes are handled in a follow-up flush.
        self.maybe_start_lwg_flush(ctx, lwg);
    }

    /// Writes the current view-to-view mapping to the naming service.
    fn refresh_mapping(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        let Some(state) = self.lwgs.get(&lwg) else {
            return;
        };
        let Some(view) = &state.view else { return };
        let Some(hwg) = state.hwg else { return };
        let Some(hview) = self.stack.view_of(hwg) else {
            return;
        };
        let mapping = Mapping {
            lwg_view: view.id,
            members: view.members.clone(),
            hwg,
            hwg_view: hview.id,
        };
        let preds = view.predecessors.clone();
        self.ns.set(ctx, lwg, mapping, preds);
    }

    // ------------------------------------------------------------------
    // LWG flush initiation (coordinator)
    // ------------------------------------------------------------------

    /// Starts an LWG flush if this node coordinates `lwg` and membership
    /// changes are pending (join/leave/members fallen out of the HWG).
    fn maybe_start_lwg_flush(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        if self.lwg_coordinator(lwg) != Some(self.me) {
            return;
        }
        let Some(state) = self.lwgs.get(&lwg) else {
            return;
        };
        if state.lflush.is_some() || state.switching.is_some() {
            return;
        }
        let Some(view) = &state.view else { return };
        let Some(hwg) = state.hwg else { return };
        let Some(hview) = self.stack.view_of(hwg) else {
            return;
        };
        let has_join = state
            .pending_joins
            .iter()
            .any(|j| hview.contains(*j) && !view.contains(*j));
        let has_leave = state.pending_leaves.iter().any(|l| view.contains(*l));
        if !(has_join || has_leave) {
            return;
        }
        // Members still reachable participate in the flush.
        let members: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|m| hview.contains(*m))
            .collect();
        if members.is_empty() {
            return;
        }
        let state = self.lwgs.get_mut(&lwg).expect("checked");
        let flush = LFlushId {
            initiator: self.me,
            nonce: state.take_flush_nonce(),
        };
        ctx.trace("lwg.flush.start", || {
            format!("{lwg} {flush} members {members:?}")
        });
        ctx.metrics().incr("lwg.flushes");
        // Barrier: the flush announcement must not overtake our own
        // buffered data for the closing view.
        self.flush_pack(ctx, hwg, FlushReason::Barrier);
        self.stack.send(
            ctx,
            hwg,
            payload(LwgMsg::Flush {
                lwg,
                flush,
                members,
            }),
        );
    }

    // ------------------------------------------------------------------
    // Switching (paper §3 + §6.2)
    // ------------------------------------------------------------------

    /// Coordinator: re-map `lwg` onto `to`. `create` indicates `to` is a
    /// freshly allocated HWG this node should create rather than probe.
    fn start_switch(&mut self, ctx: &mut Context<'_>, lwg: LwgId, to: HwgId, create: bool) {
        if self.lwg_coordinator(lwg) != Some(self.me) {
            return;
        }
        let Some(state) = self.lwgs.get(&lwg) else {
            return;
        };
        if state.lflush.is_some() || state.switching.is_some() || state.hwg == Some(to) {
            return;
        }
        let Some(view) = state.view.clone() else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let members = view.members.clone();
        let state = self.lwgs.get_mut(&lwg).expect("checked");
        let flush = LFlushId {
            initiator: self.me,
            nonce: state.take_flush_nonce(),
        };
        state.switching = Some(SwitchState {
            flush,
            to,
            members: members.clone(),
            ready: BTreeSet::new(),
            started_at: ctx.now(),
        });
        ctx.trace("lwg.switch.start", || format!("{lwg}: {hwg} -> {to}"));
        ctx.metrics().incr("lwg.switches");
        if create {
            self.stack.create(ctx, to);
        } else if self.stack.status_of(to) == GroupStatus::Left {
            self.stack.join(ctx, to);
        }
        // Barrier: a switch doubles as a flush of the old mapping.
        self.flush_pack(ctx, hwg, FlushReason::Barrier);
        self.stack.send(
            ctx,
            hwg,
            payload(LwgMsg::SwitchTo {
                lwg,
                flush,
                to,
                members,
            }),
        );
    }

    /// Coordinator: every member reported ready on the target HWG —
    /// install the switched view there.
    fn complete_switch(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        let Some(sw) = state.switching.take() else {
            return;
        };
        let Some(view) = state.view.clone() else {
            return;
        };
        let new_view = View::with_predecessors(
            ViewId::new(self.me, state.take_view_seq()),
            sw.members.clone(),
            vec![view.id],
        );
        ctx.trace("lwg.switch.complete", || {
            format!("{lwg} -> {} as {new_view}", sw.to)
        });
        self.stack.send(
            ctx,
            sw.to,
            payload(LwgMsg::NewLwgView {
                lwg,
                flush: Some(sw.flush),
                view: new_view,
                hwg: sw.to,
            }),
        );
        // Pull any concurrent views present on the target HWG into a merge.
        self.trigger_merge_views(ctx, sw.to);
    }

    // ------------------------------------------------------------------
    // Merge-views (paper Fig. 5, step 4 of §6)
    // ------------------------------------------------------------------

    fn trigger_merge_views(&mut self, ctx: &mut Context<'_>, hwg: HwgId) {
        // Cooldown: repeated MERGE-VIEWS within a second only repeat the
        // same barrier flush — and a constant stream of forced flushes
        // starves the HWG layer's own beacon-driven merge (the flush
        // machinery and the merge machinery are mutually exclusive).
        let now = ctx.now();
        if let Some(&last) = self.last_merge_views.get(&hwg) {
            if now.saturating_since(last) < plwg_sim::SimDuration::from_secs(1) {
                return;
            }
        }
        self.last_merge_views.insert(hwg, now);
        ctx.metrics().incr("lwg.merge_views_sent");
        // Barrier: the merge request forces an HWG flush; buffered data
        // belongs to the views being merged and must go out first.
        self.flush_pack(ctx, hwg, FlushReason::Barrier);
        self.stack.send(ctx, hwg, payload(LwgMsg::MergeViews));
    }

    /// After an HWG flush: merge every set of concurrent LWG views the
    /// AllViews exchange revealed.
    fn complete_merge_round(&mut self, ctx: &mut Context<'_>, hwg: HwgId, hview: &View) {
        let Some(round) = self.rounds.remove(&hwg) else {
            return;
        };
        for (lwg, mut views) in round.collected {
            // Add our own current view.
            if let Some(state) = self.lwgs.get(&lwg) {
                if state.hwg == Some(hwg) {
                    if let Some(v) = &state.view {
                        views.insert(v.id, v.clone());
                    }
                }
            }
            // Drop views that are ancestors of other collected views.
            let ids: Vec<ViewId> = views.keys().copied().collect();
            let is_anc = |a: ViewId, b: ViewId, views: &BTreeMap<ViewId, View>| -> bool {
                // Transitive check over the collected predecessor edges.
                let mut stack = vec![b];
                let mut seen = BTreeSet::new();
                while let Some(v) = stack.pop() {
                    if let Some(view) = views.get(&v) {
                        for &p in &view.predecessors {
                            if p == a {
                                return true;
                            }
                            if seen.insert(p) {
                                stack.push(p);
                            }
                        }
                    }
                }
                false
            };
            let concurrent: Vec<ViewId> = ids
                .iter()
                .copied()
                .filter(|&v| !ids.iter().any(|&o| is_anc(v, o, &views)))
                .collect();
            if concurrent.len() < 2 {
                continue;
            }
            // Deterministic merged membership: views in id order, members
            // concatenated, only members present in the current HWG view.
            let mut members: Vec<NodeId> = Vec::new();
            for vid in &concurrent {
                for &m in &views[vid].members {
                    if hview.contains(m) && !members.contains(&m) {
                        members.push(m);
                    }
                }
            }
            if members.is_empty() {
                continue;
            }
            // The merged view's coordinator announces it.
            if members[0] != self.me {
                continue;
            }
            let Some(state) = self.lwgs.get_mut(&lwg) else {
                continue;
            };
            let merged = View::with_predecessors(
                ViewId::new(self.me, state.take_view_seq()),
                members,
                concurrent.clone(),
            );
            ctx.trace("lwg.merge", || format!("{lwg}: {concurrent:?} -> {merged}"));
            ctx.metrics().incr("lwg.views_merged");
            self.stack.send(
                ctx,
                hwg,
                payload(LwgMsg::NewLwgView {
                    lwg,
                    flush: None,
                    view: merged,
                    hwg,
                }),
            );
        }
    }

    // ------------------------------------------------------------------
    // Naming events: join lookups and MULTIPLE-MAPPINGS reconciliation
    // ------------------------------------------------------------------

    fn handle_ns_event(&mut self, ctx: &mut Context<'_>, ev: NsEvent) {
        match ev {
            NsEvent::Reply { req, lwg, mappings } => match self.ns_lookups.remove(&req) {
                Some((_, NsPurpose::JoinLookup)) => self.continue_join(ctx, lwg, &mappings),
                Some((_, NsPurpose::FoundClaim)) => self.resolve_found_claim(ctx, lwg, &mappings),
                Some((_, NsPurpose::Poll)) if mappings.len() > 1 => {
                    self.reconcile(ctx, lwg, &mappings);
                }
                Some((_, NsPurpose::Poll)) | None => {}
            },
            NsEvent::MultipleMappings { lwg, mappings } => {
                self.reconcile(ctx, lwg, &mappings);
            }
        }
    }

    /// Join step 2: the naming lookup answered; pick the target HWG.
    fn continue_join(&mut self, ctx: &mut Context<'_>, lwg: LwgId, mappings: &[Mapping]) {
        let Some(state) = self.lwgs.get(&lwg) else {
            return;
        };
        if state.phase != Phase::ReadingNs {
            return;
        }
        if let Some(best) = mappings.iter().max_by_key(|m| m.hwg) {
            // Follow the recorded mapping (reconciliation rule picks the
            // highest HWG id when several exist).
            let hwg = best.hwg;
            self.begin_hwg_join(ctx, lwg, hwg, false);
        } else if let Some(&fwd) = self.forward.get(&lwg) {
            self.begin_hwg_join(ctx, lwg, fwd, false);
        } else {
            // No mapping anywhere: optimistic rule — reuse an HWG we are
            // already in (preferring one that carries our LWGs over idle
            // leftovers; highest id breaks ties), else allocate a fresh one.
            let member_hwgs = self.hwgs();
            let existing = member_hwgs
                .iter()
                .copied()
                .filter(|&h| self.hwg_in_use(h))
                .max()
                .or_else(|| member_hwgs.into_iter().max());
            match existing {
                Some(hwg) => self.begin_hwg_join(ctx, lwg, hwg, false),
                None => {
                    let hwg = self.fresh_hwg_id();
                    self.begin_hwg_join(ctx, lwg, hwg, true);
                }
            }
        }
    }

    fn begin_hwg_join(&mut self, ctx: &mut Context<'_>, lwg: LwgId, hwg: HwgId, create: bool) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        state.phase = Phase::JoiningHwg;
        state.hwg = Some(hwg);
        state.create_hwg = create;
        state.join_attempts = 0;
        state.join_deadline = Some(ctx.now() + self.cfg.lwg_join_timeout);
        match self.stack.status_of(hwg) {
            GroupStatus::Left => {
                if create {
                    self.stack.create(ctx, hwg);
                } else {
                    self.stack.join(ctx, hwg);
                }
            }
            GroupStatus::Member => {
                if self.stack.view_of(hwg).is_some_and(|v| v.contains(self.me)) {
                    self.request_admission(ctx, lwg, hwg);
                }
            }
            GroupStatus::Joining | GroupStatus::Leaving => {}
        }
    }

    /// Join step 3: we are an HWG member; ask the LWG coordinator (if any)
    /// to admit us.
    fn request_admission(&mut self, ctx: &mut Context<'_>, lwg: LwgId, hwg: HwgId) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        state.phase = Phase::AwaitingAdmission;
        state.join_deadline = Some(ctx.now() + self.cfg.lwg_join_timeout);
        self.stack.send(ctx, hwg, payload(LwgMsg::JoinReq { lwg }));
    }

    /// Join fallback, part 1: nobody admitted us — claim the mapping with
    /// `ns.testset` (paper Table 2) *before* founding a view. If another
    /// founder won the race we follow its mapping instead of creating a
    /// competing view.
    fn claim_founding(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        let Some(state) = self.lwgs.get(&lwg) else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let Some(hview) = self.stack.view_of(hwg) else {
            return;
        };
        let planned = ViewId::new(self.me, state.next_view_seq + 1);
        let mapping = Mapping {
            lwg_view: planned,
            members: vec![self.me],
            hwg,
            hwg_view: hview.id,
        };
        ctx.trace("lwg.claim", || format!("{lwg} {planned} on {hwg}"));
        let req = self.ns.testset(ctx, lwg, mapping, vec![]);
        self.ns_lookups.insert(req, (lwg, NsPurpose::FoundClaim));
        // Push the deadline out while the claim is in flight.
        if let Some(state) = self.lwgs.get_mut(&lwg) {
            state.join_deadline = Some(ctx.now() + self.cfg.lwg_join_timeout);
        }
    }

    /// Join fallback, part 2: the test-and-set answered.
    fn resolve_found_claim(&mut self, ctx: &mut Context<'_>, lwg: LwgId, mappings: &[Mapping]) {
        let Some(state) = self.lwgs.get(&lwg) else {
            return;
        };
        if state.phase != Phase::AwaitingAdmission {
            return;
        }
        let won = mappings
            .iter()
            .any(|m| m.lwg_view.coordinator == self.me && state.hwg == Some(m.hwg));
        if won {
            self.found_lwg_view(ctx, lwg);
        } else if let Some(best) = mappings.iter().max_by_key(|m| m.hwg) {
            // Someone else holds the mapping: follow it.
            let hwg = best.hwg;
            let state = self.lwgs.get_mut(&lwg).expect("checked");
            state.join_attempts = 0;
            self.begin_hwg_join(ctx, lwg, hwg, false);
        }
    }

    /// Installs the group's founding (singleton) view on the target HWG.
    fn found_lwg_view(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        let Some(state) = self.lwgs.get_mut(&lwg) else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let seq = state.take_view_seq();
        let view = View::initial(ViewId::new(self.me, seq), vec![self.me]);
        ctx.trace("lwg.found", || format!("{lwg} {view} on {hwg}"));
        self.install_lwg_view(ctx, lwg, view, hwg);
        // Concurrent founders on the same HWG merge via Fig. 5.
        self.trigger_merge_views(ctx, hwg);
    }

    /// Step 2 of partition healing (paper §6.2): on MULTIPLE-MAPPINGS, the
    /// coordinator of each concurrent view switches deterministically to
    /// the HWG with the **highest group identifier**.
    fn reconcile(&mut self, ctx: &mut Context<'_>, lwg: LwgId, mappings: &[Mapping]) {
        ctx.metrics().incr("lwg.reconciliations");
        let Some(target) = mappings.iter().map(|m| m.hwg).max() else {
            return;
        };
        if self.lwg_coordinator(lwg) != Some(self.me) {
            return;
        }
        let Some(state) = self.lwgs.get(&lwg) else {
            return;
        };
        let current = state.hwg;
        if current == Some(target) {
            // We are already on the winning HWG. A MERGE-VIEWS barrier only
            // helps once the other views' members actually share our HWG
            // view; before that (the HWG itself is still partitioned or
            // mid-merge) it would just churn flushes.
            let others_present = {
                let hview = self.stack.view_of(target);
                mappings.iter().all(|m| {
                    m.members
                        .iter()
                        .all(|mm| hview.is_some_and(|v| v.contains(*mm)))
                })
            };
            if others_present {
                self.trigger_merge_views(ctx, target);
            }
        } else {
            ctx.trace("lwg.reconcile", || {
                format!("{lwg}: switch {current:?} -> {target}")
            });
            self.start_switch(ctx, lwg, target, false);
        }
    }

    // ------------------------------------------------------------------
    // Housekeeping tick
    // ------------------------------------------------------------------

    fn tick(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();

        // Join deadlines: retry admission, then found our own view.
        let due: Vec<LwgId> = self
            .lwgs
            .iter()
            .filter(|(_, s)| {
                matches!(s.phase, Phase::JoiningHwg | Phase::AwaitingAdmission)
                    && s.join_deadline.is_some_and(|d| now >= d)
            })
            .map(|(&l, _)| l)
            .collect();
        for lwg in due {
            let state = self.lwgs.get_mut(&lwg).expect("listed");
            state.join_attempts += 1;
            let attempts = state.join_attempts;
            let phase = state.phase;
            let hwg = state.hwg;
            let in_hwg = hwg
                .and_then(|h| self.stack.view_of(h))
                .is_some_and(|v| v.contains(self.me));
            if !in_hwg {
                // Still waiting for HWG membership; extend.
                let state = self.lwgs.get_mut(&lwg).expect("listed");
                state.join_deadline = Some(now + self.cfg.lwg_join_timeout);
                continue;
            }
            if phase == Phase::JoiningHwg || attempts <= self.cfg.lwg_join_retries {
                self.request_admission(ctx, lwg, hwg.expect("in_hwg"));
            } else {
                self.claim_founding(ctx, lwg);
            }
        }

        // Leaving members keep nudging the coordinator.
        let leaving: Vec<(LwgId, HwgId)> = self
            .lwgs
            .iter()
            .filter(|(_, s)| s.phase == Phase::Leaving && s.hwg.is_some())
            .map(|(&l, s)| (l, s.hwg.expect("filtered")))
            .collect();
        for (lwg, hwg) in leaving {
            self.stack.send(ctx, hwg, payload(LwgMsg::LeaveReq { lwg }));
            self.maybe_start_lwg_flush(ctx, lwg);
        }

        // LWG flush / switch watchdogs.
        let stuck: Vec<LwgId> = self
            .lwgs
            .iter()
            .filter(|(_, s)| {
                s.lflush.as_ref().is_some_and(|f| {
                    now.saturating_since(f.started_at) >= self.cfg.lwg_flush_timeout
                }) || s.switching.as_ref().is_some_and(|sw| {
                    now.saturating_since(sw.started_at) >= self.cfg.lwg_flush_timeout
                })
            })
            .map(|(&l, _)| l)
            .collect();
        for lwg in stuck {
            let state = self.lwgs.get_mut(&lwg).expect("listed");
            ctx.trace("lwg.flush.abandon", || format!("{lwg}"));
            state.lflush = None;
            state.switching = None;
            state.follow_switch = None;
            // Re-evaluate: the coordinator will re-flush with the members
            // still reachable.
            self.maybe_start_lwg_flush(ctx, lwg);
        }

        // A pruned-view announcement that never arrived (lost, coordinator
        // died): release the send buffer; the acting-coordinator rule will
        // re-announce on the next HWG view change.
        let prune_stuck: Vec<LwgId> = self
            .lwgs
            .iter()
            .filter(|(_, s)| {
                s.awaiting_prune
                    .is_some_and(|t| now.saturating_since(t) >= self.cfg.lwg_flush_timeout)
            })
            .map(|(&l, _)| l)
            .collect();
        for lwg in prune_stuck {
            let hview = self
                .lwgs
                .get(&lwg)
                .and_then(|s| s.hwg)
                .and_then(|h| self.stack.view_of(h))
                .cloned();
            if let Some(state) = self.lwgs.get_mut(&lwg) {
                state.awaiting_prune = None;
            }
            if let Some(hview) = hview {
                if self.lwg_coordinator(lwg) == Some(self.me) {
                    self.announce_pruned_view(ctx, lwg, &hview);
                }
            }
        }

        // Foreign-tagged data: if still unexplained after the grace period,
        // trigger MERGE-VIEWS on the HWG (Fig. 5 line 106).
        let deadline = self.cfg.foreign_data_timeout;
        let mut trigger: BTreeSet<HwgId> = BTreeSet::new();
        self.foreign.retain(|f| {
            let expired = now.saturating_since(f.seen_at) >= deadline;
            if expired {
                let still_unknown = self.lwgs.get(&f.lwg).is_some_and(|s| {
                    s.view.as_ref().is_some_and(|v| v.id != f.view_id)
                        && !s.history.contains(&f.view_id)
                });
                if still_unknown {
                    trigger.insert(f.hwg);
                }
                false
            } else {
                true
            }
        });
        for hwg in trigger {
            self.trigger_merge_views(ctx, hwg);
        }

        // Callback-vs-polling ablation: coordinators poll the naming
        // service for their groups (instead of being called back).
        if let Some(interval) = self.cfg.ns_poll_interval {
            if now.saturating_since(self.last_ns_poll) >= interval {
                self.last_ns_poll = now;
                let mine: Vec<LwgId> = self
                    .lwgs
                    .iter()
                    .filter(|(_, s)| s.phase == Phase::Member)
                    .map(|(&l, _)| l)
                    .collect();
                for lwg in mine {
                    if self.lwg_coordinator(lwg) == Some(self.me) {
                        let req = self.ns.read(ctx, lwg);
                        self.ns_lookups.insert(req, (lwg, NsPurpose::Poll));
                    }
                }
            }
        }

        // Shrink rule: leave HWGs that have had no local LWG for a while.
        self.refresh_idle_hwgs(ctx);
        let to_leave: Vec<HwgId> = self
            .idle_hwgs
            .iter()
            .filter(|(_, &since)| now.saturating_since(since) >= self.cfg.shrink_grace)
            .map(|(&h, _)| h)
            .collect();
        for hwg in to_leave {
            ctx.trace("lwg.shrink", || format!("leaving {hwg}"));
            ctx.metrics().incr("lwg.shrinks");
            self.idle_hwgs.remove(&hwg);
            self.stack.leave(ctx, hwg);
        }
        self.pump_vsync(ctx);
    }

    // ------------------------------------------------------------------
    // Policies (paper Fig. 1)
    // ------------------------------------------------------------------

    fn run_policies(&mut self, ctx: &mut Context<'_>) {
        let known: Vec<(HwgId, BTreeSet<NodeId>)> = self
            .hwgs()
            .into_iter()
            .filter_map(|h| {
                self.stack
                    .view_of(h)
                    .map(|v| (h, v.members.iter().copied().collect()))
            })
            .collect();
        let mine: Vec<LwgId> = self
            .lwgs
            .iter()
            .filter(|(_, s)| s.phase == Phase::Member)
            .map(|(&l, _)| l)
            .collect();
        for lwg in mine {
            if self.lwg_coordinator(lwg) != Some(self.me) {
                continue;
            }
            let Some(state) = self.lwgs.get(&lwg) else {
                continue;
            };
            if state.lflush.is_some() || state.switching.is_some() {
                continue;
            }
            let Some(view) = &state.view else { continue };
            let Some(hwg) = state.hwg else { continue };
            let lwg_members: BTreeSet<NodeId> = view.members.iter().copied().collect();
            let Some((_, hwg_members)) = known.iter().find(|(h, _)| *h == hwg) else {
                continue;
            };
            // Interference rule first (it protects small groups), then the
            // share rule (it consolidates similar HWGs).
            let action = match policy::interference_rule(
                &lwg_members,
                (hwg, hwg_members),
                &known,
                self.cfg.k_m,
                self.cfg.k_c,
            ) {
                PolicyAction::Stay => policy::share_rule((hwg, hwg_members), &known, self.cfg.k_m),
                other => other,
            };
            match action {
                PolicyAction::Stay => {}
                PolicyAction::SwitchTo(target) => {
                    ctx.trace("lwg.policy.switch", || format!("{lwg} -> {target}"));
                    self.start_switch(ctx, lwg, target, false);
                }
                PolicyAction::CreateAndSwitch => {
                    let fresh = self.fresh_hwg_id();
                    ctx.trace("lwg.policy.create", || format!("{lwg} -> {fresh}"));
                    self.start_switch(ctx, lwg, fresh, true);
                }
            }
        }
        self.pump_vsync(ctx);
    }

    // ------------------------------------------------------------------
    // Shrink-rule bookkeeping
    // ------------------------------------------------------------------

    fn hwg_in_use(&self, hwg: HwgId) -> bool {
        self.lwgs.values().any(|s| {
            s.hwg == Some(hwg)
                || s.follow_switch.as_ref().is_some_and(|(_, to)| *to == hwg)
                || s.switching.as_ref().is_some_and(|sw| sw.to == hwg)
        })
    }

    fn note_idle_if_unused(&mut self, ctx: &mut Context<'_>, hwg: HwgId) {
        if self.stack.status_of(hwg) == GroupStatus::Member && !self.hwg_in_use(hwg) {
            self.idle_hwgs.entry(hwg).or_insert(ctx.now());
        }
    }

    fn refresh_idle_hwgs(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let member_hwgs: Vec<HwgId> = self.hwgs();
        for hwg in member_hwgs {
            if self.stack.status_of(hwg) != GroupStatus::Member {
                continue;
            }
            if self.hwg_in_use(hwg) {
                self.idle_hwgs.remove(&hwg);
            } else {
                self.idle_hwgs.entry(hwg).or_insert(now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Misc
    // ------------------------------------------------------------------

    fn my_views_on(&self, hwg: HwgId) -> Vec<(LwgId, View)> {
        self.lwgs
            .iter()
            .filter(|(_, s)| s.hwg == Some(hwg))
            .filter_map(|(&l, s)| s.view.clone().map(|v| (l, v)))
            .collect()
    }

    fn fresh_hwg_id(&mut self) -> HwgId {
        self.next_hwg_counter += 1;
        HwgId(0x8000_0000_0000_0000 | (u64::from(self.me.0) << 32) | self.next_hwg_counter)
    }

    /// Restarts the join flow for a group whose transport vanished.
    fn restart_join(&mut self, ctx: &mut Context<'_>, lwg: LwgId) {
        if let Some(state) = self.lwgs.get_mut(&lwg) {
            let had_view = state.view.clone();
            *state = LwgState::new();
            if let Some(v) = had_view {
                state.history.insert(v.id);
                state.bump_view_seq(if v.id.coordinator == self.me {
                    v.id.seq
                } else {
                    0
                });
            }
            ctx.trace("lwg.rejoin", || format!("{lwg}"));
            let req = self.ns.read(ctx, lwg);
            self.ns_lookups.insert(req, (lwg, NsPurpose::JoinLookup));
        }
    }
}

impl std::fmt::Debug for LwgService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LwgService")
            .field("me", &self.me)
            .field("lwgs", &self.lwgs.keys().collect::<Vec<_>>())
            .field("hwgs", &self.hwgs())
            .finish_non_exhaustive()
    }
}
