//! Per-group and per-service bookkeeping types shared by the protocol
//! modules ([`crate::service`], [`crate::mapping`], [`crate::data_plane`],
//! [`crate::flush`], [`crate::switch`], [`crate::merge`]).

use crate::msg::LFlushId;
use plwg_hwg::{HwgId, View, ViewId};
use plwg_naming::LwgId;
use plwg_sim::{NodeId, Payload, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Why a naming request was issued (routes the reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NsPurpose {
    /// Initial `ns.read` of the join flow.
    JoinLookup,
    /// `ns.testset` claiming the mapping before founding the group's
    /// first view.
    FoundClaim,
    /// Periodic coordinator poll (callback-vs-polling ablation).
    Poll,
}

/// Where a group member currently stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Waiting for the naming service to answer the join lookup.
    ReadingNs,
    /// Waiting to become a member of the target HWG.
    JoiningHwg,
    /// HWG member; asked the LWG coordinator for admission.
    AwaitingAdmission,
    /// Full member of an installed LWG view.
    Member,
    /// Asked to leave; waiting for the view that excludes us.
    Leaving,
}

/// Member-side state of an in-progress LWG flush (join/leave/switch).
#[derive(Debug)]
pub(crate) struct LwgFlush {
    pub(crate) flush: LFlushId,
    /// Members whose `FlushOk` is awaited.
    pub(crate) members: Vec<NodeId>,
    pub(crate) oks: BTreeSet<NodeId>,
    /// The successor view, once announced.
    pub(crate) new_view: Option<(View, HwgId)>,
    pub(crate) started_at: SimTime,
}

/// Coordinator-side state of an in-progress switch (paper §3: the
/// switching protocol; also step 2 of partition healing, §6.2).
#[derive(Debug)]
pub(crate) struct SwitchState {
    pub(crate) flush: LFlushId,
    pub(crate) to: HwgId,
    pub(crate) members: Vec<NodeId>,
    pub(crate) ready: BTreeSet<NodeId>,
    pub(crate) started_at: SimTime,
}

/// Per-LWG state at one node.
#[derive(Debug)]
pub(crate) struct LwgState {
    pub(crate) phase: Phase,
    /// Current LWG view (when `Member`/`Leaving`).
    pub(crate) view: Option<View>,
    /// Ids of LWG views this node has installed.
    pub(crate) history: BTreeSet<ViewId>,
    /// The HWG the group is currently mapped onto (target HWG during the
    /// join flow).
    pub(crate) hwg: Option<HwgId>,
    /// Create the target HWG instead of probing for it (fresh allocation).
    pub(crate) create_hwg: bool,
    /// Sends buffered while no view is installed or a flush is running.
    pub(crate) pending_send: Vec<Payload>,
    /// Admission bookkeeping (joiner side).
    pub(crate) join_deadline: Option<SimTime>,
    pub(crate) join_attempts: u32,
    /// Coordinator bookkeeping.
    pub(crate) pending_joins: BTreeSet<NodeId>,
    pub(crate) pending_leaves: BTreeSet<NodeId>,
    pub(crate) lflush: Option<LwgFlush>,
    pub(crate) switching: Option<SwitchState>,
    /// Member-side: the switch we are following (stop data, join target,
    /// report ready).
    pub(crate) follow_switch: Option<(LFlushId, HwgId)>,
    /// `FlushOk`s that arrived before their `Flush` (FIFO is per sender;
    /// a peer's ack can overtake the coordinator's flush announcement).
    pub(crate) early_oks: Vec<(LFlushId, NodeId)>,
    /// Set when the backing HWG view dropped some of this LWG's members:
    /// a pruned view announcement is imminent (sends are buffered until it
    /// arrives so no member delivers messages others will not see).
    pub(crate) awaiting_prune: Option<SimTime>,
    pub(crate) next_view_seq: u64,
    pub(crate) next_flush_nonce: u64,
}

impl LwgState {
    pub(crate) fn new() -> Self {
        LwgState {
            phase: Phase::ReadingNs,
            view: None,
            history: BTreeSet::new(),
            hwg: None,
            create_hwg: false,
            pending_send: Vec::new(),
            join_deadline: None,
            join_attempts: 0,
            pending_joins: BTreeSet::new(),
            pending_leaves: BTreeSet::new(),
            lflush: None,
            switching: None,
            follow_switch: None,
            early_oks: Vec::new(),
            awaiting_prune: None,
            next_view_seq: 0,
            next_flush_nonce: 0,
        }
    }

    pub(crate) fn take_view_seq(&mut self) -> u64 {
        self.next_view_seq += 1;
        self.next_view_seq
    }

    pub(crate) fn bump_view_seq(&mut self, seen: u64) {
        self.next_view_seq = self.next_view_seq.max(seen);
    }

    pub(crate) fn take_flush_nonce(&mut self) -> u64 {
        self.next_flush_nonce += 1;
        self.next_flush_nonce
    }
}

/// Per-HWG merge-views round: the LWG views advertised by members during
/// the current HWG view (via `AllViews` piggybacked on every flush).
#[derive(Debug, Default)]
pub(crate) struct MergeRound {
    /// Whether MERGE-VIEWS was multicast/observed in this HWG view.
    pub(crate) triggered: bool,
    /// lwg → (view id → view) collected from `AllViews`.
    pub(crate) collected: BTreeMap<LwgId, BTreeMap<ViewId, View>>,
}

/// Recently seen data tagged with an LWG view we do not know — potential
/// evidence of a concurrent view (local peer-discovery fallback).
#[derive(Debug)]
pub(crate) struct ForeignTag {
    pub(crate) seen_at: SimTime,
    pub(crate) hwg: HwgId,
    pub(crate) lwg: LwgId,
    pub(crate) view_id: ViewId,
}

/// A snapshot of one group's state at this node (see
/// [`crate::LwgService::lwg_status`] and
/// [`crate::LwgService::iter_status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LwgStatus {
    /// The group.
    pub lwg: LwgId,
    /// Lifecycle phase, as a stable label: `"reading-ns"`,
    /// `"joining-hwg"`, `"awaiting-admission"`, `"member"`, `"leaving"`.
    pub phase: &'static str,
    /// Current view id, when installed.
    pub view: Option<ViewId>,
    /// Number of members in the current view.
    pub members: usize,
    /// The HWG the group is mapped onto (or targeted at, while joining).
    pub hwg: Option<HwgId>,
    /// Whether this node acts as the group's coordinator.
    pub coordinator: bool,
    /// Whether a flush/switch/prune is in progress.
    pub busy: bool,
}

/// A point-in-time summary of the whole service at this node (see
/// [`crate::LwgService::stats`]). Counts only — per-group detail comes
/// from the indexed [`crate::LwgService::lwg_status`] /
/// [`crate::LwgService::iter_status`] queries, so taking a summary never
/// clones the whole table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Number of LWGs in the local directory.
    pub groups: usize,
    /// HWGs this node is currently a member of.
    pub hwgs: Vec<HwgId>,
    /// Forward pointers held (LWGs known to have switched away).
    pub forward_pointers: usize,
    /// Naming requests awaiting a reply.
    pub pending_ns_requests: usize,
}
