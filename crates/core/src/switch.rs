//! Switching: re-mapping a light-weight group onto another HWG (paper §3's
//! switching protocol; also step 2 of partition healing, §6.2).
//!
//! The coordinator flushes the old mapping (`SwitchTo` doubles as an LWG
//! flush), every member joins the target HWG and reports `SwitchReady`
//! there, and the coordinator installs the switched view on the target. A
//! forward pointer stays behind so stale joiners get redirected
//! ([`crate::flush`] handles the member-side flush half).

use crate::batch::FlushReason;
use crate::keys;
use crate::msg::{LFlushId, LwgMsg};
use crate::protocol_events::LwgProtocolEvent;
use crate::service::LwgService;
use crate::state::SwitchState;
use crate::wire;
use plwg_hwg::{GroupStatus, HwgId, HwgSubstrate, View, ViewId};
use plwg_naming::LwgId;
use plwg_sim::{NodeId, Transport, TransportExt};
use std::collections::BTreeSet;

impl<S: HwgSubstrate> LwgService<S> {
    /// Operator-initiated re-mapping of `lwg` onto the HWG `to` — the same
    /// switch the Figure-1 policies and the §6.2 reconciliation rule issue
    /// internally. No-op unless this node currently coordinates `lwg` (or
    /// while another flush/switch is in progress).
    pub fn switch(&mut self, ctx: &mut dyn Transport, lwg: LwgId, to: HwgId) {
        self.start_switch(ctx, lwg, to, false);
    }

    /// Coordinator: re-map `lwg` onto `to`. `create` indicates `to` is a
    /// freshly allocated HWG this node should create rather than probe.
    pub(crate) fn start_switch(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        to: HwgId,
        create: bool,
    ) {
        if self.lwg_coordinator(lwg) != Some(self.me) {
            return;
        }
        let Some(state) = self.dir.get(lwg) else {
            return;
        };
        if state.lflush.is_some() || state.switching.is_some() || state.hwg == Some(to) {
            return;
        }
        let Some(view) = state.view.clone() else {
            return;
        };
        let Some(hwg) = state.hwg else { return };
        let members = view.members.clone();
        let me = self.me;
        let Ok(mut state) = self.dir.record(lwg) else {
            return;
        };
        let flush = LFlushId {
            initiator: me,
            nonce: state.take_flush_nonce(),
        };
        state.switching = Some(SwitchState {
            flush,
            to,
            members: members.clone(),
            ready: BTreeSet::new(),
            started_at: ctx.now(),
        });
        drop(state);
        ctx.emit(|| LwgProtocolEvent::SwitchStart { lwg, from: hwg, to });
        ctx.metrics().incr(keys::SWITCHES);
        if create {
            self.substrate.create(ctx, to);
        } else if self.substrate.status_of(to) == GroupStatus::Left {
            self.substrate.join(ctx, to);
        }
        // Barrier: a switch doubles as a flush of the old mapping.
        self.flush_pack(ctx, hwg, FlushReason::Barrier);
        self.substrate.send(
            ctx,
            hwg,
            wire::frame(&LwgMsg::SwitchTo {
                lwg,
                flush,
                to,
                members,
            }),
        );
    }

    /// A member reported ready on the target HWG; once everyone has, the
    /// coordinator installs the switched view.
    pub(crate) fn handle_switch_ready(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        flush: LFlushId,
        from: NodeId,
    ) {
        let mut complete = false;
        if let Some(mut state) = self.dir.get_mut(lwg) {
            if let Some(sw) = state.switching.as_mut() {
                if sw.flush == flush {
                    sw.ready.insert(from);
                    complete = sw.ready.len() == sw.members.len();
                }
            }
        }
        if complete {
            self.complete_switch(ctx, lwg);
        }
    }

    /// Coordinator: every member reported ready on the target HWG —
    /// install the switched view there.
    fn complete_switch(&mut self, ctx: &mut dyn Transport, lwg: LwgId) {
        let me = self.me;
        let Some(mut state) = self.dir.get_mut(lwg) else {
            return;
        };
        let Some(sw) = state.switching.take() else {
            return;
        };
        let Some(view) = state.view.clone() else {
            return;
        };
        let new_view = View::with_predecessors(
            ViewId::new(me, state.take_view_seq()),
            sw.members.clone(),
            vec![view.id],
        );
        drop(state);
        ctx.emit(|| LwgProtocolEvent::SwitchComplete {
            lwg,
            to: sw.to,
            view: new_view.clone(),
        });
        self.substrate.send(
            ctx,
            sw.to,
            wire::frame(&LwgMsg::NewLwgView {
                lwg,
                flush: Some(sw.flush),
                view: new_view,
                hwg: sw.to,
            }),
        );
        // Pull any concurrent views present on the target HWG into a merge.
        self.trigger_merge_views(ctx, sw.to);
    }
}
