//! Wire codec for the LWG-layer protocol messages (frame family `LWG`).
//!
//! Every [`LwgMsg`] is one `plwg-wire` frame: the `LWG` family tag, a
//! one-byte variant tag, then the variant's fields in declaration order.
//! These frames usually travel *inside* an HWG data multicast (so the
//! delivered `HwgEvent::Data` payload is itself a complete `LWG` frame);
//! `Redirect` additionally goes node-to-node. Application payloads inside
//! `Data` / `Batch` are length-prefixed, so a batch is serialized once by
//! the sender and every receiver's deliveries *slice* the incoming
//! allocation instead of copying it.

use crate::msg::{LFlushId, LwgMsg};
use plwg_sim::{encode_frame, family, Decode, Encode, NodeId, Payload, Reader, WireError};

/// Encodes `msg` as a ready-to-send payload (family `LWG`).
pub(crate) fn frame(msg: &LwgMsg) -> Payload {
    encode_frame(family::LWG, msg)
}

// Variant tags; wire-stable, append-only.
const T_DATA: u8 = 0;
const T_BATCH: u8 = 1;
const T_JOIN_REQ: u8 = 2;
const T_LEAVE_REQ: u8 = 3;
const T_FLUSH: u8 = 4;
const T_FLUSH_OK: u8 = 5;
const T_NEW_LWG_VIEW: u8 = 6;
const T_SWITCH_TO: u8 = 7;
const T_SWITCH_READY: u8 = 8;
const T_MERGE_VIEWS: u8 = 9;
const T_ALL_VIEWS: u8 = 10;
const T_DISSOLVED: u8 = 11;
const T_REDIRECT: u8 = 12;

impl Encode for LFlushId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.initiator.encode_into(out);
        self.nonce.encode_into(out);
    }
}

impl Decode for LFlushId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LFlushId {
            initiator: NodeId::decode_from(r)?,
            nonce: u64::decode_from(r)?,
        })
    }
}

impl Encode for LwgMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            LwgMsg::Data {
                lwg,
                lwg_view,
                data,
            } => {
                out.push(T_DATA);
                lwg.encode_into(out);
                lwg_view.encode_into(out);
                data.encode_into(out);
            }
            LwgMsg::Batch { entries } => {
                out.push(T_BATCH);
                entries.encode_into(out);
            }
            LwgMsg::JoinReq { lwg } => {
                out.push(T_JOIN_REQ);
                lwg.encode_into(out);
            }
            LwgMsg::LeaveReq { lwg } => {
                out.push(T_LEAVE_REQ);
                lwg.encode_into(out);
            }
            LwgMsg::Flush {
                lwg,
                flush,
                members,
            } => {
                out.push(T_FLUSH);
                lwg.encode_into(out);
                flush.encode_into(out);
                members.encode_into(out);
            }
            LwgMsg::FlushOk { lwg, flush } => {
                out.push(T_FLUSH_OK);
                lwg.encode_into(out);
                flush.encode_into(out);
            }
            LwgMsg::NewLwgView {
                lwg,
                flush,
                view,
                hwg,
            } => {
                out.push(T_NEW_LWG_VIEW);
                lwg.encode_into(out);
                flush.encode_into(out);
                view.encode_into(out);
                hwg.encode_into(out);
            }
            LwgMsg::SwitchTo {
                lwg,
                flush,
                to,
                members,
            } => {
                out.push(T_SWITCH_TO);
                lwg.encode_into(out);
                flush.encode_into(out);
                to.encode_into(out);
                members.encode_into(out);
            }
            LwgMsg::SwitchReady { lwg, flush } => {
                out.push(T_SWITCH_READY);
                lwg.encode_into(out);
                flush.encode_into(out);
            }
            LwgMsg::MergeViews => out.push(T_MERGE_VIEWS),
            LwgMsg::AllViews { views } => {
                out.push(T_ALL_VIEWS);
                views.encode_into(out);
            }
            LwgMsg::Dissolved { lwg, flush } => {
                out.push(T_DISSOLVED);
                lwg.encode_into(out);
                flush.encode_into(out);
            }
            LwgMsg::Redirect { lwg, to } => {
                out.push(T_REDIRECT);
                lwg.encode_into(out);
                to.encode_into(out);
            }
        }
    }
}

impl Decode for LwgMsg {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            T_DATA => Ok(LwgMsg::Data {
                lwg: Decode::decode_from(r)?,
                lwg_view: Decode::decode_from(r)?,
                data: Decode::decode_from(r)?,
            }),
            T_BATCH => Ok(LwgMsg::Batch {
                entries: Decode::decode_from(r)?,
            }),
            T_JOIN_REQ => Ok(LwgMsg::JoinReq {
                lwg: Decode::decode_from(r)?,
            }),
            T_LEAVE_REQ => Ok(LwgMsg::LeaveReq {
                lwg: Decode::decode_from(r)?,
            }),
            T_FLUSH => Ok(LwgMsg::Flush {
                lwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
                members: Decode::decode_from(r)?,
            }),
            T_FLUSH_OK => Ok(LwgMsg::FlushOk {
                lwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
            }),
            T_NEW_LWG_VIEW => Ok(LwgMsg::NewLwgView {
                lwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
                view: Decode::decode_from(r)?,
                hwg: Decode::decode_from(r)?,
            }),
            T_SWITCH_TO => Ok(LwgMsg::SwitchTo {
                lwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
                to: Decode::decode_from(r)?,
                members: Decode::decode_from(r)?,
            }),
            T_SWITCH_READY => Ok(LwgMsg::SwitchReady {
                lwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
            }),
            T_MERGE_VIEWS => Ok(LwgMsg::MergeViews),
            T_ALL_VIEWS => Ok(LwgMsg::AllViews {
                views: Decode::decode_from(r)?,
            }),
            T_DISSOLVED => Ok(LwgMsg::Dissolved {
                lwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
            }),
            T_REDIRECT => Ok(LwgMsg::Redirect {
                lwg: Decode::decode_from(r)?,
                to: Decode::decode_from(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "LwgMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plwg_hwg::{HwgId, View, ViewId};
    use plwg_naming::LwgId;
    use plwg_sim::{decode_frame, peek_family, Frame};
    use std::sync::Arc;

    fn roundtrip(msg: &LwgMsg) -> LwgMsg {
        let f = frame(msg);
        assert_eq!(peek_family(&f), Some(family::LWG));
        decode_frame::<LwgMsg>(family::LWG, &f).expect("decode")
    }

    #[test]
    fn every_variant_roundtrips() {
        let vid = ViewId::new(NodeId(0), 1);
        let fid = LFlushId {
            initiator: NodeId(1),
            nonce: 3,
        };
        let view = View::with_predecessors(vid, vec![NodeId(0), NodeId(1)], vec![]);
        let msgs = [
            LwgMsg::Data {
                lwg: LwgId(1),
                lwg_view: vid,
                data: Frame::from_u64(9),
            },
            LwgMsg::Batch {
                entries: vec![
                    (LwgId(1), vid, Frame::from_u64(1)),
                    (LwgId(2), vid, Frame::copy_from_slice(b"two")),
                ],
            },
            LwgMsg::JoinReq { lwg: LwgId(1) },
            LwgMsg::LeaveReq { lwg: LwgId(1) },
            LwgMsg::Flush {
                lwg: LwgId(1),
                flush: fid,
                members: vec![NodeId(0), NodeId(1)],
            },
            LwgMsg::FlushOk {
                lwg: LwgId(1),
                flush: fid,
            },
            LwgMsg::NewLwgView {
                lwg: LwgId(1),
                flush: Some(fid),
                view: view.clone(),
                hwg: HwgId(7),
            },
            LwgMsg::SwitchTo {
                lwg: LwgId(1),
                flush: fid,
                to: HwgId(8),
                members: vec![NodeId(0)],
            },
            LwgMsg::SwitchReady {
                lwg: LwgId(1),
                flush: fid,
            },
            LwgMsg::MergeViews,
            LwgMsg::AllViews {
                views: vec![(LwgId(1), view)],
            },
            LwgMsg::Dissolved {
                lwg: LwgId(1),
                flush: fid,
            },
            LwgMsg::Redirect {
                lwg: LwgId(1),
                to: HwgId(9),
            },
        ];
        for msg in &msgs {
            assert_eq!(format!("{:?}", roundtrip(msg)), format!("{msg:?}"));
        }
    }

    #[test]
    fn batch_entries_share_the_batch_allocation() {
        let msg = LwgMsg::Batch {
            entries: vec![
                (
                    LwgId(1),
                    ViewId::new(NodeId(0), 1),
                    Frame::copy_from_slice(b"first payload"),
                ),
                (
                    LwgId(2),
                    ViewId::new(NodeId(0), 1),
                    Frame::copy_from_slice(b"second payload"),
                ),
            ],
        };
        let f = frame(&msg);
        let LwgMsg::Batch { entries } = decode_frame::<LwgMsg>(family::LWG, &f).expect("decode")
        else {
            panic!("wrong variant");
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(&entries[0].2[..], b"first payload");
        assert_eq!(&entries[1].2[..], b"second payload");
        // Zero-copy: both unpacked payloads view the single batch frame.
        for (_, _, data) in &entries {
            assert!(Arc::ptr_eq(data.backing(), f.backing()));
        }
    }

    #[test]
    fn bad_variant_tag_is_rejected() {
        let f = Frame::from_vec(vec![family::LWG as u8, 77]);
        assert_eq!(
            decode_frame::<LwgMsg>(family::LWG, &f).err(),
            Some(WireError::BadTag {
                what: "LwgMsg",
                tag: 77,
            })
        );
    }
}
