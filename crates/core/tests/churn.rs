//! Churn stress: sustained joins, leaves, crashes, restarts and partitions
//! over several groups — the system must keep converging and never violate
//! its structural invariants.

use plwg_core::{LwgConfig, LwgId, ServiceStats};
use plwg_vsync::VsyncStack;

/// The production instantiation exercised by these scenarios.
type LwgNode = plwg_core::LwgNode<VsyncStack>;
use plwg_naming::{NameServer, NamingConfig};
use plwg_sim::{NodeId, SimDuration, SimTime, World, WorldConfig};

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn build(seed: u64, apps: u32) -> (World, Vec<NodeId>, Vec<NodeId>) {
    let mut world = World::new(WorldConfig {
        seed,
        ..WorldConfig::default()
    });
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let servers = vec![s0, s1];
    let apps: Vec<NodeId> = (0..apps)
        .map(|i| {
            world.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    (world, servers, apps)
}

/// Asserts the cross-node invariants once the system has settled:
/// members of a view agree on it exactly, and every live group has a
/// stable (non-busy) mapping.
fn assert_settled(world: &mut World, apps: &[NodeId], groups: &[LwgId]) {
    for &g in groups {
        // Collect each node's opinion.
        let alive: Vec<NodeId> = apps
            .iter()
            .copied()
            .filter(|&m| world.is_alive(m))
            .collect();
        let opinions: Vec<(NodeId, Option<plwg_core::View>)> = alive
            .into_iter()
            .map(|m| {
                (
                    m,
                    world.inspect(m, |n: &LwgNode| n.current_view(g).cloned()),
                )
            })
            .collect();
        for (m, view) in &opinions {
            let Some(view) = view else { continue };
            // Everyone this view names as a member (and is alive) holds
            // exactly the same view.
            for peer in &view.members {
                if let Some((_, peer_view)) = opinions.iter().find(|(n, _)| n == peer) {
                    assert_eq!(
                        peer_view.as_ref(),
                        Some(view),
                        "{m} and {peer} disagree on {g}"
                    );
                }
            }
            assert!(view.contains(*m), "{m} must be in its own view of {g}");
        }
    }
    // No node is stuck mid-protocol.
    for &m in apps {
        if !world.is_alive(m) {
            continue;
        }
        let (stats, statuses): (ServiceStats, Vec<plwg_core::LwgStatus>) =
            world.inspect(m, |n: &LwgNode| {
                let svc = n.service_ref();
                (svc.stats(), svc.iter_status().collect())
            });
        for s in &statuses {
            assert!(!s.busy, "{m} still busy on {} after settling: {s:?}", s.lwg);
            assert_eq!(s.phase, "member", "{m} stuck in {} on {}", s.phase, s.lwg);
        }
        assert_eq!(stats.pending_ns_requests, 0, "{m} has dangling ns requests");
    }
}

#[test]
fn sustained_churn_converges() {
    let (mut world, servers, apps) = build(51, 6);
    let groups = [LwgId(1), LwgId(2), LwgId(3)];

    // Initial memberships: g1 = all, g2 = first 4, g3 = last 3.
    let schedule: Vec<(u64, LwgId, usize, bool)> = vec![
        // (time, group, app index, join?)
        (0, groups[0], 0, true),
        (1, groups[0], 1, true),
        (2, groups[0], 2, true),
        (3, groups[0], 3, true),
        (4, groups[0], 4, true),
        (5, groups[0], 5, true),
        (6, groups[1], 0, true),
        (7, groups[1], 1, true),
        (8, groups[1], 2, true),
        (9, groups[1], 3, true),
        (10, groups[2], 3, true),
        (11, groups[2], 4, true),
        (12, groups[2], 5, true),
        // churn
        (20, groups[1], 0, false),
        (21, groups[2], 3, false),
        (22, groups[1], 4, true),
        (23, groups[0], 2, false),
        (24, groups[2], 0, true),
    ];
    for (t, g, idx, join) in schedule {
        let node = apps[idx];
        world.invoke_at(at(t), node, move |n: &mut LwgNode, ctx| {
            if join {
                n.service().join(ctx, g);
            } else {
                n.service().leave(ctx, g);
            }
        });
    }
    // A crash + restart and a partition in the middle of it all.
    world.crash_at(at(26), apps[5]);
    world.restart_at(at(34), apps[5]);
    world.split_at(
        at(40),
        vec![
            vec![servers[0], apps[0], apps[1], apps[2]],
            vec![servers[1], apps[3], apps[4], apps[5]],
        ],
    );
    world.heal_at(at(52));

    // Long settle, then check all invariants.
    world.run_until(at(110));
    assert_settled(&mut world, &apps, &groups);

    // Spot-check final memberships against the schedule.
    let g1 = world
        .inspect(apps[0], |n: &LwgNode| n.current_view(groups[0]).cloned())
        .expect("g1 view");
    // g1: all six joined, app 2 left.
    assert_eq!(g1.len(), 5, "g1 final membership: {g1}");
    assert!(!g1.contains(apps[2]));

    let g2 = world
        .inspect(apps[1], |n: &LwgNode| n.current_view(groups[1]).cloned())
        .expect("g2 view");
    // g2: 0..4 joined, 0 left, 4 joined late.
    assert_eq!(
        g2.sorted_members(),
        vec![apps[1], apps[2], apps[3], apps[4]]
    );

    let g3 = world
        .inspect(apps[4], |n: &LwgNode| n.current_view(groups[2]).cloned())
        .expect("g3 view");
    // g3: 3,4,5 joined; 3 left; 0 joined; 5 crashed and restarted (stays).
    assert_eq!(g3.sorted_members(), vec![apps[0], apps[4], apps[5]]);
}

#[test]
fn repeated_partition_cycles_converge() {
    let (mut world, servers, apps) = build(52, 4);
    let g = LwgId(1);
    for (i, &m) in apps.iter().enumerate() {
        world.invoke_at(
            at(0) + SimDuration::from_millis(400 * i as u64),
            m,
            move |n: &mut LwgNode, ctx| n.service().join(ctx, g),
        );
    }
    world.run_until(at(10));
    // Three split/heal cycles with different cuts.
    let cuts: Vec<(Vec<usize>, Vec<usize>)> = vec![
        (vec![0, 1], vec![2, 3]),
        (vec![0, 2], vec![1, 3]),
        (vec![0, 3], vec![1, 2]),
    ];
    let mut t = 10;
    for (left, right) in cuts {
        let mut a = vec![servers[0]];
        a.extend(left.iter().map(|&i| apps[i]));
        let mut b = vec![servers[1]];
        b.extend(right.iter().map(|&i| apps[i]));
        world.split_at(at(t), vec![a, b]);
        world.heal_at(at(t + 12));
        t += 30;
    }
    world.run_until(at(t + 20));
    assert_settled(&mut world, &apps, &[g]);
    let v = world
        .inspect(apps[0], |n: &LwgNode| n.current_view(g).cloned())
        .expect("view");
    assert_eq!(v.len(), 4, "all members reunited after 3 cycles: {v}");
}
