//! End-to-end scenarios for the light-weight group service: joins,
//! messaging, crashes, policies, and the partition-heal reconciliation that
//! is the paper's contribution.

use plwg_core::{HwgId, LwgConfig, LwgEvent, LwgId, View};
use plwg_vsync::VsyncStack;

/// The production instantiation exercised by these scenarios.
type LwgNode = plwg_core::LwgNode<VsyncStack>;
use plwg_naming::{NameServer, NamingConfig};
use plwg_sim::{Frame, NodeId, Payload, SimDuration, SimTime, World, WorldConfig};

/// The 8-byte little-endian test payload convention (see `Frame::from_u64`).
fn payload(v: u64) -> Payload {
    Frame::from_u64(v)
}

const A: LwgId = LwgId(1);
const B: LwgId = LwgId(2);

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

/// Builds a world: 2 name servers (n0, n1) + `n` application nodes.
fn setup(n: u32, seed: u64) -> (World, Vec<NodeId>, Vec<NodeId>) {
    setup_cfg(n, seed, LwgConfig::default())
}

fn setup_cfg(n: u32, seed: u64, cfg: LwgConfig) -> (World, Vec<NodeId>, Vec<NodeId>) {
    let mut w = World::new(WorldConfig {
        seed,
        trace: true,
        ..WorldConfig::default()
    });
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let servers = vec![s0, s1];
    let apps: Vec<NodeId> = (0..n)
        .map(|i| {
            w.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    (w, servers, apps)
}

fn join_all(w: &mut World, nodes: &[NodeId], lwg: LwgId, stagger_ms: u64) {
    for (i, &n) in nodes.iter().enumerate() {
        let t = w.now() + SimDuration::from_millis(stagger_ms * i as u64);
        w.invoke_at(t.max(w.now()), n, move |a: &mut LwgNode, ctx| {
            a.service().join(ctx, lwg)
        });
    }
}

fn common_view(w: &mut World, nodes: &[NodeId], lwg: LwgId) -> Option<View> {
    let first = w.inspect(nodes[0], |a: &LwgNode| a.current_view(lwg).cloned())?;
    for &n in &nodes[1..] {
        let v = w.inspect(n, |a: &LwgNode| a.current_view(lwg).cloned());
        if v.as_ref() != Some(&first) {
            return None;
        }
    }
    Some(first)
}

fn assert_converged(w: &mut World, nodes: &[NodeId], lwg: LwgId, expect: usize) -> View {
    let v = common_view(w, nodes, lwg).unwrap_or_else(|| panic!("nodes diverge on {lwg} views"));
    assert_eq!(v.len(), expect, "view size for {lwg}: {v}");
    v
}

#[test]
fn single_join_founds_group() {
    let (mut w, _s, apps) = setup(1, 1);
    join_all(&mut w, &apps, A, 0);
    w.run_for(secs(8));
    let v = assert_converged(&mut w, &apps, A, 1);
    assert_eq!(v.members, vec![apps[0]]);
    // The mapping is registered in the naming service.
    w.inspect(NodeId(0), |s: &NameServer| {
        assert_eq!(s.db().read(A).len(), 1);
    });
}

#[test]
fn staggered_joins_converge_to_one_view() {
    let (mut w, _s, apps) = setup(4, 2);
    join_all(&mut w, &apps, A, 400);
    w.run_for(secs(12));
    assert_converged(&mut w, &apps, A, 4);
    // All four share one HWG.
    let hwgs: Vec<Option<HwgId>> = apps
        .iter()
        .map(|&n| w.inspect(n, |a: &LwgNode| a.service_ref().mapping_of(A)))
        .collect();
    assert!(hwgs.iter().all(|h| h.is_some() && *h == hwgs[0]));
}

#[test]
fn simultaneous_joins_converge_despite_founding_race() {
    let (mut w, _s, apps) = setup(4, 3);
    join_all(&mut w, &apps, A, 0);
    w.run_for(secs(20));
    assert_converged(&mut w, &apps, A, 4);
}

#[test]
fn two_lwgs_with_same_members_share_one_hwg() {
    let (mut w, _s, apps) = setup(3, 4);
    join_all(&mut w, &apps, A, 300);
    w.run_for(secs(8));
    join_all(&mut w, &apps, B, 300);
    w.run_for(secs(8));
    assert_converged(&mut w, &apps, A, 3);
    assert_converged(&mut w, &apps, B, 3);
    // Give the shrink rule time to clean up founding-race leftovers.
    w.run_for(secs(25));
    // Resource sharing: both LWGs ride the same HWG.
    let ha = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(A));
    let hb = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(B));
    assert_eq!(ha, hb, "same-membership LWGs should share an HWG");
    // And only one HWG exists at each node.
    for &n in &apps {
        let hwgs = w.inspect(n, |a: &LwgNode| a.service_ref().hwgs());
        assert_eq!(hwgs.len(), 1, "node {n} should be in exactly one HWG");
    }
}

#[test]
fn lwg_multicast_is_fifo_and_filtered_by_group() {
    let (mut w, _s, apps) = setup(3, 5);
    // Node 2 joins only B — it must not see A's traffic.
    let loner = apps[2];
    w.invoke_at(at(3), loner, move |a: &mut LwgNode, ctx| {
        a.service().join(ctx, B)
    });
    join_all(&mut w, &apps[..2], A, 300);
    w.run_for(secs(10));
    let sender = apps[0];
    w.invoke(sender, move |a: &mut LwgNode, ctx| {
        for i in 0..15u64 {
            a.service().send(ctx, A, payload(i));
        }
    });
    w.run_for(secs(3));
    for &n in &apps[..2] {
        let got: Vec<u64> = w.inspect(n, |a: &LwgNode| a.events_ref().data_from(A, sender));
        assert_eq!(got, (0..15).collect::<Vec<u64>>(), "FIFO at {n}");
    }
    let loner_got = w.inspect(loner, |a: &LwgNode| {
        a.events_ref()
            .history()
            .iter()
            .filter(|e| matches!(e, LwgEvent::Data { .. }))
            .count()
    });
    assert_eq!(loner_got, 0, "non-member must not deliver A's data");
}

#[test]
fn member_crash_shrinks_lwg_view() {
    let (mut w, _s, apps) = setup(3, 6);
    join_all(&mut w, &apps, A, 300);
    w.run_for(secs(8));
    assert_converged(&mut w, &apps, A, 3);
    w.crash(apps[2]);
    w.run_for(secs(8));
    let v = assert_converged(&mut w, &apps[..2], A, 2);
    assert!(!v.contains(apps[2]));
}

#[test]
fn leave_excludes_member_and_confirms() {
    let (mut w, _s, apps) = setup(3, 7);
    join_all(&mut w, &apps, A, 300);
    w.run_for(secs(8));
    w.invoke(apps[2], |a: &mut LwgNode, ctx| a.service().leave(ctx, A));
    w.run_for(secs(6));
    assert_converged(&mut w, &apps[..2], A, 2);
    w.inspect(apps[2], |a: &LwgNode| {
        assert_eq!(
            a.events_ref().lefts(),
            vec![A],
            "leaver must get the Left upcall"
        );
    });
}

#[test]
fn sole_member_leave_unsets_mapping() {
    let (mut w, _s, apps) = setup(1, 8);
    join_all(&mut w, &apps, A, 0);
    w.run_for(secs(6));
    w.invoke(apps[0], |a: &mut LwgNode, ctx| a.service().leave(ctx, A));
    w.run_for(secs(4));
    w.inspect(apps[0], |a: &LwgNode| {
        assert_eq!(a.events_ref().lefts(), vec![A])
    });
    w.inspect(NodeId(0), |s: &NameServer| {
        assert!(s.db().read(A).is_empty(), "mapping must be unset");
    });
}

/// The headline scenario: a 4-member LWG partitions into two concurrent
/// views; when the network heals, the HWG merges, MERGE-VIEWS runs (paper
/// Fig. 5), and a single LWG view descending from both sides is installed.
#[test]
fn partition_creates_concurrent_views_and_heal_merges_them() {
    let (mut w, servers, apps) = setup(4, 9);
    join_all(&mut w, &apps, A, 300);
    w.run_for(secs(10));
    let pre = assert_converged(&mut w, &apps, A, 4);

    // Split app nodes 2/2; each side keeps one name server.
    w.split_at(
        at(12),
        vec![
            vec![servers[0], apps[0], apps[1]],
            vec![servers[1], apps[2], apps[3]],
        ],
    );
    w.run_until(at(24));
    let va = assert_converged(&mut w, &apps[..2], A, 2);
    let vb = assert_converged(&mut w, &apps[2..], A, 2);
    assert_ne!(va.id, vb.id, "the sides hold concurrent views");
    assert_ne!(va.sorted_members(), vb.sorted_members());

    w.heal_at(at(24));
    w.run_until(at(45));
    let merged = assert_converged(&mut w, &apps, A, 4);
    assert_ne!(merged.id, pre.id);
    // The merged view descends from both concurrent views.
    assert!(
        merged.predecessors.contains(&va.id) && merged.predecessors.contains(&vb.id),
        "merged view {merged} must succeed {va} and {vb}"
    );
    // The naming service converged to a single mapping (paper Table 4).
    w.run_for(secs(5));
    for &s in &servers {
        w.inspect(s, |s: &NameServer| {
            assert_eq!(s.db().read(A).len(), 1, "naming must collapse");
            assert!(s.db().inconsistent().is_empty());
        });
    }
}

/// Paper Figures 3–4: *two* LWGs end up swap-mapped onto two HWGs by
/// concurrent partitions; reconciliation (switch to the highest HWG id)
/// plus merge-views restores one view per LWG, each on a single HWG.
#[test]
fn fig3_inconsistent_mappings_reconcile_after_heal() {
    let (mut w, servers, apps) = setup(4, 10);
    // Both LWGs span all four members.
    join_all(&mut w, &apps, A, 300);
    w.run_for(secs(10));
    join_all(&mut w, &apps, B, 300);
    w.run_for(secs(10));
    assert_converged(&mut w, &apps, A, 4);
    assert_converged(&mut w, &apps, B, 4);

    // Partition; each side keeps serving both groups (concurrent views).
    w.split_at(
        at(25),
        vec![
            vec![servers[0], apps[0], apps[1]],
            vec![servers[1], apps[2], apps[3]],
        ],
    );
    w.run_until(at(45));
    for lwg in [A, B] {
        assert_converged(&mut w, &apps[..2], lwg, 2);
        assert_converged(&mut w, &apps[2..], lwg, 2);
    }

    w.heal_at(at(45));
    w.run_until(at(80));
    let va = assert_converged(&mut w, &apps, A, 4);
    let vb = assert_converged(&mut w, &apps, B, 4);
    assert!(va.predecessors.len() >= 2, "A merged from concurrents");
    assert!(vb.predecessors.len() >= 2, "B merged from concurrents");
    // Each LWG converged to exactly one mapping in the naming service.
    w.run_for(secs(5));
    w.inspect(servers[0], |s: &NameServer| {
        assert_eq!(s.db().read(A).len(), 1);
        assert_eq!(s.db().read(B).len(), 1);
        assert!(s.db().inconsistent().is_empty());
    });
}

/// Interference rule: a small LWG mapped onto a big HWG switches away to a
/// snug HWG of its own.
#[test]
fn interference_rule_switches_small_lwg_off_big_hwg() {
    let (mut w, _s, apps) = setup(8, 11);
    // All 8 join A: one HWG of 8 forms.
    join_all(&mut w, &apps, A, 300);
    w.run_for(secs(12));
    // Only 2 join B; the optimistic mapping puts B on the big HWG.
    join_all(&mut w, &apps[..2], B, 300);
    w.run_for(secs(8));
    let hb_before = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(B));
    let ha = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(A));
    assert_eq!(hb_before, ha, "optimistic mapping shares the HWG first");
    // Let the periodic policies run (default 10 s period).
    w.run_for(secs(25));
    let hb_after = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(B));
    assert_ne!(
        hb_after, ha,
        "interference rule must move the 2-member LWG off the 8-member HWG"
    );
    assert_converged(&mut w, &apps[..2], B, 2);
    // B's members stay in the big HWG only because A still needs it.
    assert_converged(&mut w, &apps, A, 8);
    // No snug HWG existed for B, so the policy allocated a fresh one.
    assert!(
        w.trace().count("lwg.policy.create") >= 1,
        "interference rule must create a fresh HWG for the evicted LWG"
    );
}

/// Shrink rule: once the last LWG leaves an HWG, its members leave the HWG
/// too and the HWG dissolves.
#[test]
fn shrink_rule_dissolves_unused_hwg() {
    let (mut w, _s, apps) = setup(2, 12);
    join_all(&mut w, &apps, A, 300);
    // Long enough for founding-race leftovers to shrink away too.
    w.run_for(secs(25));
    let hwg_count = w.inspect(apps[0], |a: &LwgNode| a.service_ref().hwgs().len());
    assert_eq!(hwg_count, 1);
    for &n in &apps {
        w.invoke(n, |a: &mut LwgNode, ctx| a.service().leave(ctx, A));
    }
    // Leave + shrink grace (15 s default) + slack.
    w.run_for(secs(30));
    for &n in &apps {
        let hwgs = w.inspect(n, |a: &LwgNode| a.service_ref().hwgs().len());
        assert_eq!(hwgs, 0, "node {n} should have left the unused HWG");
    }
}

/// Messages buffered across a view change are delivered in the new view —
/// the user never observes an outage around membership changes.
#[test]
fn sends_during_membership_change_are_not_lost() {
    let (mut w, _s, apps) = setup(3, 13);
    join_all(&mut w, &apps[..2], A, 300);
    w.run_for(secs(8));
    // Third member joins while the first streams.
    w.invoke(apps[2], |a: &mut LwgNode, ctx| a.service().join(ctx, A));
    let sender = apps[0];
    for i in 0..20u64 {
        let t = w.now() + SimDuration::from_millis(i * 40);
        w.invoke_at(t, sender, move |a: &mut LwgNode, ctx| {
            a.service().send(ctx, A, payload(i))
        });
    }
    w.run_for(secs(10));
    assert_converged(&mut w, &apps, A, 3);
    // The original members see every message, in order.
    for &n in &apps[..2] {
        let got: Vec<u64> = w.inspect(n, |a: &LwgNode| a.events_ref().data_from(A, sender));
        assert_eq!(got, (0..20).collect::<Vec<u64>>());
    }
}

/// A member that joins using an outdated mapping is redirected by the
/// forward pointers left behind by the switch (paper §3.1).
#[test]
fn outdated_mapping_join_is_redirected_after_switch() {
    let (mut w, servers, apps) = setup(8, 14);
    // Big group A (8 members) and small group B (2) that will switch away.
    join_all(&mut w, &apps, A, 200);
    w.run_for(secs(10));
    join_all(&mut w, &apps[..2], B, 200);
    w.run_for(secs(6));
    // Freeze the naming service's view of B by partitioning the servers
    // away is too brutal; instead simply wait for the interference switch
    // and then have a late joiner read the (already updated) mapping — the
    // redirect path is additionally exercised by killing the servers.
    w.run_for(secs(25)); // policies run; B switches to its own HWG
    let hb = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(B));
    let ha = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(A));
    assert_ne!(hb, ha, "B must have switched off the big HWG");
    // Crash the name servers: the late joiner will read nothing and fall
    // back to founding — unless forward pointers/merge machinery unify.
    // Keep the servers alive instead and just join late:
    drop(servers);
    w.invoke(apps[2], |a: &mut LwgNode, ctx| a.service().join(ctx, B));
    w.run_for(secs(12));
    let expected: Vec<NodeId> = vec![apps[0], apps[1], apps[2]];
    let vb = common_view(&mut w, &expected, B).expect("B converges with joiner");
    assert_eq!(vb.len(), 3);
}

/// The share rule in vivo: two LWGs with identical membership end up on
/// two different HWGs (founded in different partitions); after the heal
/// the periodic policies collapse them onto one HWG — the higher group id
/// survives (paper Fig. 1, share rule).
#[test]
fn share_rule_collapses_duplicate_hwgs_after_heal() {
    let (mut w, servers, apps) = setup(4, 15);
    let nodes = apps.clone();
    // Found A and B in two different partitions: each side creates its own
    // fresh HWG for its group.
    w.split_at(
        at(1),
        vec![
            vec![servers[0], nodes[0], nodes[1]],
            vec![servers[1], nodes[2], nodes[3]],
        ],
    );
    // A lives on side 1, B on side 2 (2 members each).
    for (i, &m) in nodes[..2].iter().enumerate() {
        w.invoke_at(
            at(2) + SimDuration::from_millis(400 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, A),
        );
    }
    for (i, &m) in nodes[2..].iter().enumerate() {
        w.invoke_at(
            at(2) + SimDuration::from_millis(400 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, B),
        );
    }
    w.run_until(at(15));
    w.heal_at(at(15));
    // After the heal, the remaining members of A join from the other side
    // and vice versa, so both groups span all four — on two identical
    // 4-member HWGs, which the share rule must then collapse.
    for (i, &m) in nodes[2..].iter().enumerate() {
        w.invoke_at(
            at(18) + SimDuration::from_millis(400 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, A),
        );
    }
    for (i, &m) in nodes[..2].iter().enumerate() {
        w.invoke_at(
            at(18) + SimDuration::from_millis(400 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, B),
        );
    }
    // Allow joins + several policy rounds + shrink grace.
    w.run_until(at(75));
    assert_converged(&mut w, &apps, A, 4);
    assert_converged(&mut w, &apps, B, 4);
    let ha = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(A));
    let hb = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(B));
    assert_eq!(
        ha, hb,
        "share rule must collapse the two identical-membership HWGs"
    );
    for &m in &apps {
        let hwgs = w.inspect(m, |a: &LwgNode| a.service_ref().hwgs());
        assert_eq!(hwgs.len(), 1, "{m} should ride a single HWG, has {hwgs:?}");
    }
    assert!(w.metrics().counter("lwg.switches") >= 1);
    // The collapse is a policy-driven switch onto an existing HWG.
    assert!(
        w.trace().count("lwg.policy.switch") >= 1,
        "share rule must issue a policy switch onto the surviving HWG"
    );
}

/// The callbacks-vs-polling ablation's polling mode works end to end:
/// with server callbacks disabled, coordinators discover the conflicting
/// mappings by polling and still reconcile after a heal.
#[test]
fn polling_mode_reconciles_without_callbacks() {
    let ns_cfg = NamingConfig {
        push_callbacks: false,
        ..NamingConfig::default()
    };
    let cfg = LwgConfig {
        naming: ns_cfg.clone(),
        ns_poll_interval: Some(secs(1)),
        ..LwgConfig::default()
    };
    // Build the world by hand: the *servers* must also run with callbacks
    // disabled (setup_cfg only configures the clients).
    let mut w = World::new(WorldConfig {
        seed: 16,
        trace: true,
        ..WorldConfig::default()
    });
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        ns_cfg.clone(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        ns_cfg,
    )));
    let servers = vec![s0, s1];
    let apps: Vec<NodeId> = (0..4)
        .map(|i| {
            w.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    // Found the group in two partitions (different HWGs per side).
    w.split_at(
        at(1),
        vec![
            vec![servers[0], apps[0], apps[1]],
            vec![servers[1], apps[2], apps[3]],
        ],
    );
    for (i, &m) in apps.iter().enumerate() {
        w.invoke_at(
            at(2) + SimDuration::from_millis(400 * (i as u64 % 2)),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, A),
        );
    }
    w.run_until(at(20));
    w.heal_at(at(20));
    w.run_until(at(60));
    let v = assert_converged(&mut w, &apps, A, 4);
    assert!(v.predecessors.len() >= 2, "merged from concurrent views");
    assert_eq!(
        w.metrics().counter("ns.callbacks"),
        0,
        "no push callbacks in polling mode"
    );
    assert!(
        w.metrics().counter("lwg.reconciliations") >= 1,
        "polling must have driven the reconciliation"
    );
}

/// Forward pointers in isolation (paper §3.1): a joiner reading a *stale*
/// mapping lands on the old HWG and is redirected by the members that
/// remember where the group went. The staleness window is manufactured by
/// partitioning one name server across the switch and joining through it
/// right after the heal, before its next gossip round.
#[test]
fn stale_mapping_join_is_redirected_by_forward_pointer() {
    let ns_cfg = NamingConfig {
        gossip_interval: secs(5),
        ..NamingConfig::default()
    };
    let cfg = LwgConfig {
        naming: ns_cfg.clone(),
        policy_interval: secs(6),
        ..LwgConfig::default()
    };
    let mut w = World::new(WorldConfig {
        seed: 17,
        trace: true,
        ..WorldConfig::default()
    });
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        ns_cfg.clone(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        ns_cfg,
    )));
    let servers = vec![s0, s1];
    let apps: Vec<NodeId> = (0..9)
        .map(|i| {
            w.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    // Big group over the first eight; small group B of two that the
    // interference rule will switch off the big HWG.
    for (i, &m) in apps[..8].iter().enumerate() {
        w.invoke_at(
            at(0) + SimDuration::from_millis(300 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, A),
        );
    }
    w.run_until(at(10));
    for (i, &m) in apps[..2].iter().enumerate() {
        w.invoke_at(
            at(10) + SimDuration::from_millis(300 * i as u64),
            m,
            |a: &mut LwgNode, ctx| a.service().join(ctx, B),
        );
    }
    // Let B form and its mapping reach BOTH servers via gossip.
    w.run_until(at(17));
    let before = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(B));
    // Cut s1 off; the interference switch happens while it cannot learn of
    // the new mapping.
    let mut others: Vec<NodeId> = vec![s0];
    others.extend(&apps);
    w.split_at(at(17), vec![others, vec![s1]]);
    w.run_until(at(26));
    let after = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(B));
    assert_ne!(before, after, "B must have switched while s1 was away");
    // Heal, and join through the stale server before its next gossip.
    w.heal_at(at(26));
    let late = apps[7]; // NodeId(9): home server = s1 (9 % 2 = 1)
    w.invoke_at(
        at(26) + SimDuration::from_millis(200),
        late,
        |a: &mut LwgNode, ctx| a.service().join(ctx, B),
    );
    w.run_until(at(45));
    let members: Vec<NodeId> = vec![apps[0], apps[1], late];
    let mut expect = members.clone();
    expect.sort_unstable();
    for &m in &members {
        let v = w.inspect(m, |a: &LwgNode| {
            a.current_view(B).map(|v| v.sorted_members())
        });
        assert_eq!(
            v.as_deref(),
            Some(&expect[..]),
            "B converges with the late joiner at {m}"
        );
    }
    // The stale read really happened and was repaired by a forward pointer.
    assert!(
        w.metrics().counter("lwg.redirects_followed") >= 1,
        "the stale mapping must have been repaired by a Redirect"
    );
}

// ----------------------------------------------------------------------
// Message packing + subset delivery (the data-plane optimisations)
// ----------------------------------------------------------------------

fn packing_cfg(pack_max_msgs: usize) -> LwgConfig {
    LwgConfig {
        pack_max_msgs,
        pack_delay: SimDuration::from_millis(2),
        // Keep the mapping static for the duration of these scenarios.
        policy_interval: secs(120),
        ..LwgConfig::default()
    }
}

/// Packing amortises bursts of co-mapped sends into a few HWG multicasts
/// without disturbing per-sender FIFO or group isolation.
#[test]
fn packed_bursts_cut_hwg_multicasts_and_preserve_fifo() {
    let (mut w, _s, apps) = setup_cfg(3, 20, packing_cfg(8));
    join_all(&mut w, &apps, A, 300);
    w.run_for(secs(8));
    join_all(&mut w, &apps, B, 300);
    w.run_for(secs(8));
    assert_converged(&mut w, &apps, A, 3);
    assert_converged(&mut w, &apps, B, 3);
    // Both groups ride one HWG: a burst interleaving A and B packs into
    // shared batches.
    let ha = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(A));
    let hb = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(B));
    assert_eq!(ha, hb, "co-mapping is the packing scenario");
    let sender = apps[0];
    w.invoke(sender, move |a: &mut LwgNode, ctx| {
        for i in 0..40u64 {
            a.service().send(ctx, A, payload(i));
            a.service().send(ctx, B, payload(i + 1000));
        }
    });
    w.run_for(secs(3));
    for &n in &apps {
        let got_a: Vec<u64> = w.inspect(n, |a: &LwgNode| a.events_ref().data_from(A, sender));
        let got_b: Vec<u64> = w.inspect(n, |a: &LwgNode| a.events_ref().data_from(B, sender));
        assert_eq!(got_a, (0..40).collect::<Vec<u64>>(), "A FIFO at {n}");
        assert_eq!(got_b, (1000..1040).collect::<Vec<u64>>(), "B FIFO at {n}");
    }
    let batches = w.metrics().counter("lwg.batch.sent");
    assert!(batches >= 1, "the burst must have been packed");
    // 80 sends from the burst fit in 80/8 = 10 full batches; everything
    // else in the run is control traffic, so far fewer HWG multicasts
    // than LWG messages were needed.
    let occupancy = w
        .metrics()
        .histogram("lwg.batch.occupancy")
        .expect("occupancy recorded")
        .summary();
    assert_eq!(occupancy.max, 8, "full batches reach the count budget");
    assert!(
        w.metrics().counter("lwg.batch.flush_full") >= 10,
        "the burst fills whole batches"
    );
}

/// Sends interleaved with an LWG flush (a third member joins mid-stream):
/// the pack buffer is force-flushed at the flush barrier, so no batch
/// straddles the view change and nothing is lost or reordered.
#[test]
fn packed_sends_across_lwg_flush_are_not_lost() {
    let cfg = LwgConfig {
        pack_max_msgs: 64,
        pack_delay: SimDuration::from_millis(50),
        policy_interval: secs(120),
        ..LwgConfig::default()
    };
    let (mut w, _s, apps) = setup_cfg(3, 21, cfg);
    join_all(&mut w, &apps[..2], A, 300);
    w.run_for(secs(8));
    // Third member joins while the first streams: the admission flush
    // cuts through the stream while the pack buffer is non-empty (the
    // 50 ms pack delay guarantees buffered entries at the barrier).
    w.invoke(apps[2], |a: &mut LwgNode, ctx| a.service().join(ctx, A));
    let sender = apps[0];
    for i in 0..30u64 {
        let t = w.now() + SimDuration::from_millis(i * 5);
        w.invoke_at(t, sender, move |a: &mut LwgNode, ctx| {
            a.service().send(ctx, A, payload(i))
        });
    }
    w.run_for(secs(10));
    assert_converged(&mut w, &apps, A, 3);
    for &n in &apps[..2] {
        let got: Vec<u64> = w.inspect(n, |a: &LwgNode| a.events_ref().data_from(A, sender));
        assert_eq!(got, (0..30).collect::<Vec<u64>>(), "FIFO at {n}");
    }
    assert!(
        w.metrics().counter("lwg.batch.flush_barrier") >= 1,
        "the flush must have forced the pack buffer out before the cut"
    );
}

/// Packing under a partition and heal: batches never leak across the
/// view cut — a member that was on the other side only ever delivers
/// messages sent in views it installed.
#[test]
fn packed_bursts_survive_partition_and_heal() {
    let (mut w, servers, apps) = setup_cfg(4, 22, packing_cfg(8));
    join_all(&mut w, &apps, A, 300);
    w.run_for(secs(10));
    assert_converged(&mut w, &apps, A, 4);

    w.split_at(
        at(12),
        vec![
            vec![servers[0], apps[0], apps[1]],
            vec![servers[1], apps[2], apps[3]],
        ],
    );
    w.run_until(at(24));
    assert_converged(&mut w, &apps[..2], A, 2);
    assert_converged(&mut w, &apps[2..], A, 2);

    // Bursts inside each partition.
    let (left, right) = (apps[0], apps[2]);
    w.invoke(left, move |a: &mut LwgNode, ctx| {
        for i in 0..20u64 {
            a.service().send(ctx, A, payload(i));
        }
    });
    w.invoke(right, move |a: &mut LwgNode, ctx| {
        for i in 100..120u64 {
            a.service().send(ctx, A, payload(i));
        }
    });
    w.run_for(secs(4));
    let got: Vec<u64> = w.inspect(apps[1], |a: &LwgNode| a.events_ref().data_from(A, left));
    assert_eq!(got, (0..20).collect::<Vec<u64>>(), "left side FIFO");
    let got: Vec<u64> = w.inspect(apps[3], |a: &LwgNode| a.events_ref().data_from(A, right));
    assert_eq!(got, (100..120).collect::<Vec<u64>>(), "right side FIFO");

    w.heal_at(at(30));
    w.run_until(at(50));
    assert_converged(&mut w, &apps, A, 4);
    // Post-heal burst reaches everyone, in order.
    w.invoke(left, move |a: &mut LwgNode, ctx| {
        for i in 200..210u64 {
            a.service().send(ctx, A, payload(i));
        }
    });
    w.run_for(secs(3));
    for &n in &apps {
        let got: Vec<u64> = w.inspect(n, |a: &LwgNode| a.events_ref().data_from(A, left));
        let expect: Vec<u64> = if n == apps[0] || n == apps[1] {
            (0..20).chain(200..210).collect()
        } else {
            // The other side never installed the left partition's view:
            // its batches must not leak across the cut.
            (200..210).collect()
        };
        assert_eq!(got, expect, "deliveries from {left} at {n}");
    }
    assert!(w.metrics().counter("lwg.batch.sent") >= 6);
}

/// Subset delivery: co-mapped traffic is addressed only to the interested
/// members (plus the HWG coordinator), so uninterested HWG members stop
/// paying the filtering cost — measured against the same run without it.
#[test]
fn subset_delivery_cuts_interference_filtering() {
    let run = |subset: bool| -> (u64, u64, Vec<u64>) {
        let cfg = LwgConfig {
            subset_delivery: subset,
            policy_interval: secs(120),
            ..LwgConfig::default()
        };
        let (mut w, _s, apps) = setup_cfg(3, 23, cfg);
        join_all(&mut w, &apps, A, 300);
        w.run_for(secs(8));
        // B = the two most senior members: its traffic interests a strict
        // subset of the HWG view, and the HWG coordinator is a member.
        join_all(&mut w, &apps[..2], B, 300);
        w.run_for(secs(8));
        let ha = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(A));
        let hb = w.inspect(apps[0], |a: &LwgNode| a.service_ref().mapping_of(B));
        assert_eq!(ha, hb, "B must co-map onto A's HWG");
        let sender = apps[0];
        w.invoke(sender, move |a: &mut LwgNode, ctx| {
            for i in 0..30u64 {
                a.service().send(ctx, B, payload(i));
            }
        });
        w.run_for(secs(3));
        let got: Vec<u64> = w.inspect(apps[1], |a: &LwgNode| a.events_ref().data_from(B, sender));
        assert_eq!(got, (0..30).collect::<Vec<u64>>(), "B FIFO unharmed");
        let outsider = w.inspect(apps[2], |a: &LwgNode| {
            a.events_ref()
                .history()
                .iter()
                .filter(|e| matches!(e, LwgEvent::Data { lwg, .. } if *lwg == B))
                .count()
        });
        assert_eq!(outsider, 0, "non-member must not deliver B's data");
        (
            w.metrics().counter("lwg.filtered"),
            w.metrics().counter("hwg.subset_sends"),
            got,
        )
    };
    let (filtered_off, subset_off, got_off) = run(false);
    let (filtered_on, subset_on, got_on) = run(true);
    assert_eq!(got_off, got_on, "delivery is unchanged by subset routing");
    assert_eq!(subset_off, 0);
    assert!(subset_on >= 30, "B's burst must use the subset path");
    assert!(
        filtered_on < filtered_off,
        "subset delivery must cut filtering ({filtered_on} vs {filtered_off})"
    );
}
