//! Property tests for the Figure-1 mapping policies: determinism, the
//! minority/closeness algebra, and the structural guarantees the service
//! relies on (a chosen candidate always contains the LWG, moves only go up
//! the id order, …).

use plwg_core::{closeness, is_minority, share_rule_collapses, PolicyAction};
use plwg_sim::NodeId;
use plwg_vsync::HwgId;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn node_set() -> impl Strategy<Value = BTreeSet<NodeId>> {
    proptest::collection::btree_set((0u32..12).prop_map(NodeId), 1..8)
}

fn known_hwgs() -> impl Strategy<Value = Vec<(HwgId, BTreeSet<NodeId>)>> {
    proptest::collection::vec((1u64..50, node_set()), 0..6).prop_map(|v| {
        v.into_iter()
            .map(|(id, members)| (HwgId(id), members))
            .collect()
    })
}

proptest! {
    /// Minority is monotone: growing the big group (or shrinking the small
    /// one) never removes minority status.
    #[test]
    fn minority_is_monotone(g1 in 0usize..20, g2 in 0usize..20, k_m in 1u32..8) {
        if is_minority(g1, g2, k_m) {
            prop_assert!(is_minority(g1, g2 + 1, k_m));
            if g1 > 0 {
                prop_assert!(is_minority(g1 - 1, g2, k_m));
            }
        }
    }

    /// Closeness is monotone in the subset's size: if `g1 ⊆ g2` is close,
    /// any larger subset of the same `g2` is too.
    #[test]
    fn closeness_is_monotone(g1 in 0usize..20, g2 in 0usize..20, k_c in 1u32..8) {
        prop_assume!(g1 <= g2);
        if closeness(g1, g2, k_c) && g1 < g2 {
            prop_assert!(closeness(g1 + 1, g2, k_c));
        }
        // A perfect fit is always close.
        prop_assert!(closeness(g2, g2, k_c));
    }

    /// The share-rule collapse test is symmetric in its two groups.
    #[test]
    fn share_collapse_is_symmetric(a in node_set(), b in node_set(), k_m in 1u32..8) {
        prop_assert_eq!(
            share_rule_collapses(&a, &b, k_m),
            share_rule_collapses(&b, &a, k_m)
        );
    }

    /// Identical membership always collapses (overlap k = |g|, n1 = n2 = 0);
    /// disjoint membership never does. (k_m = 1 is excluded: it is the
    /// degenerate setting where every subset counts as a minority, so the
    /// minority-subset exemption fires even for equal groups.)
    #[test]
    fn share_collapse_extremes(a in node_set(), k_m in 2u32..8) {
        prop_assert!(share_rule_collapses(&a, &a.clone(), k_m));
        let shifted: BTreeSet<NodeId> =
            a.iter().map(|n| NodeId(n.0 + 100)).collect();
        prop_assert!(!share_rule_collapses(&a, &shifted, k_m));
    }

    /// The interference rule is deterministic, never selects a candidate
    /// that misses LWG members, and stays put when the LWG is not a
    /// minority of its HWG (paper Fig. 1 structure).
    #[test]
    fn interference_rule_is_sound(
        lwg in node_set(),
        extra in node_set(),
        known in known_hwgs(),
        k_m in 1u32..8,
        k_c in 1u32..8,
    ) {
        // Current HWG ⊇ LWG by construction.
        let current_members: BTreeSet<NodeId> =
            lwg.union(&extra).copied().collect();
        let current = (HwgId(0), &current_members);
        let a1 = plwg_core::interference_rule(&lwg, current, &known, k_m, k_c);
        let a2 = plwg_core::interference_rule(&lwg, current, &known, k_m, k_c);
        prop_assert_eq!(a1.clone(), a2, "determinism");
        if !is_minority(lwg.len(), current_members.len(), k_m) {
            prop_assert_eq!(a1, PolicyAction::Stay);
        } else if let PolicyAction::SwitchTo(target) = a1 {
            let (_, members) = known
                .iter()
                .find(|(id, _)| *id == target)
                .expect("target must be a known HWG");
            prop_assert!(lwg.is_subset(members), "target must contain the LWG");
            prop_assert!(
                closeness(lwg.len(), members.len(), k_c),
                "target must be close enough"
            );
        }
    }

    /// The share rule only ever moves an LWG toward a *higher* HWG id —
    /// the property that makes decentralised collapse convergent (both
    /// coordinators pick the same survivor).
    #[test]
    fn share_rule_moves_up_only(
        current in node_set(),
        known in known_hwgs(),
        k_m in 1u32..8,
        current_id in 1u64..50,
    ) {
        match plwg_core::share_rule((HwgId(current_id), &current), &known, k_m) {
            PolicyAction::SwitchTo(target) => {
                prop_assert!(target > HwgId(current_id));
                prop_assert!(known.iter().any(|(id, _)| *id == target));
            }
            PolicyAction::Stay => {}
            PolicyAction::CreateAndSwitch => {
                prop_assert!(false, "share rule never creates HWGs");
            }
        }
    }
}
