//! Randomised property tests for the Figure-1 mapping policies:
//! determinism, the minority/closeness algebra, and the structural
//! guarantees the service relies on (a chosen candidate always contains the
//! LWG, moves only go up the id order, …). Seeded in-tree RNG keeps every
//! run deterministic.

use plwg_core::{
    closeness, is_minority, placement_rule, rebalance_improves, share_rule_collapses, HwgLoad,
    PolicyAction,
};
use plwg_hwg::HwgId;
use plwg_sim::{NodeId, SimRng};
use std::collections::BTreeSet;

const CASES: u64 = 300;

fn node_set(rng: &mut SimRng) -> BTreeSet<NodeId> {
    let want = rng.range(1, 8);
    let mut set = BTreeSet::new();
    while (set.len() as u64) < want {
        set.insert(NodeId(rng.range(0, 12) as u32));
    }
    set
}

fn known_hwgs(rng: &mut SimRng) -> Vec<(HwgId, BTreeSet<NodeId>)> {
    let count = rng.range(0, 6);
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for _ in 0..count {
        let id = rng.range(1, 50);
        if seen.insert(id) {
            out.push((HwgId(id), node_set(rng)));
        }
    }
    out
}

/// Minority is monotone: growing the big group (or shrinking the small
/// one) never removes minority status.
#[test]
fn minority_is_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x70_1100 ^ case);
        let g1 = rng.range(0, 20) as usize;
        let g2 = rng.range(0, 20) as usize;
        let k_m = rng.range(1, 8) as u32;
        if is_minority(g1, g2, k_m) {
            assert!(is_minority(g1, g2 + 1, k_m), "case {case}");
            if g1 > 0 {
                assert!(is_minority(g1 - 1, g2, k_m), "case {case}");
            }
        }
    }
}

/// Closeness is monotone in the subset's size: if `g1 ⊆ g2` is close, any
/// larger subset of the same `g2` is too.
#[test]
fn closeness_is_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x70_2200 ^ case);
        let g2 = rng.range(0, 20) as usize;
        let g1 = rng.range(0, g2 as u64 + 1) as usize;
        let k_c = rng.range(1, 8) as u32;
        if closeness(g1, g2, k_c) && g1 < g2 {
            assert!(closeness(g1 + 1, g2, k_c), "case {case}");
        }
        // A perfect fit is always close.
        assert!(closeness(g2, g2, k_c), "case {case}");
    }
}

/// The share-rule collapse test is symmetric in its two groups.
#[test]
fn share_collapse_is_symmetric() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x70_3300 ^ case);
        let a = node_set(&mut rng);
        let b = node_set(&mut rng);
        let k_m = rng.range(1, 8) as u32;
        assert_eq!(
            share_rule_collapses(&a, &b, k_m),
            share_rule_collapses(&b, &a, k_m),
            "case {case}"
        );
    }
}

/// Identical membership always collapses (overlap k = |g|, n1 = n2 = 0);
/// disjoint membership never does. (k_m = 1 is excluded: it is the
/// degenerate setting where every subset counts as a minority, so the
/// minority-subset exemption fires even for equal groups.)
#[test]
fn share_collapse_extremes() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x70_4400 ^ case);
        let a = node_set(&mut rng);
        let k_m = rng.range(2, 8) as u32;
        assert!(share_rule_collapses(&a, &a.clone(), k_m), "case {case}");
        let shifted: BTreeSet<NodeId> = a.iter().map(|n| NodeId(n.0 + 100)).collect();
        assert!(!share_rule_collapses(&a, &shifted, k_m), "case {case}");
    }
}

/// The interference rule is deterministic, never selects a candidate that
/// misses LWG members, and stays put when the LWG is not a minority of its
/// HWG (paper Fig. 1 structure).
#[test]
fn interference_rule_is_sound() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x70_5500 ^ case);
        let lwg = node_set(&mut rng);
        let extra = node_set(&mut rng);
        let known = known_hwgs(&mut rng);
        let k_m = rng.range(1, 8) as u32;
        let k_c = rng.range(1, 8) as u32;
        // Current HWG ⊇ LWG by construction.
        let current_members: BTreeSet<NodeId> = lwg.union(&extra).copied().collect();
        let current = (HwgId(0), &current_members);
        let a1 = plwg_core::interference_rule(&lwg, current, &known, k_m, k_c);
        let a2 = plwg_core::interference_rule(&lwg, current, &known, k_m, k_c);
        assert_eq!(a1, a2, "case {case}: determinism");
        if !is_minority(lwg.len(), current_members.len(), k_m) {
            assert_eq!(a1, PolicyAction::Stay, "case {case}");
        } else if let PolicyAction::SwitchTo(target) = a1 {
            let (_, members) = known
                .iter()
                .find(|(id, _)| *id == target)
                .expect("target must be a known HWG");
            assert!(
                lwg.is_subset(members),
                "case {case}: target must contain the LWG"
            );
            assert!(
                closeness(lwg.len(), members.len(), k_c),
                "case {case}: target must be close enough"
            );
        }
    }
}

fn random_loads(rng: &mut SimRng) -> Vec<HwgLoad> {
    let count = rng.range(0, 8);
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for _ in 0..count {
        let id = rng.range(1, 50);
        if seen.insert(id) {
            out.push(HwgLoad {
                hwg: HwgId(id),
                lwgs: rng.range(0, 12) as usize,
                traffic: rng.range(0, 100),
            });
        }
    }
    out
}

/// The placement rule is deterministic, total over non-empty candidate
/// sets, order-insensitive, and genuinely minimal: no candidate carries a
/// strictly smaller (membership, traffic) load than the pick.
#[test]
fn placement_picks_a_minimal_candidate() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x70_7700 ^ case);
        let loads = random_loads(&mut rng);
        let pick = placement_rule(&loads);
        assert_eq!(pick, placement_rule(&loads), "case {case}: determinism");
        let mut reversed = loads.clone();
        reversed.reverse();
        assert_eq!(
            pick,
            placement_rule(&reversed),
            "case {case}: order-insensitive"
        );
        let Some(target) = pick else {
            assert!(loads.is_empty(), "case {case}: None only for no candidates");
            continue;
        };
        let chosen = loads
            .iter()
            .find(|c| c.hwg == target)
            .unwrap_or_else(|| panic!("case {case}: pick must be a candidate"));
        for c in &loads {
            assert!(
                (c.lwgs, c.traffic) >= (chosen.lwgs, chosen.traffic),
                "case {case}: {c:?} beats the pick {chosen:?}"
            );
        }
    }
}

/// Equal membership loads degrade the placement rule to the legacy
/// highest-id pick (what `continue_join` used before load awareness), so
/// load-blind workloads see identical placement decisions.
#[test]
fn placement_degenerates_to_highest_id_under_equal_load() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x70_8800 ^ case);
        let mut loads = random_loads(&mut rng);
        let lwgs = rng.range(0, 12) as usize;
        for c in &mut loads {
            c.lwgs = lwgs;
            c.traffic = 0;
        }
        assert_eq!(
            placement_rule(&loads),
            loads.iter().map(|c| c.hwg).max(),
            "case {case}"
        );
    }
}

/// Strict improvement means moving one group can never invert the
/// ordering: after a planned move the donor still carries at least as
/// many groups as the receiver, which is what makes the rebalancer
/// converge instead of oscillate.
#[test]
fn rebalance_improvement_never_inverts() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x70_9900 ^ case);
        let from = rng.range(0, 20) as usize;
        let to = rng.range(0, 20) as usize;
        if rebalance_improves(from, to) {
            assert!(from > to + 1, "case {case}: move inverted the load");
            assert!(
                !rebalance_improves(to + 1, from - 1),
                "case {case}: the reverse move must not also improve"
            );
        }
        // Balanced (spread <= 1) systems never move.
        if from.abs_diff(to) <= 1 {
            assert!(!rebalance_improves(from, to), "case {case}");
        }
    }
}

/// The share rule only ever moves an LWG toward a *higher* HWG id — the
/// property that makes decentralised collapse convergent (both
/// coordinators pick the same survivor).
#[test]
fn share_rule_moves_up_only() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x70_6600 ^ case);
        let current = node_set(&mut rng);
        let known = known_hwgs(&mut rng);
        let k_m = rng.range(1, 8) as u32;
        let current_id = rng.range(1, 50);
        match plwg_core::share_rule((HwgId(current_id), &current), &known, k_m) {
            PolicyAction::SwitchTo(target) => {
                assert!(target > HwgId(current_id), "case {case}");
                assert!(known.iter().any(|(id, _)| *id == target), "case {case}");
            }
            PolicyAction::Stay => {}
            PolicyAction::CreateAndSwitch => {
                panic!("case {case}: share rule never creates HWGs");
            }
        }
    }
}
