//! Rebalancer tests over the scripted substrate: a crowded HWG sheds
//! groups onto a less loaded one via the ordinary switch protocol, the
//! typed `lwg.rebalance.*` events record every decision, and a quiescent
//! balanced system never moves anything again (no oscillation).

use plwg_core::{HwgId, LwgConfig, LwgId, LwgMsg, ScriptedHwg, View, ViewId};
use plwg_naming::{NameServer, NamingConfig};
use plwg_obs::Timeline;
use plwg_sim::{NetConfig, NodeId, SimDuration, World, WorldConfig};

type Node = plwg_core::LwgNode<ScriptedHwg>;

const H1: HwgId = HwgId(70);
const H2: HwgId = HwgId(80);

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn cfg() -> LwgConfig {
    LwgConfig {
        naming: NamingConfig {
            gossip_interval: ms(100),
            ..NamingConfig::default()
        },
        lwg_join_timeout: ms(100),
        tick_interval: ms(50),
        rebalance_interval: Some(ms(300)),
        ..LwgConfig::default()
    }
}

/// One name server and one app node — the node coordinates every group,
/// so the rebalancer's decisions are entirely its own.
fn setup() -> (World, NodeId) {
    let mut w = World::new(WorldConfig {
        seed: 11,
        trace: true,
        net: NetConfig {
            jitter: SimDuration::ZERO,
            ..NetConfig::default()
        },
        ..WorldConfig::default()
    });
    let server = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![],
        NamingConfig::default(),
    )));
    let app = w.add_node(Box::new(
        Node::builder(NodeId(1))
            .servers([server])
            .config(cfg())
            .build()
            .expect("valid rebalance config"),
    ));
    (w, app)
}

/// Installs singleton HWG views for `a` on both HWGs and seeds `on_h1`
/// groups mapped onto H1 plus `on_h2` groups onto H2 (ids continue where
/// H1's stop), each with an installed singleton LWG view.
fn seed(w: &mut World, a: NodeId, on_h1: u64, on_h2: u64) -> (Vec<LwgId>, Vec<LwgId>) {
    for hwg in [H1, H2] {
        let view = View::initial(ViewId::new(a, 1), vec![a]);
        w.invoke(a, move |n: &mut Node, ctx| {
            n.service().hwg_stack_mut().inject_view(hwg, view);
            n.service().pump(ctx);
        });
    }
    let mut seed_one = |lwg: LwgId, hwg: HwgId| {
        let view = View::initial(ViewId::new(a, 1), vec![a]);
        w.invoke(a, move |n: &mut Node, ctx| {
            n.service().join(ctx, lwg);
            n.service().hwg_stack_mut().inject_data(
                hwg,
                a,
                LwgMsg::NewLwgView {
                    lwg,
                    flush: None,
                    view,
                    hwg,
                }
                .to_frame(),
            );
            n.service().pump(ctx);
        });
    };
    let h1: Vec<LwgId> = (1..=on_h1).map(LwgId).collect();
    let h2: Vec<LwgId> = (on_h1 + 1..=on_h1 + on_h2).map(LwgId).collect();
    for &l in &h1 {
        seed_one(l, H1);
    }
    for &l in &h2 {
        seed_one(l, H2);
    }
    (h1, h2)
}

fn mapping_of(w: &mut World, node: NodeId, lwg: LwgId) -> Option<HwgId> {
    w.inspect(node, move |n: &Node| n.service_ref().mapping_of(lwg))
}

/// How many of `groups` are currently mapped onto `hwg` at `node`.
fn load(w: &mut World, node: NodeId, groups: &[LwgId], hwg: HwgId) -> usize {
    groups
        .iter()
        .filter(|&&l| mapping_of(w, node, l) == Some(hwg))
        .count()
}

/// Three groups on H1, one on H2: one strictly-improving move exists
/// (3 → 2 vs 1 → 2). The rebalancer migrates exactly the lowest-id
/// group with exactly one switch, records the move in the Timeline, and
/// then never touches the balanced system again.
#[test]
fn rebalance_migrates_one_group_with_one_switch() {
    let (mut w, a) = setup();
    let (h1, h2) = seed(&mut w, a, 3, 1);
    w.run_for(ms(1000));

    // The lowest-id group moved; everything else stayed put.
    assert_eq!(mapping_of(&mut w, a, h1[0]), Some(H2), "lwg1 migrated");
    for &l in &h1[1..] {
        assert_eq!(mapping_of(&mut w, a, l), Some(H1), "{l} stayed");
    }
    assert_eq!(mapping_of(&mut w, a, h2[0]), Some(H2));
    // The migrated group's view survived the switch: same membership,
    // new view descending from the old one.
    let v = w
        .inspect(a, |n: &Node| n.current_view(h1[0]).cloned())
        .expect("view survives the migration");
    assert_eq!(v.members, vec![a]);
    assert_eq!(v.predecessors, vec![ViewId::new(a, 1)]);

    // The typed trace shows one plan, one move, and — per moved group —
    // exactly one switch.
    assert_eq!(w.trace().count("lwg.rebalance.plan"), 1);
    assert_eq!(w.trace().count("lwg.rebalance.move"), 1);
    let tl = Timeline::build(w.trace());
    let moves: Vec<u64> = tl
        .of_kind("lwg.rebalance.move")
        .filter_map(|e| e.refs.lwg)
        .collect();
    assert_eq!(moves, vec![h1[0].0]);
    for lwg in moves {
        let switches = tl
            .of_kind("lwg.switch.start")
            .filter(|e| e.refs.lwg == Some(lwg))
            .count();
        assert_eq!(switches, 1, "exactly one switch per moved group");
    }

    // Quiescent and balanced: later rounds plan nothing.
    w.run_for(ms(1500));
    assert_eq!(w.trace().count("lwg.rebalance.move"), 1, "no oscillation");
}

/// Five groups on H1, one on H2, then a leave: the rebalancer converges
/// to a spread of at most one group in one planning round, no group ever
/// migrates twice, and the (still balanced) post-leave system plans no
/// further moves.
#[test]
fn rebalance_converges_without_double_migration() {
    let (mut w, a) = setup();
    let (h1, h2) = seed(&mut w, a, 5, 1);
    let all: Vec<LwgId> = h1.iter().chain(h2.iter()).copied().collect();
    w.run_for(ms(2000));

    // Converged: 5/1 became 3/3 (strict improvement stops at spread 0).
    assert_eq!(load(&mut w, a, &all, H1), 3);
    assert_eq!(load(&mut w, a, &all, H2), 3);
    let spread = load(&mut w, a, &all, H1).abs_diff(load(&mut w, a, &all, H2));
    assert!(spread <= 1, "load spread {spread} after convergence");

    // Two moves total, and no group moved twice.
    let moved: Vec<u64> = {
        let tl = Timeline::build(w.trace());
        tl.of_kind("lwg.rebalance.move")
            .filter_map(|e| e.refs.lwg)
            .collect()
    };
    assert_eq!(moved.len(), 2, "exactly two strictly-improving moves");
    let mut unique = moved.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), moved.len(), "no group migrated twice");

    // Churn: one H1 group leaves. 2 vs 3 is within threshold — a further
    // move would not strictly improve, so the system stays quiet.
    let gone = h1
        .iter()
        .copied()
        .find(|&l| mapping_of(&mut w, a, l) == Some(H1))
        .expect("a group is still on H1");
    w.invoke(a, move |n: &mut Node, ctx| n.service().leave(ctx, gone));
    w.run_for(ms(1500));
    assert_eq!(
        w.trace().count("lwg.rebalance.move"),
        2,
        "no rebalancing after the leave: spread is already within one"
    );
}
