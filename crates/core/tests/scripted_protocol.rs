//! Protocol tests driven through the [`ScriptedHwg`] substrate: the test
//! plays the role of the HWG membership protocol (granting joins, evicting
//! members, healing partitions by injecting views), which makes the LWG
//! protocol paths — admission, the virtual-synchrony cut, Stop during an
//! LWG flush, MERGE-VIEWS healing, merge-during-switch — individually
//! addressable without the full virtual-synchrony stack underneath.
//!
//! The simulated links are configured lossless and jitter-free, as the
//! scripted substrate requires (it has no retransmission or reordering
//! repair of its own).

use plwg_core::{HwgId, LwgConfig, LwgId, LwgMsg, ScriptedHwg, View, ViewId};
use plwg_hwg::view_key;
use plwg_naming::{NameServer, NamingConfig};
use plwg_obs::Timeline;
use plwg_sim::{Frame, NetConfig, NodeId, SimDuration, World, WorldConfig};

/// The production-shaped node, instantiated over the scripted substrate.
type Node = plwg_core::LwgNode<ScriptedHwg>;

const L: LwgId = LwgId(9);
const H1: HwgId = HwgId(70);
const H2: HwgId = HwgId(80);

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn naming_cfg() -> NamingConfig {
    NamingConfig {
        // Faster gossip so MULTIPLE-MAPPINGS callbacks arrive within the
        // short horizons these tests run for.
        gossip_interval: ms(100),
        ..NamingConfig::default()
    }
}

fn cfg() -> LwgConfig {
    LwgConfig {
        naming: naming_cfg(),
        lwg_join_timeout: ms(100),
        tick_interval: ms(50),
        foreign_data_timeout: ms(400),
        ..LwgConfig::default()
    }
}

/// A world with one name server (`NodeId(0)`) and `n` scripted app nodes.
fn setup_cfg(n: u32, cfg: LwgConfig) -> (World, Vec<NodeId>) {
    let mut w = World::new(WorldConfig {
        seed: 7,
        trace: true,
        net: NetConfig {
            jitter: SimDuration::ZERO,
            ..NetConfig::default()
        },
        ..WorldConfig::default()
    });
    let server = w.add_node(Box::new(NameServer::new(NodeId(0), vec![], naming_cfg())));
    let apps: Vec<NodeId> = (0..n)
        .map(|i| {
            w.add_node(Box::new(
                Node::builder(NodeId(1 + i))
                    .servers([server])
                    .config(cfg.clone())
                    .build()
                    .expect("valid protocol config"),
            ))
        })
        .collect();
    (w, apps)
}

fn setup(n: u32) -> (World, Vec<NodeId>) {
    setup_cfg(n, cfg())
}

fn join(w: &mut World, node: NodeId) {
    w.invoke(node, |n: &mut Node, ctx| n.service().join(ctx, L));
}

/// The test's stand-in for the HWG membership protocol: installs a view at
/// one node's substrate and lets the service observe it.
fn grant(w: &mut World, node: NodeId, hwg: HwgId, coord: NodeId, seq: u64, members: &[NodeId]) {
    let view = View::initial(ViewId::new(coord, seq), members.to_vec());
    w.invoke(node, move |n: &mut Node, ctx| {
        n.service().hwg_stack_mut().inject_view(hwg, view);
        n.service().pump(ctx);
    });
}

/// Manufactures an installed LWG view at `node` (the state a node is in
/// after operating inside its own partition): joins `L` and delivers the
/// view announcement as if its coordinator had multicast it on `hwg`.
fn seed_lwg_view(w: &mut World, node: NodeId, hwg: HwgId, view: View) {
    w.invoke(node, move |n: &mut Node, ctx| {
        let src = view.coordinator();
        n.service().join(ctx, L);
        n.service().hwg_stack_mut().inject_data(
            hwg,
            src,
            LwgMsg::NewLwgView {
                lwg: L,
                flush: None,
                view,
                hwg,
            }
            .to_frame(),
        );
        n.service().pump(ctx);
    });
}

fn send_u64(w: &mut World, node: NodeId, v: u64) {
    w.invoke(node, move |n: &mut Node, ctx| {
        n.service().send(ctx, L, Frame::from_u64(v));
    });
}

fn view_at(w: &mut World, node: NodeId) -> Option<View> {
    w.inspect(node, |n: &Node| n.current_view(L).cloned())
}

fn delivered_from(w: &mut World, node: NodeId, src: NodeId) -> Vec<u64> {
    w.inspect(node, move |n: &Node| n.events_ref().data_from(L, src))
}

fn stop_oks(w: &mut World, node: NodeId, hwg: HwgId) -> u64 {
    w.inspect(node, move |n: &Node| {
        n.service_ref().hwg_stack().stop_oks(hwg)
    })
}

fn wants_to_join(w: &mut World, node: NodeId, hwg: HwgId) -> bool {
    w.inspect(node, move |n: &Node| {
        n.service_ref().hwg_stack().join_requests().contains(&hwg)
    })
}

/// Runs the full organic join flow over the scripted substrate: the first
/// joiner allocates a fresh HWG, retries admission, claims the mapping and
/// founds a singleton view; the second follows the recorded mapping, and
/// the test grants its HWG membership so the coordinator can admit it.
#[test]
fn founds_group_then_admits_joiner() {
    let (mut w, apps) = setup(2);
    let (a, b) = (apps[0], apps[1]);

    join(&mut w, a);
    w.run_for(ms(600));
    let va = view_at(&mut w, a).expect("first joiner founds a view");
    assert_eq!(va.members, vec![a]);
    let ha = w
        .inspect(a, |n: &Node| n.service_ref().mapping_of(L))
        .expect("founded view is mapped");

    join(&mut w, b);
    w.run_for(ms(200));
    assert!(
        wants_to_join(&mut w, b, ha),
        "second joiner follows the recorded mapping into the same HWG"
    );

    // Grant HWG membership; admission then runs the LWG flush.
    grant(&mut w, a, ha, a, 5, &[a, b]);
    grant(&mut w, b, ha, a, 5, &[a, b]);
    w.run_for(ms(300));

    for &n in &[a, b] {
        let v = view_at(&mut w, n).expect("member after admission");
        assert_eq!(v.members, vec![a, b], "at {n}");
        assert_eq!(
            w.inspect(n, |n: &Node| n.service_ref().mapping_of(L)),
            Some(ha)
        );
    }
}

/// Messages sent in a view are delivered exactly to that view's members:
/// a pre-admission multicast never reaches the later joiner, and both
/// members see identical delivered sets for the shared view.
#[test]
fn delivery_respects_the_virtual_synchrony_cut() {
    let (mut w, apps) = setup(2);
    let (a, b) = (apps[0], apps[1]);

    join(&mut w, a);
    w.run_for(ms(600));
    let ha = w
        .inspect(a, |n: &Node| n.service_ref().mapping_of(L))
        .expect("mapped");
    send_u64(&mut w, a, 1); // sent in the singleton view
    w.run_for(ms(100));

    join(&mut w, b);
    w.run_for(ms(200));
    grant(&mut w, a, ha, a, 5, &[a, b]);
    grant(&mut w, b, ha, a, 5, &[a, b]);
    w.run_for(ms(300));
    assert_eq!(view_at(&mut w, b).expect("admitted").len(), 2);

    send_u64(&mut w, a, 2); // sent in the two-member view
    w.run_for(ms(100));

    assert_eq!(delivered_from(&mut w, a, a), vec![1, 2]);
    assert_eq!(
        delivered_from(&mut w, b, a),
        vec![2],
        "the joiner must not see traffic from before its view cut"
    );
}

/// An HWG `Stop` arriving while an LWG flush is in flight is answered
/// immediately (views advertised, `stop_ok` sent) — the HWG flush never
/// waits on LWG-level progress — and the LWG flush still concludes.
#[test]
fn hwg_stop_is_answered_while_lwg_flush_in_flight() {
    let (mut w, apps) = setup(3);
    let (a, b, c) = (apps[0], apps[1], apps[2]);

    // Establish {a, b} on a scripted HWG.
    grant(&mut w, a, H1, a, 1, &[a, b]);
    grant(&mut w, b, H1, a, 1, &[a, b]);
    let v1 = View::initial(ViewId::new(a, 1), vec![a, b]);
    seed_lwg_view(&mut w, a, H1, v1.clone());
    seed_lwg_view(&mut w, b, H1, v1);
    w.run_for(ms(200));

    // c appears in the HWG and asks for admission; deliver its JoinReq and
    // an HWG Stop back-to-back so the Stop is handled while the flush over
    // {a, b} is still waiting for b's FlushOk (in flight on the network).
    join(&mut w, c);
    grant(&mut w, a, H1, a, 2, &[a, b, c]);
    grant(&mut w, b, H1, a, 2, &[a, b, c]);
    grant(&mut w, c, H1, a, 2, &[a, b, c]);
    let (oks_before, oks_after, stopping, busy) = w.invoke(a, move |n: &mut Node, ctx| {
        let before = n.service_ref().hwg_stack().stop_oks(H1);
        n.service()
            .hwg_stack_mut()
            .inject_data(H1, c, LwgMsg::JoinReq { lwg: L }.to_frame());
        n.service().hwg_stack_mut().inject_stop(H1);
        n.service().pump(ctx);
        let after = n.service_ref().hwg_stack().stop_oks(H1);
        let stopping = n.service_ref().hwg_stack().is_stopping(H1);
        let busy = n.service_ref().lwg_status(L).is_some_and(|s| s.busy);
        (before, after, stopping, busy)
    });
    assert!(busy, "the LWG flush was still in flight when Stop arrived");
    assert_eq!(oks_after, oks_before + 1, "Stop answered immediately");
    assert!(!stopping, "stop_ok cleared the outstanding Stop");

    // The flush is not deadlocked: it concludes and admits c.
    w.run_for(ms(400));
    for &n in &[a, b, c] {
        let v = view_at(&mut w, n).expect("member");
        assert_eq!(v.members, vec![a, b, c], "at {n}");
    }
}

/// §6 healing, three ways concurrent: each node operated alone in its
/// partition with a singleton view of `L`. When the HWG heals, the
/// MULTIPLE-MAPPINGS callback triggers MERGE-VIEWS and **one** HWG flush
/// (Fig. 5) merges all three views — predecessors record every branch, and
/// pre-heal traffic stays behind its view cut.
#[test]
fn three_way_heal_merges_with_a_single_hwg_flush() {
    let (mut w, apps) = setup(3);
    let (a, b, c) = (apps[0], apps[1], apps[2]);

    for &n in &[a, b, c] {
        grant(&mut w, n, H1, n, 1, &[n]);
        seed_lwg_view(&mut w, n, H1, View::initial(ViewId::new(n, 1), vec![n]));
    }
    w.run_for(ms(150));
    for &n in &[a, b, c] {
        assert_eq!(view_at(&mut w, n).expect("seeded").members, vec![n]);
    }
    send_u64(&mut w, a, 1); // partition-era traffic, singleton cut
    w.run_for(ms(50));

    // The HWG membership heals: one common view everywhere.
    for &n in &[a, b, c] {
        grant(&mut w, n, H1, a, 10, &[a, b, c]);
    }
    w.run_for(ms(800));

    let merged = view_at(&mut w, a).expect("merged");
    assert_eq!(merged.members, vec![a, b, c]);
    for &n in &[b, c] {
        assert_eq!(view_at(&mut w, n).as_ref(), Some(&merged), "at {n}");
    }
    for &n in &[a, b, c] {
        assert!(
            merged.predecessors.contains(&ViewId::new(n, 1)),
            "merged view must record {n}'s branch"
        );
        assert_eq!(
            stop_oks(&mut w, n, H1),
            1,
            "exactly one HWG flush healed all three views (at {n})"
        );
    }

    // The typed trace agrees: the causal timeline shows exactly one
    // MERGE-VIEWS conclusion for the healed LWG, causally downstream of
    // all three concurrent branches.
    let tl = Timeline::build(w.trace());
    let merges = tl.merges_of(L.0);
    assert_eq!(
        merges.len(),
        1,
        "exactly one lwg.merge event per healed LWG"
    );
    for &n in &[a, b, c] {
        assert!(
            merges[0]
                .refs
                .parents
                .contains(&view_key(ViewId::new(n, 1))),
            "merge refs must link {n}'s concurrent view"
        );
    }
    assert!(
        !merges[0].causes.is_empty(),
        "merge must be causally linked to the branch views"
    );

    // Virtual synchrony across the heal: the pre-heal message stayed in
    // its singleton cut; post-merge traffic reaches everyone.
    assert_eq!(delivered_from(&mut w, a, a), vec![1]);
    assert_eq!(delivered_from(&mut w, b, a), Vec::<u64>::new());
    assert_eq!(delivered_from(&mut w, c, a), Vec::<u64>::new());
    send_u64(&mut w, c, 2);
    w.run_for(ms(100));
    for &n in &[a, b, c] {
        assert_eq!(delivered_from(&mut w, n, c), vec![2], "at {n}");
    }
}

/// Merge arriving *during* a switch: `{a, b}` reconcile onto the higher
/// HWG where `c` already holds a concurrent view. The switch completes on
/// the target and the MERGE-VIEWS it triggers folds `c`'s view in — the
/// old HWG never pays a flush.
#[test]
fn merge_views_heals_concurrent_view_during_switch() {
    let (mut w, apps) = setup(3);
    let (a, b, c) = (apps[0], apps[1], apps[2]);

    // {a, b} with view V1 on the lower HWG.
    grant(&mut w, a, H1, a, 1, &[a, b]);
    grant(&mut w, b, H1, a, 1, &[a, b]);
    let v1 = View::initial(ViewId::new(a, 1), vec![a, b]);
    seed_lwg_view(&mut w, a, H1, v1.clone());
    seed_lwg_view(&mut w, b, H1, v1.clone());
    // {c} with a concurrent view on the higher HWG.
    grant(&mut w, c, H2, c, 1, &[c]);
    let vc = View::initial(ViewId::new(c, 1), vec![c]);
    seed_lwg_view(&mut w, c, H2, vc.clone());

    // MULTIPLE-MAPPINGS reaches a; §6.2 says: switch to the highest HWG.
    w.run_for(ms(400));
    assert!(
        wants_to_join(&mut w, a, H2) && wants_to_join(&mut w, b, H2),
        "reconciliation makes both old-HWG members join the target"
    );

    // Grant the target HWG view — with c in it, mid-switch.
    for &n in &[a, b, c] {
        grant(&mut w, n, H2, a, 5, &[a, b, c]);
    }
    w.run_for(ms(800));

    let merged = view_at(&mut w, a).expect("merged");
    assert_eq!(merged.members, vec![a, b, c]);
    for &n in &[b, c] {
        assert_eq!(view_at(&mut w, n).as_ref(), Some(&merged), "at {n}");
    }
    assert!(
        merged.predecessors.contains(&vc.id),
        "c's concurrent branch is a predecessor of the merged view"
    );
    for &n in &[a, b, c] {
        assert_eq!(
            w.inspect(n, |n: &Node| n.service_ref().mapping_of(L)),
            Some(H2),
            "everyone ends on the target HWG (at {n})"
        );
    }
    // The switch itself is flush-free at the HWG level: only the target
    // HWG ran the MERGE-VIEWS flush.
    assert_eq!(stop_oks(&mut w, a, H1), 0);
    assert!(stop_oks(&mut w, a, H2) >= 1);
    // b's history: V1 -> switched view -> merged view.
    let sizes: Vec<usize> = w.inspect(b, |n: &Node| {
        n.events_ref().views_of(L).iter().map(|v| v.len()).collect()
    });
    assert_eq!(sizes, vec![2, 2, 3]);
    // A forward pointer stays behind on the switch initiator.
    assert!(w.inspect(a, |n: &Node| n.service_ref().stats().forward_pointers) >= 1);

    send_u64(&mut w, c, 7);
    w.run_for(ms(100));
    for &n in &[a, b, c] {
        assert_eq!(delivered_from(&mut w, n, c), vec![7], "at {n}");
    }
}

/// With packing enabled, a burst of sends rides a single HWG multicast and
/// is unpacked in order at the receiver.
#[test]
fn packed_sends_share_one_hwg_multicast() {
    let (mut w, apps) = setup_cfg(
        2,
        LwgConfig {
            pack_max_msgs: 8,
            pack_delay: ms(2),
            ..cfg()
        },
    );
    let (a, b) = (apps[0], apps[1]);
    grant(&mut w, a, H1, a, 1, &[a, b]);
    grant(&mut w, b, H1, a, 1, &[a, b]);
    let v1 = View::initial(ViewId::new(a, 1), vec![a, b]);
    seed_lwg_view(&mut w, a, H1, v1.clone());
    seed_lwg_view(&mut w, b, H1, v1);
    w.run_for(ms(200));

    let batches_before = w.metrics().counter("lwg.batch.sent");
    w.invoke(a, |n: &mut Node, ctx| {
        for v in 1..=3u64 {
            n.service().send(ctx, L, Frame::from_u64(v));
        }
    });
    w.run_for(ms(100));

    assert_eq!(delivered_from(&mut w, a, a), vec![1, 2, 3]);
    assert_eq!(delivered_from(&mut w, b, a), vec![1, 2, 3]);
    assert_eq!(
        w.metrics().counter("lwg.batch.sent"),
        batches_before + 1,
        "three sends shared one HWG multicast"
    );
}

/// Losing HWG membership: the evicted member transparently re-joins via
/// the recorded mapping, while the coordinator prunes it from the view
/// (no LWG flush needed) and later re-admits it.
#[test]
fn eviction_prunes_view_then_readmits_via_mapping() {
    let (mut w, apps) = setup(2);
    let (a, b) = (apps[0], apps[1]);
    grant(&mut w, a, H1, a, 1, &[a, b]);
    grant(&mut w, b, H1, a, 1, &[a, b]);
    let v1 = View::initial(ViewId::new(a, 1), vec![a, b]);
    seed_lwg_view(&mut w, a, H1, v1.clone());
    seed_lwg_view(&mut w, b, H1, v1);
    w.run_for(ms(200));

    // b falls out of the HWG; a observes the shrunken HWG view.
    w.invoke(b, |n: &mut Node, ctx| {
        n.service().hwg_stack_mut().inject_left(H1);
        n.service().pump(ctx);
    });
    grant(&mut w, a, H1, a, 2, &[a]);
    w.run_for(ms(300));
    assert_eq!(
        view_at(&mut w, a).expect("pruned").members,
        vec![a],
        "coordinator prunes the unreachable member without an LWG flush"
    );
    assert!(w.metrics().counter("lwg.prunes") >= 1);
    // b restarted its join and followed the mapping back to the HWG; the
    // typed trace records the restart.
    assert!(wants_to_join(&mut w, b, H1));
    assert!(
        w.trace().count("lwg.rejoin") >= 1,
        "losing the transport must emit lwg.rejoin"
    );

    // Readmission once the HWG membership is granted again.
    grant(&mut w, a, H1, a, 3, &[a, b]);
    grant(&mut w, b, H1, a, 3, &[a, b]);
    w.run_for(ms(400));
    for &n in &[a, b] {
        let v = view_at(&mut w, n).expect("re-admitted");
        assert_eq!(v.members, vec![a, b], "at {n}");
    }
    send_u64(&mut w, b, 4);
    w.run_for(ms(100));
    assert_eq!(delivered_from(&mut w, a, b), vec![4]);
}

/// A member whose LWG flush never concludes (the initiator multicast
/// `Flush` and then vanished without a successor view) abandons it after
/// `lwg_flush_timeout` and unfreezes — the watchdog path of the tick.
#[test]
fn stuck_lwg_flush_is_abandoned_by_the_watchdog() {
    use plwg_core::LFlushId;
    let (mut w, apps) = setup(2);
    let (a, b) = (apps[0], apps[1]);
    grant(&mut w, a, H1, a, 1, &[a, b]);
    grant(&mut w, b, H1, a, 1, &[a, b]);
    let v1 = View::initial(ViewId::new(a, 1), vec![a, b]);
    seed_lwg_view(&mut w, a, H1, v1.clone());
    seed_lwg_view(&mut w, b, H1, v1);
    w.run_for(ms(200));

    // b receives a Flush from its coordinator… which then never announces
    // the successor view (as if it crashed right after the multicast).
    let flush = LFlushId {
        initiator: a,
        nonce: 99,
    };
    w.invoke(b, move |n: &mut Node, ctx| {
        n.service().hwg_stack_mut().inject_data(
            H1,
            a,
            LwgMsg::Flush {
                lwg: L,
                flush,
                members: vec![a, b],
            }
            .to_frame(),
        );
        n.service().pump(ctx);
    });
    // Mid-flush, sends are frozen (buffered).
    send_u64(&mut w, b, 7);
    w.run_for(ms(100));
    assert_eq!(delivered_from(&mut w, b, b), Vec::<u64>::new());

    // Past lwg_flush_timeout (3 s default) the watchdog abandons the
    // flush; the buffered send is released in the (unchanged) view.
    w.run_for(SimDuration::from_secs(4));
    assert!(
        w.trace().count("lwg.flush.abandon") >= 1,
        "the watchdog must emit lwg.flush.abandon"
    );
    assert_eq!(
        delivered_from(&mut w, b, b),
        vec![7],
        "abandoning the stuck flush unfreezes buffered sends"
    );
}
