//! Protocol timing parameters shared by every HWG substrate.

use plwg_sim::{ConfigError, SimDuration};

/// Tunables of the HWG layer.
///
/// Defaults are sized for LAN-ish latency (~1 ms) — they work both on the
/// simulator and on loopback/LAN sockets: failure detection within a
/// second, beacons twice a second. A substrate is free to ignore the knobs
/// that do not apply to it (the scripted test substrate in `plwg-core`
/// only honours `auto_stop_ok`).
///
/// Construct with [`Default`] and the `with_*` setters; the invariants
/// between knobs are checked by [`HwgConfig::validate`], which every
/// builder in the workspace calls before using a config.
#[derive(Debug, Clone)]
pub struct HwgConfig {
    /// Heartbeat send period of the failure detector.
    pub hb_interval: SimDuration,
    /// Silence after which a monitored peer is suspected. Must exceed
    /// `hb_interval`, or the detector would suspect healthy peers.
    pub suspect_timeout: SimDuration,
    /// Period of coordinator view beacons (peer discovery, paper §4).
    pub beacon_interval: SimDuration,
    /// How long a joiner waits for a `JoinOffer` before retrying.
    pub probe_timeout: SimDuration,
    /// Probe attempts before the joiner forms a singleton view.
    pub probe_retries: u32,
    /// Coordinator-side timeout for a flush round; laggards are suspected
    /// and the flush restarts without them.
    pub flush_timeout: SimDuration,
    /// Leader-side timeout for a merge; on expiry the merge aborts and each
    /// participant installs a local view.
    pub merge_timeout: SimDuration,
    /// If `true` (plain applications), the endpoint acknowledges `Stop`
    /// itself. The LWG layer sets this to `false` and calls
    /// [`crate::HwgSubstrate::stop_ok`] once its own groups are quiescent.
    pub auto_stop_ok: bool,
    /// How long a FIFO gap may sit in the hold-back queue before the
    /// receiver asks the sender to retransmit. Without NACKs a message
    /// lost mid-view would block its sender's stream until the next flush.
    pub nack_delay: SimDuration,
    /// Period of the stability exchange: members advertise their delivered
    /// prefixes so everyone can discard retransmission state that is
    /// stable everywhere (bounds per-view memory).
    pub stability_interval: SimDuration,
}

impl Default for HwgConfig {
    fn default() -> Self {
        HwgConfig {
            hb_interval: SimDuration::from_millis(100),
            suspect_timeout: SimDuration::from_millis(500),
            beacon_interval: SimDuration::from_millis(400),
            probe_timeout: SimDuration::from_millis(150),
            probe_retries: 3,
            flush_timeout: SimDuration::from_millis(1_500),
            merge_timeout: SimDuration::from_millis(3_000),
            auto_stop_ok: true,
            nack_delay: SimDuration::from_millis(200),
            stability_interval: SimDuration::from_secs(2),
        }
    }
}

impl HwgConfig {
    /// Sets the failure-detector pair: heartbeat period and the silence
    /// after which a peer is suspected (`suspect` must exceed `hb`; checked
    /// by [`HwgConfig::validate`]).
    pub fn with_heartbeat(mut self, hb: SimDuration, suspect: SimDuration) -> Self {
        self.hb_interval = hb;
        self.suspect_timeout = suspect;
        self
    }

    /// Sets the coordinator view-beacon period (peer discovery, §4).
    pub fn with_beacon_interval(mut self, v: SimDuration) -> Self {
        self.beacon_interval = v;
        self
    }

    /// Sets the join-probe pair: per-attempt timeout and how many attempts
    /// run before the joiner forms a singleton view.
    pub fn with_probe(mut self, timeout: SimDuration, retries: u32) -> Self {
        self.probe_timeout = timeout;
        self.probe_retries = retries;
        self
    }

    /// Sets the coordinator-side flush-round timeout.
    pub fn with_flush_timeout(mut self, v: SimDuration) -> Self {
        self.flush_timeout = v;
        self
    }

    /// Sets the leader-side merge timeout.
    pub fn with_merge_timeout(mut self, v: SimDuration) -> Self {
        self.merge_timeout = v;
        self
    }

    /// Sets whether the endpoint acknowledges `Stop` upcalls itself.
    pub fn with_auto_stop_ok(mut self, v: bool) -> Self {
        self.auto_stop_ok = v;
        self
    }

    /// Sets the hold-back NACK delay.
    pub fn with_nack_delay(mut self, v: SimDuration) -> Self {
        self.nack_delay = v;
        self
    }

    /// Sets the stability-exchange period.
    pub fn with_stability_interval(mut self, v: SimDuration) -> Self {
        self.stability_interval = v;
        self
    }

    /// Validates invariants between the parameters: every period must be
    /// positive, and the suspect timeout must be strictly larger than the
    /// heartbeat interval.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [
            ("hwg.hb_interval", self.hb_interval),
            ("hwg.beacon_interval", self.beacon_interval),
            ("hwg.probe_timeout", self.probe_timeout),
            ("hwg.flush_timeout", self.flush_timeout),
            ("hwg.merge_timeout", self.merge_timeout),
            ("hwg.nack_delay", self.nack_delay),
            ("hwg.stability_interval", self.stability_interval),
        ] {
            if v <= SimDuration::ZERO {
                return Err(ConfigError::new(field, "period must be positive"));
            }
        }
        if self.suspect_timeout <= self.hb_interval {
            return Err(ConfigError::new(
                "hwg.suspect_timeout",
                "must exceed hb_interval, or healthy peers get suspected",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        HwgConfig::default().validate().expect("default valid");
    }

    #[test]
    fn tight_suspicion_rejected() {
        let err = HwgConfig::default()
            .with_heartbeat(SimDuration::from_millis(100), SimDuration::from_millis(50))
            .validate()
            .expect_err("must reject");
        assert_eq!(err.field, "hwg.suspect_timeout");
    }

    #[test]
    fn zero_period_rejected_with_field_name() {
        let err = HwgConfig::default()
            .with_nack_delay(SimDuration::ZERO)
            .validate()
            .expect_err("must reject");
        assert_eq!(err.field, "hwg.nack_delay");
    }

    #[test]
    fn setters_chain() {
        let cfg = HwgConfig::default()
            .with_beacon_interval(SimDuration::from_millis(250))
            .with_probe(SimDuration::from_millis(100), 5)
            .with_flush_timeout(SimDuration::from_secs(2))
            .with_merge_timeout(SimDuration::from_secs(5))
            .with_auto_stop_ok(false)
            .with_stability_interval(SimDuration::from_secs(1));
        cfg.validate().expect("valid");
        assert_eq!(cfg.probe_retries, 5);
        assert!(!cfg.auto_stop_ok);
    }
}
