//! Protocol timing parameters shared by every HWG substrate.

use plwg_sim::SimDuration;

/// Tunables of the HWG layer.
///
/// Defaults are sized for the simulator's LAN-ish latency (~1 ms): failure
/// detection within a second, beacons twice a second. A substrate is free
/// to ignore the knobs that do not apply to it (the scripted test substrate
/// in `plwg-core` only honours `auto_stop_ok`).
#[derive(Debug, Clone)]
pub struct HwgConfig {
    /// Heartbeat send period of the failure detector.
    pub hb_interval: SimDuration,
    /// Silence after which a monitored peer is suspected.
    pub suspect_timeout: SimDuration,
    /// Period of coordinator view beacons (peer discovery, paper §4).
    pub beacon_interval: SimDuration,
    /// How long a joiner waits for a `JoinOffer` before retrying.
    pub probe_timeout: SimDuration,
    /// Probe attempts before the joiner forms a singleton view.
    pub probe_retries: u32,
    /// Coordinator-side timeout for a flush round; laggards are suspected
    /// and the flush restarts without them.
    pub flush_timeout: SimDuration,
    /// Leader-side timeout for a merge; on expiry the merge aborts and each
    /// participant installs a local view.
    pub merge_timeout: SimDuration,
    /// If `true` (plain applications), the endpoint acknowledges `Stop`
    /// itself. The LWG layer sets this to `false` and calls
    /// [`crate::HwgSubstrate::stop_ok`] once its own groups are quiescent.
    pub auto_stop_ok: bool,
    /// How long a FIFO gap may sit in the hold-back queue before the
    /// receiver asks the sender to retransmit. Without NACKs a message
    /// lost mid-view would block its sender's stream until the next flush.
    pub nack_delay: SimDuration,
    /// Period of the stability exchange: members advertise their delivered
    /// prefixes so everyone can discard retransmission state that is
    /// stable everywhere (bounds per-view memory).
    pub stability_interval: SimDuration,
}

impl Default for HwgConfig {
    fn default() -> Self {
        HwgConfig {
            hb_interval: SimDuration::from_millis(100),
            suspect_timeout: SimDuration::from_millis(500),
            beacon_interval: SimDuration::from_millis(400),
            probe_timeout: SimDuration::from_millis(150),
            probe_retries: 3,
            flush_timeout: SimDuration::from_millis(1_500),
            merge_timeout: SimDuration::from_millis(3_000),
            auto_stop_ok: true,
            nack_delay: SimDuration::from_millis(200),
            stability_interval: SimDuration::from_secs(2),
        }
    }
}

impl HwgConfig {
    /// Validates invariants between the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the suspect timeout is not strictly larger than the
    /// heartbeat interval (the detector would suspect healthy peers), or if
    /// any period is zero.
    pub fn validate(&self) {
        assert!(
            self.hb_interval > SimDuration::ZERO
                && self.beacon_interval > SimDuration::ZERO
                && self.probe_timeout > SimDuration::ZERO
                && self.flush_timeout > SimDuration::ZERO
                && self.merge_timeout > SimDuration::ZERO
                && self.nack_delay > SimDuration::ZERO
                && self.stability_interval > SimDuration::ZERO,
            "hwg periods must be positive"
        );
        assert!(
            self.suspect_timeout > self.hb_interval,
            "suspect_timeout ({}) must exceed hb_interval ({})",
            self.suspect_timeout,
            self.hb_interval
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        HwgConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "suspect_timeout")]
    fn tight_suspicion_rejected() {
        HwgConfig {
            suspect_timeout: SimDuration::from_millis(50),
            ..HwgConfig::default()
        }
        .validate();
    }
}
