//! Typed trace events of the heavy-weight-group substrate.
//!
//! [`HwgTraceEvent`] is the substrate's side of the workspace-wide typed
//! event model: every protocol transition a substrate implementation makes
//! (flush rounds, view installation, vsync merges, failure detection) has a
//! variant here, with one canonical kind string per variant. This is
//! distinct from [`crate::HwgEvent`], which carries the Table-1 *up-calls*
//! to the layer above; trace events are for observability only.

use crate::id::{FlushId, HwgId, ViewId};
use crate::view::View;
use plwg_sim::{EventRefs, NodeId, ProtocolEvent, TraceLayer};

/// Flattens a view id into the layer-agnostic key used by [`EventRefs`].
pub fn view_key(id: ViewId) -> (u32, u64) {
    (id.coordinator.0, id.seq)
}

/// Flattens a flush id into the layer-agnostic key used by [`EventRefs`].
pub fn flush_key(id: FlushId) -> (u32, u64) {
    (id.initiator.0, id.nonce)
}

/// One protocol transition of the HWG substrate (or its failure detector).
#[derive(Debug, Clone)]
pub enum HwgTraceEvent {
    /// The failure detector heard from a previously suspected peer.
    FdAlive {
        /// The peer that proved alive.
        peer: NodeId,
    },
    /// The failure detector started suspecting a peer.
    FdSuspect {
        /// The suspected peer.
        peer: NodeId,
    },
    /// A flush round timed out and restarts without its stragglers.
    FlushRestart {
        /// Group concerned.
        hwg: HwgId,
        /// 1-based attempt number of the restarted round.
        attempt: u64,
        /// Members dropped from the new round for not reporting.
        stragglers: Vec<NodeId>,
    },
    /// A member abandoned a flush whose initiator vanished.
    FlushAbandon {
        /// Group concerned.
        hwg: HwgId,
    },
    /// A node formed (or re-formed) a singleton view of the group.
    Singleton {
        /// Group concerned.
        hwg: HwgId,
        /// The singleton view.
        view: View,
    },
    /// A member received the `Stop` of a flush round.
    FlushMember {
        /// Group concerned.
        hwg: HwgId,
        /// The round.
        flush: FlushId,
        /// Its initiator.
        from: NodeId,
    },
    /// A coordinator started a flush round (Table-1 `Stop` barrier).
    FlushStart {
        /// Group concerned.
        hwg: HwgId,
        /// The round.
        flush: FlushId,
        /// Free-form purpose/participant summary.
        note: String,
    },
    /// The flush coordinator computed and announced the delivery target.
    FlushTarget {
        /// Group concerned.
        hwg: HwgId,
        /// The round.
        flush: FlushId,
        /// Free-form target summary.
        note: String,
    },
    /// A coordinator distributed a freshly installed view.
    ViewDistribute {
        /// Group concerned.
        hwg: HwgId,
        /// The view being distributed.
        view: View,
    },
    /// A member installed a view.
    ViewInstall {
        /// Group concerned.
        hwg: HwgId,
        /// The installed view.
        view: View,
    },
    /// A receiver detected a FIFO gap and asked the sender for retransmits.
    Nack {
        /// Group concerned.
        hwg: HwgId,
        /// The sender with the gap.
        sender: NodeId,
        /// The missing sequence numbers.
        missing: Vec<u64>,
    },
    /// A member noticed it was dropped from a view and rebuilds as a
    /// singleton lineage.
    Excluded {
        /// Group concerned.
        hwg: HwgId,
        /// The view it was dropped from.
        old: ViewId,
    },
    /// A merge leader invited a concurrent view (vsync partition heal).
    MergeStart {
        /// Group concerned.
        hwg: HwgId,
        /// The leader (this node).
        leader: NodeId,
        /// The invited concurrent view.
        invitee_view: ViewId,
    },
    /// A node accepted a merge invitation.
    MergeAccept {
        /// Group concerned.
        hwg: HwgId,
        /// The inviting leader.
        leader: NodeId,
    },
    /// The merge leader installed the merged view.
    MergeComplete {
        /// Group concerned.
        hwg: HwgId,
        /// The merged view (predecessors are the merged lineages).
        view: View,
    },
}

impl ProtocolEvent for HwgTraceEvent {
    fn layer(&self) -> TraceLayer {
        TraceLayer::Hwg
    }

    fn kind(&self) -> &'static str {
        match self {
            HwgTraceEvent::FdAlive { .. } => "fd.alive",
            HwgTraceEvent::FdSuspect { .. } => "fd.suspect",
            HwgTraceEvent::FlushRestart { .. } => "hwg.flush.restart",
            HwgTraceEvent::FlushAbandon { .. } => "hwg.flush.abandon",
            HwgTraceEvent::Singleton { .. } => "hwg.singleton",
            HwgTraceEvent::FlushMember { .. } => "hwg.flush.member",
            HwgTraceEvent::FlushStart { .. } => "hwg.flush.start",
            HwgTraceEvent::FlushTarget { .. } => "hwg.flush.target",
            HwgTraceEvent::ViewDistribute { .. } => "hwg.view.distribute",
            HwgTraceEvent::ViewInstall { .. } => "hwg.view.install",
            HwgTraceEvent::Nack { .. } => "hwg.nack",
            HwgTraceEvent::Excluded { .. } => "hwg.excluded",
            HwgTraceEvent::MergeStart { .. } => "hwg.merge.start",
            HwgTraceEvent::MergeAccept { .. } => "hwg.merge.accept",
            HwgTraceEvent::MergeComplete { .. } => "hwg.merge.complete",
        }
    }

    fn refs(&self) -> EventRefs {
        let mut refs = EventRefs::default();
        match self {
            HwgTraceEvent::FdAlive { .. } | HwgTraceEvent::FdSuspect { .. } => {}
            HwgTraceEvent::FlushRestart { hwg, .. }
            | HwgTraceEvent::FlushAbandon { hwg }
            | HwgTraceEvent::Nack { hwg, .. } => {
                refs.hwg = Some(hwg.0);
            }
            HwgTraceEvent::FlushMember { hwg, flush, .. }
            | HwgTraceEvent::FlushStart { hwg, flush, .. }
            | HwgTraceEvent::FlushTarget { hwg, flush, .. } => {
                refs.hwg = Some(hwg.0);
                refs.flush = Some(flush_key(*flush));
            }
            HwgTraceEvent::Singleton { hwg, view }
            | HwgTraceEvent::ViewDistribute { hwg, view }
            | HwgTraceEvent::ViewInstall { hwg, view }
            | HwgTraceEvent::MergeComplete { hwg, view } => {
                refs.hwg = Some(hwg.0);
                refs.view = Some(view_key(view.id));
                refs.parents = view.predecessors.iter().copied().map(view_key).collect();
            }
            HwgTraceEvent::Excluded { hwg, old } => {
                refs.hwg = Some(hwg.0);
                refs.view = Some(view_key(*old));
            }
            HwgTraceEvent::MergeStart {
                hwg, invitee_view, ..
            } => {
                refs.hwg = Some(hwg.0);
                refs.view = Some(view_key(*invitee_view));
            }
            HwgTraceEvent::MergeAccept { hwg, .. } => {
                refs.hwg = Some(hwg.0);
            }
        }
        refs
    }

    fn detail(&self) -> String {
        match self {
            HwgTraceEvent::FdAlive { peer } | HwgTraceEvent::FdSuspect { peer } => {
                format!("{peer}")
            }
            HwgTraceEvent::FlushRestart {
                hwg,
                attempt,
                stragglers,
            } => format!("{hwg} attempt {attempt} stragglers {stragglers:?}"),
            HwgTraceEvent::FlushAbandon { hwg } => format!("{hwg}"),
            HwgTraceEvent::Singleton { hwg, view } => format!("{hwg} {view}"),
            HwgTraceEvent::FlushMember { hwg, flush, from } => {
                format!("{hwg} {flush} from {from}")
            }
            HwgTraceEvent::FlushStart { hwg, flush, note }
            | HwgTraceEvent::FlushTarget { hwg, flush, note } => {
                format!("{hwg} {flush} {note}")
            }
            HwgTraceEvent::ViewDistribute { hwg, view }
            | HwgTraceEvent::ViewInstall { hwg, view } => {
                format!("{hwg} {view}")
            }
            HwgTraceEvent::Nack {
                hwg,
                sender,
                missing,
            } => format!("{hwg} {sender} missing {missing:?}"),
            HwgTraceEvent::Excluded { hwg, old } => {
                format!("{hwg} dropped from {old}, rejoining")
            }
            HwgTraceEvent::MergeStart {
                hwg,
                leader,
                invitee_view,
            } => format!("{hwg} leader {leader} invites {invitee_view}"),
            HwgTraceEvent::MergeAccept { hwg, leader } => {
                format!("{hwg} invitee of leader {leader}")
            }
            HwgTraceEvent::MergeComplete { hwg, view } => format!("{hwg} merged into {view}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_canonical_and_refs_link_views() {
        let view = View::with_predecessors(
            ViewId::new(NodeId(1), 3),
            vec![NodeId(1), NodeId(2)],
            vec![ViewId::new(NodeId(1), 1), ViewId::new(NodeId(2), 2)],
        );
        let e = HwgTraceEvent::MergeComplete {
            hwg: HwgId(7),
            view,
        };
        assert_eq!(e.kind(), "hwg.merge.complete");
        assert_eq!(e.as_str(), e.kind());
        let refs = e.refs();
        assert_eq!(refs.hwg, Some(7));
        assert_eq!(refs.view, Some((1, 3)));
        assert_eq!(refs.parents, vec![(1, 1), (2, 2)]);
        assert!(e.detail().contains("merged into"));
    }

    #[test]
    fn flush_events_carry_the_round_key() {
        let flush = FlushId {
            initiator: NodeId(4),
            nonce: 9,
        };
        let e = HwgTraceEvent::FlushStart {
            hwg: HwgId(2),
            flush,
            note: "purpose ViewChange".into(),
        };
        assert_eq!(e.refs().flush, Some((4, 9)));
        assert_eq!(e.detail(), "hwg2 n4@9 purpose ViewChange");
    }
}
