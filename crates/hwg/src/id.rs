//! Group and view identifiers.

use plwg_sim::NodeId;
use std::fmt;

/// Identifies a heavy-weight group (HWG).
///
/// Identifiers are totally ordered; the paper uses this order for
/// deterministic tie-breaks ("switch to the HWG with the highest group
/// identifier", §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HwgId(pub u64);

impl fmt::Display for HwgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 & (1 << 63) != 0 {
            // A dynamically allocated id (see `plwg-core`): encodes the
            // allocating node and a local counter.
            let node = (self.0 >> 32) & 0x7FFF_FFFF;
            let ctr = self.0 & 0xFFFF_FFFF;
            write!(f, "hwg[n{node}.{ctr}]")
        } else {
            write!(f, "hwg{}", self.0)
        }
    }
}

/// Identifies one *view* of a group: the pair
/// `(coordinator, view-sequence-number)` of paper §5.1, where the sequence
/// number is a counter local to the coordinator that installed the view.
///
/// Two views of the same group with different `ViewId`s may be *concurrent*
/// (installed in disjoint partitions); concurrency is determined by the
/// predecessor relation recorded in [`crate::View`], not by comparing ids.
///
/// The same identifier scheme is reused for light-weight group views in
/// `plwg-core` — the paper's naming service stores view-to-view mappings at
/// both levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId {
    /// The process that installed the view.
    pub coordinator: NodeId,
    /// That process's local view counter at installation time.
    pub seq: u64,
}

impl ViewId {
    /// Builds a view identifier.
    pub fn new(coordinator: NodeId, seq: u64) -> Self {
        ViewId { coordinator, seq }
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.coordinator, self.seq)
    }
}

/// Identifies one flush round of the Table-1 `Stop`/`StopOk` barrier: who
/// initiated it and a per-initiator nonce. A more senior initiator (lower
/// rank in the current view) or a larger nonce from the same initiator
/// supersedes an in-progress flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlushId {
    /// The member coordinating this flush.
    pub initiator: NodeId,
    /// Initiator-local round counter.
    pub nonce: u64,
}

impl fmt::Display for FlushId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.initiator, self.nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwg_id_order_is_numeric() {
        assert!(HwgId(2) > HwgId(1));
        assert_eq!(HwgId(3).to_string(), "hwg3");
    }

    #[test]
    fn view_id_display_and_order() {
        let a = ViewId::new(NodeId(1), 4);
        let b = ViewId::new(NodeId(1), 5);
        let c = ViewId::new(NodeId(2), 1);
        assert_eq!(a.to_string(), "n1#4");
        assert!(a < b);
        assert!(b < c); // lexicographic on (coordinator, seq)
    }
}
