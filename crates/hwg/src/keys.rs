//! Canonical metric keys of the HWG substrate.
//!
//! Declared here (below every substrate implementation) so that the vsync
//! stack, scripted substrates, the workload harness and the benches all
//! share one typed spelling per metric.

use plwg_sim::CounterKey;

/// Multicasts handed to the substrate (full-view sends).
pub const DATA_SENT: CounterKey = CounterKey::new("hwg.data_sent");
/// Application payload bytes handed to the substrate for multicast — counted
/// once per multicast, not per receiver copy (contrast `net.bytes_sent`).
pub const BYTES_MULTICAST: CounterKey = CounterKey::new("hwg.bytes_multicast");
/// Subset multicasts (interference-aware delivery).
pub const SUBSET_SENDS: CounterKey = CounterKey::new("hwg.subset_sends");
/// Per-member copies trimmed off subset multicasts.
pub const SUBSET_TRIMMED: CounterKey = CounterKey::new("hwg.subset_trimmed");
/// Skip markers processed instead of full payloads.
pub const SUBSET_SKIPPED: CounterKey = CounterKey::new("hwg.subset_skipped");
/// Failure-detector beacons sent.
pub const BEACONS: CounterKey = CounterKey::new("hwg.beacons");
/// Join probes broadcast while seeking a group.
pub const JOIN_PROBES: CounterKey = CounterKey::new("hwg.join_probes");
/// Messages discarded for belonging to a foreign view.
pub const DATA_FOREIGN_VIEW: CounterKey = CounterKey::new("hwg.data_foreign_view");
/// Duplicate messages discarded.
pub const DATA_DUP: CounterKey = CounterKey::new("hwg.data_dup");
/// Messages delivered to the layer above.
pub const DATA_DELIVERED: CounterKey = CounterKey::new("hwg.data_delivered");
/// Retransmissions supplied during a flush.
pub const FLUSH_FILLS: CounterKey = CounterKey::new("hwg.flush_fills");
/// Flush rounds started.
pub const FLUSHES: CounterKey = CounterKey::new("hwg.flushes");
/// Views installed.
pub const VIEWS_INSTALLED: CounterKey = CounterKey::new("hwg.views_installed");
/// Gap NACKs sent.
pub const NACKS_SENT: CounterKey = CounterKey::new("hwg.nacks_sent");
/// Retransmissions answered to NACKs.
pub const NACK_RESENDS: CounterKey = CounterKey::new("hwg.nack_resends");
/// Stability ticks suppressed (nothing new to acknowledge).
pub const STABILITY_SUPPRESSED: CounterKey = CounterKey::new("hwg.stability_suppressed");
/// Stable messages garbage-collected from the resend store.
pub const STORE_GC: CounterKey = CounterKey::new("hwg.store_gc");
/// Vsync merges started (partition heal, leader side).
pub const MERGES_STARTED: CounterKey = CounterKey::new("hwg.merges_started");
/// Vsync merges completed (merged view installed).
pub const MERGES_COMPLETED: CounterKey = CounterKey::new("hwg.merges_completed");
