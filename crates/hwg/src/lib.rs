//! # plwg-hwg — the heavy-weight-group substrate interface (paper Table 1)
//!
//! The paper's light-weight group service is defined *against an interface*,
//! not against one membership implementation: Table 1 lists the down-calls
//! (`Join`, `Leave`, `Send`, `StopOk`) and up-calls (`View`, `Data`, `Stop`)
//! the LWG layer exchanges with whatever heavy-weight group (HWG) substrate
//! sits below it — Horus in the original system. This crate captures that
//! seam as Rust types:
//!
//! * [`HwgSubstrate`] — the Table-1 contract. `plwg-vsync` implements it for
//!   its partitionable virtually-synchronous stack; `plwg-core` provides a
//!   second, scripted implementation for deterministic protocol tests.
//! * [`HwgEvent`] — the up-call events (`View` / `Data` / `Stop`, plus the
//!   `Left` completion notice).
//! * [`HwgId`], [`ViewId`], [`View`], [`GroupStatus`], [`HwgConfig`] — the
//!   vocabulary types shared by every layer (naming service included).
//!
//! Keeping these types below both `plwg-vsync` and `plwg-core` is what lets
//! the LWG service compile with **no** dependency on any particular
//! substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod events;
mod id;
pub mod keys;
mod substrate;
mod view;
mod wire;

pub use config::HwgConfig;
pub use events::{flush_key, view_key, HwgTraceEvent};
pub use id::{FlushId, HwgId, ViewId};
pub use substrate::{GroupStatus, HwgEvent, HwgSubstrate};
pub use view::View;
