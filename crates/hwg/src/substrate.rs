//! The Table-1 substrate contract: what the LWG layer asks of whatever
//! heavy-weight group implementation sits below it.
//!
//! Paper Table 1 lists the interaction between the light-weight group
//! service and the HWG layer as three down-calls plus an acknowledgement
//! (`Join`, `Leave`, `Send`, `StopOk`) and three up-calls (`View`, `Data`,
//! `Stop`). [`HwgSubstrate`] is that table as a Rust trait, widened only
//! where this codebase's LWG protocol needs an extra query (coordinator and
//! status checks for the merge protocol of §6, subset sends for the
//! interference optimisation). Up-calls are pulled rather than pushed: the
//! substrate buffers [`HwgEvent`]s and the owner drains them after every
//! message/timer it forwards.

use crate::id::{HwgId, ViewId};
use crate::view::View;
use crate::HwgConfig;
use plwg_sim::{NodeId, Payload, TimerToken, Transport};
use std::collections::BTreeSet;

/// Externally observable state of a group endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupStatus {
    /// Looking for an existing view to join (probing / awaiting admission).
    Joining,
    /// Member of an installed view.
    Member,
    /// Member that has asked to leave and awaits exclusion.
    Leaving,
    /// No longer (or never) a member; terminal.
    Left,
}

/// Upcalls from the HWG substrate to its owner (paper Table 1).
#[derive(Debug)]
pub enum HwgEvent {
    /// `View(g, view)` — a new view was installed for `hwg` (Table 1:
    /// "change in the composition of the group").
    View {
        /// Group.
        hwg: HwgId,
        /// The installed view.
        view: View,
    },
    /// `Data(g, m)` — a multicast was delivered (Table 1: "delivery of a
    /// message addressed to the group").
    Data {
        /// Group.
        hwg: HwgId,
        /// View the message was sent (and delivered) in.
        view_id: ViewId,
        /// Original sender.
        src: NodeId,
        /// Opaque payload.
        data: Payload,
    },
    /// `Stop(g)` — traffic on `hwg` must stop because a view change is in
    /// progress (Table 1). The owner confirms with
    /// [`HwgSubstrate::stop_ok`] unless [`HwgConfig::auto_stop_ok`] is set.
    Stop {
        /// Group.
        hwg: HwgId,
    },
    /// This node is no longer a member of `hwg` (leave completed, or the
    /// group dissolved). Completion notice for the `Leave` down-call.
    Left {
        /// Group.
        hwg: HwgId,
    },
}

/// A heavy-weight group substrate: the paper's Table-1 interface.
///
/// `plwg-core`'s `LwgService<S>` is generic over this trait; any
/// implementation that honours the virtual-synchrony contract below can
/// carry the light-weight group protocol:
///
/// * **View synchrony** — members that install the same two consecutive
///   views deliver the same set of messages between them.
/// * **View-tagged delivery** — [`HwgEvent::Data`] carries the [`ViewId`]
///   the message was sent in and is only delivered to that view's members.
/// * **Stop before change** — when [`HwgConfig::auto_stop_ok`] is `false`,
///   a view change emits [`HwgEvent::Stop`] and blocks until every member
///   answers [`HwgSubstrate::stop_ok`], giving the layer above a final
///   chance to send (the paper's MERGE-VIEWS message rides this window).
///
/// Implementations: `plwg_vsync::VsyncStack` (the real partitionable
/// protocol stack) and `plwg_core::ScriptedHwg` (a deterministic scripted
/// mock for protocol tests).
pub trait HwgSubstrate {
    /// Builds an idle substrate endpoint for node `me`.
    fn build(me: NodeId, cfg: &HwgConfig) -> Self
    where
        Self: Sized;

    /// The node this endpoint runs on.
    fn node(&self) -> NodeId;

    /// Arms the substrate's periodic timers. Call once from
    /// [`plwg_sim::Process::on_start`].
    fn start(&mut self, ctx: &mut dyn Transport);

    /// Table 1 down-call `Join(g)`: become a member of `hwg`, discovering
    /// an existing view if one is reachable. Membership is reported
    /// asynchronously via [`HwgEvent::View`].
    fn join(&mut self, ctx: &mut dyn Transport, hwg: HwgId);

    /// Variant of `Join(g)` for a group known to be new: installs a
    /// singleton view immediately instead of probing for peers (the LWG
    /// layer uses this when it allocates a fresh HWG, §5.2).
    fn create(&mut self, ctx: &mut dyn Transport, hwg: HwgId);

    /// Table 1 down-call `Leave(g)`: withdraw from `hwg`. Completion is
    /// reported via [`HwgEvent::Left`].
    fn leave(&mut self, ctx: &mut dyn Transport, hwg: HwgId);

    /// Table 1 down-call `Send(g, m)`: virtually-synchronous multicast on
    /// `hwg`. Messages sent while no view is installed are buffered for
    /// the next view; silently ignored if not a member.
    fn send(&mut self, ctx: &mut dyn Transport, hwg: HwgId, data: Payload);

    /// `Send(g, m)` restricted to a subset: the payload is delivered only
    /// to `targets` (the sender always self-delivers), while ordering,
    /// stability and flush guarantees stay identical to a full
    /// [`HwgSubstrate::send`]. This is the interference optimisation for
    /// LWGs smaller than their backing HWG (paper §3).
    fn send_to(
        &mut self,
        ctx: &mut dyn Transport,
        hwg: HwgId,
        targets: &BTreeSet<NodeId>,
        data: Payload,
    );

    /// Forces a no-change flush of `hwg`: a synchronisation barrier that
    /// stops the group, waits for every member's [`HwgSubstrate::stop_ok`],
    /// and installs a successor view with the same membership. The LWG
    /// merge protocol uses this to place its MERGE-VIEWS message in a
    /// single flush (paper Fig. 5). Honoured only by the coordinator.
    fn force_flush(&mut self, ctx: &mut dyn Transport, hwg: HwgId);

    /// Table 1 down-call `StopOk(g)`: confirms a [`HwgEvent::Stop`] upcall,
    /// releasing the view change (only needed when
    /// [`HwgConfig::auto_stop_ok`] is `false`).
    fn stop_ok(&mut self, ctx: &mut dyn Transport, hwg: HwgId);

    /// The currently installed view of `hwg` at this node, if any.
    fn view_of(&self, hwg: HwgId) -> Option<&View>;

    /// Membership status of this node in `hwg` ([`GroupStatus::Left`] when
    /// unknown).
    fn status_of(&self, hwg: HwgId) -> GroupStatus;

    /// Whether this node currently acts as coordinator of `hwg` (most
    /// senior non-suspected member). The LWG layer routes its
    /// coordinator-only steps — switch announcements, MERGE-VIEWS — through
    /// this query (§6).
    fn is_coordinator(&self, hwg: HwgId) -> bool;

    /// The groups this endpoint belongs to (status ≠ [`GroupStatus::Left`]).
    fn groups(&self) -> Vec<HwgId>;

    /// Offers an incoming simulator message to the substrate. Returns
    /// `true` if it was a substrate message (the owner should then drain
    /// events), `false` if it belongs to another layer.
    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &Payload) -> bool;

    /// Offers a timer expiry to the substrate; same contract as
    /// [`HwgSubstrate::on_message`].
    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) -> bool;

    /// Takes the buffered up-call events (paper Table 1's `View` / `Data` /
    /// `Stop`, plus `Left`), in occurrence order.
    fn drain_events(&mut self) -> Vec<HwgEvent>;

    /// Moves the buffered up-call events into `out` (same contract as
    /// [`HwgSubstrate::drain_events`]). Implementations that keep their
    /// internal buffer's capacity make the owner's pump loop
    /// allocation-free in steady state; the default just delegates.
    fn drain_events_into(&mut self, out: &mut Vec<HwgEvent>) {
        out.append(&mut self.drain_events());
    }
}
