//! Group views: the membership snapshots delivered by virtual synchrony.

use crate::id::ViewId;
use plwg_sim::NodeId;
use std::fmt;

/// A view of a group: an identified membership snapshot.
///
/// `members` is ordered by *seniority* (oldest first); the coordinator of a
/// view is its most senior member, `members[0]`. Views record the ids of
/// the views they succeed (`predecessors`) — one predecessor for an
/// ordinary view change, several when concurrent views merge. This is the
/// partial order of views the paper's naming service uses to garbage-collect
/// obsolete mappings (§5.2, §7).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct View {
    /// The view identifier `(coordinator, seq)`.
    pub id: ViewId,
    /// Members in seniority order (oldest first).
    pub members: Vec<NodeId>,
    /// Ids of the immediately preceding view(s). Empty for an initial view.
    pub predecessors: Vec<ViewId>,
}

impl View {
    /// Builds an initial (singleton-lineage) view.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn initial(id: ViewId, members: Vec<NodeId>) -> Self {
        View::with_predecessors(id, members, Vec::new())
    }

    /// Builds a view succeeding `predecessors`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn with_predecessors(id: ViewId, members: Vec<NodeId>, predecessors: Vec<ViewId>) -> Self {
        assert!(!members.is_empty(), "a view must have at least one member");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "view members must be distinct");
        View {
            id,
            members,
            predecessors,
        }
    }

    /// The coordinator: the most senior member.
    pub fn coordinator(&self) -> NodeId {
        self.members[0]
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is a singleton — never truly "empty" (see
    /// [`View::initial`]), provided for idiom completeness.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Seniority rank of `node` (0 = coordinator), or `None` if absent.
    pub fn rank(&self, node: NodeId) -> Option<usize> {
        self.members.iter().position(|&m| m == node)
    }

    /// The most senior member of `self.members ∩ alive` where `alive`
    /// is a predicate — used to decide who should coordinate a view change
    /// when the coordinator itself is suspected.
    pub fn senior_member_where(&self, mut alive: impl FnMut(NodeId) -> bool) -> Option<NodeId> {
        self.members.iter().copied().find(|&m| alive(m))
    }

    /// Membership as a sorted vector (for set comparisons in policies).
    pub fn sorted_members(&self) -> Vec<NodeId> {
        let mut m = self.members.clone();
        m.sort_unstable();
        m
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn coordinator_is_first_member() {
        let v = View::initial(ViewId::new(n(3), 1), vec![n(3), n(1), n(2)]);
        assert_eq!(v.coordinator(), n(3));
        assert_eq!(v.rank(n(1)), Some(1));
        assert_eq!(v.rank(n(9)), None);
        assert!(v.contains(n(2)));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn senior_member_skips_dead() {
        let v = View::initial(ViewId::new(n(3), 1), vec![n(3), n(1), n(2)]);
        assert_eq!(v.senior_member_where(|m| m != n(3)), Some(n(1)));
        assert_eq!(v.senior_member_where(|_| false), None);
    }

    #[test]
    fn sorted_members_sorts() {
        let v = View::initial(ViewId::new(n(3), 1), vec![n(3), n(1), n(2)]);
        assert_eq!(v.sorted_members(), vec![n(1), n(2), n(3)]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_view_rejected() {
        let _ = View::initial(ViewId::new(n(0), 1), vec![]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_members_rejected() {
        let _ = View::initial(ViewId::new(n(0), 1), vec![n(1), n(1)]);
    }

    #[test]
    fn display_lists_members() {
        let v = View::initial(ViewId::new(n(1), 2), vec![n(1), n(4)]);
        assert_eq!(v.to_string(), "n1#2{n1,n4}");
    }
}
