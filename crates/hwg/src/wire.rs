//! Wire codecs for the substrate vocabulary types.
//!
//! `plwg-wire` owns the primitive encoding (varints, length prefixes,
//! containers); each crate encodes its own types. The identifiers and views
//! defined here appear inside the frames of *every* layer above (vsync
//! control messages, naming records, LWG batches), so their codecs live at
//! this shared level.

use crate::id::{FlushId, HwgId, ViewId};
use crate::view::View;
use plwg_sim::{Decode, Encode, NodeId, Reader, WireError};

impl Encode for HwgId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
}

impl Decode for HwgId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HwgId(u64::decode_from(r)?))
    }
}

impl Encode for ViewId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.coordinator.encode_into(out);
        self.seq.encode_into(out);
    }
}

impl Decode for ViewId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let coordinator = NodeId::decode_from(r)?;
        let seq = u64::decode_from(r)?;
        Ok(ViewId { coordinator, seq })
    }
}

impl Encode for FlushId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.initiator.encode_into(out);
        self.nonce.encode_into(out);
    }
}

impl Decode for FlushId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let initiator = NodeId::decode_from(r)?;
        let nonce = u64::decode_from(r)?;
        Ok(FlushId { initiator, nonce })
    }
}

impl Encode for View {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.members.encode_into(out);
        self.predecessors.encode_into(out);
    }
}

impl Decode for View {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = ViewId::decode_from(r)?;
        let members: Vec<NodeId> = Vec::decode_from(r)?;
        let predecessors = Vec::decode_from(r)?;
        // Re-validate the `View` invariants instead of trusting the wire:
        // a corrupt or adversarial frame must not manufacture an empty or
        // duplicated membership (the constructors would panic on it).
        if members.is_empty() {
            return Err(WireError::BadLength);
        }
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != members.len() {
            return Err(WireError::BadLength);
        }
        Ok(View {
            id,
            members,
            predecessors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plwg_sim::Frame;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) -> T {
        let mut out = Vec::new();
        v.encode_into(&mut out);
        let f = Frame::from_vec(out);
        let mut r = Reader::new(&f);
        let got = T::decode_from(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        got
    }

    #[test]
    fn ids_roundtrip() {
        for id in [HwgId(0), HwgId(7), HwgId(1 << 63 | 42)] {
            assert_eq!(roundtrip(&id), id);
        }
        let vid = ViewId::new(NodeId(3), 129);
        assert_eq!(roundtrip(&vid), vid);
        let fid = FlushId {
            initiator: NodeId(2),
            nonce: 300,
        };
        assert_eq!(roundtrip(&fid), fid);
    }

    #[test]
    fn view_roundtrips_with_predecessors() {
        let v = View::with_predecessors(
            ViewId::new(NodeId(1), 9),
            vec![NodeId(1), NodeId(4), NodeId(2)],
            vec![ViewId::new(NodeId(1), 8), ViewId::new(NodeId(4), 3)],
        );
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn corrupt_view_membership_is_rejected_not_panicked() {
        // Hand-encode a view with duplicate members; decode must error.
        let mut out = Vec::new();
        ViewId::new(NodeId(0), 1).encode_into(&mut out);
        vec![NodeId(5), NodeId(5)].encode_into(&mut out);
        Vec::<ViewId>::new().encode_into(&mut out);
        let f = Frame::from_vec(out);
        let mut r = Reader::new(&f);
        assert_eq!(View::decode_from(&mut r), Err(WireError::BadLength));

        // And an empty membership likewise.
        let mut out = Vec::new();
        ViewId::new(NodeId(0), 1).encode_into(&mut out);
        Vec::<NodeId>::new().encode_into(&mut out);
        Vec::<ViewId>::new().encode_into(&mut out);
        let f = Frame::from_vec(out);
        let mut r = Reader::new(&f);
        assert_eq!(View::decode_from(&mut r), Err(WireError::BadLength));
    }
}
