//! The client-side stub of the naming service.
//!
//! A passive component owned by each LWG-service node (same pattern as
//! the HWG stack): the owner forwards messages and timers and
//! drains [`NsEvent`]s. The stub picks a server, times out, and fails over
//! to the next one — so requests keep being served as long as *some* server
//! is reachable in the caller's partition (the paper's placement
//! assumption, §5.2).

use crate::config::NamingConfig;
use crate::db::Mapping;
use crate::id::LwgId;
use crate::msg::NsMsg;
use crate::wire;
use plwg_hwg::ViewId;
use plwg_sim::{
    decode_frame, family, peek_family, NodeId, Payload, SimTime, TimerToken, Transport,
};
use std::collections::BTreeMap;

const TOK_NS_RETRY: TimerToken = TimerToken(0x0200_0000_0000_0002);

/// Correlates a reply with its request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// Upcalls from the naming stub to its owner.
#[derive(Debug, Clone)]
pub enum NsEvent {
    /// A request completed; `mappings` are the group's current mappings
    /// after the operation.
    Reply {
        /// The request this answers.
        req: RequestId,
        /// The LWG concerned.
        lwg: LwgId,
        /// Current mappings at the answering server.
        mappings: Vec<Mapping>,
    },
    /// Server-initiated `MULTIPLE-MAPPINGS` callback (paper §6.1).
    MultipleMappings {
        /// The LWG with concurrent mappings.
        lwg: LwgId,
        /// All mappings the server holds for it.
        mappings: Vec<Mapping>,
    },
}

struct Pending {
    template: NsMsg,
    server_idx: usize,
    deadline: SimTime,
}

/// Client stub: request/retry bookkeeping against the server set.
pub struct NsClient {
    me: NodeId,
    servers: Vec<NodeId>,
    cfg: NamingConfig,
    next_req: u64,
    pending: BTreeMap<RequestId, Pending>,
    events: Vec<NsEvent>,
}

impl NsClient {
    /// Creates a stub that talks to `servers` (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or `cfg` is invalid.
    pub fn new(me: NodeId, servers: Vec<NodeId>, cfg: NamingConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        assert!(!servers.is_empty(), "need at least one name server");
        NsClient {
            me,
            servers,
            cfg,
            next_req: 0,
            pending: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// `ns.read` — asynchronously fetch the current mappings of `lwg`.
    pub fn read(&mut self, ctx: &mut dyn Transport, lwg: LwgId) -> RequestId {
        let req = self.fresh_req();
        self.dispatch(ctx, req, NsMsg::Read { req, lwg });
        req
    }

    /// `ns.set` — register (or refresh) a view-to-view mapping.
    pub fn set(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        mapping: Mapping,
        preds: Vec<ViewId>,
    ) -> RequestId {
        let req = self.fresh_req();
        self.dispatch(
            ctx,
            req,
            NsMsg::Set {
                req,
                lwg,
                mapping,
                preds,
            },
        );
        req
    }

    /// `ns.testset` — claim the mapping if the group has none.
    pub fn testset(
        &mut self,
        ctx: &mut dyn Transport,
        lwg: LwgId,
        mapping: Mapping,
        preds: Vec<ViewId>,
    ) -> RequestId {
        let req = self.fresh_req();
        self.dispatch(
            ctx,
            req,
            NsMsg::TestSet {
                req,
                lwg,
                mapping,
                preds,
            },
        );
        req
    }

    /// Removes the mapping of a dissolved view.
    pub fn unset(&mut self, ctx: &mut dyn Transport, lwg: LwgId, lwg_view: ViewId) -> RequestId {
        let req = self.fresh_req();
        self.dispatch(ctx, req, NsMsg::Unset { req, lwg, lwg_view });
        req
    }

    /// Handles an incoming message if it belongs to the naming protocol.
    /// Returns `true` when consumed.
    pub fn on_message(&mut self, ctx: &mut dyn Transport, _from: NodeId, msg: &Payload) -> bool {
        if peek_family(msg) != Some(family::NS) {
            return false;
        }
        let ns = match decode_frame::<NsMsg>(family::NS, msg) {
            Ok(ns) => ns,
            Err(_) => {
                ctx.metrics().incr(crate::keys::DECODE_ERRORS);
                return true;
            }
        };
        match ns {
            NsMsg::Reply { req, lwg, mappings } if self.pending.remove(&req).is_some() => {
                self.events.push(NsEvent::Reply { req, lwg, mappings });
            }
            NsMsg::MultipleMappings { lwg, mappings } => {
                self.events
                    .push(NsEvent::MultipleMappings { lwg, mappings });
            }
            // Server-bound messages reaching a client are strays (e.g. a
            // node that is both client and server is not supported).
            _ => {}
        }
        true
    }

    /// Handles the retry timer. Returns `true` when consumed.
    pub fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) -> bool {
        if token != TOK_NS_RETRY {
            return false;
        }
        let now = ctx.now();
        let expired: Vec<RequestId> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(&r, _)| r)
            .collect();
        for req in expired {
            let mut p = self.pending.remove(&req).expect("just listed");
            // Fail over to the next server.
            p.server_idx = (p.server_idx + 1) % self.servers.len();
            p.deadline = now + self.cfg.request_timeout;
            ctx.metrics().incr(crate::keys::CLIENT_RETRIES);
            ctx.send(self.servers[p.server_idx], wire::frame(&p.template));
            self.pending.insert(req, p);
        }
        if !self.pending.is_empty() {
            ctx.set_timer(self.cfg.request_timeout, TOK_NS_RETRY);
        }
        true
    }

    /// Takes the events produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<NsEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of requests still awaiting a reply.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    fn fresh_req(&mut self) -> RequestId {
        self.next_req += 1;
        RequestId((u64::from(self.me.0) << 32) | self.next_req)
    }

    fn dispatch(&mut self, ctx: &mut dyn Transport, req: RequestId, msg: NsMsg) {
        // Spread load: each client starts from a home server and rotates on
        // failure.
        let idx = self.me.index() % self.servers.len();
        ctx.metrics().incr(crate::keys::CLIENT_REQUESTS);
        ctx.send(self.servers[idx], wire::frame(&msg));
        let had_pending = !self.pending.is_empty();
        self.pending.insert(
            req,
            Pending {
                template: msg,
                server_idx: idx,
                deadline: ctx.now() + self.cfg.request_timeout,
            },
        );
        if !had_pending {
            ctx.set_timer(self.cfg.request_timeout, TOK_NS_RETRY);
        }
    }
}

impl std::fmt::Debug for NsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NsClient")
            .field("me", &self.me)
            .field("servers", &self.servers)
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}
