//! Naming-service timing parameters.

use plwg_sim::SimDuration;

/// Tunables of the naming service.
#[derive(Debug, Clone)]
pub struct NamingConfig {
    /// Anti-entropy period between name servers.
    pub gossip_interval: SimDuration,
    /// Client-side timeout before a request is retried (possibly against
    /// another server).
    pub request_timeout: SimDuration,
    /// Whether servers push MULTIPLE-MAPPINGS callbacks (paper §6.1).
    /// Disabled only by the callback-vs-polling ablation, which makes
    /// group coordinators poll `ns.read` instead.
    pub push_callbacks: bool,
}

impl Default for NamingConfig {
    fn default() -> Self {
        NamingConfig {
            gossip_interval: SimDuration::from_millis(500),
            request_timeout: SimDuration::from_millis(400),
            push_callbacks: true,
        }
    }
}

impl NamingConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any period is zero.
    pub fn validate(&self) {
        assert!(
            self.gossip_interval > SimDuration::ZERO && self.request_timeout > SimDuration::ZERO,
            "naming periods must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        NamingConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        NamingConfig {
            gossip_interval: SimDuration::ZERO,
            ..NamingConfig::default()
        }
        .validate();
    }
}
