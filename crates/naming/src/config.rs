//! Naming-service timing parameters.

use plwg_sim::{ConfigError, SimDuration};

/// Tunables of the naming service.
///
/// Construct with [`Default`] and the `with_*` setters; invariants are
/// checked by [`NamingConfig::validate`].
#[derive(Debug, Clone)]
pub struct NamingConfig {
    /// Anti-entropy period between name servers.
    pub gossip_interval: SimDuration,
    /// Client-side timeout before a request is retried (possibly against
    /// another server).
    pub request_timeout: SimDuration,
    /// Whether servers push MULTIPLE-MAPPINGS callbacks (paper §6.1).
    /// Disabled only by the callback-vs-polling ablation, which makes
    /// group coordinators poll `ns.read` instead.
    pub push_callbacks: bool,
}

impl Default for NamingConfig {
    fn default() -> Self {
        NamingConfig {
            gossip_interval: SimDuration::from_millis(500),
            request_timeout: SimDuration::from_millis(400),
            push_callbacks: true,
        }
    }
}

impl NamingConfig {
    /// Sets the anti-entropy gossip period between name servers.
    pub fn with_gossip_interval(mut self, v: SimDuration) -> Self {
        self.gossip_interval = v;
        self
    }

    /// Sets the client-side request timeout.
    pub fn with_request_timeout(mut self, v: SimDuration) -> Self {
        self.request_timeout = v;
        self
    }

    /// Sets whether servers push MULTIPLE-MAPPINGS callbacks (§6.1).
    pub fn with_push_callbacks(mut self, v: bool) -> Self {
        self.push_callbacks = v;
        self
    }

    /// Validates the configuration: every period must be positive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.gossip_interval <= SimDuration::ZERO {
            return Err(ConfigError::new(
                "naming.gossip_interval",
                "period must be positive",
            ));
        }
        if self.request_timeout <= SimDuration::ZERO {
            return Err(ConfigError::new(
                "naming.request_timeout",
                "period must be positive",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        NamingConfig::default().validate().expect("default valid");
    }

    #[test]
    fn zero_period_rejected() {
        let err = NamingConfig::default()
            .with_gossip_interval(SimDuration::ZERO)
            .validate()
            .expect_err("must reject");
        assert_eq!(err.field, "naming.gossip_interval");
    }

    #[test]
    fn setters_chain() {
        let cfg = NamingConfig::default()
            .with_request_timeout(SimDuration::from_millis(250))
            .with_push_callbacks(false);
        cfg.validate().expect("valid");
        assert!(!cfg.push_callbacks);
    }
}
