//! The mapping database: view-to-view mappings plus the partial order of
//! views, with reconciliation (merge) and ancestor garbage collection.
//!
//! This is the data structure of paper §5.2: for each LWG it stores the
//! mappings of *specific LWG views* onto *specific HWG views*, so that
//! concurrent views created in different partitions can coexist (Table 3)
//! until the reconciliation procedure collapses them (Table 4).

use crate::id::LwgId;
use plwg_hwg::{HwgId, ViewId};
use plwg_sim::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One view-to-view mapping: an LWG view mapped onto an HWG view.
///
/// The derived ordering gives reconciliation a deterministic tie-break
/// when two replicas hold different refreshes of the same LWG view (see
/// [`MappingDb::merge`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Mapping {
    /// The LWG view being mapped.
    pub lwg_view: ViewId,
    /// Members of that LWG view (the targets of MULTIPLE-MAPPINGS
    /// callbacks).
    pub members: Vec<NodeId>,
    /// The HWG the view is mapped onto.
    pub hwg: HwgId,
    /// The specific HWG view backing it.
    pub hwg_view: ViewId,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct LwgEntry {
    /// Non-obsolete mappings, keyed by LWG view id.
    current: BTreeMap<ViewId, Mapping>,
    /// Known predecessor edges of LWG views (the partial order used for
    /// garbage collection).
    preds: BTreeMap<ViewId, Vec<ViewId>>,
    /// Views explicitly dissolved via `unset`. Tombstones win over
    /// presence during gossip merges, otherwise a peer that has not yet
    /// heard of the deletion would resurrect the mapping.
    tombstones: BTreeSet<ViewId>,
}

impl LwgEntry {
    /// Whether `a` is a strict ancestor of `b` in the view partial order.
    fn is_ancestor(&self, a: ViewId, b: ViewId) -> bool {
        if a == b {
            return false;
        }
        let mut queue: VecDeque<ViewId> = VecDeque::new();
        let mut seen: BTreeSet<ViewId> = BTreeSet::new();
        queue.push_back(b);
        while let Some(v) = queue.pop_front() {
            if let Some(preds) = self.preds.get(&v) {
                for &p in preds {
                    if p == a {
                        return true;
                    }
                    if seen.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        false
    }

    /// Removes every current mapping whose view is an ancestor of another
    /// current view — it has been superseded. Tombstoned (dissolved) views
    /// supersede their ancestors too: a view that flowed into a later view
    /// is obsolete even if that later view has since dissolved. (Without
    /// this, replicas that saw the dissolution in different orders would
    /// not converge.)
    fn gc(&mut self) {
        let views: Vec<ViewId> = self.current.keys().copied().collect();
        let successors: Vec<ViewId> = views
            .iter()
            .chain(self.tombstones.iter())
            .copied()
            .collect();
        let obsolete: Vec<ViewId> = views
            .iter()
            .copied()
            .filter(|&v| successors.iter().any(|&other| self.is_ancestor(v, other)))
            .collect();
        for v in obsolete {
            self.current.remove(&v);
        }
    }
}

/// The naming database of one server (or a merged snapshot).
///
/// ```
/// use plwg_naming::{LwgId, Mapping, MappingDb};
/// use plwg_hwg::{HwgId, ViewId};
/// use plwg_sim::NodeId;
///
/// let mut db = MappingDb::new();
/// let v1 = ViewId::new(NodeId(0), 1);
/// db.set(LwgId(7), Mapping {
///     lwg_view: v1,
///     members: vec![NodeId(0)],
///     hwg: HwgId(1),
///     hwg_view: v1,
/// }, &[]);
/// // A successor view supersedes (and garbage-collects) its ancestor.
/// let v2 = ViewId::new(NodeId(0), 2);
/// db.set(LwgId(7), Mapping {
///     lwg_view: v2,
///     members: vec![NodeId(0), NodeId(1)],
///     hwg: HwgId(1),
///     hwg_view: v2,
/// }, &[v1]);
/// assert_eq!(db.read(LwgId(7)).len(), 1);
/// assert_eq!(db.read(LwgId(7))[0].lwg_view, v2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MappingDb {
    entries: BTreeMap<LwgId, LwgEntry>,
    /// LWGs whose entry currently holds more than one concurrent mapping,
    /// maintained incrementally by every mutation. `inconsistent()` used
    /// to scan all entries — O(L) per naming *write*, because the server
    /// re-notifies callbacks after each one — which made registering L
    /// groups O(L²). Not serialised: the codec rebuilds it on decode.
    multi: BTreeSet<LwgId>,
}

impl MappingDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or overwrites) the mapping of `mapping.lwg_view` and
    /// records that view's `predecessors`, then garbage-collects mappings
    /// of views that became ancestors of a mapped view.
    ///
    /// Overwriting the same LWG view (e.g. with a fresh HWG view after the
    /// HWG merged) is the paper's Table 4 stage 2.
    pub fn set(&mut self, lwg: LwgId, mapping: Mapping, predecessors: &[ViewId]) {
        let entry = self.entries.entry(lwg).or_default();
        // The lineage information is recorded unconditionally — even for a
        // dissolved view it is true, and the garbage collector needs it.
        let e = entry.preds.entry(mapping.lwg_view).or_default();
        e.extend(predecessors.iter().copied());
        e.sort_unstable();
        e.dedup();
        if !entry.tombstones.contains(&mapping.lwg_view) {
            entry.current.insert(mapping.lwg_view, mapping);
        }
        entry.gc();
        self.resync(lwg);
    }

    /// Re-derives `lwg`'s membership in the inconsistency index after its
    /// entry was mutated.
    fn resync(&mut self, lwg: LwgId) {
        let multi = self.entries.get(&lwg).is_some_and(|e| e.current.len() > 1);
        if multi {
            self.multi.insert(lwg);
        } else {
            self.multi.remove(&lwg);
        }
    }

    /// The current (non-obsolete) mappings for `lwg`, in view-id order.
    pub fn read(&self, lwg: LwgId) -> Vec<Mapping> {
        self.entries
            .get(&lwg)
            .map(|e| e.current.values().cloned().collect())
            .unwrap_or_default()
    }

    /// Test-and-set (paper Table 2): if any current mapping exists, returns
    /// it unchanged; otherwise installs `mapping` and returns it.
    pub fn testset(
        &mut self,
        lwg: LwgId,
        mapping: Mapping,
        predecessors: &[ViewId],
    ) -> Vec<Mapping> {
        let existing = self.read(lwg);
        if existing.is_empty() {
            self.set(lwg, mapping, predecessors);
            self.read(lwg)
        } else {
            existing
        }
    }

    /// Removes the mapping of a specific LWG view (the group view
    /// dissolved without a successor — e.g. every member left).
    pub fn unset(&mut self, lwg: LwgId, lwg_view: ViewId) {
        let entry = self.entries.entry(lwg).or_default();
        entry.current.remove(&lwg_view);
        entry.tombstones.insert(lwg_view);
        self.resync(lwg);
    }

    /// Merges `other` into `self` (set-union of mappings and of the view
    /// order, then GC) — the reconciliation procedure run when name servers
    /// meet after a partition heals. Returns the ids of LWGs whose entry
    /// changed.
    pub fn merge(&mut self, other: &MappingDb) -> Vec<LwgId> {
        let mut changed = Vec::new();
        for (&lwg, oe) in &other.entries {
            let entry = self.entries.entry(lwg).or_default();
            let before = entry.clone();
            for (&v, preds) in &oe.preds {
                let e = entry.preds.entry(v).or_default();
                e.extend(preds.iter().copied());
                e.sort_unstable();
                e.dedup();
            }
            for v in &oe.tombstones {
                entry.tombstones.insert(*v);
                entry.current.remove(v);
            }
            for (&v, m) in &oe.current {
                if entry.tombstones.contains(&v) {
                    continue;
                }
                // Same LWG view known on both sides, possibly with
                // different refreshes (e.g. the HWG view advanced on one
                // side): keep the greater one — any total order makes the
                // replicas converge, and a live coordinator re-refreshes
                // the mapping anyway.
                match entry.current.get(&v) {
                    Some(existing) if existing >= m => {}
                    _ => {
                        entry.current.insert(v, m.clone());
                    }
                }
            }
            entry.gc();
            if *entry != before {
                changed.push(lwg);
            }
            self.resync(lwg);
        }
        changed
    }

    /// LWGs that currently have more than one concurrent mapping — the
    /// condition that triggers MULTIPLE-MAPPINGS callbacks (paper §6.1).
    /// Served from the maintained index, in the same ascending id order
    /// the historical full scan produced.
    pub fn inconsistent(&self) -> Vec<LwgId> {
        self.multi.iter().copied().collect()
    }

    /// All LWGs with at least one current mapping.
    pub fn lwgs(&self) -> Vec<LwgId> {
        self.entries
            .iter()
            .filter(|(_, e)| !e.current.is_empty())
            .map(|(&l, _)| l)
            .collect()
    }

    /// Number of current mappings across all LWGs.
    pub fn len(&self) -> usize {
        self.entries.values().map(|e| e.current.len()).sum()
    }

    /// Whether no mapping is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compacts bookkeeping state: drops lineage edges of views that are
    /// not reachable (walking predecessors) from any current or tombstoned
    /// view, and entries with neither mappings nor tombstones. Safe to run
    /// at any time — the reachable part of the partial order, which is all
    /// the garbage collector ever consults, is preserved.
    ///
    /// Returns the number of edges entries removed.
    pub fn compact(&mut self) -> usize {
        let mut removed = 0;
        self.entries.retain(|_, entry| {
            // Reachable = current ∪ tombstones, closed under predecessors.
            let mut reachable: BTreeSet<ViewId> = entry
                .current
                .keys()
                .chain(entry.tombstones.iter())
                .copied()
                .collect();
            let mut frontier: Vec<ViewId> = reachable.iter().copied().collect();
            while let Some(v) = frontier.pop() {
                if let Some(preds) = entry.preds.get(&v) {
                    for &p in preds {
                        if reachable.insert(p) {
                            frontier.push(p);
                        }
                    }
                }
            }
            let before = entry.preds.len();
            entry.preds.retain(|v, _| reachable.contains(v));
            removed += before - entry.preds.len();
            !entry.current.is_empty() || !entry.tombstones.is_empty()
        });
        removed
    }
}

// --- wire codec -----------------------------------------------------------
//
// Lives here rather than in `wire.rs` because the entry fields are private:
// the snapshot format is exactly the in-memory structure, so a decoded
// gossip frame compares equal (`PartialEq`) to the snapshot that was sent.

use plwg_sim::{Decode, Encode, Reader, WireError};

impl Encode for LwgEntry {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.current.encode_into(out);
        self.preds.encode_into(out);
        self.tombstones.encode_into(out);
    }
}

impl Decode for LwgEntry {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut entry = LwgEntry {
            current: Decode::decode_from(r)?,
            preds: Decode::decode_from(r)?,
            tombstones: Decode::decode_from(r)?,
        };
        // Re-establish the invariants `set`/`unset`/`merge` maintain, so a
        // corrupt (or merely stale) snapshot cannot resurrect a dissolved
        // view or keep a superseded mapping alive.
        for v in &entry.tombstones {
            entry.current.remove(v);
        }
        entry.gc();
        Ok(entry)
    }
}

impl Encode for MappingDb {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.entries.encode_into(out);
    }
}

impl Decode for MappingDb {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let entries: BTreeMap<LwgId, LwgEntry> = Decode::decode_from(r)?;
        // The inconsistency index is derived state and never travels on
        // the wire; rebuild it from the decoded entries.
        let multi = entries
            .iter()
            .filter(|(_, e)| e.current.len() > 1)
            .map(|(&l, _)| l)
            .collect();
        Ok(MappingDb { entries, multi })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn vid(c: u32, s: u64) -> ViewId {
        ViewId::new(n(c), s)
    }
    fn map(lv: ViewId, hwg: u64, hv: ViewId, members: &[u32]) -> Mapping {
        Mapping {
            lwg_view: lv,
            members: members.iter().map(|&i| n(i)).collect(),
            hwg: HwgId(hwg),
            hwg_view: hv,
        }
    }

    const A: LwgId = LwgId(1);
    const B: LwgId = LwgId(2);

    #[test]
    fn set_read_roundtrip() {
        let mut db = MappingDb::new();
        let m = map(vid(0, 1), 10, vid(0, 5), &[0, 1]);
        db.set(A, m.clone(), &[]);
        assert_eq!(db.read(A), vec![m]);
        assert!(db.read(B).is_empty());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn overwrite_same_view_updates_hwg_view() {
        let mut db = MappingDb::new();
        db.set(A, map(vid(0, 1), 10, vid(0, 5), &[0, 1]), &[]);
        // HWG view advanced (e.g. the HWG merged); same LWG view re-set.
        db.set(A, map(vid(0, 1), 10, vid(0, 6), &[0, 1]), &[]);
        let got = db.read(A);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hwg_view, vid(0, 6));
    }

    #[test]
    fn testset_keeps_existing() {
        let mut db = MappingDb::new();
        let first = map(vid(0, 1), 10, vid(0, 5), &[0]);
        assert_eq!(db.testset(A, first.clone(), &[]), vec![first.clone()]);
        let second = map(vid(1, 1), 20, vid(1, 5), &[1]);
        // The existing mapping wins; the candidate is discarded.
        assert_eq!(db.testset(A, second, &[]), vec![first]);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn successor_view_garbage_collects_ancestor() {
        let mut db = MappingDb::new();
        db.set(A, map(vid(0, 1), 10, vid(0, 5), &[0, 1]), &[]);
        // A successor view (predecessor = vid(0,1)) replaces it.
        db.set(A, map(vid(0, 2), 10, vid(0, 6), &[0, 1, 2]), &[vid(0, 1)]);
        let got = db.read(A);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lwg_view, vid(0, 2));
    }

    #[test]
    fn transitive_ancestors_are_collected() {
        let mut db = MappingDb::new();
        db.set(A, map(vid(0, 1), 10, vid(0, 5), &[0]), &[]);
        db.set(A, map(vid(0, 2), 10, vid(0, 6), &[0]), &[vid(0, 1)]);
        db.set(A, map(vid(0, 3), 10, vid(0, 7), &[0]), &[vid(0, 2)]);
        let got = db.read(A);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lwg_view, vid(0, 3));
    }

    #[test]
    fn concurrent_views_coexist() {
        let mut db = MappingDb::new();
        let root = vid(0, 1);
        db.set(A, map(root, 10, vid(0, 5), &[0, 1, 2, 3]), &[]);
        // Two concurrent successors (formed in different partitions).
        db.set(A, map(vid(0, 2), 10, vid(0, 6), &[0, 1]), &[root]);
        db.set(A, map(vid(2, 1), 20, vid(2, 1), &[2, 3]), &[root]);
        let got = db.read(A);
        assert_eq!(got.len(), 2, "concurrent mappings must coexist");
        assert_eq!(db.inconsistent(), vec![A]);
    }

    /// Paper Table 3: the merged naming service holds both partitions'
    /// mappings for both LWGs.
    #[test]
    fn table3_reconciliation_keeps_both_sides() {
        // Partition p: lwg_a -> hwg1, lwg_b -> hwg2.
        let mut p = MappingDb::new();
        p.set(A, map(vid(0, 1), 1, vid(0, 1), &[0, 1]), &[]);
        p.set(B, map(vid(1, 1), 2, vid(1, 1), &[0, 1]), &[]);
        // Partition p': lwg'_a -> hwg'2, lwg'_b -> hwg'1.
        let mut q = MappingDb::new();
        q.set(A, map(vid(2, 1), 2, vid(2, 1), &[2, 3]), &[]);
        q.set(B, map(vid(3, 1), 1, vid(3, 1), &[2, 3]), &[]);

        let changed = p.merge(&q);
        assert_eq!(changed, vec![A, B]);
        assert_eq!(p.read(A).len(), 2);
        assert_eq!(p.read(B).len(), 2);
        let mut inc = p.inconsistent();
        inc.sort_unstable();
        assert_eq!(inc, vec![A, B]);
    }

    /// Paper Table 4 stage 4: once the merged LWG view is registered with
    /// both concurrent views as predecessors, the old mappings vanish.
    #[test]
    fn table4_merged_view_collapses_concurrents() {
        let mut db = MappingDb::new();
        let va = vid(0, 2);
        let vb = vid(2, 1);
        db.set(A, map(va, 1, vid(0, 6), &[0, 1]), &[]);
        db.set(A, map(vb, 2, vid(2, 1), &[2, 3]), &[]);
        assert_eq!(db.inconsistent(), vec![A]);
        // Merged view lwg''_a succeeds both.
        db.set(A, map(vid(0, 3), 1, vid(0, 7), &[0, 1, 2, 3]), &[va, vb]);
        let got = db.read(A);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lwg_view, vid(0, 3));
        assert!(db.inconsistent().is_empty());
    }

    #[test]
    fn merge_is_idempotent_and_commutative_on_content() {
        let mut a = MappingDb::new();
        a.set(A, map(vid(0, 1), 1, vid(0, 1), &[0]), &[]);
        let mut b = MappingDb::new();
        b.set(A, map(vid(1, 1), 2, vid(1, 1), &[1]), &[]);
        b.set(B, map(vid(1, 2), 3, vid(1, 2), &[1]), &[]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab2 = ab.clone();
        let changed = ab2.merge(&b);
        assert!(changed.is_empty(), "re-merge changes nothing");
        assert_eq!(ab, ab2);

        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge order does not matter");
    }

    #[test]
    fn merge_applies_gc_across_sides() {
        // Side A knows the old mapping; side B knows its successor.
        let mut a = MappingDb::new();
        a.set(A, map(vid(0, 1), 1, vid(0, 1), &[0]), &[]);
        let mut b = MappingDb::new();
        b.set(A, map(vid(0, 2), 1, vid(0, 2), &[0, 1]), &[vid(0, 1)]);
        a.merge(&b);
        let got = a.read(A);
        assert_eq!(got.len(), 1, "ancestor must be GC'd during reconcile");
        assert_eq!(got[0].lwg_view, vid(0, 2));
    }

    #[test]
    fn unset_removes_dissolved_view() {
        let mut db = MappingDb::new();
        db.set(A, map(vid(0, 1), 1, vid(0, 1), &[0]), &[]);
        db.unset(A, vid(0, 1));
        assert!(db.read(A).is_empty());
        assert!(db.is_empty());
        assert!(db.lwgs().is_empty());
    }

    /// The maintained inconsistency index must agree with a full entry
    /// scan after every kind of mutation — including a wire round-trip,
    /// where the index is rebuilt rather than transmitted.
    #[test]
    fn inconsistency_index_tracks_every_mutation() {
        let scan = |db: &MappingDb| -> Vec<LwgId> {
            db.lwgs()
                .into_iter()
                .filter(|&l| db.read(l).len() > 1)
                .collect()
        };
        let mut db = MappingDb::new();
        let root = vid(0, 1);
        db.set(A, map(root, 1, vid(0, 1), &[0]), &[]);
        assert_eq!(db.inconsistent(), scan(&db));
        // Concurrent successor: A becomes inconsistent.
        db.set(A, map(vid(2, 1), 2, vid(2, 1), &[2]), &[root]);
        db.set(A, map(vid(0, 2), 1, vid(0, 2), &[0]), &[root]);
        assert_eq!(db.inconsistent(), scan(&db));
        // Merge brings a second inconsistent group in.
        let mut other = MappingDb::new();
        other.set(B, map(vid(1, 1), 3, vid(1, 1), &[1]), &[]);
        other.set(B, map(vid(3, 1), 4, vid(3, 1), &[3]), &[]);
        db.merge(&other);
        assert_eq!(db.inconsistent(), scan(&db));
        assert_eq!(db.inconsistent(), vec![A, B]);
        // Dissolving one of A's concurrent views resolves A.
        db.unset(A, vid(2, 1));
        assert_eq!(db.inconsistent(), scan(&db));
        assert_eq!(db.inconsistent(), vec![B]);
        // A decoded snapshot rebuilds the same index.
        let mut out = Vec::new();
        db.encode_into(&mut out);
        let frame = plwg_sim::Frame::from_vec(out);
        let back = MappingDb::decode_from(&mut Reader::new(&frame)).expect("roundtrip");
        assert_eq!(back.inconsistent(), db.inconsistent());
    }
}

#[cfg(test)]
mod compact_tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn vid(c: u32, s: u64) -> ViewId {
        ViewId::new(n(c), s)
    }
    fn map(lv: ViewId, hwg: u64) -> Mapping {
        Mapping {
            lwg_view: lv,
            members: vec![n(0)],
            hwg: HwgId(hwg),
            hwg_view: lv,
        }
    }

    #[test]
    fn compact_preserves_reachable_lineage() {
        let mut db = MappingDb::new();
        let l = LwgId(1);
        db.set(l, map(vid(0, 1), 1), &[]);
        db.set(l, map(vid(0, 2), 1), &[vid(0, 1)]);
        db.set(l, map(vid(0, 3), 1), &[vid(0, 2)]);
        db.compact();
        // GC still works after compaction: a late re-arrival of an old
        // mapping must be recognised as an ancestor.
        let mut other = MappingDb::new();
        other.set(l, map(vid(0, 1), 1), &[]);
        db.merge(&other);
        let got = db.read(l);
        assert_eq!(got.len(), 1, "compaction must not forget lineage");
        assert_eq!(got[0].lwg_view, vid(0, 3));
    }

    #[test]
    fn compact_drops_unreachable_edges_and_dead_entries() {
        let mut db = MappingDb::new();
        let l = LwgId(1);
        // A mapping whose view is later superseded and dissolved entirely.
        db.set(l, map(vid(0, 1), 1), &[]);
        db.set(l, map(vid(0, 2), 1), &[vid(0, 1)]);
        db.unset(l, vid(0, 2));
        // A disconnected edge for a view that never got a mapping and is
        // not an ancestor of anything current or tombstoned.
        let dead = LwgId(2);
        db.set(dead, map(vid(1, 1), 2), &[]);
        db.unset(dead, vid(1, 1));
        assert!(db.read(l).is_empty());
        let removed = db.compact();
        // vid(0,1) stays (ancestor of the tombstoned vid(0,2)); both
        // entries survive because tombstones must persist.
        let _ = removed;
        // Re-merging the superseded mapping is still refused.
        let mut other = MappingDb::new();
        other.set(l, map(vid(0, 1), 1), &[]);
        db.merge(&other);
        assert!(db.read(l).is_empty(), "ancestor of a tombstone stays GC'd");
    }
}
