//! Typed trace events of the naming service.
//!
//! This is the naming layer's side of the workspace-wide typed event
//! model: anti-entropy reconciliation and `MULTIPLE-MAPPINGS` callbacks
//! (the two transitions that drive partition healing, paper §6.1) are
//! first-class events with causal [`EventRefs`]. Distinct from
//! [`crate::NsEvent`], which carries client-stub up-calls.

use crate::id::LwgId;
use plwg_sim::{EventRefs, NodeId, ProtocolEvent, TraceLayer};

/// One protocol transition of the naming service.
#[derive(Debug, Clone)]
pub enum NamingEvent {
    /// A server noticed concurrent mappings for a group and called back
    /// every member of every mapping (paper §6.1, `MULTIPLE-MAPPINGS`).
    MultipleMappings {
        /// The group with concurrent mappings.
        lwg: LwgId,
        /// How many concurrent mappings the replica holds.
        mappings: usize,
        /// The members being notified.
        targets: Vec<NodeId>,
    },
    /// Anti-entropy gossip changed this replica: the listed groups gained
    /// or lost mappings (paper §5.2 reconciliation).
    Reconcile {
        /// The groups whose entries changed.
        changed: Vec<LwgId>,
    },
}

impl ProtocolEvent for NamingEvent {
    fn layer(&self) -> TraceLayer {
        TraceLayer::Naming
    }

    fn kind(&self) -> &'static str {
        match self {
            NamingEvent::MultipleMappings { .. } => "ns.multiple_mappings",
            NamingEvent::Reconcile { .. } => "ns.reconcile",
        }
    }

    fn refs(&self) -> EventRefs {
        let mut refs = EventRefs::default();
        match self {
            NamingEvent::MultipleMappings { lwg, .. } => refs.lwg = Some(lwg.0),
            NamingEvent::Reconcile { changed } => refs.lwg = changed.first().map(|l| l.0),
        }
        refs
    }

    fn detail(&self) -> String {
        match self {
            NamingEvent::MultipleMappings {
                lwg,
                mappings,
                targets,
            } => format!("{lwg}: {mappings} mappings -> {targets:?}"),
            NamingEvent::Reconcile { changed } => format!("changed {changed:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_refs() {
        let e = NamingEvent::MultipleMappings {
            lwg: LwgId(5),
            mappings: 2,
            targets: vec![NodeId(1), NodeId(2)],
        };
        assert_eq!(e.kind(), "ns.multiple_mappings");
        assert_eq!(e.refs().lwg, Some(5));
        assert_eq!(e.detail(), "lwg5: 2 mappings -> [NodeId(1), NodeId(2)]");
        let r = NamingEvent::Reconcile {
            changed: vec![LwgId(7)],
        };
        assert_eq!(r.kind(), "ns.reconcile");
        assert_eq!(r.refs().lwg, Some(7));
    }
}
