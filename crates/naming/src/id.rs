//! Light-weight group identifiers.

use std::fmt;

/// Identifies a light-weight group (a *user-level* group).
///
/// Totally ordered, like [`plwg_hwg::HwgId`]; the order is used for
/// deterministic policy tie-breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LwgId(pub u64);

impl fmt::Display for LwgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lwg{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_and_displayed() {
        assert!(LwgId(1) < LwgId(2));
        assert_eq!(LwgId(5).to_string(), "lwg5");
    }
}
