//! Canonical metric keys of the naming service.

use plwg_sim::CounterKey;

/// `ns.set` requests served.
pub const SETS: CounterKey = CounterKey::new("ns.sets");
/// `ns.read` requests served.
pub const READS: CounterKey = CounterKey::new("ns.reads");
/// `ns.testset` requests served.
pub const TESTSETS: CounterKey = CounterKey::new("ns.testsets");
/// `ns.unset` requests served.
pub const UNSETS: CounterKey = CounterKey::new("ns.unsets");
/// `MULTIPLE-MAPPINGS` callbacks emitted.
pub const CALLBACKS: CounterKey = CounterKey::new("ns.callbacks");
/// Gossip rounds that changed the local replica.
pub const RECONCILIATIONS: CounterKey = CounterKey::new("ns.reconciliations");
/// Gossip messages sent.
pub const GOSSIP_SENT: CounterKey = CounterKey::new("ns.gossip_sent");
/// Lineage edges removed by periodic compaction.
pub const COMPACTED_EDGES: CounterKey = CounterKey::new("ns.compacted_edges");
/// Client-stub requests dispatched.
pub const CLIENT_REQUESTS: CounterKey = CounterKey::new("ns.client_requests");
/// Client-stub retries after a server timeout.
pub const CLIENT_RETRIES: CounterKey = CounterKey::new("ns.client_retries");
/// Incoming frames of this service's wire family that failed to decode
/// (dropped; never panicked on).
pub const DECODE_ERRORS: CounterKey = CounterKey::new("ns.decode_errors");
