//! # plwg-naming — the weakly-consistent replicated naming service
//!
//! The light-weight group service stores the association between LWGs and
//! the HWGs they are mapped onto in an external *naming service* (paper
//! §3.1, Table 2: `ns.set`, `ns.read`, `ns.testset`). For partitionable
//! operation (§5.2) the service is implemented by a set of cooperating
//! servers, placed so that each partition is likely to contain at least
//! one. Strong replica consistency is impossible across partitions, so the
//! design embraces weak consistency:
//!
//! * the database stores **view-to-view mappings** — `LwgViewId →
//!   (HwgId, HwgViewId)` — so concurrent mappings made in different
//!   partitions can *coexist* (paper Table 3);
//! * servers reconcile by anti-entropy gossip; after a heal, mappings
//!   unknown on one side are propagated and conflicting ones are kept side
//!   by side;
//! * the partial order of views (each mapping records its view's
//!   *predecessors*) lets the database garbage-collect mappings of obsolete
//!   views once a successor mapping is registered (paper Table 4, §7);
//! * when reconciliation exposes **multiple concurrent mappings** for one
//!   LWG, the server calls back the affected group members with a
//!   `MULTIPLE-MAPPINGS` notification (paper §6.1) instead of making
//!   clients poll.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod config;
mod db;
mod events;
mod id;
pub mod keys;
mod msg;
mod server;
mod wire;

pub use client::{NsClient, NsEvent, RequestId};
pub use config::NamingConfig;
pub use db::{Mapping, MappingDb};
pub use events::NamingEvent;
pub use id::LwgId;
pub use msg::NsMsg;
pub use server::NameServer;
