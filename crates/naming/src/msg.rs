//! Wire messages of the naming service.

use crate::client::RequestId;
use crate::db::{Mapping, MappingDb};
use crate::id::LwgId;
use plwg_hwg::ViewId;
use std::fmt;

/// Messages between naming clients, servers, and server peers.
///
/// The request primitives mirror paper Table 2 (`ns.set`, `ns.read`,
/// `ns.testset`), augmented for partitionable operation with view-aware
/// payloads, an explicit `Unset`, server-to-server `Gossip`, and the
/// `MultipleMappings` callback of §6.1.
#[derive(Clone)]
pub enum NsMsg {
    /// `ns.set` — register a view-to-view mapping.
    Set {
        /// Client-chosen correlation id.
        req: RequestId,
        /// The LWG concerned.
        lwg: LwgId,
        /// The mapping to install.
        mapping: Mapping,
        /// Predecessor LWG views (drives garbage collection).
        preds: Vec<ViewId>,
    },
    /// `ns.read` — fetch the current mappings.
    Read {
        /// Client-chosen correlation id.
        req: RequestId,
        /// The LWG concerned.
        lwg: LwgId,
    },
    /// `ns.testset` — install `mapping` only if no mapping exists; returns
    /// the winning mapping(s) either way.
    TestSet {
        /// Client-chosen correlation id.
        req: RequestId,
        /// The LWG concerned.
        lwg: LwgId,
        /// The candidate mapping.
        mapping: Mapping,
        /// Predecessor LWG views.
        preds: Vec<ViewId>,
    },
    /// Remove the mapping of a dissolved LWG view.
    Unset {
        /// Client-chosen correlation id.
        req: RequestId,
        /// The LWG concerned.
        lwg: LwgId,
        /// The dissolved view.
        lwg_view: ViewId,
    },
    /// Server's answer to any request: the current mappings after the
    /// operation.
    Reply {
        /// Correlation id of the request answered.
        req: RequestId,
        /// The LWG concerned.
        lwg: LwgId,
        /// Current mappings.
        mappings: Vec<Mapping>,
    },
    /// Server-initiated callback: reconciliation exposed multiple
    /// concurrent mappings for `lwg` (paper §6.1). Contains *all* stored
    /// mappings for the group.
    MultipleMappings {
        /// The LWG with conflicting mappings.
        lwg: LwgId,
        /// All current mappings.
        mappings: Vec<Mapping>,
    },
    /// Anti-entropy exchange between server peers.
    Gossip {
        /// The sender's full database snapshot.
        db: MappingDb,
    },
}

impl fmt::Debug for NsMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NsMsg::Set {
                req, lwg, mapping, ..
            } => {
                write!(
                    f,
                    "Set({req:?},{lwg},{}->{})",
                    mapping.lwg_view, mapping.hwg
                )
            }
            NsMsg::Read { req, lwg } => write!(f, "Read({req:?},{lwg})"),
            NsMsg::TestSet {
                req, lwg, mapping, ..
            } => write!(
                f,
                "TestSet({req:?},{lwg},{}->{})",
                mapping.lwg_view, mapping.hwg
            ),
            NsMsg::Unset { req, lwg, lwg_view } => {
                write!(f, "Unset({req:?},{lwg},{lwg_view})")
            }
            NsMsg::Reply { req, lwg, mappings } => {
                write!(f, "Reply({req:?},{lwg},{} mappings)", mappings.len())
            }
            NsMsg::MultipleMappings { lwg, mappings } => {
                write!(f, "MultipleMappings({lwg},{} mappings)", mappings.len())
            }
            NsMsg::Gossip { db } => write!(f, "Gossip({} mappings)", db.len()),
        }
    }
}
