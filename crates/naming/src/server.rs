//! The name-server process.
//!
//! Each server owns a [`MappingDb`] replica, answers client requests from
//! its own replica (weak consistency — paper §3.1 explicitly allows clients
//! to read outdated mappings), gossips with its peers, and emits
//! `MULTIPLE-MAPPINGS` callbacks to affected group members whenever its
//! replica holds concurrent mappings for a group.

use crate::config::NamingConfig;
use crate::db::MappingDb;
use crate::events::NamingEvent;
use crate::id::LwgId;
use crate::keys;
use crate::msg::NsMsg;
use crate::wire;
use plwg_sim::{
    decode_frame, family, peek_family, NodeId, Payload, Process, TimerToken, Transport,
    TransportExt,
};
use std::any::Any;
use std::collections::BTreeSet;

const TOK_GOSSIP: TimerToken = TimerToken(0x0200_0000_0000_0001);

/// A replicated name server (one per designated node).
pub struct NameServer {
    me: NodeId,
    peers: Vec<NodeId>,
    cfg: NamingConfig,
    db: MappingDb,
    gossip_rounds: u64,
}

impl NameServer {
    /// Creates a server; `peers` are the *other* server nodes it gossips
    /// with.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or `peers` contains `me`.
    pub fn new(me: NodeId, peers: Vec<NodeId>, cfg: NamingConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        assert!(!peers.contains(&me), "peer list must not include self");
        NameServer {
            me,
            peers,
            cfg,
            db: MappingDb::new(),
            gossip_rounds: 0,
        }
    }

    /// Read access to the replica (tests and experiment probes).
    pub fn db(&self) -> &MappingDb {
        &self.db
    }

    /// Sends `MULTIPLE-MAPPINGS` callbacks for every LWG whose entry holds
    /// concurrent mappings, to every member of every such mapping.
    ///
    /// Callbacks are re-sent on every gossip tick while the inconsistency
    /// persists: they are idempotent triggers, and repetition makes the
    /// mechanism robust to callback loss during the heal itself.
    fn notify_inconsistencies(&mut self, ctx: &mut dyn Transport) {
        if !self.cfg.push_callbacks {
            return;
        }
        for lwg in self.db.inconsistent() {
            let mappings = self.db.read(lwg);
            let targets: BTreeSet<NodeId> = mappings
                .iter()
                .flat_map(|m| m.members.iter().copied())
                .collect();
            ctx.metrics().incr(keys::CALLBACKS);
            ctx.emit(|| NamingEvent::MultipleMappings {
                lwg,
                mappings: mappings.len(),
                targets: targets.iter().copied().collect(),
            });
            // One encode per inconsistency; each target gets a refcount
            // clone of the same frame.
            let callback = wire::frame(&NsMsg::MultipleMappings { lwg, mappings });
            for t in targets {
                ctx.send(t, callback.clone());
            }
        }
    }

    fn reply(&mut self, ctx: &mut dyn Transport, to: NodeId, req: crate::RequestId, lwg: LwgId) {
        let mappings = self.db.read(lwg);
        ctx.send(to, wire::frame(&NsMsg::Reply { req, lwg, mappings }));
    }
}

impl Process for NameServer {
    fn on_start(&mut self, ctx: &mut dyn Transport) {
        ctx.set_timer(self.cfg.gossip_interval, TOK_GOSSIP);
    }

    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
        if peek_family(&msg) != Some(family::NS) {
            return;
        }
        let ns = match decode_frame::<NsMsg>(family::NS, &msg) {
            Ok(ns) => ns,
            Err(_) => {
                ctx.metrics().incr(keys::DECODE_ERRORS);
                return;
            }
        };
        match &ns {
            NsMsg::Set {
                req,
                lwg,
                mapping,
                preds,
            } => {
                ctx.metrics().incr(keys::SETS);
                self.db.set(*lwg, mapping.clone(), preds);
                self.reply(ctx, from, *req, *lwg);
                self.notify_inconsistencies(ctx);
            }
            NsMsg::Read { req, lwg } => {
                ctx.metrics().incr(keys::READS);
                self.reply(ctx, from, *req, *lwg);
            }
            NsMsg::TestSet {
                req,
                lwg,
                mapping,
                preds,
            } => {
                ctx.metrics().incr(keys::TESTSETS);
                let winners = self.db.testset(*lwg, mapping.clone(), preds);
                ctx.send(
                    from,
                    wire::frame(&NsMsg::Reply {
                        req: *req,
                        lwg: *lwg,
                        mappings: winners,
                    }),
                );
                self.notify_inconsistencies(ctx);
            }
            NsMsg::Unset { req, lwg, lwg_view } => {
                ctx.metrics().incr(keys::UNSETS);
                self.db.unset(*lwg, *lwg_view);
                self.reply(ctx, from, *req, *lwg);
            }
            NsMsg::Gossip { db } => {
                let changed = self.db.merge(db);
                if !changed.is_empty() {
                    ctx.metrics().incr(keys::RECONCILIATIONS);
                    ctx.emit(|| NamingEvent::Reconcile {
                        changed: changed.clone(),
                    });
                    self.notify_inconsistencies(ctx);
                }
            }
            NsMsg::Reply { .. } | NsMsg::MultipleMappings { .. } => {
                // Client-bound messages; a server ignores strays.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
        if token != TOK_GOSSIP {
            return;
        }
        if !self.peers.is_empty() {
            // Encode the snapshot once; every peer receives a refcount
            // clone of the same frame.
            let gossip = wire::frame(&NsMsg::Gossip {
                db: self.db.clone(),
            });
            for &p in &self.peers {
                ctx.metrics().incr(keys::GOSSIP_SENT);
                ctx.send(p, gossip.clone());
            }
        }
        // Re-notify while inconsistencies persist (robust to lost
        // callbacks around the heal).
        self.notify_inconsistencies(ctx);
        // Periodic housekeeping: drop lineage bookkeeping nothing can
        // reach any more.
        self.gossip_rounds += 1;
        if self.gossip_rounds.is_multiple_of(32) {
            let removed = self.db.compact();
            if removed > 0 {
                ctx.metrics().add(keys::COMPACTED_EDGES, removed as u64);
            }
        }
        ctx.set_timer(self.cfg.gossip_interval, TOK_GOSSIP);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for NameServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameServer")
            .field("me", &self.me)
            .field("peers", &self.peers)
            .field("mappings", &self.db.len())
            .finish_non_exhaustive()
    }
}
