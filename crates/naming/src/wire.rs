//! Wire codec for the naming-service messages (frame family `NS`).
//!
//! Every [`NsMsg`] travels as one `plwg-wire` frame: the `NS` family tag,
//! a one-byte variant tag, then the variant's fields in declaration order.
//! Gossip frames embed a full [`MappingDb`](crate::db::MappingDb) snapshot
//! (its codec lives in `db.rs`, next to the private fields it serialises).

use crate::client::RequestId;
use crate::db::Mapping;
use crate::id::LwgId;
use crate::msg::NsMsg;
use plwg_sim::{encode_frame, family, Decode, Encode, Payload, Reader, WireError};

/// Encodes `msg` as a ready-to-send simulator payload (family `NS`).
pub(crate) fn frame(msg: &NsMsg) -> Payload {
    encode_frame(family::NS, msg)
}

// Variant tags; wire-stable, append-only.
const T_SET: u8 = 0;
const T_READ: u8 = 1;
const T_TESTSET: u8 = 2;
const T_UNSET: u8 = 3;
const T_REPLY: u8 = 4;
const T_MULTIPLE_MAPPINGS: u8 = 5;
const T_GOSSIP: u8 = 6;

impl Encode for LwgId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
}

impl Decode for LwgId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LwgId(u64::decode_from(r)?))
    }
}

impl Encode for RequestId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
}

impl Decode for RequestId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RequestId(u64::decode_from(r)?))
    }
}

impl Encode for Mapping {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.lwg_view.encode_into(out);
        self.members.encode_into(out);
        self.hwg.encode_into(out);
        self.hwg_view.encode_into(out);
    }
}

impl Decode for Mapping {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Mapping {
            lwg_view: Decode::decode_from(r)?,
            members: Decode::decode_from(r)?,
            hwg: Decode::decode_from(r)?,
            hwg_view: Decode::decode_from(r)?,
        })
    }
}

impl Encode for NsMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            NsMsg::Set {
                req,
                lwg,
                mapping,
                preds,
            } => {
                out.push(T_SET);
                req.encode_into(out);
                lwg.encode_into(out);
                mapping.encode_into(out);
                preds.encode_into(out);
            }
            NsMsg::Read { req, lwg } => {
                out.push(T_READ);
                req.encode_into(out);
                lwg.encode_into(out);
            }
            NsMsg::TestSet {
                req,
                lwg,
                mapping,
                preds,
            } => {
                out.push(T_TESTSET);
                req.encode_into(out);
                lwg.encode_into(out);
                mapping.encode_into(out);
                preds.encode_into(out);
            }
            NsMsg::Unset { req, lwg, lwg_view } => {
                out.push(T_UNSET);
                req.encode_into(out);
                lwg.encode_into(out);
                lwg_view.encode_into(out);
            }
            NsMsg::Reply { req, lwg, mappings } => {
                out.push(T_REPLY);
                req.encode_into(out);
                lwg.encode_into(out);
                mappings.encode_into(out);
            }
            NsMsg::MultipleMappings { lwg, mappings } => {
                out.push(T_MULTIPLE_MAPPINGS);
                lwg.encode_into(out);
                mappings.encode_into(out);
            }
            NsMsg::Gossip { db } => {
                out.push(T_GOSSIP);
                db.encode_into(out);
            }
        }
    }
}

impl Decode for NsMsg {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            T_SET => Ok(NsMsg::Set {
                req: Decode::decode_from(r)?,
                lwg: Decode::decode_from(r)?,
                mapping: Decode::decode_from(r)?,
                preds: Decode::decode_from(r)?,
            }),
            T_READ => Ok(NsMsg::Read {
                req: Decode::decode_from(r)?,
                lwg: Decode::decode_from(r)?,
            }),
            T_TESTSET => Ok(NsMsg::TestSet {
                req: Decode::decode_from(r)?,
                lwg: Decode::decode_from(r)?,
                mapping: Decode::decode_from(r)?,
                preds: Decode::decode_from(r)?,
            }),
            T_UNSET => Ok(NsMsg::Unset {
                req: Decode::decode_from(r)?,
                lwg: Decode::decode_from(r)?,
                lwg_view: Decode::decode_from(r)?,
            }),
            T_REPLY => Ok(NsMsg::Reply {
                req: Decode::decode_from(r)?,
                lwg: Decode::decode_from(r)?,
                mappings: Decode::decode_from(r)?,
            }),
            T_MULTIPLE_MAPPINGS => Ok(NsMsg::MultipleMappings {
                lwg: Decode::decode_from(r)?,
                mappings: Decode::decode_from(r)?,
            }),
            T_GOSSIP => Ok(NsMsg::Gossip {
                db: Decode::decode_from(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "NsMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::MappingDb;
    use plwg_hwg::{HwgId, ViewId};
    use plwg_sim::{decode_frame, peek_family, Frame, NodeId};

    fn mapping(seq: u64) -> Mapping {
        Mapping {
            lwg_view: ViewId::new(NodeId(0), seq),
            members: vec![NodeId(0), NodeId(1)],
            hwg: HwgId(9),
            hwg_view: ViewId::new(NodeId(1), seq),
        }
    }

    fn roundtrip(msg: &NsMsg) -> NsMsg {
        let f = frame(msg);
        assert_eq!(peek_family(&f), Some(family::NS));
        decode_frame::<NsMsg>(family::NS, &f).expect("decode")
    }

    #[test]
    fn every_variant_roundtrips() {
        let mut db = MappingDb::new();
        db.set(LwgId(4), mapping(1), &[]);
        db.set(LwgId(4), mapping(2), &[ViewId::new(NodeId(0), 1)]);
        db.unset(LwgId(5), ViewId::new(NodeId(2), 3));
        let msgs = [
            NsMsg::Set {
                req: RequestId(7),
                lwg: LwgId(4),
                mapping: mapping(1),
                preds: vec![ViewId::new(NodeId(0), 1)],
            },
            NsMsg::Read {
                req: RequestId(8),
                lwg: LwgId(4),
            },
            NsMsg::TestSet {
                req: RequestId(9),
                lwg: LwgId(4),
                mapping: mapping(2),
                preds: vec![],
            },
            NsMsg::Unset {
                req: RequestId(10),
                lwg: LwgId(4),
                lwg_view: ViewId::new(NodeId(0), 2),
            },
            NsMsg::Reply {
                req: RequestId(7),
                lwg: LwgId(4),
                mappings: vec![mapping(1), mapping(2)],
            },
            NsMsg::MultipleMappings {
                lwg: LwgId(4),
                mappings: vec![mapping(1), mapping(2)],
            },
            NsMsg::Gossip { db },
        ];
        for msg in &msgs {
            assert_eq!(format!("{:?}", roundtrip(msg)), format!("{msg:?}"));
        }
    }

    #[test]
    fn gossip_snapshot_roundtrips_exactly() {
        let mut db = MappingDb::new();
        db.set(LwgId(1), mapping(1), &[]);
        db.set(LwgId(1), mapping(2), &[ViewId::new(NodeId(0), 1)]);
        db.set(LwgId(2), mapping(5), &[]);
        db.unset(LwgId(2), ViewId::new(NodeId(0), 5));
        let NsMsg::Gossip { db: got } = roundtrip(&NsMsg::Gossip { db: db.clone() }) else {
            panic!("wrong variant");
        };
        assert_eq!(got, db, "snapshot must survive the wire bit-for-bit");
    }

    #[test]
    fn bad_variant_tag_is_rejected() {
        let f = Frame::from_vec(vec![family::NS as u8, 99]);
        assert_eq!(
            decode_frame::<NsMsg>(family::NS, &f).err(),
            Some(WireError::BadTag {
                what: "NsMsg",
                tag: 99,
            })
        );
    }
}
