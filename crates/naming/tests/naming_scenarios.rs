//! Naming-service scenarios over the simulator: request failover,
//! cross-partition divergence, reconciliation, and callbacks.

use plwg_hwg::{HwgId, ViewId};
use plwg_naming::{LwgId, Mapping, NameServer, NamingConfig, NsClient, NsEvent, RequestId};
use plwg_sim::{
    NodeId, Payload, Process, SimDuration, SimTime, TimerToken, Transport, World, WorldConfig,
};
use std::any::Any;

/// A bare client node: records replies and callbacks.
struct ClientApp {
    ns: NsClient,
    replies: Vec<(RequestId, LwgId, Vec<Mapping>)>,
    callbacks: Vec<(LwgId, Vec<Mapping>)>,
}

impl ClientApp {
    fn new(me: NodeId, servers: Vec<NodeId>) -> Self {
        ClientApp {
            ns: NsClient::new(me, servers, NamingConfig::default()),
            replies: Vec::new(),
            callbacks: Vec::new(),
        }
    }
    fn drain(&mut self) {
        for ev in self.ns.drain_events() {
            match ev {
                NsEvent::Reply { req, lwg, mappings } => self.replies.push((req, lwg, mappings)),
                NsEvent::MultipleMappings { lwg, mappings } => self.callbacks.push((lwg, mappings)),
            }
        }
    }
}

impl Process for ClientApp {
    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
        if self.ns.on_message(ctx, from, &msg) {
            self.drain();
        }
    }
    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
        if self.ns.on_timer(ctx, token) {
            self.drain();
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const A: LwgId = LwgId(1);

fn vid(c: u32, s: u64) -> ViewId {
    ViewId::new(NodeId(c), s)
}

fn mapping(lv: ViewId, hwg: u64, members: &[NodeId]) -> Mapping {
    Mapping {
        lwg_view: lv,
        members: members.to_vec(),
        hwg: HwgId(hwg),
        hwg_view: lv,
    }
}

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

/// Two servers (n0, n1) and two clients (n2, n3).
fn setup(seed: u64) -> (World, Vec<NodeId>, Vec<NodeId>) {
    let mut w = World::new(WorldConfig {
        seed,
        trace: true,
        ..WorldConfig::default()
    });
    let s0 = w.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = w.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let servers = vec![s0, s1];
    let c2 = w.add_node(Box::new(ClientApp::new(NodeId(2), servers.clone())));
    let c3 = w.add_node(Box::new(ClientApp::new(NodeId(3), servers.clone())));
    (w, servers, vec![c2, c3])
}

#[test]
fn set_then_read_roundtrip() {
    let (mut w, _servers, clients) = setup(1);
    let m = mapping(vid(2, 1), 7, &[NodeId(2)]);
    w.invoke(clients[0], {
        let m = m.clone();
        move |c: &mut ClientApp, ctx| {
            c.ns.set(ctx, A, m, vec![]);
        }
    });
    w.run_for(SimDuration::from_secs(2));
    w.invoke(clients[1], |c: &mut ClientApp, ctx| {
        c.ns.read(ctx, A);
    });
    w.run_for(SimDuration::from_secs(2));
    w.inspect(clients[1], |c: &ClientApp| {
        let (_, lwg, mappings) = c.replies.last().expect("read reply");
        assert_eq!(*lwg, A);
        assert_eq!(mappings, &vec![m]);
    });
}

#[test]
fn gossip_replicates_between_servers() {
    let (mut w, servers, clients) = setup(2);
    // Client 2's home server is n0 (2 % 2 = 0). Write there, then check n1.
    w.invoke(clients[0], |c: &mut ClientApp, ctx| {
        c.ns.set(ctx, A, mapping(vid(2, 1), 7, &[NodeId(2)]), vec![]);
    });
    w.run_for(SimDuration::from_secs(3));
    w.inspect(servers[1], |s: &NameServer| {
        assert_eq!(s.db().read(A).len(), 1, "gossip must replicate the set");
    });
}

#[test]
fn client_fails_over_when_home_server_is_down() {
    let (mut w, servers, clients) = setup(3);
    w.crash(servers[0]); // client 2's home server
    w.invoke(clients[0], |c: &mut ClientApp, ctx| {
        c.ns.read(ctx, A);
    });
    w.run_for(SimDuration::from_secs(3));
    w.inspect(clients[0], |c: &ClientApp| {
        assert_eq!(c.replies.len(), 1, "retry must reach the other server");
        assert_eq!(c.ns.pending_requests(), 0);
    });
    assert!(w.metrics().counter("ns.client_retries") >= 1);
}

/// The full §5.2/§6.1 flow: divergent writes in two partitions, heal,
/// reconciliation keeps both mappings and fires MULTIPLE-MAPPINGS at every
/// member of every conflicting view.
#[test]
fn partition_divergence_reconciles_with_callbacks() {
    let (mut w, servers, clients) = setup(4);
    // Partition: {s0, c2} | {s1, c3}.
    w.split_at(
        at(1),
        vec![vec![servers[0], clients[0]], vec![servers[1], clients[1]]],
    );
    // Each side maps LWG A onto a *different* HWG (concurrent views).
    w.invoke_at(at(2), clients[0], |c: &mut ClientApp, ctx| {
        c.ns.set(ctx, A, mapping(vid(2, 1), 7, &[NodeId(2)]), vec![]);
    });
    w.invoke_at(at(2), clients[1], |c: &mut ClientApp, ctx| {
        c.ns.set(ctx, A, mapping(vid(3, 1), 9, &[NodeId(3)]), vec![]);
    });
    w.run_until(at(6));
    // While partitioned: each server has exactly its side's mapping.
    w.inspect(servers[0], |s: &NameServer| {
        let got = s.db().read(A);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hwg, HwgId(7));
    });
    w.inspect(servers[1], |s: &NameServer| {
        let got = s.db().read(A);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hwg, HwgId(9));
    });

    w.heal_at(at(6));
    w.run_until(at(12));
    // Reconciliation: both servers hold both mappings (paper Table 3).
    for &s in &servers {
        w.inspect(s, |s: &NameServer| {
            assert_eq!(s.db().read(A).len(), 2, "both mappings coexist");
            assert_eq!(s.db().inconsistent(), vec![A]);
        });
    }
    // Both members got the callback.
    for &c in &clients {
        w.inspect(c, |c: &ClientApp| {
            assert!(
                !c.callbacks.is_empty(),
                "member must receive MULTIPLE-MAPPINGS"
            );
            let (lwg, mappings) = &c.callbacks[0];
            assert_eq!(*lwg, A);
            assert_eq!(mappings.len(), 2);
        });
    }
    assert!(w.metrics().counter("ns.reconciliations") >= 1);
}

/// After the conflict is resolved by registering a merged successor view,
/// callbacks stop and the database collapses to one mapping (Table 4).
#[test]
fn merged_view_registration_clears_inconsistency() {
    let (mut w, servers, clients) = setup(5);
    w.split_at(
        at(1),
        vec![vec![servers[0], clients[0]], vec![servers[1], clients[1]]],
    );
    w.invoke_at(at(2), clients[0], |c: &mut ClientApp, ctx| {
        c.ns.set(ctx, A, mapping(vid(2, 1), 7, &[NodeId(2)]), vec![]);
    });
    w.invoke_at(at(2), clients[1], |c: &mut ClientApp, ctx| {
        c.ns.set(ctx, A, mapping(vid(3, 1), 9, &[NodeId(3)]), vec![]);
    });
    w.heal_at(at(4));
    w.run_until(at(8));
    // Register the merged view succeeding both concurrent views.
    w.invoke(clients[0], |c: &mut ClientApp, ctx| {
        c.ns.set(
            ctx,
            A,
            mapping(vid(2, 2), 9, &[NodeId(2), NodeId(3)]),
            vec![vid(2, 1), vid(3, 1)],
        );
    });
    w.run_for(SimDuration::from_secs(4));
    for &s in &servers {
        w.inspect(s, |s: &NameServer| {
            let got = s.db().read(A);
            assert_eq!(got.len(), 1, "merged mapping replaces predecessors");
            assert_eq!(got[0].lwg_view, vid(2, 2));
            assert!(s.db().inconsistent().is_empty());
        });
    }
}

#[test]
fn testset_race_across_partition_is_kept_not_lost() {
    let (mut w, servers, clients) = setup(6);
    w.split_at(
        at(1),
        vec![vec![servers[0], clients[0]], vec![servers[1], clients[1]]],
    );
    // Both sides testset concurrently; within each partition the claim
    // succeeds (no competing mapping visible).
    w.invoke_at(at(2), clients[0], |c: &mut ClientApp, ctx| {
        c.ns.testset(ctx, A, mapping(vid(2, 1), 7, &[NodeId(2)]), vec![]);
    });
    w.invoke_at(at(2), clients[1], |c: &mut ClientApp, ctx| {
        c.ns.testset(ctx, A, mapping(vid(3, 1), 9, &[NodeId(3)]), vec![]);
    });
    w.run_until(at(5));
    for (i, &c) in clients.iter().enumerate() {
        w.inspect(c, |c: &ClientApp| {
            let (_, _, mappings) = c.replies.last().expect("testset reply");
            assert_eq!(mappings.len(), 1, "client {i} wins in its partition");
        });
    }
    // Healing surfaces the conflict rather than silently dropping a side.
    w.heal_at(at(5));
    w.run_until(at(10));
    w.inspect(servers[0], |s: &NameServer| {
        assert_eq!(s.db().read(A).len(), 2);
    });
}

#[test]
fn testset_within_partition_returns_existing_claim() {
    let (mut w, _servers, clients) = setup(7);
    w.invoke(clients[0], |c: &mut ClientApp, ctx| {
        c.ns.testset(ctx, A, mapping(vid(2, 1), 7, &[NodeId(2)]), vec![]);
    });
    w.run_for(SimDuration::from_secs(3));
    // Second claimant reads the first one's mapping back (same home server
    // after gossip).
    w.invoke(clients[1], |c: &mut ClientApp, ctx| {
        c.ns.testset(ctx, A, mapping(vid(3, 1), 9, &[NodeId(3)]), vec![]);
    });
    w.run_for(SimDuration::from_secs(2));
    w.inspect(clients[1], |c: &ClientApp| {
        let (_, _, mappings) = c.replies.last().expect("reply");
        assert_eq!(mappings.len(), 1);
        assert_eq!(mappings[0].hwg, HwgId(7), "existing claim wins");
    });
}

#[test]
fn unset_removes_mapping_everywhere() {
    let (mut w, servers, clients) = setup(8);
    w.invoke(clients[0], |c: &mut ClientApp, ctx| {
        c.ns.set(ctx, A, mapping(vid(2, 1), 7, &[NodeId(2)]), vec![]);
    });
    w.run_for(SimDuration::from_secs(2));
    w.invoke(clients[0], |c: &mut ClientApp, ctx| {
        c.ns.unset(ctx, A, vid(2, 1));
    });
    w.run_for(SimDuration::from_secs(1));
    w.inspect(servers[0], |s: &NameServer| {
        assert!(s.db().read(A).is_empty());
    });
    // Note: gossip union semantics mean a removed mapping can be
    // resurrected by a peer that still holds it; the LWG layer tolerates
    // this by re-running reconciliation (see plwg-core). Here we only
    // assert the serving replica honoured the unset.
}

/// A server that was down while the system moved on catches up entirely
/// from its peer's gossip after restarting (its replica is stable state).
#[test]
fn restarted_server_catches_up_via_gossip() {
    let (mut w, servers, clients) = setup(9);
    w.invoke(clients[0], |c: &mut ClientApp, ctx| {
        c.ns.set(ctx, A, mapping(vid(2, 1), 7, &[NodeId(2)]), vec![]);
    });
    w.run_for(SimDuration::from_secs(2));
    // Server 1 goes down; the mapping is superseded meanwhile.
    w.crash(servers[1]);
    w.invoke(clients[0], |c: &mut ClientApp, ctx| {
        c.ns.set(
            ctx,
            A,
            mapping(vid(2, 2), 9, &[NodeId(2), NodeId(3)]),
            vec![vid(2, 1)],
        );
    });
    w.run_for(SimDuration::from_secs(2));
    w.restart(servers[1]);
    w.run_for(SimDuration::from_secs(3));
    w.inspect(servers[1], |s: &NameServer| {
        let got = s.db().read(A);
        assert_eq!(got.len(), 1, "catch-up must deliver the successor");
        assert_eq!(got[0].lwg_view, vid(2, 2));
        assert_eq!(got[0].hwg, HwgId(9));
    });
}
