//! Randomised property tests for the mapping database: reconciliation is a
//! proper join (commutative, idempotent), tombstones win, and garbage
//! collection only ever removes true ancestors. Cases come from a seeded
//! in-tree RNG so every run is deterministic.

use plwg_hwg::{HwgId, ViewId};
use plwg_naming::{LwgId, Mapping, MappingDb};
use plwg_sim::{NodeId, SimRng};

const CASES: u64 = 300;

/// A small operation language over the database.
#[derive(Debug, Clone)]
enum Op {
    /// Register mapping of view `v` with predecessors chosen among earlier
    /// view indices.
    Set {
        lwg: u8,
        v: u8,
        preds: Vec<u8>,
        hwg: u8,
    },
    /// Dissolve view `v`.
    Unset { lwg: u8, v: u8 },
}

fn vid(i: u8) -> ViewId {
    // Deterministic distinct view ids: coordinator = i % 4, seq = i.
    ViewId::new(NodeId(u32::from(i % 4)), u64::from(i))
}

fn mapping(v: u8, hwg: u8) -> Mapping {
    Mapping {
        lwg_view: vid(v),
        members: vec![NodeId(u32::from(v % 4))],
        hwg: HwgId(u64::from(hwg)),
        hwg_view: vid(v),
    }
}

fn apply(db: &mut MappingDb, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Set { lwg, v, preds, hwg } => {
                let preds: Vec<ViewId> = preds.iter().map(|&p| vid(p)).collect();
                db.set(LwgId(u64::from(*lwg)), mapping(*v, *hwg), &preds);
            }
            Op::Unset { lwg, v } => db.unset(LwgId(u64::from(*lwg)), vid(*v)),
        }
    }
}

fn random_op(rng: &mut SimRng) -> Op {
    if rng.chance(0.5) {
        let v = rng.range(1, 16) as u8;
        let pred_count = rng.range(0, 3);
        Op::Set {
            lwg: rng.range(0, 3) as u8,
            v,
            // Predecessors are causally earlier views: real view lineages
            // are acyclic by construction, so the generator only points
            // "backwards".
            preds: (0..pred_count)
                .map(|_| rng.range(0, 16) as u8 % v)
                .collect(),
            hwg: rng.range(0, 4) as u8,
        }
    } else {
        Op::Unset {
            lwg: rng.range(0, 3) as u8,
            v: rng.range(0, 16) as u8,
        }
    }
}

fn random_ops(rng: &mut SimRng, max: u64) -> Vec<Op> {
    let count = rng.range(0, max);
    (0..count).map(|_| random_op(rng)).collect()
}

/// merge(a, b) == merge(b, a): the replicas converge regardless of gossip
/// direction.
#[test]
fn merge_is_commutative() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0xDB_1100 ^ case);
        let mut a = MappingDb::new();
        apply(&mut a, &random_ops(&mut rng, 25));
        let mut b = MappingDb::new();
        apply(&mut b, &random_ops(&mut rng, 25));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "case {case}");
    }
}

/// Merging the same replica again changes nothing (anti-entropy can repeat
/// safely).
#[test]
fn merge_is_idempotent() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0xDB_2200 ^ case);
        let mut a = MappingDb::new();
        apply(&mut a, &random_ops(&mut rng, 25));
        let mut b = MappingDb::new();
        apply(&mut b, &random_ops(&mut rng, 25));
        a.merge(&b);
        let snapshot = a.clone();
        let changed = a.merge(&b);
        assert!(changed.is_empty(), "case {case}");
        assert_eq!(a, snapshot, "case {case}");
    }
}

/// Three-replica convergence: merging in any grouping yields the same
/// database (associativity up to state).
#[test]
fn merge_converges_three_ways() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0xDB_3300 ^ case);
        let mut a = MappingDb::new();
        apply(&mut a, &random_ops(&mut rng, 15));
        let mut b = MappingDb::new();
        apply(&mut b, &random_ops(&mut rng, 15));
        let mut c = MappingDb::new();
        apply(&mut c, &random_ops(&mut rng, 15));

        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, cba, "case {case}");
    }
}

/// A dissolved view never reappears, no matter what is merged in.
#[test]
fn tombstones_are_permanent() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0xDB_4400 ^ case);
        let ops = random_ops(&mut rng, 25);
        let resurrect_hwg = rng.range(0, 4) as u8;
        let lwg = LwgId(1);
        let mut a = MappingDb::new();
        apply(&mut a, &ops);
        a.set(lwg, mapping(3, 0), &[]);
        a.unset(lwg, vid(3));
        // Another replica still believes in view 3.
        let mut b = MappingDb::new();
        b.set(lwg, mapping(3, resurrect_hwg), &[]);
        a.merge(&b);
        assert!(
            a.read(lwg).iter().all(|m| m.lwg_view != vid(3)),
            "case {case}: tombstoned view must not resurrect"
        );
        // Direct re-set is also refused.
        a.set(lwg, mapping(3, resurrect_hwg), &[]);
        assert!(
            a.read(lwg).iter().all(|m| m.lwg_view != vid(3)),
            "case {case}"
        );
    }
}

/// After any operation sequence, no current mapping is an ancestor of
/// another current mapping of the same LWG (GC invariant).
#[test]
fn no_current_mapping_is_an_ancestor() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0xDB_5500 ^ case);
        let ops = random_ops(&mut rng, 40);
        // Rebuild the predecessor relation from the op log to check
        // independently of the database's own bookkeeping.
        let mut db = MappingDb::new();
        apply(&mut db, &ops);
        use std::collections::{BTreeMap, BTreeSet};
        let mut preds: BTreeMap<(u8, u8), BTreeSet<u8>> = BTreeMap::new();
        for op in &ops {
            if let Op::Set {
                lwg, v, preds: p, ..
            } = op
            {
                preds
                    .entry((*lwg, *v))
                    .or_default()
                    .extend(p.iter().copied());
            }
        }
        let ancestor = |lwg: u8, a: u8, b: u8| -> bool {
            // is `a` a strict ancestor of `b`?
            let mut stack = vec![b];
            let mut seen = BTreeSet::new();
            while let Some(v) = stack.pop() {
                if let Some(ps) = preds.get(&(lwg, v)) {
                    for &p in ps {
                        if p == a {
                            return true;
                        }
                        if seen.insert(p) {
                            stack.push(p);
                        }
                    }
                }
            }
            false
        };
        for lwg in 0u8..3 {
            let current: Vec<u8> = db
                .read(LwgId(u64::from(lwg)))
                .iter()
                .map(|m| m.lwg_view.seq as u8)
                .collect();
            for &x in &current {
                for &y in &current {
                    assert!(
                        !ancestor(lwg, x, y),
                        "case {case}: view {x} is an ancestor of {y} \
                         yet both are current"
                    );
                }
            }
        }
    }
}
