// tidy-allow-file(determinism): this module is the single place the
// workspace reads the wall clock — it anchors `Instant` once and converts
// to SimTime micros; everything above it stays on protocol time.
//! Wall-clock time behind the [`Clock`] seam.
//!
//! [`WallClock`] anchors an [`Instant`] at construction and reports
//! elapsed wall time as [`SimTime`] micros-since-start — the same
//! monotone timeline the simulator's virtual clock produces, so protocol
//! deadline arithmetic (`ctx.now() + timeout`) is substrate-agnostic.

use plwg_sim::{Clock, SimTime};
use std::time::Instant;

/// A [`Clock`] that reads real elapsed time from a fixed anchor.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Starts the clock: `now()` counts from this call.
    pub fn start() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// The anchor instant (for converting foreign `Instant`s if needed).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_starts_near_zero() {
        let c = WallClock::start();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        // Two immediate reads sit well under a second from the anchor.
        assert!(a < SimTime::from_micros(1_000_000));
    }
}
