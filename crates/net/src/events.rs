//! Typed protocol events of the net runtime.
//!
//! These slot into the same [`ProtocolEvent`] trace machinery the
//! protocol layers use, under [`TraceLayer::Net`], so a run over real
//! sockets produces the same kind of evidence a simulated run does: the
//! multi-process harness collects each process's events and stitches one
//! cross-process timeline out of them.

use plwg_sim::{NodeId, ProtocolEvent, TraceLayer};

/// One transition of the net runtime's peer/connection state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// A peer answered and is now exchanging traffic.
    PeerUp {
        /// The peer that came up.
        peer: NodeId,
    },
    /// A peer went silent past the suspect timeout, or said bye.
    PeerDown {
        /// The peer that went down.
        peer: NodeId,
    },
    /// A frame for a not-up peer was dropped because its bounded send
    /// queue was full (`dropped` is the running count for that peer).
    QueueDrop {
        /// The congested peer.
        peer: NodeId,
        /// Total frames dropped towards that peer so far.
        dropped: u64,
    },
    /// The harness installed a socket-level drop filter against `peers`.
    Blocked {
        /// The peers now cut off.
        peers: Vec<NodeId>,
    },
    /// The harness lifted the drop filter for `peers`.
    Unblocked {
        /// The peers now reachable again.
        peers: Vec<NodeId>,
    },
}

impl ProtocolEvent for NetEvent {
    fn layer(&self) -> TraceLayer {
        TraceLayer::Net
    }

    fn kind(&self) -> &'static str {
        match self {
            NetEvent::PeerUp { .. } => "net.peer.up",
            NetEvent::PeerDown { .. } => "net.peer.down",
            NetEvent::QueueDrop { .. } => "net.queue.drop",
            NetEvent::Blocked { .. } => "net.ctrl.block",
            NetEvent::Unblocked { .. } => "net.ctrl.unblock",
        }
    }

    fn detail(&self) -> String {
        match self {
            NetEvent::PeerUp { peer } => format!("{peer}"),
            NetEvent::PeerDown { peer } => format!("{peer}"),
            NetEvent::QueueDrop { peer, dropped } => {
                format!("{peer} total={dropped}")
            }
            NetEvent::Blocked { peers } => format!("{peers:?}"),
            NetEvent::Unblocked { peers } => format!("{peers:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_layer() {
        let ev = NetEvent::PeerUp { peer: NodeId(1) };
        assert_eq!(ev.layer(), TraceLayer::Net);
        assert_eq!(ev.kind(), "net.peer.up");
        assert_eq!(ev.detail(), "n1");
        let ev = NetEvent::QueueDrop {
            peer: NodeId(2),
            dropped: 7,
        };
        assert_eq!(ev.kind(), "net.queue.drop");
        assert_eq!(ev.detail(), "n2 total=7");
        assert!(ev.refs().is_empty());
    }
}
