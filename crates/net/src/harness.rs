//! Multi-process orchestration: spawn real OS processes, wire their
//! sockets together, inject partitions, and collect their evidence.
//!
//! The protocol is three small line formats over stdio plus one control
//! datagram, so an example or integration test can re-exec *itself* as
//! the children (never a nested `cargo run`, which deadlocks on the
//! build lock):
//!
//! * child → parent on stdout: `PORT <addr>` once after binding, then
//!   optional `MARK <word>` progress lines, then `EVT <...>` trace lines
//!   at exit (see [`format_event`]);
//! * parent → child on stdin: `PEER <id> <addr>` lines, one per process,
//!   terminated by `GO` ([`read_book`]);
//! * parent → child over UDP: [`NetMsg::Block`] / [`NetMsg::Unblock`]
//!   from the [`Controller`], installing the socket-level drop filter
//!   that stands in for a network partition.
//!
//! Trace events cross the process boundary as text and are rebuilt with
//! [`parse_event`]; the parent merges every child's events into one
//! corpus and asserts on it exactly as the simulator tests assert on a
//! `World`'s trace (e.g. "exactly one `lwg.merge` for the heal").

use crate::msg::{net_frame, pack_datagram, NetMsg};
use plwg_sim::{EventRefs, NodeId, SimTime, TraceEvent, TraceLayer};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, UdpSocket};
use std::process::{Child, ChildStdin, ChildStdout, Command, ExitStatus, Stdio};

/// The reserved node id the [`Controller`] signs its datagrams with.
pub const CONTROLLER: NodeId = NodeId(u32::MAX);

// ---------------------------------------------------------------- child side

/// Child: publishes the bound socket address to the parent (line 1 of the
/// stdout protocol).
pub fn announce(addr: SocketAddr) {
    println!("PORT {addr}");
    let _ = io::stdout().flush();
}

/// Child: publishes a progress milestone the parent can wait on.
pub fn mark(word: &str) {
    println!("MARK {word}");
    let _ = io::stdout().flush();
}

/// Child: reads the address book from stdin (`PEER <id> <addr>` lines
/// until `GO`).
pub fn read_book() -> io::Result<Vec<(NodeId, SocketAddr)>> {
    let stdin = io::stdin();
    let mut book = Vec::new();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim() == "GO" {
            return Ok(book);
        }
        if let Some(entry) = parse_book_line(&line) {
            book.push(entry);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "stdin closed before GO",
    ))
}

/// Child: dumps trace events as `EVT` lines for the parent to collect.
pub fn emit_events<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) {
    let out = io::stdout();
    let mut out = out.lock();
    for e in events {
        let _ = writeln!(out, "{}", format_event(e));
    }
    let _ = out.flush();
}

fn parse_book_line(line: &str) -> Option<(NodeId, SocketAddr)> {
    let mut it = line.split_whitespace();
    if it.next()? != "PEER" {
        return None;
    }
    let id: u32 = it.next()?.parse().ok()?;
    let addr: SocketAddr = it.next()?.parse().ok()?;
    Some((NodeId(id), addr))
}

// ------------------------------------------------------------- event format

/// Serializes a trace event as one `EVT` line (inverse of [`parse_event`]).
///
/// Causal [`EventRefs`] do not survive the trip — the cross-process
/// assertions work on kinds, times and details.
pub fn format_event(e: &TraceEvent) -> String {
    let node = match e.node {
        Some(n) => n.0.to_string(),
        None => "-".to_string(),
    };
    format!(
        "EVT {} {} {} {} {}",
        e.time.as_micros(),
        node,
        e.layer,
        e.kind,
        e.detail
    )
}

/// Parses one `EVT` line back into a [`TraceEvent`].
///
/// The kind string is interned with `Box::leak` to satisfy the
/// `&'static str` in [`TraceEvent`] — harness processes are short-lived,
/// and the leaked bytes are a handful of event names.
pub fn parse_event(line: &str) -> Option<TraceEvent> {
    let rest = line.strip_prefix("EVT ")?;
    let mut it = rest.splitn(5, ' ');
    let time = SimTime::from_micros(it.next()?.parse().ok()?);
    let node = match it.next()? {
        "-" => None,
        n => Some(NodeId(n.parse().ok()?)),
    };
    let layer = TraceLayer::from_name(it.next()?)?;
    let kind: &'static str = Box::leak(it.next()?.to_owned().into_boxed_str());
    let detail = it.next().unwrap_or("").to_owned();
    Some(TraceEvent {
        time,
        node,
        layer,
        kind,
        detail,
        refs: EventRefs::default(),
    })
}

// --------------------------------------------------------------- parent side

/// Parent: handle on one spawned child process.
pub struct ChildProc {
    /// The node the child hosts.
    pub node: NodeId,
    /// The child's bound socket address (from its `PORT` line).
    pub addr: SocketAddr,
    child: Child,
    reader: BufReader<ChildStdout>,
    stdin: Option<ChildStdin>,
}

impl ChildProc {
    /// Spawns `cmd` with piped stdio and reads its `PORT` line.
    pub fn spawn(node: NodeId, cmd: &mut Command) -> io::Result<ChildProc> {
        let mut child = cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        let stdin = child.stdin.take().expect("piped stdin");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                let _ = child.kill();
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "child exited before PORT line",
                ));
            }
            // Substring match: a test harness hosting the child may have
            // printed a `test foo ...` prefix on the same line.
            if let Some(at) = line.find("PORT ") {
                let addr = line[at + "PORT ".len()..].trim();
                let addr = addr.parse().map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad PORT line: {e}"))
                })?;
                return Ok(ChildProc {
                    node,
                    addr,
                    child,
                    reader,
                    stdin: Some(stdin),
                });
            }
        }
    }

    /// Sends the address book (then `GO`) to the child.
    pub fn send_book(&mut self, book: &[(NodeId, SocketAddr)]) -> io::Result<()> {
        let stdin = self.stdin.as_mut().expect("stdin still open");
        for (id, addr) in book {
            writeln!(stdin, "PEER {} {}", id.0, addr)?;
        }
        writeln!(stdin, "GO")?;
        stdin.flush()
    }

    /// Blocks until the child prints `MARK <word>` (EOF is an error).
    pub fn wait_mark(&mut self, word: &str) -> io::Result<()> {
        let want = format!("MARK {word}");
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("child {} exited before {want}", self.node),
                ));
            }
            if line.trim().ends_with(&want) {
                return Ok(());
            }
        }
    }

    /// Waits for the child to exit and parses its `EVT` dump.
    pub fn finish(mut self) -> io::Result<(ExitStatus, Vec<TraceEvent>)> {
        drop(self.stdin.take());
        let mut events = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                break;
            }
            if let Some(e) = parse_event(line.trim_end()) {
                events.push(e);
            }
        }
        let status = self.child.wait()?;
        Ok((status, events))
    }

    /// Kills the child (cleanup path for failed runs).
    pub fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Parent: sends every child the full address book and starts them.
pub fn share_books(children: &mut [ChildProc]) -> io::Result<()> {
    let book: Vec<(NodeId, SocketAddr)> = children.iter().map(|c| (c.node, c.addr)).collect();
    for c in children.iter_mut() {
        c.send_book(&book)?;
    }
    Ok(())
}

/// Parent: the partition injector. Owns a socket of its own and speaks
/// only [`NetMsg::Block`] / [`NetMsg::Unblock`] to the children.
pub struct Controller {
    socket: UdpSocket,
}

impl Controller {
    /// Binds the controller's socket.
    pub fn new() -> io::Result<Controller> {
        Ok(Controller {
            socket: UdpSocket::bind("127.0.0.1:0")?,
        })
    }

    /// Tells the runtime at `target` to drop traffic to/from `peers`.
    pub fn block(&self, target: SocketAddr, peers: &[NodeId]) -> io::Result<()> {
        self.ctrl(
            target,
            NetMsg::Block {
                peers: peers.to_vec(),
            },
        )
    }

    /// Lifts the drop filter at `target` for `peers`.
    pub fn unblock(&self, target: SocketAddr, peers: &[NodeId]) -> io::Result<()> {
        self.ctrl(
            target,
            NetMsg::Unblock {
                peers: peers.to_vec(),
            },
        )
    }

    /// Installs a symmetric partition between the `left` and `right`
    /// children (each side drops the other side's node ids).
    pub fn split(&self, left: &[&ChildProc], right: &[&ChildProc]) -> io::Result<()> {
        let left_ids: Vec<NodeId> = left.iter().map(|c| c.node).collect();
        let right_ids: Vec<NodeId> = right.iter().map(|c| c.node).collect();
        for c in left {
            self.block(c.addr, &right_ids)?;
        }
        for c in right {
            self.block(c.addr, &left_ids)?;
        }
        Ok(())
    }

    /// Lifts a partition previously installed with [`Controller::split`].
    pub fn heal(&self, left: &[&ChildProc], right: &[&ChildProc]) -> io::Result<()> {
        let left_ids: Vec<NodeId> = left.iter().map(|c| c.node).collect();
        let right_ids: Vec<NodeId> = right.iter().map(|c| c.node).collect();
        for c in left {
            self.unblock(c.addr, &right_ids)?;
        }
        for c in right {
            self.unblock(c.addr, &left_ids)?;
        }
        Ok(())
    }

    fn ctrl(&self, target: SocketAddr, msg: NetMsg) -> io::Result<()> {
        let dgram = pack_datagram(CONTROLLER, &[net_frame(&msg)]);
        self.socket.send_to(&dgram, target).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_line_roundtrip() {
        let e = TraceEvent {
            time: SimTime::from_micros(1_234),
            node: Some(NodeId(3)),
            layer: TraceLayer::Lwg,
            kind: "lwg.merge",
            detail: "views n2#4 + n5#3 (multi word detail)".into(),
            refs: EventRefs::default(),
        };
        let line = format_event(&e);
        let back = parse_event(&line).expect("parses");
        assert_eq!(back.time, e.time);
        assert_eq!(back.node, e.node);
        assert_eq!(back.layer, e.layer);
        assert_eq!(back.kind, e.kind);
        assert_eq!(back.detail, e.detail);
    }

    #[test]
    fn world_events_have_no_node() {
        let e = TraceEvent {
            time: SimTime::ZERO,
            node: None,
            layer: TraceLayer::Net,
            kind: "net.ctrl.block",
            detail: String::new(),
            refs: EventRefs::default(),
        };
        let back = parse_event(&format_event(&e)).expect("parses");
        assert_eq!(back.node, None);
        assert_eq!(back.detail, "");
    }

    #[test]
    fn book_lines_parse_and_reject_garbage() {
        assert_eq!(
            parse_book_line("PEER 7 127.0.0.1:9000"),
            Some((NodeId(7), "127.0.0.1:9000".parse().unwrap()))
        );
        assert_eq!(parse_book_line("GO"), None);
        assert_eq!(parse_book_line("PEER x y"), None);
        assert!(parse_event("not an event").is_none());
    }
}
