//! Canonical metric keys owned by the net runtime.
//!
//! Namespaced under `netio.*` to stay disjoint from the simulator's
//! virtual-network `net.*` keys — a process that mixes substrates (e.g.
//! the throughput bench comparing both) must not alias counters.

use plwg_sim::{CounterKey, GaugeKey};

/// Datagrams put on the wire by the runtime's socket.
pub const NETIO_DGRAM_TX: CounterKey = CounterKey::new("netio.dgram_tx");
/// Datagrams received and successfully unpacked.
pub const NETIO_DGRAM_RX: CounterKey = CounterKey::new("netio.dgram_rx");
/// Encoded datagram bytes put on the wire.
pub const NETIO_BYTES_TX: CounterKey = CounterKey::new("netio.bytes_tx");
/// Frames dropped by per-peer send-queue backpressure.
pub const NETIO_QUEUE_DROPPED: CounterKey = CounterKey::new("netio.queue_dropped");
/// Peers currently in the `Up` state.
pub const NETIO_PEERS_UP: GaugeKey = GaugeKey::new("netio.peers_up");
