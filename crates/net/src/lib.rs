//! `plwg-net` — the real-socket substrate: the PLWG protocol stack over
//! actual UDP datagrams, OS processes and wall-clock time.
//!
//! The simulator proves the protocols correct under modelled loss and
//! partitions; this crate closes the loop the paper closes in §7 (the
//! prototype "runs over Horus"): the *same* membership, flush, naming and
//! merge engines — unchanged, down to the wire frames — drive real
//! sockets. The pivot is the [`Transport`](plwg_sim::Transport) seam:
//! protocol code acts through seven verbs and never learns whether a
//! virtual network or the loopback interface sits below.
//!
//! Pieces, bottom-up:
//!
//! * [`WallClock`] — real elapsed time as monotone `SimTime` micros.
//! * [`NetMsg`] + datagram envelope ([`pack_datagram`] /
//!   [`unpack_datagram`]) — multi-frame UDP datagrams reusing the
//!   `plwg-wire` codec, demuxed by frame family.
//! * [`PeerPool`] — hello/alive/bye connection lifecycle, bounded
//!   per-peer send queues (drop-newest-and-count backpressure) and the
//!   heartbeat failure detector, as a socket-free state machine.
//! * [`NetRuntime`] — the poll-based reactor that owns the socket and
//!   timer heap and hosts any [`Process`](plwg_sim::Process): an
//!   `LwgNode`, a `NameServer`, or both.
//! * [`NetSubstrate`] — `VsyncStack` branded for real-network use, the
//!   workspace's third [`HwgSubstrate`](plwg_hwg::HwgSubstrate).
//! * [`harness`] — spawn child processes, exchange address books over
//!   stdio, inject partitions with socket-level drop filters, and merge
//!   the children's trace events for cross-process assertions.
//!
//! No dependencies beyond `std` and the workspace crates below it.
//!
//! # Quickstart
//!
//! ```no_run
//! use plwg_net::{NetOptions, NetRuntime};
//! use plwg_sim::{NodeId, Process, SimDuration};
//!
//! # fn host(process: &mut dyn Process) -> std::io::Result<()> {
//! let mut rt = NetRuntime::bind(NodeId(2), "127.0.0.1:0", NetOptions::default())?;
//! rt.add_peer(NodeId(1), "127.0.0.1:9001".parse().unwrap());
//! rt.run_for(process, SimDuration::from_secs(5));
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod events;
pub mod harness;
pub mod keys;
mod msg;
mod peer;
mod runtime;
mod substrate;

pub use clock::WallClock;
pub use events::NetEvent;
pub use msg::{net_frame, pack_datagram, unpack_datagram, NetMsg};
pub use peer::{NetOptions, PeerPool, PeerState, PoolAction};
pub use runtime::NetRuntime;
pub use substrate::NetSubstrate;
