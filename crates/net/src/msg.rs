//! Wire format of the net runtime: the `NET` frame family and the
//! datagram envelope every frame travels in.
//!
//! ```text
//! datagram := from:varint repeated( len:varint frame-bytes )
//! frame    := family-tag:varint body          (see plwg-wire)
//! ```
//!
//! The envelope names the *sending node* — UDP source addresses are not
//! identities (a node may rebind after a restart), and the protocol
//! layers above route by [`NodeId`]. A datagram may carry several frames;
//! the receiver slices them zero-copy out of one receive buffer.
//!
//! [`NetMsg`] frames (family [`family::NET`]) are the transport's own
//! traffic: the hello/alive/bye peer lifecycle, plus the harness control
//! messages the multi-process examples use to inject partitions at the
//! socket level.

use plwg_sim::{encode_frame, family, Decode, Encode, Frame, NodeId, Payload, Reader, WireError};

/// Transport-level messages of the peer pool (never seen above the seam).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMsg {
    /// Peer greeting: "I am `node`, reachable at the source address of
    /// this datagram". Sent on startup and re-sent until answered.
    Hello {
        /// The greeting node.
        node: NodeId,
    },
    /// Heartbeat of the failure detector.
    Alive {
        /// The living node.
        node: NodeId,
    },
    /// Graceful shutdown notice: the peer stops counting us silent.
    Bye {
        /// The departing node.
        node: NodeId,
    },
    /// Harness control: drop all traffic to/from `peers` at the socket
    /// boundary (both directions) — a real-network stand-in for the
    /// simulator's partition model.
    Block {
        /// The peers to cut off.
        peers: Vec<NodeId>,
    },
    /// Harness control: lift the drop filter for `peers`.
    Unblock {
        /// The peers to reconnect.
        peers: Vec<NodeId>,
    },
}

// Variant tags; wire-stable, append-only.
const T_HELLO: u8 = 0;
const T_ALIVE: u8 = 1;
const T_BYE: u8 = 2;
const T_BLOCK: u8 = 3;
const T_UNBLOCK: u8 = 4;

impl Encode for NetMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            NetMsg::Hello { node } => {
                out.push(T_HELLO);
                node.encode_into(out);
            }
            NetMsg::Alive { node } => {
                out.push(T_ALIVE);
                node.encode_into(out);
            }
            NetMsg::Bye { node } => {
                out.push(T_BYE);
                node.encode_into(out);
            }
            NetMsg::Block { peers } => {
                out.push(T_BLOCK);
                peers.encode_into(out);
            }
            NetMsg::Unblock { peers } => {
                out.push(T_UNBLOCK);
                peers.encode_into(out);
            }
        }
    }
}

impl Decode for NetMsg {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read_u8()? {
            T_HELLO => NetMsg::Hello {
                node: NodeId::decode_from(r)?,
            },
            T_ALIVE => NetMsg::Alive {
                node: NodeId::decode_from(r)?,
            },
            T_BYE => NetMsg::Bye {
                node: NodeId::decode_from(r)?,
            },
            T_BLOCK => NetMsg::Block {
                peers: Vec::decode_from(r)?,
            },
            T_UNBLOCK => NetMsg::Unblock {
                peers: Vec::decode_from(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "NetMsg variant",
                    tag: tag as u64,
                })
            }
        })
    }
}

/// Encodes a [`NetMsg`] as a ready-to-send frame (family `NET`).
pub fn net_frame(msg: &NetMsg) -> Payload {
    encode_frame(family::NET, msg)
}

/// Packs `frames` into one datagram from `from`.
pub fn pack_datagram(from: NodeId, frames: &[Frame]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + frames.iter().map(|f| f.len() + 4).sum::<usize>());
    (from.0 as u64).encode_into(&mut out);
    for f in frames {
        f.encode_into(&mut out);
    }
    out
}

/// Unpacks a received datagram into its sender and frames. The buffer is
/// copied once into a shared [`Frame`]; the contained frames are zero-copy
/// sub-slices of that allocation.
pub fn unpack_datagram(buf: &[u8]) -> Result<(NodeId, Vec<Frame>), WireError> {
    let whole = Frame::copy_from_slice(buf);
    let mut r = Reader::new(&whole);
    let from = NodeId(u32::decode_from(&mut r)?);
    let mut frames = Vec::new();
    while r.remaining() > 0 {
        frames.push(r.read_frame()?);
    }
    Ok((from, frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plwg_sim::peek_family;

    #[test]
    fn net_msg_roundtrip() {
        let msgs = [
            NetMsg::Hello { node: NodeId(3) },
            NetMsg::Alive { node: NodeId(0) },
            NetMsg::Bye { node: NodeId(9) },
            NetMsg::Block {
                peers: vec![NodeId(1), NodeId(2)],
            },
            NetMsg::Unblock { peers: vec![] },
        ];
        for msg in msgs {
            let f = net_frame(&msg);
            assert_eq!(peek_family(&f), Some(family::NET));
            let got = plwg_sim::decode_frame::<NetMsg>(family::NET, &f).expect("decode");
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn datagram_roundtrip_multiframe() {
        let a = net_frame(&NetMsg::Hello { node: NodeId(1) });
        let b = Frame::copy_from_slice(&[9, 8, 7]);
        let buf = pack_datagram(NodeId(1), &[a.clone(), b.clone()]);
        let (from, frames) = unpack_datagram(&buf).expect("unpack");
        assert_eq!(from, NodeId(1));
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].bytes(), a.bytes());
        assert_eq!(frames[1].bytes(), b.bytes());
    }

    #[test]
    fn truncated_datagram_rejected() {
        let a = net_frame(&NetMsg::Alive { node: NodeId(1) });
        let buf = pack_datagram(NodeId(1), &[a]);
        assert!(unpack_datagram(&buf[..buf.len() - 1]).is_err());
    }
}
