//! Peer lifecycle, send-queue backpressure and the heartbeat failure
//! detector — as a pure state machine.
//!
//! [`PeerPool`] holds no socket: it decides *what* should be sent and
//! *when* a peer changes state, and the runtime performs the I/O. That
//! split keeps the connection lifecycle deterministic and unit-testable
//! with a [`plwg_sim::ManualClock`] — the same discipline the protocol
//! crates follow on the simulator.
//!
//! Lifecycle per peer: [`PeerState::Greeting`] (hello sent, nothing heard
//! yet) → [`PeerState::Up`] (any datagram heard recently) →
//! [`PeerState::Down`] (silent past the suspect timeout, or said bye);
//! Down peers keep receiving hellos, so a healed partition reconnects
//! without outside help.
//!
//! While a peer is not `Up`, frames addressed to it wait in a bounded
//! per-peer queue; the queue drains the moment the peer comes up, and
//! overflow drops the newest frame and counts it (`net.queue.dropped`) —
//! backpressure never blocks the reactor. Loss is acceptable by contract:
//! the vsync layer above retransmits via NACKs, exactly as it does for
//! datagrams the real network drops.

use crate::events::NetEvent;
use crate::msg::NetMsg;
use plwg_sim::{ConfigError, NodeId, Payload, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Tunables of the net runtime's peer pool.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Heartbeat send period towards `Up` peers.
    pub hb_interval: SimDuration,
    /// Silence after which an `Up` peer is marked `Down`. Must exceed
    /// `hb_interval`.
    pub suspect_timeout: SimDuration,
    /// Re-greeting period towards peers that are not `Up` (initial
    /// connection and reconnection after a partition).
    pub hello_interval: SimDuration,
    /// Per-peer send-queue capacity (frames) while the peer is not `Up`.
    pub queue_capacity: usize,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            hb_interval: SimDuration::from_millis(100),
            suspect_timeout: SimDuration::from_millis(500),
            hello_interval: SimDuration::from_millis(200),
            queue_capacity: 1024,
        }
    }
}

impl NetOptions {
    /// Sets the failure-detector pair (`suspect` must exceed `hb`).
    pub fn with_heartbeat(mut self, hb: SimDuration, suspect: SimDuration) -> Self {
        self.hb_interval = hb;
        self.suspect_timeout = suspect;
        self
    }

    /// Sets the re-greeting period.
    pub fn with_hello_interval(mut self, v: SimDuration) -> Self {
        self.hello_interval = v;
        self
    }

    /// Sets the per-peer send-queue capacity.
    pub fn with_queue_capacity(mut self, v: usize) -> Self {
        self.queue_capacity = v;
        self
    }

    /// Validates invariants between the knobs.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.hb_interval <= SimDuration::ZERO || self.hello_interval <= SimDuration::ZERO {
            return Err(ConfigError::new(
                "net.hb_interval/hello_interval",
                "periods must be positive",
            ));
        }
        if self.suspect_timeout <= self.hb_interval {
            return Err(ConfigError::new(
                "net.suspect_timeout",
                "must exceed hb_interval, or healthy peers get suspected",
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::new("net.queue_capacity", "must be >= 1"));
        }
        Ok(())
    }
}

/// Connection state of one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Hello sent, nothing heard yet.
    Greeting,
    /// Heard from recently; frames flow directly.
    Up,
    /// Silent past the suspect timeout, or said bye.
    Down,
}

#[derive(Debug)]
struct Peer {
    state: PeerState,
    last_heard: SimTime,
    last_greet: SimTime,
    queue: VecDeque<Payload>,
    dropped: u64,
}

/// An instruction from the pool to the runtime's socket loop.
#[derive(Debug, PartialEq, Eq)]
pub enum PoolAction {
    /// Send this transport message to the peer.
    Control(NodeId, NetMsg),
    /// The peer came up: flush these queued frames to it, oldest first.
    Flush(NodeId, Vec<Payload>),
}

/// The peer state table (see module docs).
#[derive(Debug)]
pub struct PeerPool {
    me: NodeId,
    opts: NetOptions,
    peers: BTreeMap<NodeId, Peer>,
    events: Vec<NetEvent>,
    last_hb: SimTime,
}

impl PeerPool {
    /// Creates a pool for node `me` over validated options.
    pub fn new(me: NodeId, opts: NetOptions) -> Self {
        PeerPool {
            me,
            opts,
            peers: BTreeMap::new(),
            events: Vec::new(),
            last_hb: SimTime::ZERO,
        }
    }

    /// Registers a peer (address-book entry). Idempotent.
    pub fn add_peer(&mut self, peer: NodeId) {
        if peer == self.me {
            return;
        }
        self.peers.entry(peer).or_insert(Peer {
            state: PeerState::Greeting,
            last_heard: SimTime::ZERO,
            last_greet: SimTime::ZERO,
            queue: VecDeque::new(),
            dropped: 0,
        });
    }

    /// The registered peers.
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.peers.keys().copied()
    }

    /// The state of `peer`, if registered.
    pub fn state_of(&self, peer: NodeId) -> Option<PeerState> {
        self.peers.get(&peer).map(|p| p.state)
    }

    /// Frames dropped on `peer`'s queue so far.
    pub fn dropped_of(&self, peer: NodeId) -> u64 {
        self.peers.get(&peer).map_or(0, |p| p.dropped)
    }

    /// Number of peers currently `Up`.
    pub fn up_count(&self) -> usize {
        self.peers
            .values()
            .filter(|p| p.state == PeerState::Up)
            .count()
    }

    /// Offers a frame for `to`. Returns `true` when the frame should be
    /// put on the wire right now (peer `Up`); otherwise the frame was
    /// queued (or dropped-and-counted on overflow) and `false` comes back.
    pub fn offer(&mut self, to: NodeId, frame: Payload) -> bool {
        let Some(p) = self.peers.get_mut(&to) else {
            return false;
        };
        if p.state == PeerState::Up {
            return true;
        }
        if p.queue.len() >= self.opts.queue_capacity {
            p.dropped += 1;
            let dropped = p.dropped;
            self.events.push(NetEvent::QueueDrop { peer: to, dropped });
            return false;
        }
        p.queue.push_back(frame);
        false
    }

    /// Notes that a datagram arrived from `peer`. Any traffic is proof of
    /// life; a peer that was not `Up` comes up and its queue flushes.
    pub fn heard_from(&mut self, peer: NodeId, now: SimTime) -> Option<PoolAction> {
        let p = self.peers.get_mut(&peer)?;
        p.last_heard = now;
        if p.state == PeerState::Up {
            return None;
        }
        p.state = PeerState::Up;
        self.events.push(NetEvent::PeerUp { peer });
        let queued: Vec<Payload> = p.queue.drain(..).collect();
        Some(PoolAction::Flush(peer, queued))
    }

    /// Handles a transport message from `peer`. `Hello` earns a hello
    /// back (so the initiating side learns liveness even when it has no
    /// other traffic); `Bye` takes the peer down immediately.
    pub fn on_net_msg(&mut self, peer: NodeId, msg: &NetMsg, now: SimTime) -> Vec<PoolAction> {
        let mut actions = Vec::new();
        match msg {
            NetMsg::Hello { node } => {
                let was_up = self.state_of(*node) == Some(PeerState::Up);
                if let Some(a) = self.heard_from(*node, now) {
                    actions.push(a);
                }
                if !was_up {
                    actions.push(PoolAction::Control(*node, NetMsg::Hello { node: self.me }));
                }
            }
            NetMsg::Alive { node } => {
                if let Some(a) = self.heard_from(*node, now) {
                    actions.push(a);
                }
            }
            NetMsg::Bye { node } => {
                if let Some(p) = self.peers.get_mut(node) {
                    if p.state != PeerState::Down {
                        p.state = PeerState::Down;
                        self.events.push(NetEvent::PeerDown { peer: *node });
                    }
                }
            }
            // Control frames are the runtime's business (drop filter).
            NetMsg::Block { .. } | NetMsg::Unblock { .. } => {}
        }
        let _ = peer;
        actions
    }

    /// Periodic maintenance: greet non-`Up` peers, heartbeat `Up` peers,
    /// and take silent peers down. Call at least every `hb_interval`.
    pub fn tick(&mut self, now: SimTime) -> Vec<PoolAction> {
        let mut actions = Vec::new();
        let hb_due = now.saturating_since(self.last_hb) >= self.opts.hb_interval;
        if hb_due {
            self.last_hb = now;
        }
        for (&id, p) in self.peers.iter_mut() {
            match p.state {
                PeerState::Up => {
                    if now.saturating_since(p.last_heard) >= self.opts.suspect_timeout {
                        p.state = PeerState::Down;
                        self.events.push(NetEvent::PeerDown { peer: id });
                    } else if hb_due {
                        actions.push(PoolAction::Control(id, NetMsg::Alive { node: self.me }));
                    }
                }
                PeerState::Greeting | PeerState::Down => {
                    if now.saturating_since(p.last_greet) >= self.opts.hello_interval {
                        p.last_greet = now;
                        actions.push(PoolAction::Control(id, NetMsg::Hello { node: self.me }));
                    }
                }
            }
        }
        actions
    }

    /// Farewell messages for a graceful shutdown.
    pub fn goodbyes(&self) -> Vec<PoolAction> {
        self.peers
            .iter()
            .filter(|(_, p)| p.state == PeerState::Up)
            .map(|(&id, _)| PoolAction::Control(id, NetMsg::Bye { node: self.me }))
            .collect()
    }

    /// Drains the pool's protocol events (peer up/down, queue drops).
    pub fn drain_events(&mut self) -> Vec<NetEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plwg_sim::{Clock, ManualClock};

    fn frame(byte: u8) -> Payload {
        Payload::copy_from_slice(&[byte])
    }

    fn pool(cap: usize) -> (PeerPool, ManualClock) {
        let opts = NetOptions::default().with_queue_capacity(cap);
        opts.validate().expect("valid");
        let mut p = PeerPool::new(NodeId(0), opts);
        p.add_peer(NodeId(1));
        (p, ManualClock::new())
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let (mut pool, _clk) = pool(2);
        assert!(!pool.offer(NodeId(1), frame(1)));
        assert!(!pool.offer(NodeId(1), frame(2)));
        assert!(!pool.offer(NodeId(1), frame(3))); // over capacity
        assert_eq!(pool.dropped_of(NodeId(1)), 1);
        let evs = pool.drain_events();
        assert!(matches!(
            evs.as_slice(),
            [NetEvent::QueueDrop {
                peer: NodeId(1),
                dropped: 1
            }]
        ));
        // The two queued frames flush when the peer comes up.
        match pool.heard_from(NodeId(1), SimTime::from_micros(5)) {
            Some(PoolAction::Flush(NodeId(1), q)) => assert_eq!(q.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // Up peer: frames go straight to the wire.
        assert!(pool.offer(NodeId(1), frame(4)));
    }

    #[test]
    fn failure_detector_times_out_silent_peer() {
        let (mut pool, clk) = pool(8);
        pool.heard_from(NodeId(1), clk.now());
        assert_eq!(pool.state_of(NodeId(1)), Some(PeerState::Up));
        assert_eq!(pool.up_count(), 1);
        // Just inside the timeout: stays up, heartbeats flow.
        clk.advance(SimDuration::from_millis(400));
        let acts = pool.tick(clk.now());
        assert!(acts
            .iter()
            .any(|a| matches!(a, PoolAction::Control(NodeId(1), NetMsg::Alive { .. }))));
        // Past the timeout with no traffic: down.
        clk.advance(SimDuration::from_millis(200));
        pool.tick(clk.now());
        assert_eq!(pool.state_of(NodeId(1)), Some(PeerState::Down));
        assert!(pool
            .drain_events()
            .iter()
            .any(|e| matches!(e, NetEvent::PeerDown { peer: NodeId(1) })));
    }

    #[test]
    fn down_peer_reconnects_via_hello() {
        let (mut pool, clk) = pool(8);
        pool.heard_from(NodeId(1), clk.now());
        clk.advance(SimDuration::from_secs(2));
        pool.tick(clk.now());
        assert_eq!(pool.state_of(NodeId(1)), Some(PeerState::Down));
        // The pool keeps greeting the down peer...
        clk.advance(SimDuration::from_millis(300));
        let acts = pool.tick(clk.now());
        assert!(acts
            .iter()
            .any(|a| matches!(a, PoolAction::Control(NodeId(1), NetMsg::Hello { .. }))));
        // ...and the peer's answer brings it back up.
        let acts = pool.on_net_msg(NodeId(1), &NetMsg::Hello { node: NodeId(1) }, clk.now());
        assert_eq!(pool.state_of(NodeId(1)), Some(PeerState::Up));
        assert!(acts
            .iter()
            .any(|a| matches!(a, PoolAction::Flush(NodeId(1), _))));
        assert!(pool
            .drain_events()
            .iter()
            .any(|e| matches!(e, NetEvent::PeerUp { peer: NodeId(1) })));
    }

    #[test]
    fn bye_takes_peer_down_and_goodbyes_list_up_peers() {
        let (mut pool, clk) = pool(8);
        pool.heard_from(NodeId(1), clk.now());
        assert_eq!(pool.goodbyes().len(), 1);
        pool.on_net_msg(NodeId(1), &NetMsg::Bye { node: NodeId(1) }, clk.now());
        assert_eq!(pool.state_of(NodeId(1)), Some(PeerState::Down));
        assert!(pool.goodbyes().is_empty());
    }

    #[test]
    fn options_validate() {
        assert!(NetOptions::default().validate().is_ok());
        let err = NetOptions::default()
            .with_heartbeat(SimDuration::from_millis(100), SimDuration::from_millis(50))
            .validate()
            .expect_err("reject");
        assert_eq!(err.field, "net.suspect_timeout");
        let err = NetOptions::default()
            .with_queue_capacity(0)
            .validate()
            .expect_err("reject");
        assert_eq!(err.field, "net.queue_capacity");
        let err = NetOptions::default()
            .with_hello_interval(SimDuration::ZERO)
            .validate()
            .expect_err("reject");
        assert_eq!(err.field, "net.hb_interval/hello_interval");
    }
}
