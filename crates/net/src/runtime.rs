//! The poll-based reactor: one UDP socket, one timer heap, one process.
//!
//! [`NetRuntime`] is the real-network counterpart of the simulator's
//! per-node context. It owns a non-blocking-style UDP socket (poll with a
//! deadline-driven read timeout — the single-fd equivalent of `poll(2)`),
//! a monotone [`WallClock`], a binary-heap timer wheel and the
//! [`PeerPool`] lifecycle machine, and it lends itself to the hosted
//! [`Process`] as `&mut dyn Transport` — so the vsync/naming/LWG stack
//! runs over it unchanged.
//!
//! The reactor turn is: deliver self-sends → fire due timers → service
//! the peer pool (heartbeats, hellos, suspicion) → wait for a datagram
//! until the next deadline → demux. Frames of family [`family::NET`] are
//! the transport's own lifecycle and harness-control traffic; every other
//! family goes up to the process.
//!
//! Partitions, for real: the harness sends [`NetMsg::Block`] and the
//! runtime installs a socket-level drop filter — datagrams to or from a
//! blocked peer are discarded at this boundary, in both directions. Above
//! the seam that is indistinguishable from a network partition, which is
//! the point: the §6 heal protocol then runs against real packet loss.

use crate::clock::WallClock;
use crate::events::NetEvent;
use crate::keys::{
    NETIO_BYTES_TX, NETIO_DGRAM_RX, NETIO_DGRAM_TX, NETIO_PEERS_UP, NETIO_QUEUE_DROPPED,
};
use crate::msg::{net_frame, pack_datagram, unpack_datagram, NetMsg};
use crate::peer::{NetOptions, PeerPool, PeerState, PoolAction};
use plwg_sim::{
    family, peek_family, Clock, MetricsRegistry, NodeId, Payload, Process, SimDuration, SimTime,
    TimerToken, Trace, Transport, TransportExt,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};

/// Longest single socket wait; bounds how stale pool maintenance can get.
const MAX_POLL: SimDuration = SimDuration::from_millis(25);

/// The real-socket runtime hosting one protocol [`Process`].
pub struct NetRuntime {
    me: NodeId,
    clock: WallClock,
    socket: UdpSocket,
    book: BTreeMap<NodeId, SocketAddr>,
    pool: PeerPool,
    timers: BinaryHeap<Reverse<(u64, u64, u64)>>,
    timer_gen: BTreeMap<u64, u64>,
    next_gen: u64,
    pending_local: VecDeque<Payload>,
    blocked: BTreeSet<NodeId>,
    metrics: MetricsRegistry,
    trace: Trace,
    started: bool,
}

impl NetRuntime {
    /// Binds a runtime for node `me` on `addr` (use port 0 to let the OS
    /// pick; read it back with [`NetRuntime::local_addr`]).
    pub fn bind(me: NodeId, addr: impl ToSocketAddrs, opts: NetOptions) -> io::Result<NetRuntime> {
        opts.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let socket = UdpSocket::bind(addr)?;
        Ok(NetRuntime {
            me,
            clock: WallClock::start(),
            socket,
            book: BTreeMap::new(),
            pool: PeerPool::new(me, opts),
            timers: BinaryHeap::new(),
            timer_gen: BTreeMap::new(),
            next_gen: 0,
            pending_local: VecDeque::new(),
            blocked: BTreeSet::new(),
            metrics: MetricsRegistry::new(),
            trace: Trace::new(false),
            started: false,
        })
    }

    /// The socket's bound address (the harness publishes this).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Registers a peer's address and starts greeting it.
    pub fn add_peer(&mut self, node: NodeId, addr: SocketAddr) {
        if node == self.me {
            return;
        }
        self.book.insert(node, addr);
        self.pool.add_peer(node);
    }

    /// Turns trace recording on (off by default, as on the simulator).
    pub fn enable_trace(&mut self) {
        if !self.trace.is_enabled() {
            self.trace = Trace::new(true);
        }
    }

    /// Read access to the metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Read access to the trace sink.
    pub fn trace_ref(&self) -> &Trace {
        &self.trace
    }

    /// The lifecycle state of `peer`, if registered.
    pub fn peer_state(&self, peer: NodeId) -> Option<PeerState> {
        self.pool.state_of(peer)
    }

    /// Number of peers currently up.
    pub fn peers_up(&self) -> usize {
        self.pool.up_count()
    }

    /// Runs the reactor for `dur` of wall-clock time, driving `p`.
    ///
    /// The first call delivers `p`'s [`Process::on_start`] (arming its
    /// periodic timers), mirroring the simulator's node-admission hook.
    pub fn run_for(&mut self, p: &mut dyn Process, dur: SimDuration) {
        if !self.started {
            self.started = true;
            p.on_start(self);
        }
        let deadline = self.clock.now().checked_add(dur).unwrap_or(SimTime::MAX);
        let mut buf = vec![0u8; 65_536];
        loop {
            self.deliver_local(p);
            self.fire_timers(p);
            self.service_pool();
            let now = self.clock.now();
            if now >= deadline {
                return;
            }
            let mut next = deadline;
            if let Some(&Reverse((due, _, _))) = self.timers.peek() {
                next = next.min(SimTime::from_micros(due));
            }
            let wait = next.saturating_since(now);
            let wait_us = wait.as_micros().clamp(1, MAX_POLL.as_micros());
            self.socket
                .set_read_timeout(Some(std::time::Duration::from_micros(wait_us)))
                .expect("set_read_timeout");
            match self.socket.recv_from(&mut buf) {
                Ok((n, addr)) => {
                    let dgram = buf[..n].to_vec();
                    self.on_datagram(p, &dgram, addr);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                // Transient socket errors (e.g. ICMP-induced) are treated
                // as loss, with a pause so a persistent fault cannot spin.
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
    }

    /// Runs until `done` returns true (checked once per reactor turn), or
    /// until `timeout` elapses. Returns whether `done` was reached.
    pub fn run_until(
        &mut self,
        p: &mut dyn Process,
        timeout: SimDuration,
        mut done: impl FnMut(&mut dyn Process, &NetRuntime) -> bool,
    ) -> bool {
        let deadline = self
            .clock
            .now()
            .checked_add(timeout)
            .unwrap_or(SimTime::MAX);
        while self.clock.now() < deadline {
            if done(p, self) {
                return true;
            }
            self.run_for(p, SimDuration::from_millis(10));
        }
        done(p, self)
    }

    /// Announces departure to all up peers (best-effort, unreliable).
    pub fn shutdown(&mut self) {
        for a in self.pool.goodbyes() {
            self.apply_action(a);
        }
    }

    fn deliver_local(&mut self, p: &mut dyn Process) {
        while let Some(f) = self.pending_local.pop_front() {
            let me = self.me;
            p.on_message(self, me, f);
        }
    }

    fn fire_timers(&mut self, p: &mut dyn Process) {
        loop {
            let now = self.clock.now().as_micros();
            match self.timers.peek() {
                Some(&Reverse((due, gen, raw))) if due <= now => {
                    self.timers.pop();
                    if self.timer_gen.get(&raw) == Some(&gen) {
                        self.timer_gen.remove(&raw);
                        p.on_timer(self, TimerToken(raw));
                    }
                }
                _ => return,
            }
        }
    }

    fn service_pool(&mut self) {
        let now = self.clock.now();
        for a in self.pool.tick(now) {
            self.apply_action(a);
        }
        self.metrics
            .set_gauge(NETIO_PEERS_UP, self.pool.up_count() as i64);
        for ev in self.pool.drain_events() {
            if matches!(ev, NetEvent::QueueDrop { .. }) {
                self.metrics.incr(NETIO_QUEUE_DROPPED);
            }
            self.emit(move || ev);
        }
    }

    fn apply_action(&mut self, action: PoolAction) {
        match action {
            PoolAction::Control(to, msg) => self.transmit(to, &[net_frame(&msg)]),
            PoolAction::Flush(to, frames) => {
                if !frames.is_empty() {
                    self.transmit(to, &frames);
                }
            }
        }
    }

    /// Puts `frames` on the wire towards `to`, applying the drop filter.
    fn transmit(&mut self, to: NodeId, frames: &[Payload]) {
        if self.blocked.contains(&to) {
            return;
        }
        let Some(&addr) = self.book.get(&to) else {
            return;
        };
        let dgram = pack_datagram(self.me, frames);
        if self.socket.send_to(&dgram, addr).is_ok() {
            self.metrics.incr(NETIO_DGRAM_TX);
            self.metrics.add(NETIO_BYTES_TX, dgram.len() as u64);
        }
    }

    fn on_datagram(&mut self, p: &mut dyn Process, buf: &[u8], addr: SocketAddr) {
        let Ok((from, frames)) = unpack_datagram(buf) else {
            return;
        };
        if self.blocked.contains(&from) {
            return;
        }
        self.metrics.incr(NETIO_DGRAM_RX);
        // Source address is authoritative for the sending node: a peer
        // that rebound after a restart is re-learned here.
        if from != self.me {
            self.book.insert(from, addr);
        }
        let now = self.clock.now();
        if let Some(a) = self.pool.heard_from(from, now) {
            self.apply_action(a);
        }
        for frame in frames {
            if peek_family(&frame) == Some(family::NET) {
                if let Ok(msg) = plwg_sim::decode_frame::<NetMsg>(family::NET, &frame) {
                    self.on_net_msg(from, msg);
                }
            } else {
                p.on_message(self, from, frame);
            }
        }
        self.service_pool();
    }

    fn on_net_msg(&mut self, from: NodeId, msg: NetMsg) {
        match msg {
            NetMsg::Block { peers } => {
                self.blocked.extend(peers.iter().copied());
                self.emit(|| NetEvent::Blocked { peers });
            }
            NetMsg::Unblock { peers } => {
                for peer in &peers {
                    self.blocked.remove(peer);
                }
                self.emit(|| NetEvent::Unblocked { peers });
            }
            other => {
                let now = self.clock.now();
                for a in self.pool.on_net_msg(from, &other, now) {
                    self.apply_action(a);
                }
            }
        }
    }
}

impl Transport for NetRuntime {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn id(&self) -> NodeId {
        self.me
    }

    fn send(&mut self, to: NodeId, msg: Payload) {
        if to == self.me {
            self.pending_local.push_back(msg);
            return;
        }
        if self.blocked.contains(&to) {
            return;
        }
        if self.pool.offer(to, msg.clone()) {
            self.transmit(to, &[msg]);
        }
    }

    fn broadcast(&mut self, msg: Payload) {
        let peers: Vec<NodeId> = self.pool.peers().collect();
        for to in peers {
            self.send(to, msg.clone());
        }
    }

    fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        let due = self
            .clock
            .now()
            .checked_add(delay)
            .unwrap_or(SimTime::MAX)
            .as_micros();
        let gen = self.next_gen;
        self.next_gen += 1;
        self.timer_gen.insert(token.0, gen);
        self.timers.push(Reverse((due, gen, token.0)));
    }

    fn cancel_timer(&mut self, token: TimerToken) {
        self.timer_gen.remove(&token.0);
    }

    fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    fn trace(&mut self) -> &mut Trace {
        &mut self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        got: Vec<(NodeId, Vec<u8>)>,
        fired: Vec<TimerToken>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder {
                got: Vec::new(),
                fired: Vec::new(),
            }
        }
    }

    impl Process for Recorder {
        fn on_message(&mut self, _ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
            self.got.push((from, msg.bytes().to_vec()));
        }
        fn on_timer(&mut self, _ctx: &mut dyn Transport, token: TimerToken) {
            self.fired.push(token);
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn rt(me: u32) -> NetRuntime {
        NetRuntime::bind(NodeId(me), "127.0.0.1:0", NetOptions::default()).expect("bind")
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut rt = rt(0);
        let mut p = Recorder::new();
        rt.set_timer(SimDuration::from_millis(20), TimerToken(2));
        rt.set_timer(SimDuration::from_millis(5), TimerToken(1));
        rt.set_timer(SimDuration::from_millis(10), TimerToken(3));
        rt.cancel_timer(TimerToken(3));
        rt.run_for(&mut p, SimDuration::from_millis(60));
        assert_eq!(p.fired, vec![TimerToken(1), TimerToken(2)]);
    }

    #[test]
    fn rearming_a_timer_supersedes_the_old_deadline() {
        let mut rt = rt(0);
        let mut p = Recorder::new();
        rt.set_timer(SimDuration::from_millis(5), TimerToken(7));
        rt.set_timer(SimDuration::from_millis(30), TimerToken(7));
        rt.run_for(&mut p, SimDuration::from_millis(15));
        assert!(p.fired.is_empty(), "old deadline must not fire");
        rt.run_for(&mut p, SimDuration::from_millis(30));
        assert_eq!(p.fired, vec![TimerToken(7)]);
    }

    #[test]
    fn self_send_loops_back_locally() {
        let mut rt = rt(4);
        let mut p = Recorder::new();
        rt.send(NodeId(4), Payload::copy_from_slice(&[1, 2, 3]));
        rt.run_for(&mut p, SimDuration::from_millis(5));
        assert_eq!(p.got, vec![(NodeId(4), vec![1, 2, 3])]);
    }

    #[test]
    fn two_runtimes_connect_and_exchange_frames() {
        let mut a = rt(1);
        let mut b = rt(2);
        a.add_peer(NodeId(2), b.local_addr().expect("addr"));
        b.add_peer(NodeId(1), a.local_addr().expect("addr"));
        let mut pa = Recorder::new();
        let mut pb = Recorder::new();
        // Queue app traffic before the peers are even up: it must ride
        // the queue and flush on connect.
        a.send(NodeId(2), Payload::copy_from_slice(&[42]));
        for _ in 0..100 {
            a.run_for(&mut pa, SimDuration::from_millis(10));
            b.run_for(&mut pb, SimDuration::from_millis(10));
            if a.peers_up() == 1 && b.peers_up() == 1 && !pb.got.is_empty() {
                break;
            }
        }
        assert_eq!(a.peer_state(NodeId(2)), Some(PeerState::Up));
        assert_eq!(b.peer_state(NodeId(1)), Some(PeerState::Up));
        assert_eq!(pb.got, vec![(NodeId(1), vec![42])]);
        assert!(a.registry().counter(NETIO_DGRAM_TX) > 0);
        assert!(b.registry().counter(NETIO_DGRAM_RX) > 0);
    }

    #[test]
    fn block_filter_cuts_both_directions_until_unblocked() {
        let mut a = rt(1);
        let mut b = rt(2);
        a.add_peer(NodeId(2), b.local_addr().expect("addr"));
        b.add_peer(NodeId(1), a.local_addr().expect("addr"));
        a.enable_trace();
        let mut pa = Recorder::new();
        let mut pb = Recorder::new();
        for _ in 0..100 {
            a.run_for(&mut pa, SimDuration::from_millis(10));
            b.run_for(&mut pb, SimDuration::from_millis(10));
            if a.peers_up() == 1 && b.peers_up() == 1 {
                break;
            }
        }
        assert_eq!(a.peers_up(), 1);
        // Partition: a drops everything to/from 2.
        a.on_net_msg(
            NodeId(99),
            NetMsg::Block {
                peers: vec![NodeId(2)],
            },
        );
        a.send(NodeId(2), Payload::copy_from_slice(&[9]));
        for _ in 0..200 {
            a.run_for(&mut pa, SimDuration::from_millis(10));
            b.run_for(&mut pb, SimDuration::from_millis(10));
            if a.peer_state(NodeId(2)) == Some(PeerState::Down)
                && b.peer_state(NodeId(1)) == Some(PeerState::Down)
            {
                break;
            }
        }
        assert_eq!(a.peer_state(NodeId(2)), Some(PeerState::Down));
        assert_eq!(b.peer_state(NodeId(1)), Some(PeerState::Down));
        assert!(pb.got.is_empty(), "blocked frame must not arrive");
        // Heal: the filter lifts and the pool reconnects on its own.
        a.on_net_msg(
            NodeId(99),
            NetMsg::Unblock {
                peers: vec![NodeId(2)],
            },
        );
        for _ in 0..200 {
            a.run_for(&mut pa, SimDuration::from_millis(10));
            b.run_for(&mut pb, SimDuration::from_millis(10));
            if a.peers_up() == 1 && b.peers_up() == 1 {
                break;
            }
        }
        assert_eq!(a.peers_up(), 1);
        assert_eq!(b.peers_up(), 1);
        assert_eq!(a.trace_ref().count("net.ctrl.block"), 1);
        assert_eq!(a.trace_ref().count("net.ctrl.unblock"), 1);
    }
}
