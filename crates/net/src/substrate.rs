//! The third substrate: the real vsync protocol stack over real sockets.
//!
//! [`NetSubstrate`] is [`plwg_vsync::VsyncStack`] run over a
//! [`crate::NetRuntime`] instead of the simulator — the same protocol
//! code, byte-identical wire frames, a different [`plwg_sim::Transport`]
//! underneath. It exists as its own type so the three substrates the
//! workspace supports are all nameable and the choice is visible in
//! signatures:
//!
//! | substrate | protocol | network |
//! |---|---|---|
//! | `plwg_vsync::VsyncStack` | real | simulated |
//! | `plwg_core::ScriptedHwg` | scripted | none |
//! | `plwg_net::NetSubstrate` | real | real UDP |
//!
//! Everything is pure delegation; the type adds no behaviour. That is the
//! claim being demonstrated: nothing in the membership/flush/merge engine
//! knows which side of the seam it is on.

use plwg_hwg::{GroupStatus, HwgConfig, HwgEvent, HwgId, HwgSubstrate, View};
use plwg_sim::{NodeId, Payload, TimerToken, Transport};
use plwg_vsync::VsyncStack;
use std::collections::BTreeSet;

/// [`VsyncStack`] branded for use over the real-socket runtime.
pub struct NetSubstrate(VsyncStack);

impl NetSubstrate {
    /// The wrapped protocol stack.
    pub fn stack(&self) -> &VsyncStack {
        &self.0
    }
}

impl HwgSubstrate for NetSubstrate {
    fn build(me: NodeId, cfg: &HwgConfig) -> Self {
        NetSubstrate(VsyncStack::build(me, cfg))
    }

    fn node(&self) -> NodeId {
        self.0.node()
    }

    fn start(&mut self, ctx: &mut dyn Transport) {
        self.0.start(ctx);
    }

    fn join(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        self.0.join(ctx, hwg);
    }

    fn create(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        self.0.create(ctx, hwg);
    }

    fn leave(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        self.0.leave(ctx, hwg);
    }

    fn send(&mut self, ctx: &mut dyn Transport, hwg: HwgId, data: Payload) {
        self.0.send(ctx, hwg, data);
    }

    fn send_to(
        &mut self,
        ctx: &mut dyn Transport,
        hwg: HwgId,
        targets: &BTreeSet<NodeId>,
        data: Payload,
    ) {
        self.0.send_to(ctx, hwg, targets, data);
    }

    fn force_flush(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        self.0.force_flush(ctx, hwg);
    }

    fn stop_ok(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        self.0.stop_ok(ctx, hwg);
    }

    fn view_of(&self, hwg: HwgId) -> Option<&View> {
        self.0.view_of(hwg)
    }

    fn status_of(&self, hwg: HwgId) -> GroupStatus {
        self.0.status_of(hwg)
    }

    fn is_coordinator(&self, hwg: HwgId) -> bool {
        self.0.is_coordinator(hwg)
    }

    fn groups(&self) -> Vec<HwgId> {
        HwgSubstrate::groups(&self.0)
    }

    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &Payload) -> bool {
        self.0.on_message(ctx, from, msg)
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) -> bool {
        self.0.on_timer(ctx, token)
    }

    fn drain_events(&mut self) -> Vec<HwgEvent> {
        self.0.drain_events()
    }

    fn drain_events_into(&mut self, out: &mut Vec<HwgEvent>) {
        self.0.drain_events_into(out);
    }
}
