//! Peer-lifecycle integration over real loopback sockets: connection
//! establishment, backpressure, the failure detector, partition control
//! frames, and the trace evidence each of them leaves.
//!
//! These tests also pin the net layer's event vocabulary: every
//! `NetEvent` kind — `net.peer.up`, `net.peer.down`, `net.queue.drop`,
//! `net.ctrl.block`, `net.ctrl.unblock` — is asserted on here.

use plwg_net::keys::{NETIO_DGRAM_RX, NETIO_DGRAM_TX, NETIO_QUEUE_DROPPED};
use plwg_net::{NetOptions, NetRuntime, PeerState};
use plwg_sim::{NodeId, Payload, Process, SimDuration, Transport};

/// A process that records payload bytes and answers nothing.
struct Sink {
    got: Vec<Vec<u8>>,
}

impl Sink {
    fn new() -> Sink {
        Sink { got: Vec::new() }
    }
}

impl Process for Sink {
    fn on_message(&mut self, _ctx: &mut dyn Transport, _from: NodeId, msg: Payload) {
        self.got.push(msg.bytes().to_vec());
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn pair(opts_a: NetOptions, opts_b: NetOptions) -> (NetRuntime, NetRuntime) {
    let mut a = NetRuntime::bind(NodeId(1), "127.0.0.1:0", opts_a).expect("bind a");
    let mut b = NetRuntime::bind(NodeId(2), "127.0.0.1:0", opts_b).expect("bind b");
    a.add_peer(NodeId(2), b.local_addr().expect("addr b"));
    b.add_peer(NodeId(1), a.local_addr().expect("addr a"));
    a.enable_trace();
    b.enable_trace();
    (a, b)
}

fn pump(
    a: &mut NetRuntime,
    pa: &mut Sink,
    b: &mut NetRuntime,
    pb: &mut Sink,
    rounds: usize,
    mut done: impl FnMut(&NetRuntime, &NetRuntime) -> bool,
) -> bool {
    for _ in 0..rounds {
        a.run_for(pa, SimDuration::from_millis(10));
        b.run_for(pb, SimDuration::from_millis(10));
        if done(a, b) {
            return true;
        }
    }
    false
}

#[test]
fn connect_exchange_and_observe_peer_up() {
    let (mut a, mut b) = pair(NetOptions::default(), NetOptions::default());
    let (mut pa, mut pb) = (Sink::new(), Sink::new());
    a.send(NodeId(2), Payload::copy_from_slice(b"early"));
    assert!(
        pump(&mut a, &mut pa, &mut b, &mut pb, 200, |a, b| {
            a.peers_up() == 1 && b.peers_up() == 1
        }),
        "hello/alive lifecycle never converged"
    );
    // The early frame rode the send queue and flushed on connect.
    let mut delivered = false;
    for _ in 0..100 {
        if !pb.got.is_empty() {
            delivered = true;
            break;
        }
        a.run_for(&mut pa, SimDuration::from_millis(10));
        b.run_for(&mut pb, SimDuration::from_millis(10));
    }
    assert!(delivered, "queued frame never flushed");
    assert_eq!(pb.got[0], b"early");
    assert_eq!(a.trace_ref().count("net.peer.up"), 1);
    assert_eq!(b.trace_ref().count("net.peer.up"), 1);
    assert!(a.registry().counter(NETIO_DGRAM_TX) > 0);
    assert!(a.registry().counter(NETIO_DGRAM_RX) > 0);
}

#[test]
fn backpressure_overflow_drops_newest_and_counts() {
    // Tiny queue towards a peer that never answers.
    let opts = NetOptions::default().with_queue_capacity(4);
    let mut a = NetRuntime::bind(NodeId(1), "127.0.0.1:0", opts).expect("bind");
    // The peer address exists but nothing is listening there that speaks
    // our protocol, so the peer never comes up.
    let dead = NetRuntime::bind(NodeId(9), "127.0.0.1:0", NetOptions::default()).expect("bind");
    a.add_peer(NodeId(2), dead.local_addr().expect("addr"));
    a.enable_trace();
    let mut pa = Sink::new();
    for i in 0..10u8 {
        a.send(NodeId(2), Payload::copy_from_slice(&[i]));
    }
    a.run_for(&mut pa, SimDuration::from_millis(30));
    assert_eq!(a.registry().counter(NETIO_QUEUE_DROPPED), 6);
    assert_eq!(a.trace_ref().count("net.queue.drop"), 6);
}

#[test]
fn failure_detector_reports_peer_down_after_silence() {
    // a suspects quickly; b is told to go quiet via a block filter on its
    // own side (it stops sending *and* ignores a).
    let fast = NetOptions::default()
        .with_heartbeat(SimDuration::from_millis(50), SimDuration::from_millis(250));
    let (mut a, mut b) = pair(fast.clone(), fast);
    let (mut pa, mut pb) = (Sink::new(), Sink::new());
    assert!(pump(&mut a, &mut pa, &mut b, &mut pb, 200, |a, b| {
        a.peers_up() == 1 && b.peers_up() == 1
    }));
    // Silence b: it drops everything to/from node 1 at the socket level.
    let ctl = plwg_net::harness::Controller::new().expect("controller");
    ctl.block(b.local_addr().expect("addr"), &[NodeId(1)])
        .expect("send block");
    assert!(
        pump(&mut a, &mut pa, &mut b, &mut pb, 400, |a, _| {
            a.peer_state(NodeId(2)) == Some(PeerState::Down)
        }),
        "suspect timeout never fired"
    );
    assert!(a.trace_ref().count("net.peer.down") >= 1);
    assert_eq!(b.trace_ref().count("net.ctrl.block"), 1);
    // Lift the filter: the hello loop reconnects without outside help.
    ctl.unblock(b.local_addr().expect("addr"), &[NodeId(1)])
        .expect("send unblock");
    assert!(
        pump(&mut a, &mut pa, &mut b, &mut pb, 400, |a, b| {
            a.peers_up() == 1 && b.peers_up() == 1
        }),
        "peers never reconnected after unblock"
    );
    assert_eq!(b.trace_ref().count("net.ctrl.unblock"), 1);
    assert!(
        a.trace_ref().count("net.peer.up") >= 2,
        "reconnect must be a fresh net.peer.up"
    );
}

#[test]
fn bye_is_faster_than_the_suspect_timeout() {
    // Generous suspicion, so only a Bye can explain a quick Down.
    let slow = NetOptions::default()
        .with_heartbeat(SimDuration::from_millis(100), SimDuration::from_secs(30));
    let (mut a, mut b) = pair(slow.clone(), slow);
    let (mut pa, mut pb) = (Sink::new(), Sink::new());
    assert!(pump(&mut a, &mut pa, &mut b, &mut pb, 200, |a, b| {
        a.peers_up() == 1 && b.peers_up() == 1
    }));
    a.shutdown();
    assert!(
        pump(&mut a, &mut pa, &mut b, &mut pb, 100, |_, b| {
            b.peer_state(NodeId(1)) == Some(PeerState::Down)
        }),
        "goodbye never took the peer down"
    );
    assert!(b
        .trace_ref()
        .of_kind("net.peer.down")
        .any(|e| e.detail.contains("n1")));
}
