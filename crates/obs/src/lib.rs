//! # plwg-obs — observability for the PLWG stack
//!
//! Builds **causal protocol timelines** from the typed trace the simulator
//! records ([`plwg_sim::Trace`]): every layer of the stack (world faults,
//! the HWG substrate, the naming service, the LWG service) emits
//! [`plwg_sim::ProtocolEvent`]s carrying [`plwg_sim::EventRefs`] — view lineage,
//! flush identity, group ids — and this crate links those references into
//! a cross-node, causally-ordered rendering of a run.
//!
//! The flagship use is the paper's four-step partition heal (§6):
//! [`Timeline::heal_procedure`] extracts naming reconciliation →
//! MULTIPLE-MAPPINGS callback → mapping switch → MERGE-VIEWS single-flush
//! merge from a full run, each step annotated with the events that caused
//! it. The [`scenarios`] module packages deterministic worlds to build
//! timelines from (`cargo run --bin timeline -- heal`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;
mod timeline;

pub use timeline::{Timeline, TimelineEntry};
