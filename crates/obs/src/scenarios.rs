//! Deterministic scenario worlds to build timelines from.
//!
//! Each scenario constructs a [`World`] with tracing enabled, drives the
//! full PLWG stack (name servers + `LwgService` over the
//! virtually-synchronous substrate) through a scripted run, and returns
//! the world so callers can inspect `world.trace()` — the `timeline` bin
//! renders [`crate::Timeline::build`] over it.

use plwg_core::{LwgConfig, LwgNode};
use plwg_naming::{LwgId, NameServer, NamingConfig};
use plwg_sim::{Frame, NodeId, SimDuration, SimTime, World, WorldConfig};
use plwg_vsync::VsyncStack;

/// The production node type the scenarios simulate.
pub type Node = LwgNode<VsyncStack>;

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn traced_world() -> World {
    World::new(WorldConfig {
        trace: true,
        ..WorldConfig::default()
    })
}

/// Two members join one group and exchange a multicast — the smallest
/// end-to-end run (mirrors `examples/quickstart.rs`).
pub fn quickstart() -> World {
    let mut world = traced_world();
    let ns = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![],
        NamingConfig::default(),
    )));
    let a = world.add_node(Box::new(
        Node::builder(NodeId(1))
            .servers(vec![ns])
            .config(LwgConfig::default())
            .build()
            .expect("valid LWG config"),
    ));
    let b = world.add_node(Box::new(
        Node::builder(NodeId(2))
            .servers(vec![ns])
            .config(LwgConfig::default())
            .build()
            .expect("valid LWG config"),
    ));
    let g = LwgId(7);
    world.invoke(a, move |n: &mut Node, ctx| n.service().join(ctx, g));
    world.invoke_at(at(2), b, move |n: &mut Node, ctx| n.service().join(ctx, g));
    world.run_until(at(8));
    world.invoke(a, move |n: &mut Node, ctx| {
        n.service().send(ctx, g, Frame::from_u64(42));
    });
    world.run_until(at(10));
    world
}

/// The paper's headline scenario, on the variant that exercises the
/// **whole** four-step §6 procedure: the network is split *before* the
/// group exists, each side founds the group on its own freshly allocated
/// HWG, and the t=20s heal must run naming reconciliation →
/// MULTIPLE-MAPPINGS → the highest-gid mapping **switch** → the
/// MERGE-VIEWS single flush, back to one merged view.
pub fn heal() -> World {
    let mut world = World::new(WorldConfig {
        seed: 31,
        trace: true,
        ..WorldConfig::default()
    });
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let nodes: Vec<NodeId> = (2..6)
        .map(|i| {
            world.add_node(Box::new(
                Node::builder(NodeId(i))
                    .servers(vec![s0, s1])
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    let group = LwgId(9);
    world.split_at(
        at(1),
        vec![vec![s0, nodes[0], nodes[1]], vec![s1, nodes[2], nodes[3]]],
    );
    for (i, &n) in nodes.iter().enumerate() {
        world.invoke_at(
            at(2) + SimDuration::from_millis(400 * (i as u64 % 2)),
            n,
            move |app: &mut Node, ctx| app.service().join(ctx, group),
        );
    }
    world.run_until(at(18));
    // Both sides stay live in their concurrent views.
    for &(n, v) in &[(nodes[0], 100u64), (nodes[2], 200u64)] {
        world.invoke(n, move |app: &mut Node, ctx| {
            app.service().send(ctx, group, Frame::from_u64(v));
        });
    }
    world.heal_at(at(20));
    world.run_until(at(60));
    world
}

/// Membership churn without partitions: staggered joins, one voluntary
/// leave and one crash, exercising LWG flushes and the prune path.
pub fn churn() -> World {
    let mut world = traced_world();
    let ns = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![],
        NamingConfig::default(),
    )));
    let nodes: Vec<NodeId> = (1..5)
        .map(|i| {
            world.add_node(Box::new(
                Node::builder(NodeId(i))
                    .servers(vec![ns])
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    let g = LwgId(3);
    for (i, &n) in nodes.iter().enumerate() {
        world.invoke_at(at(i as u64), n, move |app: &mut Node, ctx| {
            app.service().join(ctx, g);
        });
    }
    world.run_until(at(10));
    let leaver = nodes[3];
    world.invoke(leaver, move |app: &mut Node, ctx| {
        app.service().leave(ctx, g)
    });
    world.run_until(at(15));
    world.crash(nodes[2]);
    world.run_until(at(25));
    world
}

/// Runs the scenario named `name` (`quickstart`, `heal` or `churn`).
/// Returns `None` for an unknown name.
pub fn by_name(name: &str) -> Option<World> {
    match name {
        "quickstart" => Some(quickstart()),
        "heal" => Some(heal()),
        "churn" => Some(churn()),
        _ => None,
    }
}

/// The scenario names [`by_name`] accepts.
pub const NAMES: &[&str] = &["quickstart", "heal", "churn"];
