//! The causal timeline: trace events ordered and linked by their
//! [`EventRefs`].
//!
//! The simulator is single-threaded and deterministic, so the emission
//! order of [`TraceEvent`]s is already a total order consistent with
//! causality. The timeline keeps that order and adds explicit *cause*
//! edges wherever two events share protocol identity:
//!
//! * **view lineage** — an event about view `v` is caused by the previous
//!   event about `v`, and by the events that introduced each of `v`'s
//!   predecessor views (`refs.parents`);
//! * **flush identity** — an event of flush `f` is caused by the previous
//!   event of `f` (so `hwg.flush.start → hwg.flush.member → …` chains up).

use plwg_sim::{EventRefs, NodeId, SimTime, Trace, TraceEvent, TraceLayer};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One event on the timeline, with its causal predecessors resolved to
/// timeline sequence numbers.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// Position in the timeline (index into [`Timeline::entries`]).
    pub seq: usize,
    /// Simulated time of the event.
    pub time: SimTime,
    /// Emitting node (`None` for world-level fault injection).
    pub node: Option<NodeId>,
    /// The protocol layer that emitted the event.
    pub layer: TraceLayer,
    /// Canonical event kind (e.g. `lwg.merge`).
    pub kind: &'static str,
    /// Human-readable details.
    pub detail: String,
    /// The layer-agnostic protocol references the event carried.
    pub refs: EventRefs,
    /// Sequence numbers of the events this one is causally linked to.
    pub causes: Vec<usize>,
}

impl std::fmt::Display for TimelineEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let node = match self.node {
            Some(n) => n.to_string(),
            None => "world".to_string(),
        };
        write!(
            f,
            "#{:04} [{} {} {}] {}: {}",
            self.seq, self.time, node, self.layer, self.kind, self.detail
        )?;
        if !self.causes.is_empty() {
            let list: Vec<String> = self.causes.iter().map(|c| format!("#{c:04}")).collect();
            write!(f, "   <- {}", list.join(" "))?;
        }
        Ok(())
    }
}

/// A causally-linked, cross-node ordering of a run's protocol events.
#[derive(Debug, Default)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Builds the timeline from a recorded trace, resolving the causal
    /// links described in the module docs.
    pub fn build(trace: &Trace) -> Self {
        Self::from_events(trace.events())
    }

    /// Builds the timeline from a slice of trace events (already in
    /// emission order).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        // Last timeline position that mentioned a given view / flush key.
        let mut view_last: BTreeMap<(u32, u64), usize> = BTreeMap::new();
        let mut flush_last: BTreeMap<(u32, u64), usize> = BTreeMap::new();
        let mut entries = Vec::with_capacity(events.len());
        for (seq, ev) in events.iter().enumerate() {
            let mut causes: BTreeSet<usize> = BTreeSet::new();
            if let Some(f) = ev.refs.flush {
                if let Some(&prev) = flush_last.get(&f) {
                    causes.insert(prev);
                }
                flush_last.insert(f, seq);
            }
            for p in &ev.refs.parents {
                if let Some(&prev) = view_last.get(p) {
                    causes.insert(prev);
                }
            }
            if let Some(v) = ev.refs.view {
                if let Some(&prev) = view_last.get(&v) {
                    causes.insert(prev);
                }
                view_last.insert(v, seq);
            }
            entries.push(TimelineEntry {
                seq,
                time: ev.time,
                node: ev.node,
                layer: ev.layer,
                kind: ev.kind,
                detail: ev.detail.clone(),
                refs: ev.refs.clone(),
                causes: causes.into_iter().collect(),
            });
        }
        Timeline { entries }
    }

    /// All entries, in causally-consistent emission order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Entries of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TimelineEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Entries whose refs mention light-weight group `lwg`.
    pub fn of_lwg(&self, lwg: u64) -> impl Iterator<Item = &TimelineEntry> {
        self.entries.iter().filter(move |e| e.refs.lwg == Some(lwg))
    }

    /// Renders the whole timeline, one entry per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// The paper's four-step heal procedure (§6), extracted from the run:
    /// every entry from the heal fault (or the first naming
    /// reconciliation, whichever exists) onward whose kind participates in
    /// the procedure — naming reconciliation, MULTIPLE-MAPPINGS callbacks,
    /// mapping switches, and the MERGE-VIEWS flush with the merges it
    /// produced — in causal order.
    pub fn heal_procedure(&self) -> Vec<&TimelineEntry> {
        const HEAL_KINDS: &[&str] = &[
            "world.heal",
            "ns.reconcile",
            "ns.multiple_mappings",
            "lwg.reconcile",
            "lwg.switch.start",
            "lwg.switch.complete",
            "hwg.merge.start",
            "hwg.merge.accept",
            "hwg.merge.complete",
            "lwg.merge",
        ];
        let start = self
            .entries
            .iter()
            .position(|e| e.kind == "world.heal")
            .unwrap_or(0);
        self.entries[start..]
            .iter()
            .filter(|e| HEAL_KINDS.contains(&e.kind))
            .collect()
    }

    /// Merged-view announcements (`lwg.merge`) for one group — the single
    /// MERGE-VIEWS conclusion per healed LWG the paper's Fig. 5 promises.
    pub fn merges_of(&self, lwg: u64) -> Vec<&TimelineEntry> {
        self.of_kind("lwg.merge")
            .filter(|e| e.refs.lwg == Some(lwg))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plwg_core::LwgProtocolEvent;
    use plwg_hwg::{view_key, View, ViewId};
    use plwg_naming::{LwgId, NamingEvent};
    use plwg_sim::NodeId;

    fn mini_heal_trace() -> Trace {
        let mut t = Trace::new(true);
        let n1 = NodeId(1);
        let n3 = NodeId(3);
        let va = ViewId::new(n1, 2);
        let vb = ViewId::new(n3, 2);
        let t1 = SimTime::from_micros(1_000_000);
        t.record(t1, Some(NodeId(0)), || NamingEvent::Reconcile {
            changed: vec![LwgId(1)],
        });
        t.record(t1, Some(NodeId(0)), || NamingEvent::MultipleMappings {
            lwg: LwgId(1),
            mappings: 2,
            targets: vec![n1, n3],
        });
        let merged = View::with_predecessors(ViewId::new(n1, 3), vec![n1, n3], vec![va, vb]);
        // The concurrent views enter the record via installs…
        t.record(t1, Some(n1), || LwgProtocolEvent::ViewInstall {
            lwg: LwgId(1),
            view: View::initial(va, vec![n1]),
            hwg: plwg_hwg::HwgId(7),
        });
        t.record(t1, Some(n3), || LwgProtocolEvent::ViewInstall {
            lwg: LwgId(1),
            view: View::initial(vb, vec![n3]),
            hwg: plwg_hwg::HwgId(9),
        });
        // …and the merge links back to both of them.
        t.record(SimTime::from_micros(2_000_000), Some(n1), || {
            LwgProtocolEvent::Merge {
                lwg: LwgId(1),
                concurrent: vec![va, vb],
                merged,
            }
        });
        t
    }

    #[test]
    fn merge_is_caused_by_both_concurrent_views() {
        let trace = mini_heal_trace();
        let tl = Timeline::build(&trace);
        let merge = tl.of_kind("lwg.merge").next().expect("merge entry");
        // The two ViewInstall entries are seq 2 and 3.
        assert_eq!(merge.causes, vec![2, 3]);
        assert_eq!(tl.merges_of(1).len(), 1);
        let refs = &merge.refs;
        let trace_views: Vec<(u32, u64)> = vec![
            view_key(ViewId::new(NodeId(1), 2)),
            view_key(ViewId::new(NodeId(3), 2)),
        ];
        assert_eq!(refs.parents, trace_views);
    }

    #[test]
    fn heal_procedure_orders_the_four_steps() {
        let trace = mini_heal_trace();
        let tl = Timeline::build(&trace);
        let steps: Vec<&str> = tl.heal_procedure().iter().map(|e| e.kind).collect();
        assert_eq!(
            steps,
            vec!["ns.reconcile", "ns.multiple_mappings", "lwg.merge"]
        );
    }

    #[test]
    fn render_contains_cause_arrows() {
        let trace = mini_heal_trace();
        let tl = Timeline::build(&trace);
        let text = tl.render();
        assert!(text.contains("lwg.merge"));
        assert!(text.contains("<- #0002 #0003"));
    }
}
