//! The shared error type of configuration validation.
//!
//! Every `plwg-*` crate with a config struct (`HwgConfig`, `NamingConfig`,
//! `LwgConfig`, the net runtime's tunables) exposes a
//! `validate() -> Result<(), ConfigError>` that names the offending field
//! and why it is rejected. Builders surface the error instead of
//! panicking; the deprecated panicking constructors wrap it in `expect`.

use std::fmt;

/// A rejected configuration: which knob, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError {
    /// The field (or field pair) that failed validation.
    pub field: &'static str,
    /// Why the value is invalid.
    pub reason: &'static str,
}

impl ConfigError {
    /// Builds an error for `field` rejected because of `reason`.
    pub const fn new(field: &'static str, reason: &'static str) -> Self {
        ConfigError { field, reason }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_field_and_reason() {
        let e = ConfigError::new("pack_max_msgs", "must be >= 1");
        assert_eq!(
            e.to_string(),
            "invalid config `pack_max_msgs`: must be >= 1"
        );
    }
}
