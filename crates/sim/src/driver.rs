//! A generic [`Process`] adapter for protocol endpoints.
//!
//! Every protocol layer in this workspace exposes the same plumbing shape:
//! `start`, an `on_message`/`on_timer` pair returning whether the input was
//! consumed, and a `drain_events` queue of upcalls. Putting such an
//! endpoint on a simulated node used to mean hand-writing the same
//! [`Process`] demux in every example and harness; [`Driver`] writes it
//! once. Implement [`Endpoint`] for the layer and `Box<Driver<E>>` is
//! ready for [`crate::World::add_node`].

use crate::node::{NodeId, Payload, Process, TimerToken};
use crate::transport::Transport;
use std::any::Any;

/// A protocol endpoint drivable by the standard message/timer plumbing.
pub trait Endpoint {
    /// The upcall type the endpoint produces.
    type Event;

    /// Called once from the owning process's `on_start`.
    fn start(&mut self, ctx: &mut dyn Transport);

    /// Offers an incoming message; returns `true` when consumed.
    fn handle_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &Payload) -> bool;

    /// Offers a timer firing; returns `true` when consumed.
    fn handle_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) -> bool;

    /// Takes the upcalls produced since the last call.
    fn drain(&mut self) -> Vec<Self::Event>;
}

/// Runs an [`Endpoint`] as a simulated [`Process`], accumulating its
/// upcalls for later inspection (via [`crate::World::inspect`]).
pub struct Driver<E: Endpoint> {
    endpoint: E,
    events: Vec<E::Event>,
}

impl<E: Endpoint> Driver<E> {
    /// Wraps `endpoint`.
    pub fn new(endpoint: E) -> Self {
        Driver {
            endpoint,
            events: Vec::new(),
        }
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &E {
        &self.endpoint
    }

    /// Mutable access to the wrapped endpoint (down-calls).
    pub fn endpoint_mut(&mut self) -> &mut E {
        &mut self.endpoint
    }

    /// All upcalls recorded so far, in delivery order.
    pub fn events(&self) -> &[E::Event] {
        &self.events
    }

    /// Takes the recorded upcalls.
    pub fn take_events(&mut self) -> Vec<E::Event> {
        std::mem::take(&mut self.events)
    }
}

impl<E: Endpoint + 'static> Process for Driver<E> {
    fn on_start(&mut self, ctx: &mut dyn Transport) {
        self.endpoint.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
        if self.endpoint.handle_message(ctx, from, &msg) {
            self.events.extend(self.endpoint.drain());
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
        if self.endpoint.handle_timer(ctx, token) {
            self.events.extend(self.endpoint.drain());
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<E: Endpoint + std::fmt::Debug> std::fmt::Debug for Driver<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver")
            .field("endpoint", &self.endpoint)
            .field("events", &self.events.len())
            .finish()
    }
}
