//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence-number)`: ties in virtual time are
//! broken by insertion order, which makes every run with the same seed and
//! the same schedule bit-for-bit reproducible.

use crate::node::{NodeId, Payload, TimerToken};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What a queued event does when it is popped.
pub(crate) enum EventKind {
    /// Deliver a message to a node.
    Deliver {
        /// Destination node.
        to: NodeId,
        /// Source node.
        from: NodeId,
        /// The payload.
        msg: Payload,
    },
    /// Fire a timer slot on a node (stale if `generation` no longer matches).
    Timer {
        /// Node owning the timer.
        node: NodeId,
        /// The process-chosen slot.
        token: TimerToken,
        /// Slot generation at arm time; used for lazy cancellation.
        generation: u64,
    },
    /// Run a control action (topology change, crash, invoke, …) against the
    /// whole world. Boxed so experiment schedules can capture state.
    Control(Box<dyn FnOnce(&mut crate::world::World)>),
}

/// An event with its firing time and tie-break sequence number.
pub struct QueuedEvent {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered queue of pending events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { time, seq, kind });
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop()
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(
            t(30),
            EventKind::Timer {
                node: NodeId(0),
                token: TimerToken(3),
                generation: 1,
            },
        );
        q.push(
            t(10),
            EventKind::Timer {
                node: NodeId(0),
                token: TimerToken(1),
                generation: 1,
            },
        );
        q.push(
            t(20),
            EventKind::Timer {
                node: NodeId(0),
                token: TimerToken(2),
                generation: 1,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(
                t(42),
                EventKind::Timer {
                    node: NodeId(0),
                    token: TimerToken(i),
                    generation: 1,
                },
            );
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(
            t(99),
            EventKind::Timer {
                node: NodeId(0),
                token: TimerToken(0),
                generation: 1,
            },
        );
        q.push(
            t(7),
            EventKind::Timer {
                node: NodeId(0),
                token: TimerToken(0),
                generation: 2,
            },
        );
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
