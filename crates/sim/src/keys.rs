//! Canonical metric keys owned by the simulator itself.
//!
//! Each layer of the stack declares its keys in a module like this one
//! (`plwg_vsync::keys`, `plwg_naming::keys`, `plwg_core::keys`), so
//! writers and readers share one typed spelling per metric.

use crate::metrics::CounterKey;

/// Messages handed to the network model by [`crate::Context::send`].
pub const NET_SENT: CounterKey = CounterKey::new("net.sent");
/// Messages delivered to a live, reachable process.
pub const NET_DELIVERED: CounterKey = CounterKey::new("net.delivered");
/// Messages dropped by loss, partition or crash.
pub const NET_DROPPED: CounterKey = CounterKey::new("net.dropped");
