//! Canonical metric keys owned by the simulator itself.
//!
//! Each layer of the stack declares its keys in a module like this one
//! (`plwg_vsync::keys`, `plwg_naming::keys`, `plwg_core::keys`), so
//! writers and readers share one typed spelling per metric.

use crate::metrics::{CounterKey, HistogramKey};

/// Messages handed to the network model by [`crate::Context::send`].
pub const NET_SENT: CounterKey = CounterKey::new("net.sent");
/// Messages delivered to a live, reachable process.
pub const NET_DELIVERED: CounterKey = CounterKey::new("net.delivered");
/// Messages dropped by loss, partition or crash.
pub const NET_DROPPED: CounterKey = CounterKey::new("net.dropped");
/// Encoded frame bytes handed to the network model (per-copy: a multicast
/// counts each receiver's copy, like [`NET_SENT`] does).
pub const NET_BYTES_SENT: CounterKey = CounterKey::new("net.bytes_sent");
/// Distribution of encoded frame sizes on the wire.
pub const NET_FRAME_BYTES: HistogramKey = HistogramKey::new("net.frame_bytes");
