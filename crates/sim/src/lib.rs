//! # plwg-sim — deterministic discrete-event simulation substrate
//!
//! This crate provides the execution substrate on which the whole PLWG stack
//! (heavy-weight groups, naming service, light-weight group service) runs:
//! a single-threaded, fully deterministic discrete-event simulator with an
//! explicit network model that supports **partitions** — the phenomenon the
//! reproduced paper (Rodrigues & Guo, *Partitionable Light-Weight Groups*,
//! ICDCS 2000) is about.
//!
//! The simulator replaces the paper's physical testbed (Horus on SPARC
//! workstations over 10 Mbps Ethernet). Protocol code written against the
//! [`Process`] trait and [`Context`] handle is oblivious to the fact that it
//! runs in virtual time.
//!
//! ## Quick tour
//!
//! Payloads are encoded byte [`Frame`]s — the simulator moves bytes, and
//! protocol crates bring their own codec (see `plwg-wire`).
//!
//! ```
//! use plwg_sim::{World, WorldConfig, Process, Transport, Frame, TimerToken, Payload};
//!
//! /// A process that says hello to its peer once.
//! struct Hello { peer: Option<plwg_sim::NodeId> }
//!
//! impl Process for Hello {
//!     fn on_start(&mut self, ctx: &mut dyn Transport) {
//!         if let Some(peer) = self.peer {
//!             ctx.send(peer, Frame::copy_from_slice(b"hi"));
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut dyn Transport, from: plwg_sim::NodeId, msg: Payload) {
//!         assert_eq!(&msg[..], b"hi");
//!         println!("got {} bytes from {from}", msg.len());
//!     }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut world = World::new(WorldConfig::default());
//! let b = world.add_node(Box::new(Hello { peer: None }));
//! let _a = world.add_node(Box::new(Hello { peer: Some(b) }));
//! world.run_for(plwg_sim::SimDuration::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config_error;
mod driver;
mod event;
pub mod keys;
mod metrics;
mod net;
mod node;
mod rng;
mod time;
mod topology;
mod trace;
mod transport;
mod world;

pub use config_error::ConfigError;
pub use driver::{Driver, Endpoint};
pub use event::{EventQueue, QueuedEvent};
pub use metrics::{
    CounterKey, GaugeKey, Histogram, HistogramKey, HistogramSummary, MetricLabels, Metrics,
    MetricsRegistry,
};
pub use net::{DeliveryDecision, NetConfig};
pub use node::{Context, NodeId, Payload, Process, TimerToken};
pub use plwg_wire::{
    decode_frame, encode_frame, family, peek_family, Decode, Encode, Frame, Reader, WireError,
};
pub use rng::SimRng;
pub use time::{Clock, ManualClock, SimDuration, SimTime};
pub use topology::{ComponentId, LinkState, Topology};
pub use trace::{EventRefs, ProtocolEvent, SimEvent, Trace, TraceEvent, TraceLayer};
pub use transport::{Transport, TransportExt};
pub use world::{World, WorldConfig};
