//! Counters and histograms collected during a run.
//!
//! The experiment harness reads these to regenerate the paper's figures:
//! latency histograms, message counts, throughput, recovery times.

use std::collections::BTreeMap;

/// A set of values summarised by quantiles.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    values: Vec<u64>,
}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Iterates over samples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.values.iter().copied()
    }

    /// Computes summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        if self.values.is_empty() {
            return HistogramSummary {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p95: 0,
                p99: 0,
            };
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            let idx = ((sorted.len() as f64 - 1.0) * p).floor() as usize;
            sorted.get(idx).copied().unwrap_or(0)
        };
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        HistogramSummary {
            count: sorted.len(),
            min: sorted.first().copied().unwrap_or(0),
            max: sorted.last().copied().unwrap_or(0),
            mean: sum as f64 / sorted.len() as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

/// The world's metric sink: named counters and histograms.
///
/// Names are free-form dotted strings (`"net.sent"`, `"lwg.switches"`).
/// `BTreeMap` keeps report output deterministically ordered.
///
/// ```
/// let mut m = plwg_sim::Metrics::new();
/// m.incr("net.sent");
/// m.add("net.sent", 2);
/// m.observe("latency_us", 1_500);
/// assert_eq!(m.counter("net.sent"), 3);
/// assert_eq!(m.histogram("latency_us").map(|h| h.summary().max), Some(1_500));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to counter `name`.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::default();
            h.record(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// The histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histogram names, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Clears all counters and histograms. Experiments use this to scope
    /// measurement to a phase (e.g. drop setup traffic, measure steady
    /// state only).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// Merges `other` into `self` (counters add, histograms concatenate).
    /// Used when aggregating repeated trials of one experiment.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, h) in &other.histograms {
            for v in h.iter() {
                self.observe(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("a");
        m.add("a", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_summary_quantiles() {
        let mut h = Histogram::default();
        for v in 1..=100 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn merge_combines_both_kinds() {
        let mut a = Metrics::new();
        a.add("c", 2);
        a.observe("h", 10);
        let mut b = Metrics::new();
        b.add("c", 3);
        b.observe("h", 20);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.histogram("h").map(|h| h.count()), Some(2));
    }

    #[test]
    fn counters_iteration_is_sorted() {
        let mut m = Metrics::new();
        m.incr("z");
        m.incr("a");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
