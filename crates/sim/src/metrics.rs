//! The metrics registry: counters, gauges and histograms collected during
//! a run.
//!
//! Metrics are addressed by **typed keys** ([`CounterKey`], [`GaugeKey`],
//! [`HistogramKey`]) — thin `'static`-string newtypes each protocol crate
//! declares as constants in a `keys` module — optionally qualified by
//! [`MetricLabels`] (per-node and per-LWG). The experiment harness reads
//! the registry to regenerate the paper's figures: latency histograms,
//! message counts, throughput, recovery times.

use crate::node::NodeId;
use std::collections::BTreeMap;

/// Typed name of a counter metric.
///
/// Crates declare these as constants (`pub const NET_SENT: CounterKey =
/// CounterKey::new("net.sent");`); plain `&'static str` literals also
/// convert for ad-hoc use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CounterKey(pub &'static str);

/// Typed name of a gauge metric (a value that goes up and down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GaugeKey(pub &'static str);

/// Typed name of a histogram metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HistogramKey(pub &'static str);

macro_rules! key_impls {
    ($key:ident) => {
        impl $key {
            /// Creates a key from its canonical dotted name.
            pub const fn new(name: &'static str) -> Self {
                $key(name)
            }

            /// The canonical dotted name.
            pub const fn name(self) -> &'static str {
                self.0
            }
        }

        impl From<&'static str> for $key {
            fn from(name: &'static str) -> Self {
                $key(name)
            }
        }

        impl std::fmt::Display for $key {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(self.0)
            }
        }
    };
}

key_impls!(CounterKey);
key_impls!(GaugeKey);
key_impls!(HistogramKey);

/// Label set qualifying a metric sample.
///
/// The default (no labels) is the **global** series. Protocol code that
/// wants per-node or per-group breakdowns records under a labelled series;
/// unlabelled reads aggregate across every series of the key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricLabels {
    /// The node the sample belongs to, if attributed.
    pub node: Option<u32>,
    /// The light-weight group the sample belongs to (raw `LwgId`), if any.
    pub lwg: Option<u64>,
}

impl MetricLabels {
    /// The unlabelled, world-global series.
    pub const GLOBAL: MetricLabels = MetricLabels {
        node: None,
        lwg: None,
    };

    /// A per-node series.
    pub fn node(node: NodeId) -> Self {
        MetricLabels {
            node: Some(node.0),
            lwg: None,
        }
    }

    /// A per-LWG series (pass the raw `LwgId` value).
    pub fn lwg(lwg: u64) -> Self {
        MetricLabels {
            node: None,
            lwg: Some(lwg),
        }
    }

    /// A per-node, per-LWG series.
    pub fn node_lwg(node: NodeId, lwg: u64) -> Self {
        MetricLabels {
            node: Some(node.0),
            lwg: Some(lwg),
        }
    }
}

/// A set of values summarised by quantiles.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    values: Vec<u64>,
}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Iterates over samples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.values.iter().copied()
    }

    /// Computes summary statistics.
    ///
    /// Percentiles use the nearest-rank method: `p`-th percentile = the
    /// `ceil(p·n)`-th smallest sample. With few samples this errs towards
    /// the larger sample — for `n = 2`, p95 and p99 report the max, not
    /// the min — which is the conservative choice for latency reporting.
    pub fn summary(&self) -> HistogramSummary {
        if self.values.is_empty() {
            return HistogramSummary {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p95: 0,
                p99: 0,
            };
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let pct = |p: f64| -> u64 {
            // Nearest-rank: smallest sample with at least p·n samples ≤ it.
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            sorted[rank - 1]
        };
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        HistogramSummary {
            count: n,
            min: sorted.first().copied().unwrap_or(0),
            max: sorted.last().copied().unwrap_or(0),
            mean: sum as f64 / n as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

/// Backwards-compatible alias: the registry replaced the old `Metrics`
/// sink, keeping its unlabelled API surface intact.
pub type Metrics = MetricsRegistry;

/// The world's metric sink: counters, gauges and histograms addressed by
/// typed keys and optional [`MetricLabels`].
///
/// Key names are dotted strings (`"net.sent"`, `"lwg.switches"`); each
/// crate exports its canonical keys in a `keys` module. `BTreeMap` keeps
/// report output deterministically ordered.
///
/// ```
/// use plwg_sim::{CounterKey, MetricLabels, MetricsRegistry, NodeId};
/// const NET_SENT: CounterKey = CounterKey::new("net.sent");
///
/// let mut m = MetricsRegistry::new();
/// m.incr(NET_SENT);
/// m.add(NET_SENT, 2);
/// m.incr_for(NET_SENT, MetricLabels::node(NodeId(3)));
/// m.observe("latency_us", 1_500);
/// assert_eq!(m.counter(NET_SENT), 4); // aggregated across labels
/// assert_eq!(m.counter_for(NET_SENT, MetricLabels::node(NodeId(3))), 1);
/// assert_eq!(m.histogram("latency_us").map(|h| h.summary().max), Some(1_500));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<(CounterKey, MetricLabels), u64>,
    gauges: BTreeMap<(GaugeKey, MetricLabels), i64>,
    histograms: BTreeMap<(HistogramKey, MetricLabels), Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // -- counters ------------------------------------------------------

    /// Adds 1 to the global series of counter `key`.
    pub fn incr(&mut self, key: impl Into<CounterKey>) {
        self.add(key, 1);
    }

    /// Adds `delta` to the global series of counter `key`.
    pub fn add(&mut self, key: impl Into<CounterKey>, delta: u64) {
        self.add_for(key, MetricLabels::GLOBAL, delta);
    }

    /// Adds 1 to the `labels` series of counter `key`.
    pub fn incr_for(&mut self, key: impl Into<CounterKey>, labels: MetricLabels) {
        self.add_for(key, labels, 1);
    }

    /// Adds `delta` to the `labels` series of counter `key`.
    pub fn add_for(&mut self, key: impl Into<CounterKey>, labels: MetricLabels, delta: u64) {
        *self.counters.entry((key.into(), labels)).or_insert(0) += delta;
    }

    /// Value of counter `key` summed across all label series (0 if never
    /// touched).
    pub fn counter(&self, key: impl Into<CounterKey>) -> u64 {
        let key = key.into();
        self.counters
            .range((key, MetricLabels::default())..)
            .take_while(|((k, _), _)| *k == key)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Value of one labelled series of counter `key` (0 if never touched).
    pub fn counter_for(&self, key: impl Into<CounterKey>, labels: MetricLabels) -> u64 {
        self.counters
            .get(&(key.into(), labels))
            .copied()
            .unwrap_or(0)
    }

    /// All counters aggregated by key name, sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> {
        let mut agg: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ((k, _), &v) in &self.counters {
            *agg.entry(k.name()).or_insert(0) += v;
        }
        agg.into_iter()
    }

    /// Every labelled counter series, sorted by (key, labels).
    pub fn counters_labeled(&self) -> impl Iterator<Item = (CounterKey, MetricLabels, u64)> + '_ {
        self.counters.iter().map(|(&(k, l), &v)| (k, l, v))
    }

    // -- gauges --------------------------------------------------------

    /// Sets the global series of gauge `key`.
    pub fn set_gauge(&mut self, key: impl Into<GaugeKey>, value: i64) {
        self.set_gauge_for(key, MetricLabels::GLOBAL, value);
    }

    /// Sets the `labels` series of gauge `key`.
    pub fn set_gauge_for(&mut self, key: impl Into<GaugeKey>, labels: MetricLabels, value: i64) {
        self.gauges.insert((key.into(), labels), value);
    }

    /// The global series of gauge `key`, if ever set.
    pub fn gauge(&self, key: impl Into<GaugeKey>) -> Option<i64> {
        self.gauge_for(key, MetricLabels::GLOBAL)
    }

    /// One labelled series of gauge `key`, if ever set.
    pub fn gauge_for(&self, key: impl Into<GaugeKey>, labels: MetricLabels) -> Option<i64> {
        self.gauges.get(&(key.into(), labels)).copied()
    }

    /// Every labelled gauge series, sorted by (key, labels).
    pub fn gauges_labeled(&self) -> impl Iterator<Item = (GaugeKey, MetricLabels, i64)> + '_ {
        self.gauges.iter().map(|(&(k, l), &v)| (k, l, v))
    }

    // -- histograms ----------------------------------------------------

    /// Records `value` into the global series of histogram `key`.
    pub fn observe(&mut self, key: impl Into<HistogramKey>, value: u64) {
        self.observe_for(key, MetricLabels::GLOBAL, value);
    }

    /// Records `value` into the `labels` series of histogram `key`.
    pub fn observe_for(&mut self, key: impl Into<HistogramKey>, labels: MetricLabels, value: u64) {
        self.histograms
            .entry((key.into(), labels))
            .or_default()
            .record(value);
    }

    /// The histogram `key` merged across all label series, if any sample
    /// was recorded.
    pub fn histogram(&self, key: impl Into<HistogramKey>) -> Option<Histogram> {
        let key = key.into();
        let mut merged: Option<Histogram> = None;
        for ((k, _), h) in self
            .histograms
            .range((key, MetricLabels::default())..)
            .take_while(|((k, _), _)| *k == key)
        {
            debug_assert_eq!(*k, key);
            let m = merged.get_or_insert_with(Histogram::default);
            for v in h.iter() {
                m.record(v);
            }
        }
        merged
    }

    /// One labelled series of histogram `key`, if any sample was recorded.
    pub fn histogram_for(
        &self,
        key: impl Into<HistogramKey>,
        labels: MetricLabels,
    ) -> Option<&Histogram> {
        self.histograms.get(&(key.into(), labels))
    }

    /// All histogram key names, sorted and de-duplicated.
    pub fn histogram_names(&self) -> impl Iterator<Item = &'static str> {
        let names: BTreeMap<&'static str, ()> = self
            .histograms
            .keys()
            .map(|(k, _)| (k.name(), ()))
            .collect();
        names.into_keys()
    }

    // -- lifecycle -----------------------------------------------------

    /// Clears all counters, gauges and histograms. Experiments use this to
    /// scope measurement to a phase (e.g. drop setup traffic, measure
    /// steady state only).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Merges `other` into `self` (counters add, gauges overwrite,
    /// histograms concatenate), series by series. Used when aggregating
    /// repeated trials of one experiment.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&(k, l), &v) in &other.counters {
            self.add_for(k, l, v);
        }
        for (&(k, l), &v) in &other.gauges {
            self.set_gauge_for(k, l, v);
        }
        for (&(k, l), h) in &other.histograms {
            for v in h.iter() {
                self.observe_for(k, l, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.incr("a");
        m.add("a", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn labelled_counters_aggregate_on_global_read() {
        let mut m = MetricsRegistry::new();
        m.incr("a");
        m.incr_for("a", MetricLabels::node(NodeId(1)));
        m.add_for("a", MetricLabels::node_lwg(NodeId(1), 7), 3);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter_for("a", MetricLabels::node(NodeId(1))), 1);
        assert_eq!(m.counter_for("a", MetricLabels::GLOBAL), 1);
        assert_eq!(m.counter_for("a", MetricLabels::lwg(7)), 0);
        let series: Vec<_> = m.counters_labeled().collect();
        assert_eq!(series.len(), 3);
        let agg: Vec<_> = m.counters().collect();
        assert_eq!(agg, vec![("a", 5)]);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 5);
        m.set_gauge("g", -2);
        assert_eq!(m.gauge("g"), Some(-2));
        m.set_gauge_for("g", MetricLabels::lwg(1), 9);
        assert_eq!(m.gauge_for("g", MetricLabels::lwg(1)), Some(9));
        assert_eq!(m.gauges_labeled().count(), 2);
    }

    #[test]
    fn histogram_summary_quantiles() {
        let mut h = Histogram::default();
        for v in 1..=100 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p95, 0);
    }

    #[test]
    fn one_sample_histogram_reports_it_everywhere() {
        let mut h = Histogram::default();
        h.record(42);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max), (42, 42));
        assert_eq!((s.p50, s.p95, s.p99), (42, 42, 42));
    }

    #[test]
    fn two_sample_histogram_upper_percentiles_hit_max() {
        let mut h = Histogram::default();
        h.record(10);
        h.record(90);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50, 10);
        // Nearest-rank: p95 of two samples is the larger one (the old
        // floor-based index wrongly reported the min here).
        assert_eq!(s.p95, 90);
        assert_eq!(s.p99, 90);
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.add("c", 2);
        a.observe("h", 10);
        a.set_gauge("g", 1);
        let mut b = MetricsRegistry::new();
        b.add("c", 3);
        b.observe("h", 20);
        b.observe_for("h", MetricLabels::node(NodeId(2)), 30);
        b.set_gauge("g", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.histogram("h").map(|h| h.count()), Some(3));
        assert_eq!(
            a.histogram_for("h", MetricLabels::GLOBAL)
                .map(Histogram::count),
            Some(2)
        );
        assert_eq!(a.gauge("g"), Some(7));
    }

    #[test]
    fn counters_iteration_is_sorted() {
        let mut m = MetricsRegistry::new();
        m.incr("z");
        m.incr("a");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn histogram_names_deduplicate_across_labels() {
        let mut m = MetricsRegistry::new();
        m.observe("h", 1);
        m.observe_for("h", MetricLabels::lwg(4), 2);
        m.observe("b", 3);
        let names: Vec<&str> = m.histogram_names().collect();
        assert_eq!(names, vec!["b", "h"]);
    }
}
