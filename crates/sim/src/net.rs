//! The message-level network model: latency sampling and loss.
//!
//! Stands in for the paper's loaded 10 Mbps Ethernet (UDP/IP with IP
//! multicast). Latency is `base + U[0, jitter) `, scaled by the topology's
//! congestion factor; messages are dropped with probability `loss` and, of
//! course, whenever sender and receiver are in different components.

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;
use crate::topology::Topology;

/// Network model parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Fixed one-way latency component.
    pub base_latency: SimDuration,
    /// Uniform jitter added on top of `base_latency`.
    pub jitter: SimDuration,
    /// Independent per-message loss probability in `[0, 1]`.
    pub loss: f64,
}

impl Default for NetConfig {
    /// A LAN-ish default: 1 ms ± 0.5 ms, lossless.
    fn default() -> Self {
        NetConfig {
            base_latency: SimDuration::from_micros(1_000),
            jitter: SimDuration::from_micros(500),
            loss: 0.0,
        }
    }
}

/// The outcome of the network model for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryDecision {
    /// Deliver after this sampled latency.
    Deliver(SimDuration),
    /// Drop silently (loss or partition).
    Drop,
}

impl NetConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.loss),
            "loss probability must be in [0,1], got {}",
            self.loss
        );
    }

    /// Decides the fate of a message from `from` to `to` right now.
    pub fn decide(
        &self,
        topology: &Topology,
        rng: &mut SimRng,
        from: NodeId,
        to: NodeId,
    ) -> DeliveryDecision {
        if !topology.can_reach(from, to) {
            return DeliveryDecision::Drop;
        }
        if self.loss > 0.0 && rng.chance(self.loss) {
            return DeliveryDecision::Drop;
        }
        let jitter_us = if self.jitter == SimDuration::ZERO {
            0
        } else {
            rng.range(0, self.jitter.as_micros())
        };
        let raw = self.base_latency + SimDuration::from_micros(jitter_us);
        DeliveryDecision::Deliver(raw.mul_f64(topology.congestion()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Topology, SimRng) {
        (Topology::fully_connected(2), SimRng::from_seed(11))
    }

    #[test]
    fn lossless_always_delivers_within_bounds() {
        let (topo, mut rng) = setup();
        let cfg = NetConfig::default();
        for _ in 0..200 {
            match cfg.decide(&topo, &mut rng, NodeId(0), NodeId(1)) {
                DeliveryDecision::Deliver(lat) => {
                    assert!(lat >= cfg.base_latency);
                    assert!(lat < cfg.base_latency + cfg.jitter);
                }
                DeliveryDecision::Drop => panic!("lossless net dropped a message"),
            }
        }
    }

    #[test]
    fn partition_drops_everything() {
        let (mut topo, mut rng) = setup();
        topo.split(&[&[NodeId(0)], &[NodeId(1)]]);
        let cfg = NetConfig::default();
        for _ in 0..50 {
            assert_eq!(
                cfg.decide(&topo, &mut rng, NodeId(0), NodeId(1)),
                DeliveryDecision::Drop
            );
        }
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let (topo, mut rng) = setup();
        let cfg = NetConfig {
            loss: 0.3,
            ..NetConfig::default()
        };
        let trials = 5_000;
        let dropped = (0..trials)
            .filter(|_| cfg.decide(&topo, &mut rng, NodeId(0), NodeId(1)) == DeliveryDecision::Drop)
            .count();
        let rate = dropped as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed loss {rate}");
    }

    #[test]
    fn congestion_inflates_latency() {
        let (mut topo, mut rng) = setup();
        let cfg = NetConfig {
            jitter: SimDuration::ZERO,
            ..NetConfig::default()
        };
        topo.set_congestion(10.0);
        match cfg.decide(&topo, &mut rng, NodeId(0), NodeId(1)) {
            DeliveryDecision::Deliver(lat) => {
                assert_eq!(lat, cfg.base_latency.mul_f64(10.0));
            }
            DeliveryDecision::Drop => panic!("unexpected drop"),
        }
    }

    #[test]
    fn zero_jitter_is_deterministic_latency() {
        let (topo, mut rng) = setup();
        let cfg = NetConfig {
            jitter: SimDuration::ZERO,
            ..NetConfig::default()
        };
        let a = cfg.decide(&topo, &mut rng, NodeId(0), NodeId(1));
        let b = cfg.decide(&topo, &mut rng, NodeId(0), NodeId(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn validate_rejects_bad_loss() {
        NetConfig {
            loss: 1.5,
            ..NetConfig::default()
        }
        .validate();
    }
}
