//! Processes and the [`Context`] through which they act on the world.
//!
//! Every protocol participant (a group-communication endpoint, a name
//! server, an application process) implements [`Process`]. The simulator
//! invokes its callbacks with a [`Context`] that provides the only
//! side-effects a process may have: sending messages, arming timers,
//! drawing randomness, and recording trace/metric events.
//!
//! Deliberately **absent** from [`Context`] is any oracle about the network:
//! a process cannot ask "is node X reachable?" — it must discover failures
//! and partitions the way the paper's protocols do, through timeouts and
//! message exchange.

use crate::event::{EventKind, EventQueue};
use crate::keys;
use crate::metrics::MetricsRegistry;
use crate::net::NetConfig;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{ProtocolEvent, Trace};
use crate::transport::Transport;
use plwg_wire::{Decode, Encode, Frame, Reader, WireError};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a simulated node (one process per node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index of the node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl Encode for NodeId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
}

impl Decode for NodeId {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(u32::decode_from(r)?))
    }
}

/// An opaque, process-chosen timer identifier.
///
/// Each token names a *slot*: re-arming a token that is already pending
/// reschedules it, and [`Context::cancel_timer`] disarms it. Protocols that
/// need many concurrent timers use distinct tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub u64);

/// A message payload: a shared immutable byte [`Frame`].
///
/// Every message on the simulated network is encoded bytes — there is no
/// typed side channel. Cloning a payload (e.g. to fan a multicast out to
/// its receivers) bumps a reference count; it never copies the bytes.
/// Receivers route frames by peeking the leading family tag
/// ([`plwg_wire::peek_family`]) and decode with the owning crate's codec.
pub type Payload = Frame;

/// A process: the unit of computation placed on a node.
///
/// Callbacks act on the world through the [`Transport`] seam, so the same
/// process runs on a simulated node ([`crate::World::add_node`], where the
/// transport is a [`Context`]) or on a real-socket runtime (`plwg-net`).
/// All callbacks run to completion atomically — both runtimes are
/// single-threaded per node — so state machines need no internal locking.
pub trait Process: 'static {
    /// Called once when the node starts (and again after a restart is
    /// requested via [`crate::World::restart`]).
    fn on_start(&mut self, ctx: &mut dyn Transport) {
        let _ = ctx;
    }

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload);

    /// Called when a timer armed by this process fires.
    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
        let _ = (ctx, token);
    }

    /// Called when the node crashes. No [`Context`] is available: a crashed
    /// process can have no further effects.
    fn on_crash(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Escape hatch for experiment drivers to reach the concrete type via
    /// [`crate::World::invoke`]. Implement as `fn as_any_mut(&mut self) ->
    /// &mut dyn Any { self }`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The handle through which a process interacts with the simulated world.
///
/// A `Context` is only ever lent to a process for the duration of one
/// callback.
pub struct Context<'a> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) queue: &'a mut EventQueue,
    pub(crate) topology: &'a Topology,
    pub(crate) net: &'a NetConfig,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) trace: &'a mut Trace,
    pub(crate) metrics: &'a mut MetricsRegistry,
    pub(crate) timer_slots: &'a mut BTreeMap<(NodeId, TimerToken), u64>,
    pub(crate) alive: &'a [bool],
}

impl<'a> Context<'a> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this process runs on.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Number of nodes in the world (node ids are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.alive.len()
    }

    /// Sends `msg` to `to`. Delivery is subject to the network model: the
    /// message may be dropped (loss, partition) and arrives after a sampled
    /// latency. Sending to self is allowed and goes through the same model.
    pub fn send(&mut self, to: NodeId, msg: Payload) {
        self.metrics.incr(keys::NET_SENT);
        self.metrics.add(keys::NET_BYTES_SENT, msg.len() as u64);
        self.metrics
            .observe(keys::NET_FRAME_BYTES, msg.len() as u64);
        let decision = self.net.decide(self.topology, self.rng, self.self_id, to);
        match decision {
            crate::net::DeliveryDecision::Deliver(latency) => {
                self.queue.push(
                    self.now + latency,
                    EventKind::Deliver {
                        to,
                        from: self.self_id,
                        msg,
                    },
                );
            }
            crate::net::DeliveryDecision::Drop => {
                self.metrics.incr(keys::NET_DROPPED);
            }
        }
    }

    /// Broadcasts `msg` on the physical network (the stand-in for the
    /// paper's IP-multicast probes and beacons). Every *other* node receives
    /// an independent copy subject to the network model; partitioned nodes
    /// never receive it.
    pub fn broadcast(&mut self, msg: Payload) {
        for i in 0..self.alive.len() {
            let to = NodeId(i as u32);
            if to != self.self_id {
                self.send(to, msg.clone());
            }
        }
    }

    /// Arms (or re-arms) the timer slot `token` to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        let slot = self.timer_slots.entry((self.self_id, token)).or_insert(0);
        *slot += 1;
        self.queue.push(
            self.now + delay,
            EventKind::Timer {
                node: self.self_id,
                token,
                generation: *slot,
            },
        );
    }

    /// Disarms the timer slot `token`; a no-op if it is not pending.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        if let Some(slot) = self.timer_slots.get_mut(&(self.self_id, token)) {
            *slot += 1;
        }
    }

    /// Deterministic randomness for protocol-level choices.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Records a typed protocol trace event attributed to this node.
    ///
    /// The closure producing the event is only evaluated when tracing is
    /// enabled, so disabled (benchmark) runs pay a single branch.
    pub fn emit<E: ProtocolEvent>(&mut self, event: impl FnOnce() -> E) {
        let node = self.self_id;
        let now = self.now;
        self.trace.record(now, Some(node), event);
    }

    /// The world's metric registry (counters, gauges and histograms).
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        self.metrics
    }
}

/// A [`Context`] is the simulator's [`Transport`]: protocol code written
/// against `&mut dyn Transport` runs on a simulated node unchanged.
impl Transport for Context<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn id(&self) -> NodeId {
        self.self_id
    }

    fn send(&mut self, to: NodeId, msg: Payload) {
        Context::send(self, to, msg);
    }

    fn broadcast(&mut self, msg: Payload) {
        Context::broadcast(self, msg);
    }

    fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        Context::set_timer(self, delay, token);
    }

    fn cancel_timer(&mut self, token: TimerToken) {
        Context::cancel_timer(self, token);
    }

    fn metrics(&mut self) -> &mut MetricsRegistry {
        self.metrics
    }

    fn trace(&mut self) -> &mut Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_wire_roundtrip() {
        let mut out = Vec::new();
        NodeId(300).encode_into(&mut out);
        let f = Frame::from_vec(out);
        let mut r = Reader::new(&f);
        assert_eq!(NodeId::decode_from(&mut r), Ok(NodeId(300)));
        assert_eq!(r.finish(), Ok(()));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }
}
