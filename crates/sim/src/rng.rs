//! Seeded, deterministic randomness.
//!
//! All stochastic behaviour in the simulator (latency jitter, message loss,
//! workload arrivals) draws from a single [`SimRng`] seeded at world
//! construction, so a run is a pure function of `(seed, schedule)`.
//!
//! The generator is an in-tree xoshiro256** seeded through SplitMix64 — no
//! cryptographic strength needed, only a long period, good equidistribution
//! and bit-for-bit reproducibility across platforms.

/// The simulator's random number generator (xoshiro256**, explicitly
/// seeded).
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step: expands a 64-bit seed into well-mixed words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let mut n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.state = [n0, n1, n2, n3];
        result
    }

    /// Next 32 random bits (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the full double mantissa, uniform on [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased modular reduction: reject draws from the incomplete
        // final span so every value is equally likely.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Forks an independent generator (for a parallel sub-experiment) whose
    /// stream is derived from, but does not perturb, this one.
    pub fn fork(&mut self) -> SimRng {
        SimRng::from_seed(self.next_u64())
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRng").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::from_seed(4);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = SimRng::from_seed(6);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.range(0, 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_rejects_empty() {
        let _ = SimRng::from_seed(5).range(5, 5);
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::from_seed(8);
        for _ in 0..1000 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let mut a = SimRng::from_seed(10);
        let mut b = SimRng::from_seed(10);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert_ne!(ba, [0u8; 13]);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::from_seed(9);
        let mut b = SimRng::from_seed(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
    }
}
