//! Seeded, deterministic randomness.
//!
//! All stochastic behaviour in the simulator (latency jitter, message loss,
//! workload arrivals) draws from a single [`SimRng`] seeded at world
//! construction, so a run is a pure function of `(seed, schedule)`.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The simulator's random number generator (ChaCha12, explicitly seeded).
pub struct SimRng {
    inner: ChaCha12Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Forks an independent generator (for a parallel sub-experiment) whose
    /// stream is derived from, but does not perturb, this one.
    pub fn fork(&mut self) -> SimRng {
        SimRng::from_seed(self.inner.next_u64())
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRng").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::from_seed(4);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_rejects_empty() {
        let _ = SimRng::from_seed(5).range(5, 5);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::from_seed(9);
        let mut b = SimRng::from_seed(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
    }
}
