//! Protocol time. A [`SimTime`] is an instant with microsecond resolution,
//! counted from the start of the run; nothing in the protocol stack ever
//! reads the wall clock directly. What *advances* the instant is a
//! [`Clock`]: the simulator's virtual event clock, `plwg-net`'s wall-clock
//! anchor, or a test-driven [`ManualClock`]. Because every clock counts
//! micros-since-start monotonically, deadline arithmetic written against
//! `ctx.now()` (pack timers, flush watchdogs, heartbeat timeouts) behaves
//! identically on simulated and real time.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time, in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is later than `self`
    /// (saturating, like `Instant::saturating_duration_since`).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scales the span by a float factor (used by congestion episodes).
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid duration factor {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("virtual clock overflowed"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative duration between instants"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

/// A source of protocol time: monotone [`SimTime`] instants counted from
/// the start of a run.
///
/// Three implementations cover the workspace:
///
/// * the simulator's [`crate::World`] *is* a clock (its event queue
///   advances virtual time; [`crate::Context::now`] reads it);
/// * `plwg_net::WallClock` anchors an `Instant` at runtime start and
///   reports elapsed wall-clock micros — the only place in the workspace
///   that reads the OS clock;
/// * [`ManualClock`] is hand-stepped, for deterministic unit tests of
///   wall-clock components (failure detectors, reconnect backoff) without
///   sleeping.
pub trait Clock {
    /// The current instant. Must never decrease within a run.
    fn now(&self) -> SimTime;
}

/// A hand-stepped [`Clock`] for deterministic tests of time-driven logic.
///
/// Interior-mutable so the component under test can hold a shared
/// reference while the test advances time.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Cell<SimTime>,
}

impl ManualClock {
    /// A clock starting at [`SimTime::ZERO`].
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A clock starting at `at`.
    pub fn starting_at(at: SimTime) -> Self {
        ManualClock { now: Cell::new(at) }
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.now.set(self.now.get() + d);
    }

    /// Jumps the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current instant (clocks are
    /// monotone).
    pub fn set(&self, t: SimTime) {
        assert!(t >= self.now.get(), "ManualClock must not go backwards");
        self.now.set(t);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        self.now.get()
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_micros(5);
        let d = SimDuration::from_micros(7);
        assert_eq!((t + d).as_micros(), 12);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_micros(3);
        let late = SimTime::from_micros(9);
        assert_eq!(late.saturating_since(early).as_micros(), 6);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_micros(10).mul_f64(1.5).as_micros(), 15);
        assert_eq!(SimDuration::from_micros(10).mul_f64(0.0).as_micros(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid duration factor")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_micros(10).mul_f64(-1.0);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "1.500000s");
    }

    #[test]
    fn manual_clock_steps_forward() {
        let c = ManualClock::starting_at(SimTime::from_micros(10));
        assert_eq!(c.now(), SimTime::from_micros(10));
        c.advance(SimDuration::from_micros(5));
        assert_eq!(c.now(), SimTime::from_micros(15));
        c.set(SimTime::from_micros(20));
        assert_eq!(c.now(), SimTime::from_micros(20));
    }

    #[test]
    #[should_panic(expected = "must not go backwards")]
    fn manual_clock_rejects_backwards_set() {
        let c = ManualClock::starting_at(SimTime::from_micros(10));
        c.set(SimTime::from_micros(5));
    }
}
