//! Connectivity model: partitions, link cuts and congestion.
//!
//! The paper's setting is a network that can split into *components* (real
//! partitions, e.g. router crashes) or merely *appear* to split (virtual
//! partitions caused by load-induced timeouts, §4 of the paper). Both are
//! modelled here:
//!
//! * [`Topology::split`] / [`Topology::heal_all`] change which nodes can
//!   exchange messages at all — a hard partition;
//! * [`Topology::set_congestion`] inflates every latency sample by a factor —
//!   messages still flow, but slowly enough that failure detectors time out,
//!   which is exactly a virtual partition.

use crate::node::NodeId;
use std::collections::BTreeSet;
use std::fmt;

/// Identifies a connected component of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ComponentId(pub u32);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// State of a directed link, used for selective (per-pair) faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Messages flow (subject to the component check and loss model).
    Up,
    /// Messages on this directed link are silently dropped.
    Down,
}

/// The network connectivity model.
///
/// ```
/// use plwg_sim::{NodeId, Topology};
///
/// let mut topo = Topology::fully_connected(4);
/// topo.split(&[&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]]);
/// assert!(topo.can_reach(NodeId(0), NodeId(1)));
/// assert!(!topo.can_reach(NodeId(0), NodeId(2)));
/// topo.heal_all();
/// assert!(topo.can_reach(NodeId(0), NodeId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    components: Vec<ComponentId>,
    cut_links: BTreeSet<(NodeId, NodeId)>,
    congestion: f64,
}

impl Topology {
    /// A fully-connected topology over `n` nodes (all in component 0).
    pub fn fully_connected(n: usize) -> Self {
        Topology {
            components: vec![ComponentId(0); n],
            cut_links: BTreeSet::new(),
            congestion: 1.0,
        }
    }

    /// Number of nodes the topology knows about.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Registers one more node, placed in component 0.
    pub(crate) fn grow(&mut self) {
        self.components.push(ComponentId(0));
    }

    /// The component `node` currently belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a valid node id.
    pub fn component_of(&self, node: NodeId) -> ComponentId {
        self.components[node.index()]
    }

    /// Whether a message sent from `a` can (currently) reach `b`.
    ///
    /// True iff both are in the same component and the directed link is not
    /// individually cut. Note `can_reach(a, a)` is true: loopback always
    /// works.
    pub fn can_reach(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        self.components[a.index()] == self.components[b.index()]
            && !self.cut_links.contains(&(a, b))
    }

    /// Splits the network: each slice in `groups` becomes its own component.
    ///
    /// Every node must appear in exactly one group — partial specifications
    /// are rejected to prevent silently mis-specified experiments.
    ///
    /// # Panics
    ///
    /// Panics if the groups do not form a partition of all nodes.
    pub fn split(&mut self, groups: &[&[NodeId]]) {
        let n = self.components.len();
        let mut seen = vec![false; n];
        for group in groups {
            for node in *group {
                assert!(node.index() < n, "split mentions unknown node {node}");
                assert!(!seen[node.index()], "split mentions node {node} twice");
                seen[node.index()] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "split must mention every node exactly once"
        );
        for (cid, group) in groups.iter().enumerate() {
            for node in *group {
                self.components[node.index()] = ComponentId(cid as u32);
            }
        }
    }

    /// Heals all partitions: every node returns to component 0. Individual
    /// link cuts are *not* restored (use [`Topology::restore_link`]).
    pub fn heal_all(&mut self) {
        for c in &mut self.components {
            *c = ComponentId(0);
        }
    }

    /// Cuts the directed link `a → b` (messages from `a` to `b` are lost).
    /// For a symmetric cut call this twice, once per direction.
    pub fn cut_link(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.insert((a, b));
    }

    /// Restores a previously cut directed link.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.remove(&(a, b));
    }

    /// Sets the global congestion factor: every subsequent latency sample is
    /// multiplied by `factor`. `1.0` is the calm network; large factors
    /// create *virtual partitions* (timeouts fire although messages still
    /// eventually arrive).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or is less than `1.0`.
    pub fn set_congestion(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "congestion factor must be >= 1.0, got {factor}"
        );
        self.congestion = factor;
    }

    /// The current congestion factor.
    pub fn congestion(&self) -> f64 {
        self.congestion
    }

    /// The members of each current component, in node-id order.
    pub fn components(&self) -> Vec<(ComponentId, Vec<NodeId>)> {
        let mut out: Vec<(ComponentId, Vec<NodeId>)> = Vec::new();
        for (i, &c) in self.components.iter().enumerate() {
            match out.iter_mut().find(|(cid, _)| *cid == c) {
                Some((_, members)) => members.push(NodeId(i as u32)),
                None => out.push((c, vec![NodeId(i as u32)])),
            }
        }
        out.sort_by_key(|(cid, _)| *cid);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn fully_connected_reaches_everywhere() {
        let t = Topology::fully_connected(4);
        for a in 0..4 {
            for b in 0..4 {
                assert!(t.can_reach(n(a), n(b)));
            }
        }
    }

    #[test]
    fn split_isolates_components() {
        let mut t = Topology::fully_connected(4);
        t.split(&[&[n(0), n(1)], &[n(2), n(3)]]);
        assert!(t.can_reach(n(0), n(1)));
        assert!(t.can_reach(n(2), n(3)));
        assert!(!t.can_reach(n(0), n(2)));
        assert!(!t.can_reach(n(3), n(1)));
        assert_ne!(t.component_of(n(0)), t.component_of(n(2)));
    }

    #[test]
    fn heal_restores_full_connectivity() {
        let mut t = Topology::fully_connected(3);
        t.split(&[&[n(0)], &[n(1), n(2)]]);
        assert!(!t.can_reach(n(0), n(1)));
        t.heal_all();
        assert!(t.can_reach(n(0), n(1)));
    }

    #[test]
    #[should_panic(expected = "every node")]
    fn split_rejects_partial_cover() {
        let mut t = Topology::fully_connected(3);
        t.split(&[&[n(0)], &[n(1)]]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn split_rejects_duplicates() {
        let mut t = Topology::fully_connected(2);
        t.split(&[&[n(0), n(0)], &[n(1)]]);
    }

    #[test]
    fn link_cut_is_directional() {
        let mut t = Topology::fully_connected(2);
        t.cut_link(n(0), n(1));
        assert!(!t.can_reach(n(0), n(1)));
        assert!(t.can_reach(n(1), n(0)));
        t.restore_link(n(0), n(1));
        assert!(t.can_reach(n(0), n(1)));
    }

    #[test]
    fn loopback_survives_partition() {
        let mut t = Topology::fully_connected(2);
        t.split(&[&[n(0)], &[n(1)]]);
        assert!(t.can_reach(n(0), n(0)));
    }

    #[test]
    fn components_listing() {
        let mut t = Topology::fully_connected(4);
        t.split(&[&[n(0), n(3)], &[n(1), n(2)]]);
        let comps = t.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].1, vec![n(0), n(3)]);
        assert_eq!(comps[1].1, vec![n(1), n(2)]);
    }

    #[test]
    #[should_panic(expected = "congestion factor")]
    fn congestion_below_one_rejected() {
        Topology::fully_connected(1).set_congestion(0.5);
    }
}
