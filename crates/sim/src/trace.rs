//! Structured, typed event trace for debugging, assertions and timelines.
//!
//! Every protocol layer defines an enum of its transitions (the simulator's
//! own is [`SimEvent`]; the HWG, naming and LWG layers define theirs) and
//! implements [`ProtocolEvent`] for it. The [`Trace`] sink records those
//! events as flattened [`TraceEvent`] records carrying the canonical kind
//! string, the human-readable detail and the causal references
//! ([`EventRefs`]) that let `plwg-obs` stitch a cross-node timeline.
//!
//! Tracing is off by default: [`Trace::record`] takes a closure producing
//! the event, and the closure is never invoked when tracing is disabled, so
//! benchmark runs pay almost nothing for it. Tests enable it to assert on
//! protocol behaviour ("exactly one flush ran", "the merge happened after
//! the heal").

use crate::node::NodeId;
use crate::time::SimTime;
use std::fmt;

/// Which protocol layer an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLayer {
    /// The simulated world itself (crashes, partitions, heals).
    World,
    /// The heavy-weight group substrate (membership, flush, vsync merge).
    Hwg,
    /// The replicated naming service.
    Naming,
    /// The light-weight group service.
    Lwg,
    /// The real-socket transport runtime (`plwg-net`).
    Net,
}

impl TraceLayer {
    /// The inverse of [`TraceLayer`]'s `Display`: parses the canonical
    /// layer name. Used by the multi-process harness to reconstruct
    /// [`TraceEvent`]s that crossed a process boundary as text.
    pub fn from_name(name: &str) -> Option<TraceLayer> {
        match name {
            "world" => Some(TraceLayer::World),
            "hwg" => Some(TraceLayer::Hwg),
            "naming" => Some(TraceLayer::Naming),
            "lwg" => Some(TraceLayer::Lwg),
            "net" => Some(TraceLayer::Net),
            _ => None,
        }
    }
}

impl fmt::Display for TraceLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLayer::World => "world",
            TraceLayer::Hwg => "hwg",
            TraceLayer::Naming => "naming",
            TraceLayer::Lwg => "lwg",
            TraceLayer::Net => "net",
        };
        f.write_str(s)
    }
}

/// Causal references attached to a trace event.
///
/// Identifiers are layer-agnostic numeric keys so the simulator core does
/// not depend on the protocol crates: a view id `n3#7` becomes `(3, 7)`, a
/// flush id `n3@9` becomes `(3, 9)`, and group ids use their raw `u64`.
/// Two events that mention the same key are causally related; an event
/// whose [`EventRefs::parents`] contains a view another event installed is
/// a causal *successor* of that installation. The timeline builder in
/// `plwg-obs` uses exactly these keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventRefs {
    /// The light-weight group concerned, if any (raw `LwgId`).
    pub lwg: Option<u64>,
    /// The heavy-weight group concerned, if any (raw `HwgId`).
    pub hwg: Option<u64>,
    /// The view this event installs or concerns: `(coordinator, seq)`.
    pub view: Option<(u32, u64)>,
    /// Predecessor views, for events that merge or succeed earlier views.
    pub parents: Vec<(u32, u64)>,
    /// The flush round this event belongs to: `(initiator, nonce)`.
    pub flush: Option<(u32, u64)>,
}

impl EventRefs {
    /// True when the event carries no references at all.
    pub fn is_empty(&self) -> bool {
        self.lwg.is_none()
            && self.hwg.is_none()
            && self.view.is_none()
            && self.parents.is_empty()
            && self.flush.is_none()
    }
}

/// A typed protocol event: one transition of one layer's state machine.
///
/// Implementors are per-layer enums (`SimEvent`, the HWG trace events, the
/// naming events, the LWG protocol events). The trait flattens them into
/// the uniform [`TraceEvent`] record the sink stores.
pub trait ProtocolEvent {
    /// The layer that emitted the event.
    fn layer(&self) -> TraceLayer;

    /// The canonical machine-matchable kind, e.g. `"hwg.flush.start"`.
    ///
    /// Each variant maps to exactly one `'static` name; tests match on it
    /// and the golden trace snapshots are sequences of these names.
    fn kind(&self) -> &'static str;

    /// Causal references for timeline stitching (empty by default).
    fn refs(&self) -> EventRefs {
        EventRefs::default()
    }

    /// Free-form human-readable detail.
    fn detail(&self) -> String;

    /// The canonical display name — an alias for [`ProtocolEvent::kind`],
    /// so call sites that format an event have one obvious spelling.
    fn as_str(&self) -> &'static str {
        self.kind()
    }
}

/// One flattened trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which node emitted it (`None` for world-level events such as
    /// partition changes).
    pub node: Option<NodeId>,
    /// The layer that emitted it.
    pub layer: TraceLayer,
    /// The canonical kind, e.g. `"hwg.flush.start"`.
    pub kind: &'static str,
    /// Free-form human-readable detail.
    pub detail: String,
    /// Causal references (view / flush / group ids) for timeline stitching.
    pub refs: EventRefs,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{} {}] {}: {}", self.time, n, self.kind, self.detail),
            None => write!(f, "[{} world] {}: {}", self.time, self.kind, self.detail),
        }
    }
}

/// The simulator's own protocol events: world-level fault injections.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A node crashed.
    Crash(NodeId),
    /// A crashed node restarted.
    Restart(NodeId),
    /// The network split into the given components.
    Split(Vec<Vec<NodeId>>),
    /// All partitions healed.
    Heal,
}

impl ProtocolEvent for SimEvent {
    fn layer(&self) -> TraceLayer {
        TraceLayer::World
    }

    fn kind(&self) -> &'static str {
        match self {
            SimEvent::Crash(_) => "world.crash",
            SimEvent::Restart(_) => "world.restart",
            SimEvent::Split(_) => "world.split",
            SimEvent::Heal => "world.heal",
        }
    }

    fn detail(&self) -> String {
        match self {
            SimEvent::Crash(n) | SimEvent::Restart(n) => format!("{n}"),
            SimEvent::Split(groups) => format!("{groups:?}"),
            SimEvent::Heal => String::new(),
        }
    }
}

/// The world's trace sink.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a sink; pass `enabled = false` for benchmark runs.
    pub fn new(enabled: bool) -> Self {
        Trace {
            enabled,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a typed event. The closure producing the event is only
    /// evaluated when tracing is enabled, so disabled runs pay one branch.
    pub fn record<E: ProtocolEvent>(
        &mut self,
        time: SimTime,
        node: Option<NodeId>,
        event: impl FnOnce() -> E,
    ) {
        if self.enabled {
            let e = event();
            self.events.push(TraceEvent {
                time,
                node,
                layer: e.layer(),
                kind: e.kind(),
                detail: e.detail(),
                refs: e.refs(),
            });
        }
    }

    /// All recorded events, in emission order. The simulator is
    /// single-threaded, so this order is a causality-consistent total
    /// order across all nodes.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose kind matches `kind` exactly.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events emitted by one layer.
    pub fn of_layer(&self, layer: TraceLayer) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.layer == layer)
    }

    /// Counts events of a kind.
    pub fn count(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }

    /// The first event of a kind, if any.
    pub fn first(&self, kind: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// The last event of a kind, if any.
    pub fn last(&self, kind: &str) -> Option<&TraceEvent> {
        self.events.iter().rev().find(|e| e.kind == kind)
    }

    /// Drops all recorded events (e.g. after a warm-up phase).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestEvent {
        kind: &'static str,
        detail: String,
    }

    impl ProtocolEvent for TestEvent {
        fn layer(&self) -> TraceLayer {
            TraceLayer::World
        }
        fn kind(&self) -> &'static str {
            self.kind
        }
        fn detail(&self) -> String {
            self.detail.clone()
        }
    }

    fn ev(kind: &'static str, detail: &str) -> TestEvent {
        TestEvent {
            kind,
            detail: detail.to_owned(),
        }
    }

    #[test]
    fn disabled_trace_records_nothing_and_skips_closure() {
        let mut t = Trace::new(false);
        t.record::<TestEvent>(SimTime::ZERO, None, || {
            panic!("event closure must not run when disabled")
        });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new(true);
        t.record(SimTime::from_micros(1), Some(NodeId(0)), || ev("a", "one"));
        t.record(SimTime::from_micros(2), None, || ev("b", "two"));
        t.record(SimTime::from_micros(3), Some(NodeId(1)), || {
            ev("a", "three")
        });
        assert_eq!(t.count("a"), 2);
        assert_eq!(t.first("a").map(|e| e.detail.as_str()), Some("one"));
        assert_eq!(t.last("a").map(|e| e.detail.as_str()), Some("three"));
        assert_eq!(t.count("missing"), 0);
        assert_eq!(t.of_layer(TraceLayer::World).count(), 3);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            time: SimTime::from_micros(1_000_000),
            node: Some(NodeId(2)),
            layer: TraceLayer::Hwg,
            kind: "k",
            detail: "d".into(),
            refs: EventRefs::default(),
        };
        assert_eq!(e.to_string(), "[1.000000s n2] k: d");
    }

    #[test]
    fn sim_event_kinds_and_details() {
        let crash = SimEvent::Crash(NodeId(3));
        assert_eq!(crash.kind(), "world.crash");
        assert_eq!(crash.as_str(), "world.crash");
        assert_eq!(crash.detail(), "n3");
        assert!(crash.refs().is_empty());
        let split = SimEvent::Split(vec![vec![NodeId(0)], vec![NodeId(1)]]);
        assert_eq!(split.kind(), "world.split");
        assert_eq!(SimEvent::Heal.detail(), "");
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::new(true);
        t.record(SimTime::ZERO, None, || ev("a", ""));
        t.clear();
        assert!(t.events().is_empty());
    }
}
