//! Structured event trace for debugging and assertions.
//!
//! Tracing is off by default (the detail closures are never invoked), so
//! benchmark runs pay almost nothing for it. Tests enable it to assert on
//! protocol behaviour ("exactly one flush ran", "the merge happened after
//! the heal").

use crate::node::NodeId;
use crate::time::SimTime;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which node emitted it (`None` for world-level events such as
    /// partition changes).
    pub node: Option<NodeId>,
    /// A short machine-matchable kind, e.g. `"hwg.flush.start"`.
    pub kind: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{} {}] {}: {}", self.time, n, self.kind, self.detail),
            None => write!(f, "[{} world] {}: {}", self.time, self.kind, self.detail),
        }
    }
}

/// The world's trace sink.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a sink; pass `enabled = false` for benchmark runs.
    pub fn new(enabled: bool) -> Self {
        Trace {
            enabled,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event. `detail` is only evaluated when tracing is enabled.
    pub fn emit(
        &mut self,
        time: SimTime,
        node: Option<NodeId>,
        kind: &str,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                node,
                kind: kind.to_owned(),
                detail: detail(),
            });
        }
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose kind matches `kind` exactly.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Counts events of a kind.
    pub fn count(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }

    /// The first event of a kind, if any.
    pub fn first(&self, kind: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// The last event of a kind, if any.
    pub fn last(&self, kind: &str) -> Option<&TraceEvent> {
        self.events.iter().rev().find(|e| e.kind == kind)
    }

    /// Drops all recorded events (e.g. after a warm-up phase).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_skips_detail() {
        let mut t = Trace::new(false);
        t.emit(SimTime::ZERO, None, "x", || {
            panic!("detail closure must not run when disabled")
        });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new(true);
        t.emit(SimTime::from_micros(1), Some(NodeId(0)), "a", || {
            "one".into()
        });
        t.emit(SimTime::from_micros(2), None, "b", || "two".into());
        t.emit(SimTime::from_micros(3), Some(NodeId(1)), "a", || {
            "three".into()
        });
        assert_eq!(t.count("a"), 2);
        assert_eq!(t.first("a").map(|e| e.detail.as_str()), Some("one"));
        assert_eq!(t.last("a").map(|e| e.detail.as_str()), Some("three"));
        assert_eq!(t.count("missing"), 0);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            time: SimTime::from_micros(1_000_000),
            node: Some(NodeId(2)),
            kind: "k".into(),
            detail: "d".into(),
        };
        assert_eq!(e.to_string(), "[1.000000s n2] k: d");
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::new(true);
        t.emit(SimTime::ZERO, None, "a", String::new);
        t.clear();
        assert!(t.events().is_empty());
    }
}
