//! The transport seam: the action surface a protocol endpoint needs.
//!
//! Every protocol state machine in this workspace (the vsync stack, the
//! naming client/server, the LWG service) acts on the outside world through
//! exactly seven verbs: read the clock, learn its own id, send or broadcast
//! a frame, arm or disarm a timer, and record metrics/trace events.
//! [`Transport`] is that surface as an object-safe trait, so the *same*
//! protocol code runs over two very different runtimes:
//!
//! * [`crate::Context`] — the deterministic discrete-event simulator
//!   (virtual time, modelled loss and partitions);
//! * `plwg_net::NetRuntime` — a poll-based reactor over real non-blocking
//!   UDP sockets (wall-clock time, real loss and real partitions).
//!
//! Protocol code takes `ctx: &mut dyn Transport` and cannot tell which one
//! it is on — the property the paper's §7 prototype claims ("the service
//! runs unchanged over the simulator and over Horus") and that the
//! multi-process partition-heal example demonstrates end-to-end.
//!
//! Deliberately **absent**, exactly as on [`crate::Context`]: any oracle
//! about the network. A protocol cannot ask "is node X reachable?" — it
//! discovers failures the way the paper's protocols do, through timeouts
//! and message exchange. Also absent is ambient randomness: protocol
//! state machines are deterministic functions of their inputs.

use crate::metrics::MetricsRegistry;
use crate::node::{NodeId, Payload, TimerToken};
use crate::time::{SimDuration, SimTime};
use crate::trace::{ProtocolEvent, Trace};

/// The action surface lent to a protocol endpoint for one callback.
///
/// Implementations: [`crate::Context`] (simulator, virtual time) and the
/// real-socket runtime in `plwg-net` (wall-clock time). See the module
/// docs for the contract both uphold.
pub trait Transport {
    /// The current protocol time: virtual on the simulator, wall-clock
    /// micros since runtime start on a real network (see
    /// [`crate::time::Clock`]). Monotone within a run either way, so
    /// deadline arithmetic (`now + timeout`, compared on a later tick)
    /// behaves identically on both.
    fn now(&self) -> SimTime;

    /// The node this endpoint runs on.
    fn id(&self) -> NodeId;

    /// Sends `msg` to `to`. Delivery is unreliable on both runtimes: the
    /// simulator models loss and partitions, UDP provides them for real.
    fn send(&mut self, to: NodeId, msg: Payload);

    /// Broadcasts `msg` to every other known node (the stand-in for the
    /// paper's IP-multicast probes and beacons). On the simulator this is
    /// every node of the world; on a real network, every peer in the
    /// runtime's address book.
    fn broadcast(&mut self, msg: Payload);

    /// Arms (or re-arms) the timer slot `token` to fire after `delay`.
    fn set_timer(&mut self, delay: SimDuration, token: TimerToken);

    /// Disarms the timer slot `token`; a no-op if it is not pending.
    fn cancel_timer(&mut self, token: TimerToken);

    /// The runtime's metric registry (counters, gauges and histograms).
    fn metrics(&mut self) -> &mut MetricsRegistry;

    /// The runtime's trace sink. Prefer [`TransportExt::emit`], which
    /// stamps the event with this endpoint's time and id.
    fn trace(&mut self) -> &mut Trace;
}

/// Extension methods that cannot live on the object-safe [`Transport`]
/// trait itself (they are generic). Blanket-implemented for every
/// transport, including `dyn Transport`.
pub trait TransportExt: Transport {
    /// Records a typed protocol trace event attributed to this node.
    ///
    /// The closure producing the event is only evaluated when tracing is
    /// enabled, so disabled (benchmark) runs pay a single branch.
    fn emit<E: ProtocolEvent>(&mut self, event: impl FnOnce() -> E) {
        let now = self.now();
        let node = self.id();
        self.trace().record(now, Some(node), event);
    }
}

impl<T: Transport + ?Sized> TransportExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SimEvent;
    use std::collections::VecDeque;

    /// A loopback transport for unit tests: sends queue locally, timers
    /// are recorded but never fire.
    struct Loopback {
        now: SimTime,
        me: NodeId,
        sent: VecDeque<(NodeId, Payload)>,
        timers: Vec<(SimDuration, TimerToken)>,
        metrics: MetricsRegistry,
        trace: Trace,
    }

    impl Transport for Loopback {
        fn now(&self) -> SimTime {
            self.now
        }
        fn id(&self) -> NodeId {
            self.me
        }
        fn send(&mut self, to: NodeId, msg: Payload) {
            self.sent.push_back((to, msg));
        }
        fn broadcast(&mut self, msg: Payload) {
            self.send(NodeId(u32::MAX), msg);
        }
        fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
            self.timers.push((delay, token));
        }
        fn cancel_timer(&mut self, token: TimerToken) {
            self.timers.retain(|(_, t)| *t != token);
        }
        fn metrics(&mut self) -> &mut MetricsRegistry {
            &mut self.metrics
        }
        fn trace(&mut self) -> &mut Trace {
            &mut self.trace
        }
    }

    #[test]
    fn emit_works_through_a_trait_object() {
        let mut lb = Loopback {
            now: SimTime::from_micros(42),
            me: NodeId(3),
            sent: VecDeque::new(),
            timers: Vec::new(),
            metrics: MetricsRegistry::new(),
            trace: Trace::new(true),
        };
        let dynref: &mut dyn Transport = &mut lb;
        dynref.emit(|| SimEvent::Heal);
        assert_eq!(lb.trace.count("world.heal"), 1);
        let ev = lb.trace.first("world.heal").expect("recorded");
        assert_eq!(ev.node, Some(NodeId(3)));
        assert_eq!(ev.time, SimTime::from_micros(42));
    }
}
