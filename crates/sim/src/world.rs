//! The simulation driver: owns the nodes, the clock, the network and the
//! event queue, and advances virtual time.

use crate::event::{EventKind, EventQueue};
use crate::keys;
use crate::metrics::MetricsRegistry;
use crate::net::NetConfig;
use crate::node::{Context, NodeId, Process, TimerToken};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{SimEvent, Trace};
use std::collections::BTreeMap;

/// Construction parameters for a [`World`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Network model parameters.
    pub net: NetConfig,
    /// Whether to record a structured trace (tests: yes, benches: no).
    pub trace: bool,
    /// Per-message receive-processing cost. A node handles one delivery at
    /// a time; while busy, further deliveries queue. `ZERO` (the default)
    /// models infinitely fast hosts. A non-zero cost is what makes
    /// *interference* measurable: a process co-hosting many groups pays for
    /// every message it must at least examine and filter.
    pub proc_time: SimDuration,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0,
            net: NetConfig::default(),
            trace: false,
            proc_time: SimDuration::ZERO,
        }
    }
}

/// A complete simulated distributed system.
///
/// Nodes are added with [`World::add_node`]; faults and experiment actions
/// are scheduled with [`World::schedule_at`] and the convenience helpers
/// ([`World::crash_at`], [`World::split_at`], [`World::heal_at`], …); time
/// advances with [`World::run_for`] / [`World::run_until`].
pub struct World {
    now: SimTime,
    queue: EventQueue,
    topology: Topology,
    net: NetConfig,
    rng: SimRng,
    trace: Trace,
    metrics: MetricsRegistry,
    nodes: Vec<Option<Box<dyn Process>>>,
    alive: Vec<bool>,
    timer_slots: BTreeMap<(NodeId, TimerToken), u64>,
    proc_time: SimDuration,
    busy_until: Vec<SimTime>,
}

impl World {
    /// Creates an empty world.
    ///
    /// # Panics
    ///
    /// Panics if the network configuration is invalid (see
    /// [`NetConfig::validate`]).
    pub fn new(config: WorldConfig) -> Self {
        config.net.validate();
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            topology: Topology::fully_connected(0),
            net: config.net,
            rng: SimRng::from_seed(config.seed),
            trace: Trace::new(config.trace),
            metrics: MetricsRegistry::new(),
            nodes: Vec::new(),
            alive: Vec::new(),
            timer_slots: BTreeMap::new(),
            proc_time: config.proc_time,
            busy_until: Vec::new(),
        }
    }

    /// Adds a node running `process` and schedules its
    /// [`Process::on_start`] at the current time. Returns its id.
    pub fn add_node(&mut self, process: Box<dyn Process>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(process));
        self.alive.push(true);
        self.busy_until.push(SimTime::ZERO);
        self.topology.grow();
        self.queue.push(
            self.now,
            EventKind::Control(Box::new(move |w: &mut World| {
                w.with_node(id, |p, ctx| p.on_start(ctx));
            })),
        );
        id
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes ever added.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `node` is currently up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Read access to the connectivity model.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the connectivity model (immediate effect; to change
    /// topology at a future instant use [`World::split_at`] etc.).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The collected metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to metrics (for experiment probes).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (e.g. to clear after warm-up).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The world's random number generator.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Schedules an arbitrary control action at virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut World) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule in the past ({at} < {})",
            self.now
        );
        self.queue.push(at, EventKind::Control(Box::new(f)));
    }

    /// Schedules a control action `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, f: impl FnOnce(&mut World) + 'static) {
        let at = self.now + after;
        self.schedule_at(at, f);
    }

    /// Crashes `node` immediately: it stops receiving messages and timers
    /// until [`World::restart`].
    pub fn crash(&mut self, node: NodeId) {
        if !self.alive[node.index()] {
            return;
        }
        self.alive[node.index()] = false;
        let now = self.now;
        self.trace.record(now, None, || SimEvent::Crash(node));
        if let Some(p) = self.nodes[node.index()].as_mut() {
            p.on_crash(now);
        }
    }

    /// Restarts a crashed node: it becomes alive and
    /// [`Process::on_start`] runs again (the process keeps whatever state
    /// survives in its own struct — protocols model stable storage there).
    pub fn restart(&mut self, node: NodeId) {
        if self.alive[node.index()] {
            return;
        }
        self.alive[node.index()] = true;
        let now = self.now;
        self.trace.record(now, None, || SimEvent::Restart(node));
        self.with_node(node, |p, ctx| p.on_start(ctx));
    }

    /// Schedules a crash of `node` at `at`.
    pub fn crash_at(&mut self, at: SimTime, node: NodeId) {
        self.schedule_at(at, move |w| w.crash(node));
    }

    /// Schedules a restart of `node` at `at`.
    pub fn restart_at(&mut self, at: SimTime, node: NodeId) {
        self.schedule_at(at, move |w| w.restart(node));
    }

    /// Schedules a network split at `at`; `groups` must partition all nodes.
    pub fn split_at(&mut self, at: SimTime, groups: Vec<Vec<NodeId>>) {
        self.schedule_at(at, move |w| {
            let refs: Vec<&[NodeId]> = groups.iter().map(Vec::as_slice).collect();
            w.topology.split(&refs);
            let now = w.now;
            w.trace.record(now, None, || SimEvent::Split(groups));
        });
    }

    /// Schedules a full heal at `at`.
    pub fn heal_at(&mut self, at: SimTime) {
        self.schedule_at(at, |w| {
            w.topology.heal_all();
            let now = w.now;
            w.trace.record(now, None, || SimEvent::Heal);
        });
    }

    // ------------------------------------------------------------------
    // Direct node access
    // ------------------------------------------------------------------

    /// Calls `f` on the concrete process at `node` with a live [`Context`]
    /// — the way experiment drivers issue API calls ("join group g now").
    ///
    /// # Panics
    ///
    /// Panics if the node is crashed or the process is not of type `P`.
    pub fn invoke<P: Process, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_>) -> R,
    ) -> R {
        self.with_node(node, |p, ctx| {
            let p = p
                .as_any_mut()
                // tidy-allow(wire-hygiene): harness inspection of the concrete process type, not a payload
                .downcast_mut::<P>()
                .expect("invoke: process has a different concrete type");
            f(p, ctx)
        })
        .expect("invoke: node is crashed")
    }

    /// Schedules an [`World::invoke`] at a future time.
    pub fn invoke_at<P: Process>(
        &mut self,
        at: SimTime,
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_>) + 'static,
    ) {
        self.schedule_at(at, move |w| {
            w.invoke(node, f);
        });
    }

    /// Read-only inspection of the concrete process state at `node`
    /// (works on crashed nodes too — useful to examine post-crash state).
    ///
    /// # Panics
    ///
    /// Panics if the process is not of type `P`.
    pub fn inspect<P: Process, R>(&mut self, node: NodeId, f: impl FnOnce(&P) -> R) -> R {
        let p = self.nodes[node.index()]
            .as_mut()
            .expect("inspect: node slot empty (re-entrant world access)")
            .as_any_mut()
            // tidy-allow(wire-hygiene): harness inspection of the concrete process type, not a payload
            .downcast_mut::<P>()
            .expect("inspect: process has a different concrete type");
        f(p)
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Executes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        match ev.kind {
            EventKind::Deliver { to, from, msg } => {
                // Reachability is also checked at delivery time: a partition
                // that forms while a message is in flight cuts it off. This
                // makes splits crisp (no stragglers cross the cut).
                if self.alive[to.index()] && self.topology.can_reach(from, to) {
                    // Receive-processing model: one message at a time per
                    // node; deliveries queue while the node is busy.
                    if self.proc_time > SimDuration::ZERO {
                        let busy = self.busy_until[to.index()];
                        if self.now < busy {
                            self.queue.push(busy, EventKind::Deliver { to, from, msg });
                            return true;
                        }
                        self.busy_until[to.index()] = self.now + self.proc_time;
                    }
                    self.metrics.incr(keys::NET_DELIVERED);
                    self.with_node(to, |p, ctx| p.on_message(ctx, from, msg));
                } else {
                    self.metrics.incr(keys::NET_DROPPED);
                }
            }
            EventKind::Timer {
                node,
                token,
                generation,
            } => {
                let live = self.timer_slots.get(&(node, token)) == Some(&generation);
                if live && self.alive[node.index()] {
                    self.with_node(node, |p, ctx| p.on_timer(ctx, token));
                }
            }
            EventKind::Control(f) => f(self),
        }
        true
    }

    /// Runs until the virtual clock reaches `deadline` (events at exactly
    /// `deadline` are executed). The clock always ends at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `span` of virtual time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut dyn Process, &mut Context<'_>) -> R,
    ) -> Option<R> {
        if !self.alive[id.index()] {
            return None;
        }
        let mut node = self.nodes[id.index()].take()?;
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            queue: &mut self.queue,
            topology: &self.topology,
            net: &self.net,
            rng: &mut self.rng,
            trace: &mut self.trace,
            metrics: &mut self.metrics,
            timer_slots: &mut self.timer_slots,
            alive: &self.alive,
        };
        let r = f(node.as_mut(), &mut ctx);
        self.nodes[id.index()] = Some(node);
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Payload;
    use crate::Transport;
    use plwg_wire::Frame;
    use std::any::Any;

    /// Test payload: a bare 8-byte little-endian integer frame.
    fn payload(v: u32) -> Payload {
        Frame::from_u64(v as u64)
    }

    /// Echoes every message back and counts what it saw.
    struct Echo {
        received: Vec<(NodeId, u32)>,
        timer_fired: u32,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: Vec::new(),
                timer_fired: 0,
            }
        }
    }

    impl Process for Echo {
        fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
            let v = msg.try_u64().expect("u64 payload") as u32;
            self.received.push((from, v));
            if v < 100 {
                ctx.send(from, payload(v + 1));
            }
        }
        fn on_timer(&mut self, _ctx: &mut dyn Transport, _token: TimerToken) {
            self.timer_fired += 1;
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_world() -> (World, NodeId, NodeId) {
        let mut w = World::new(WorldConfig::default());
        let a = w.add_node(Box::new(Echo::new()));
        let b = w.add_node(Box::new(Echo::new()));
        (w, a, b)
    }

    #[test]
    fn ping_pong_until_limit() {
        let (mut w, a, b) = two_node_world();
        w.invoke(a, |_: &mut Echo, ctx| ctx.send(b, payload(98u32)));
        w.run_for(SimDuration::from_secs(1));
        // b sees 98, replies 99; a sees 99, replies 100; b sees 100, stops.
        w.inspect(b, |e: &Echo| {
            assert_eq!(e.received, vec![(a, 98), (a, 100)]);
        });
        w.inspect(a, |e: &Echo| {
            assert_eq!(e.received, vec![(b, 99)]);
        });
    }

    #[test]
    fn crash_stops_delivery_and_restart_resumes() {
        let (mut w, a, b) = two_node_world();
        w.run_for(SimDuration::from_millis(1));
        w.crash(b);
        w.invoke(a, |_: &mut Echo, ctx| ctx.send(b, payload(100u32)));
        w.run_for(SimDuration::from_secs(1));
        w.inspect(b, |e: &Echo| assert!(e.received.is_empty()));
        w.restart(b);
        w.invoke(a, |_: &mut Echo, ctx| ctx.send(b, payload(100u32)));
        w.run_for(SimDuration::from_secs(1));
        w.inspect(b, |e: &Echo| assert_eq!(e.received, vec![(a, 100)]));
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let (mut w, a, b) = two_node_world();
        w.split_at(SimTime::from_micros(10), vec![vec![a], vec![b]]);
        w.heal_at(SimTime::from_micros(2_000_000));
        w.invoke_at(SimTime::from_micros(100), a, move |_: &mut Echo, ctx| {
            ctx.send(b, payload(100u32))
        });
        w.invoke_at(
            SimTime::from_micros(3_000_000),
            a,
            move |_: &mut Echo, ctx| ctx.send(b, payload(100u32)),
        );
        w.run_for(SimDuration::from_secs(5));
        w.inspect(b, |e: &Echo| assert_eq!(e.received.len(), 1));
    }

    #[test]
    fn timer_slots_reschedule_and_cancel() {
        struct T {
            fired: Vec<u64>,
        }
        impl Process for T {
            fn on_start(&mut self, ctx: &mut dyn Transport) {
                ctx.set_timer(SimDuration::from_millis(10), TimerToken(1));
                ctx.set_timer(SimDuration::from_millis(20), TimerToken(2));
                // Re-arm token 1 further out: only the re-armed instance fires.
                ctx.set_timer(SimDuration::from_millis(30), TimerToken(1));
                ctx.set_timer(SimDuration::from_millis(40), TimerToken(3));
                ctx.cancel_timer(TimerToken(3));
            }
            fn on_message(&mut self, _: &mut dyn Transport, _: NodeId, _: Payload) {}
            fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
                self.fired
                    .push(token.0 * 1_000_000 + ctx.now().as_micros() / 1_000);
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(WorldConfig::default());
        let a = w.add_node(Box::new(T { fired: vec![] }));
        w.run_for(SimDuration::from_secs(1));
        w.inspect(a, |t: &T| {
            assert_eq!(t.fired, vec![2_000_020, 1_000_030]);
        });
    }

    #[test]
    fn broadcast_reaches_component_only() {
        let mut w = World::new(WorldConfig::default());
        let a = w.add_node(Box::new(Echo::new()));
        let b = w.add_node(Box::new(Echo::new()));
        let c = w.add_node(Box::new(Echo::new()));
        w.topology_mut().split(&[&[a, b], &[c]]);
        w.invoke(a, |_: &mut Echo, ctx| ctx.broadcast(payload(100u32)));
        w.run_for(SimDuration::from_secs(1));
        w.inspect(b, |e: &Echo| assert_eq!(e.received.len(), 1));
        w.inspect(c, |e: &Echo| assert!(e.received.is_empty()));
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = |seed| {
            let mut w = World::new(WorldConfig {
                seed,
                net: NetConfig {
                    loss: 0.2,
                    ..NetConfig::default()
                },
                ..WorldConfig::default()
            });
            let a = w.add_node(Box::new(Echo::new()));
            let b = w.add_node(Box::new(Echo::new()));
            w.invoke(a, |_: &mut Echo, ctx| {
                for _ in 0..50 {
                    ctx.send(b, payload(0u32))
                }
            });
            w.run_for(SimDuration::from_secs(10));
            (
                w.metrics().counter(crate::keys::NET_DELIVERED),
                w.metrics().counter(crate::keys::NET_DROPPED),
            )
        };
        assert_eq!(run(42), run(42));
        // With 20% loss and 50+ messages the streams of different seeds
        // should almost surely differ.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut w = World::new(WorldConfig::default());
        w.run_until(SimTime::from_micros(500));
        assert_eq!(w.now(), SimTime::from_micros(500));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn schedule_in_past_rejected() {
        let mut w = World::new(WorldConfig::default());
        w.run_until(SimTime::from_micros(100));
        w.schedule_at(SimTime::from_micros(50), |_| {});
    }
}
