//! Randomised property tests for the simulation substrate: event ordering,
//! topology algebra, and bit-for-bit determinism. Cases come from a seeded
//! in-tree RNG so every run is deterministic.

use plwg_sim::{
    Frame, NetConfig, NodeId, Payload, Process, SimDuration, SimRng, SimTime, Topology, Transport,
    World, WorldConfig,
};
use std::any::Any;

/// Test payload: a bare 8-byte little-endian integer frame.
fn payload(v: u64) -> Payload {
    Frame::from_u64(v)
}

#[derive(Default)]
struct Recorder {
    got: Vec<(NodeId, u64, SimTime)>,
}

impl Process for Recorder {
    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
        let v = msg.try_u64().expect("u64");
        self.got.push((from, v, ctx.now()));
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Splitting into arbitrary components makes reachability exactly the
/// "same component" equivalence; healing restores everything.
#[test]
fn split_reachability_is_component_equality() {
    for case in 0..200u64 {
        let mut rng = SimRng::from_seed(0x5E11_0000 ^ case);
        let n = rng.range(2, 10) as usize;
        let assignment: Vec<usize> = (0..n).map(|_| rng.range(0, 3) as usize).collect();
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); 3];
        for (i, &g) in assignment.iter().enumerate() {
            groups[g].push(NodeId(i as u32));
        }
        groups.retain(|g| !g.is_empty());
        let mut topo = Topology::fully_connected(n);
        let refs: Vec<&[NodeId]> = groups.iter().map(Vec::as_slice).collect();
        topo.split(&refs);
        for i in 0..n {
            for j in 0..n {
                let same = assignment[i] == assignment[j];
                assert_eq!(
                    topo.can_reach(NodeId(i as u32), NodeId(j as u32)),
                    same || i == j,
                    "case {case}: reachability {i}->{j}"
                );
            }
        }
        topo.heal_all();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    topo.can_reach(NodeId(i as u32), NodeId(j as u32)),
                    "case {case}: healed {i}->{j}"
                );
            }
        }
    }
}

/// FIFO per sender-receiver pair does NOT hold with jitter (UDP model);
/// what must hold instead: every message is delivered exactly once in a
/// lossless network, within base+jitter of its send time.
#[test]
fn lossless_network_delivers_exactly_once() {
    for case in 0..60u64 {
        let mut rng = SimRng::from_seed(0x5E11_1000 ^ case);
        let seed = rng.range(0, 1000);
        let jitter_us = rng.range(0, 5_000);
        let mut w = World::new(WorldConfig {
            seed,
            net: NetConfig {
                base_latency: SimDuration::from_micros(500),
                jitter: SimDuration::from_micros(jitter_us),
                loss: 0.0,
            },
            ..WorldConfig::default()
        });
        let a = w.add_node(Box::new(Recorder::default()));
        let b = w.add_node(Box::new(Recorder::default()));
        w.invoke(a, |_: &mut Recorder, ctx| {
            for k in 0..40u64 {
                ctx.send(b, payload(k));
            }
        });
        w.run_for(SimDuration::from_secs(1));
        let mut got: Vec<u64> =
            w.inspect(b, |r: &Recorder| r.got.iter().map(|(_, v, _)| *v).collect());
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<u64>>(), "case {case}");
    }
}

/// Two worlds with the same seed and schedule produce identical delivery
/// records (full determinism).
#[test]
fn same_seed_same_world() {
    for case in 0..60u64 {
        let mut rng = SimRng::from_seed(0x5E11_2000 ^ case);
        let seed = rng.range(0, 500);
        let loss_pct = rng.range(0, 40) as u32;
        let run = || {
            let mut w = World::new(WorldConfig {
                seed,
                net: NetConfig {
                    loss: f64::from(loss_pct) / 100.0,
                    ..NetConfig::default()
                },
                ..WorldConfig::default()
            });
            let a = w.add_node(Box::new(Recorder::default()));
            let b = w.add_node(Box::new(Recorder::default()));
            w.invoke(a, |_: &mut Recorder, ctx| {
                for k in 0..30u64 {
                    ctx.send(b, payload(k));
                }
            });
            w.run_for(SimDuration::from_secs(1));
            w.inspect(b, |r: &Recorder| r.got.clone())
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

/// The processing-cost model conserves messages: queueing delays
/// deliveries but never loses or duplicates them.
#[test]
fn proc_time_preserves_messages() {
    for case in 0..40u64 {
        let mut rng = SimRng::from_seed(0x5E11_3000 ^ case);
        let seed = rng.range(0, 200);
        let proc_us = rng.range(1, 2_000);
        let mut w = World::new(WorldConfig {
            seed,
            proc_time: SimDuration::from_micros(proc_us),
            ..WorldConfig::default()
        });
        let a = w.add_node(Box::new(Recorder::default()));
        let b = w.add_node(Box::new(Recorder::default()));
        w.invoke(a, |_: &mut Recorder, ctx| {
            for k in 0..50u64 {
                ctx.send(b, payload(k));
            }
        });
        w.run_for(SimDuration::from_secs(5));
        let got = w.inspect(b, |r: &Recorder| r.got.len());
        assert_eq!(got, 50, "case {case}");
        // And the deliveries are spaced at least proc_time apart.
        let times: Vec<SimTime> =
            w.inspect(b, |r: &Recorder| r.got.iter().map(|(_, _, t)| *t).collect());
        for pair in times.windows(2) {
            assert!(
                pair[1].saturating_since(pair[0]).as_micros() >= proc_us,
                "case {case}: busy node must not process two messages closer \
                 than proc_time"
            );
        }
    }
}
