//! Property tests for the simulation substrate: event ordering, topology
//! algebra, and bit-for-bit determinism.

use plwg_sim::{
    cast, payload, Context, NetConfig, NodeId, Payload, Process, SimDuration, SimTime,
    Topology, World, WorldConfig,
};
use proptest::prelude::*;
use std::any::Any;

#[derive(Default)]
struct Recorder {
    got: Vec<(NodeId, u64, SimTime)>,
}

impl Process for Recorder {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Payload) {
        let v = *cast::<u64>(&msg).expect("u64");
        self.got.push((from, v, ctx.now()));
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    /// Splitting into arbitrary components makes reachability exactly the
    /// "same component" equivalence; healing restores everything.
    #[test]
    fn split_reachability_is_component_equality(
        assignment in proptest::collection::vec(0usize..3, 2..10),
    ) {
        let n = assignment.len();
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); 3];
        for (i, &g) in assignment.iter().enumerate() {
            groups[g].push(NodeId(i as u32));
        }
        groups.retain(|g| !g.is_empty());
        let mut topo = Topology::fully_connected(n);
        let refs: Vec<&[NodeId]> = groups.iter().map(Vec::as_slice).collect();
        topo.split(&refs);
        for i in 0..n {
            for j in 0..n {
                let same = assignment[i] == assignment[j];
                prop_assert_eq!(
                    topo.can_reach(NodeId(i as u32), NodeId(j as u32)),
                    same || i == j
                );
            }
        }
        topo.heal_all();
        for i in 0..n {
            for j in 0..n {
                prop_assert!(topo.can_reach(NodeId(i as u32), NodeId(j as u32)));
            }
        }
    }

    /// FIFO per sender-receiver pair holds for any jitter: messages from
    /// one sender arrive in send order... does NOT hold with jitter (UDP
    /// model); what must hold instead: every message is delivered exactly
    /// once in a lossless network, within base+jitter of its send time.
    #[test]
    fn lossless_network_delivers_exactly_once(
        seed in 0u64..1000,
        count in 1usize..40,
        jitter_us in 0u64..5_000,
    ) {
        let mut w = World::new(WorldConfig {
            seed,
            net: NetConfig {
                base_latency: SimDuration::from_micros(500),
                jitter: SimDuration::from_micros(jitter_us),
                loss: 0.0,
            },
            ..WorldConfig::default()
        });
        let a = w.add_node(Box::new(Recorder::default()));
        let b = w.add_node(Box::new(Recorder::default()));
        w.invoke(a, |_: &mut Recorder, ctx| {
            for k in 0..40u64 {
                ctx.send(b, payload(k));
            }
        });
        w.run_for(SimDuration::from_secs(1));
        let mut got: Vec<u64> = w.inspect(b, |r: &Recorder| {
            r.got.iter().map(|(_, v, _)| *v).collect()
        });
        got.sort_unstable();
        prop_assert_eq!(got, (0..40).collect::<Vec<u64>>());
        let _ = count;
    }

    /// Two worlds with the same seed and schedule produce identical
    /// delivery records (full determinism).
    #[test]
    fn same_seed_same_world(seed in 0u64..500, loss_pct in 0u32..40) {
        let run = || {
            let mut w = World::new(WorldConfig {
                seed,
                net: NetConfig {
                    loss: f64::from(loss_pct) / 100.0,
                    ..NetConfig::default()
                },
                ..WorldConfig::default()
            });
            let a = w.add_node(Box::new(Recorder::default()));
            let b = w.add_node(Box::new(Recorder::default()));
            w.invoke(a, |_: &mut Recorder, ctx| {
                for k in 0..30u64 {
                    ctx.send(b, payload(k));
                }
            });
            w.run_for(SimDuration::from_secs(1));
            w.inspect(b, |r: &Recorder| r.got.clone())
        };
        prop_assert_eq!(run(), run());
    }

    /// The processing-cost model conserves messages: queueing delays
    /// deliveries but never loses or duplicates them.
    #[test]
    fn proc_time_preserves_messages(seed in 0u64..200, proc_us in 1u64..2_000) {
        let mut w = World::new(WorldConfig {
            seed,
            proc_time: SimDuration::from_micros(proc_us),
            ..WorldConfig::default()
        });
        let a = w.add_node(Box::new(Recorder::default()));
        let b = w.add_node(Box::new(Recorder::default()));
        w.invoke(a, |_: &mut Recorder, ctx| {
            for k in 0..50u64 {
                ctx.send(b, payload(k));
            }
        });
        w.run_for(SimDuration::from_secs(5));
        let got = w.inspect(b, |r: &Recorder| r.got.len());
        prop_assert_eq!(got, 50);
        // And the deliveries are spaced at least proc_time apart.
        let times: Vec<SimTime> = w.inspect(b, |r: &Recorder| {
            r.got.iter().map(|(_, _, t)| *t).collect()
        });
        for pair in times.windows(2) {
            prop_assert!(
                pair[1].saturating_since(pair[0]).as_micros() >= proc_us,
                "busy node must not process two messages closer than proc_time"
            );
        }
    }
}
