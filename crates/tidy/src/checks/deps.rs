//! `deps` — dependencies point down the layering, and only the facade
//! (and the harness crates above it) pin the concrete substrate.
//!
//! PR 4's substrate extraction established the layering (PR 8 slotted the
//! codec crate underneath the simulator)
//!
//! ```text
//! wire  →  sim  →  hwg  →  { vsync, naming }  →  core  →  facade / obs / workload / bench
//! ```
//!
//! and made `plwg-core` generic over `HwgSubstrate` precisely so the
//! protocol layer never names `VsyncStack`. Two rules keep it that way:
//!
//! 1. A protocol crate's `[dependencies]` may only contain the `plwg-*`
//!    crates below it (dev-dependencies are free: tests may close the
//!    loop, e.g. core's integration tests run over the real stack).
//! 2. `VsyncStack` must not appear as a code token in the `src/` of
//!    `core`, `hwg`, `naming` or `sim` (doc comments are fine — the
//!    scrubbed text ignores them).

use crate::diag::Diagnostic;
use crate::source::word_matches;
use crate::walk::{DepSection, Workspace};

pub const NAME: &str = "deps";

/// `crates/<dir>` → the `plwg-*` crates its `[dependencies]` may name.
/// Crates absent from this table (obs, workload, bench, tidy) sit above
/// the facade line and are unconstrained.
const ALLOWED: [(&str, &[&str]); 7] = [
    ("wire", &[]),
    ("sim", &["plwg-wire"]),
    ("hwg", &["plwg-wire", "plwg-sim"]),
    ("vsync", &["plwg-wire", "plwg-sim", "plwg-hwg"]),
    ("naming", &["plwg-wire", "plwg-sim", "plwg-hwg"]),
    (
        "core",
        &["plwg-wire", "plwg-sim", "plwg-hwg", "plwg-naming"],
    ),
    // The net runtime sits beside the facade: it may pin the concrete
    // vsync substrate (it exists to run it over real sockets) but must
    // not reach into the LWG service layer.
    ("net", &["plwg-wire", "plwg-sim", "plwg-hwg", "plwg-vsync"]),
];

/// Crates whose sources must stay substrate-generic.
const NO_VSYNC_PIN: [&str; 5] = ["core", "hwg", "naming", "sim", "wire"];

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for m in &ws.manifests {
        let Some((_, allowed)) = ALLOWED.iter().find(|(d, _)| *d == m.crate_dir) else {
            continue;
        };
        for (sec, name, line) in &m.deps {
            if *sec != DepSection::Normal || !name.starts_with("plwg-") {
                continue;
            }
            if !allowed.contains(&name.as_str()) && !m.allowed(*line, NAME) {
                out.push(Diagnostic {
                    rel: m.rel.clone(),
                    line: *line,
                    check: NAME,
                    msg: format!(
                        "`{}` must not depend on `{name}` (layering: sim → hwg → \
                         vsync/naming → core); move it to [dev-dependencies] or \
                         invert the dependency",
                        m.crate_dir
                    ),
                });
            }
        }
    }

    for dir in NO_VSYNC_PIN {
        for file in ws.crate_files(dir) {
            for (line_no, line) in file.scrubbed_lines() {
                if word_matches(line, "VsyncStack").next().is_some() && !file.allowed(line_no, NAME)
                {
                    out.push(Diagnostic {
                        rel: file.rel.clone(),
                        line: line_no,
                        check: NAME,
                        msg: "protocol crates are substrate-generic: `VsyncStack` \
                              may only be pinned by the facade and harness crates"
                            .to_string(),
                    });
                }
            }
        }
    }
}
