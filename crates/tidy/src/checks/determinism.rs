//! `determinism` — the simulation must replay bit-identically from a seed.
//!
//! The paper's correctness arguments (single flush per heal, exactly one
//! `lwg.merge` per healed branch set, byte-identical bench guards) are
//! only checkable because every run of the simulator is deterministic.
//! This check keeps the protocol crates free of the std features whose
//! behaviour varies between runs or hosts:
//!
//! - `HashMap`/`HashSet` (and explicit `RandomState`/`DefaultHasher`):
//!   iteration order is randomized per process — use `BTreeMap`/`BTreeSet`.
//! - `Instant`/`SystemTime`: wall-clock reads — use `plwg_sim`'s
//!   `SimTime`.
//! - `thread_rng`/`OsRng`-style ambient randomness — use the in-tree
//!   seeded `Xoshiro` RNG.
//! - float-keyed maps/sets: NaN breaks the order relation silently.

use crate::diag::Diagnostic;
use crate::source::word_matches;
use crate::walk::Workspace;

pub const NAME: &str = "determinism";

const FORBIDDEN: [(&str, &str); 7] = [
    ("HashMap", "randomized iteration order; use BTreeMap"),
    ("HashSet", "randomized iteration order; use BTreeSet"),
    ("RandomState", "per-process random hasher seed"),
    ("DefaultHasher", "per-process random hasher seed"),
    ("Instant", "wall-clock read; use SimTime"),
    ("SystemTime", "wall-clock read; use SimTime"),
    (
        "thread_rng",
        "ambient OS randomness; use the seeded in-tree Xoshiro RNG",
    ),
];

const FLOAT_KEYS: [&str; 4] = ["Map<f32", "Map<f64", "Set<f32", "Set<f64"];

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for dir in super::PROTOCOL_CRATES {
        for file in ws.crate_files(dir) {
            for (line_no, line) in file.scrubbed_lines() {
                for (tok, why) in FORBIDDEN {
                    if word_matches(line, tok).next().is_some() && !file.allowed(line_no, NAME) {
                        out.push(Diagnostic {
                            rel: file.rel.clone(),
                            line: line_no,
                            check: NAME,
                            msg: format!("nondeterministic `{tok}` in a protocol crate ({why})"),
                        });
                    }
                }
                let squeezed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
                for pat in FLOAT_KEYS {
                    if squeezed.contains(pat) && !file.allowed(line_no, NAME) {
                        out.push(Diagnostic {
                            rel: file.rel.clone(),
                            line: line_no,
                            check: NAME,
                            msg: "float-keyed map/set in a protocol crate (NaN breaks \
                                  ordering); key by an integer or ordered newtype"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
}
