//! `directory-hygiene` — LWG lookups go through the directory's indexes.
//!
//! PR 9 replaced the service's flat `BTreeMap<LwgId, LwgState>` with the
//! sharded, indexed `GroupDirectory`: every "which groups are on HWG x /
//! in phase p / mid-flush" question is answered by a maintained reverse
//! index instead of a full-table scan, which is what keeps protocol cost
//! independent of the total group count. This check keeps scans from
//! creeping back into `plwg-core`:
//!
//! - `.iter_all(`: the directory's one sanctioned full walk exists for
//!   operator introspection (`iter_status`); protocol code must use an
//!   indexed query (`mapped_on`, `following_to`, `in_phases`, `busy_ids`,
//!   `pruning_ids`, `loads`).
//! - `BTreeMap<LwgId, LwgState>`: a raw parallel record table outside the
//!   directory module would bypass the indexes (and their facet
//!   maintenance) entirely.
//!
//! The directory module itself is exempt — it is the one place the raw
//! shards and the full walk are allowed to exist.

use crate::diag::Diagnostic;
use crate::walk::Workspace;

pub const NAME: &str = "directory-hygiene";

/// The one module allowed to hold raw LWG record storage and iterate it.
const DIRECTORY_MODULE: &str = "crates/core/src/directory.rs";

/// `(needle matched on whitespace-squeezed text, remedy)`.
const FORBIDDEN: [(&str, &str); 2] = [
    (
        ".iter_all(",
        "a full directory walk; use an indexed query — `mapped_on`, \
         `following_to`, `in_phases`, `busy_ids`, `pruning_ids`, `loads`",
    ),
    (
        "BTreeMap<LwgId,LwgState",
        "a raw parallel record table bypasses the directory's indexes; \
         store LWG records in the sharded `GroupDirectory`",
    ),
];

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in ws.crate_files("core") {
        if file.rel == DIRECTORY_MODULE {
            continue;
        }
        for (line_no, line) in file.scrubbed_lines() {
            let squeezed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
            for (pat, why) in FORBIDDEN {
                if squeezed.contains(pat) && !file.allowed(line_no, NAME) {
                    out.push(Diagnostic {
                        rel: file.rel.clone(),
                        line: line_no,
                        check: NAME,
                        msg: format!("`{pat}` outside the directory module ({why})"),
                    });
                }
            }
        }
    }
}
