//! `event-coverage` — no protocol event exists only in theory.
//!
//! The typed event enums (PR 5) are the protocol's observable surface:
//! golden snapshots, the causal Timeline and the exactly-one-merge
//! assertions are all built from event *kinds*. An event kind no test or
//! golden snapshot ever observes is either untested protocol behaviour or
//! a dead variant — both worth a diagnostic.
//!
//! The check parses every `impl ProtocolEvent for …` block's `fn kind`
//! match arms (`Enum::Variant { .. } => "layer.kind"`) and requires each
//! kind string — or its `Enum::Variant` spelling — to appear in at least
//! one test file or golden snapshot.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::walk::Workspace;

pub const NAME: &str = "event-coverage";

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        for arm in kind_arms(file) {
            let covered = ws
                .corpus
                .iter()
                .any(|t| t.raw.contains(&arm.kind) || t.raw.contains(&arm.variant_path))
                || ws.golden.iter().any(|(_, g)| g.contains(&arm.kind));
            if !covered && !file.allowed(arm.line, NAME) {
                out.push(Diagnostic {
                    rel: file.rel.clone(),
                    line: arm.line,
                    check: NAME,
                    msg: format!(
                        "event kind `{}` ({}) never appears in a test or golden \
                         snapshot; exercise it or drop the variant",
                        arm.kind, arm.variant_path
                    ),
                });
            }
        }
    }
}

struct KindArm {
    line: usize,
    /// `Enum::Variant`.
    variant_path: String,
    /// e.g. `lwg.flush.start`.
    kind: String,
}

/// Extracts the `Variant => "kind"` arms of `fn kind` bodies inside
/// `impl ProtocolEvent for <Enum>` blocks, skipping `#[cfg(test)]` regions.
fn kind_arms(file: &SourceFile) -> Vec<KindArm> {
    let mut out = Vec::new();
    let lines: Vec<&str> = file.raw.lines().collect();
    // Everything from the first `#[cfg(test)]` on is the file's test
    // module; impls there (helper enums for the trait's own tests) are
    // exercised by construction.
    let test_start = lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());
    let mut current_enum: Option<String> = None;
    let mut in_kind_fn = false;
    for (idx, line) in lines.iter().enumerate().take(test_start) {
        if let Some(pos) = line.find("impl ProtocolEvent for ") {
            let rest = &line[pos + "impl ProtocolEvent for ".len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            current_enum = Some(name);
            in_kind_fn = false;
        }
        if line.contains("fn kind(") {
            in_kind_fn = true;
        } else if line.trim_start().starts_with("fn ") {
            in_kind_fn = false;
        }
        if !in_kind_fn {
            continue;
        }
        let Some(enum_name) = &current_enum else {
            continue;
        };
        let Some((pat, val)) = line.split_once("=>") else {
            continue;
        };
        let Some(kind) = quoted(val) else { continue };
        let Some(variant) = variant_of(pat, enum_name) else {
            continue;
        };
        out.push(KindArm {
            line: idx + 1,
            variant_path: format!("{enum_name}::{variant}"),
            kind,
        });
    }
    out
}

/// First `"…"` literal in `s`.
fn quoted(s: &str) -> Option<String> {
    let open = s.find('"')?;
    let rest = &s[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// `SimEvent::Crash(_)` / `LwgProtocolEvent::Found { .. }` → `Crash` /
/// `Found`, checked against the enum the impl is for.
fn variant_of(pat: &str, enum_name: &str) -> Option<String> {
    let pos = pat.find(&format!("{enum_name}::"))?;
    let rest = &pat[pos + enum_name.len() + 2..];
    let v: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!v.is_empty()).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::{quoted, variant_of};

    #[test]
    fn arm_parsing() {
        assert_eq!(
            quoted(" \"hwg.flush.start\","),
            Some("hwg.flush.start".to_string())
        );
        assert_eq!(
            variant_of("            SimEvent::Crash(_)", "SimEvent"),
            Some("Crash".to_string())
        );
        assert_eq!(
            variant_of("Lwg::Found { .. }", "Lwg"),
            Some("Found".to_string())
        );
    }
}
