//! `metric-keys` — one typed spelling per metric, and no dead metrics.
//!
//! PR 5 moved every counter/gauge/histogram name into per-crate `keys.rs`
//! modules as typed `CounterKey`/`GaugeKey`/`HistogramKey` constants, so
//! that emitters and readers (benches, workloads, tests) cannot drift
//! apart on a string. This check keeps that closed world closed:
//!
//! - **dead key**: a constant declared in a `keys.rs` that nothing else
//!   references — delete it (or wire up the reader that was meant to
//!   exist).
//! - **undeclared emission**: constructing a key inline (`CounterKey::
//!   new(…)` outside `keys.rs`) or passing a bare string literal to a
//!   metrics call — both bypass the shared spelling.
//!
//! Known limitation (documented, accepted): references are matched by
//! constant *name*, so two crates declaring the same constant name can
//! shadow each other's liveness. Keep key constants distinct per layer.

use crate::diag::Diagnostic;
use crate::source::{word_matches, SourceFile};
use crate::walk::Workspace;

pub const NAME: &str = "metric-keys";

const KEY_TYPES: [&str; 3] = ["CounterKey", "GaugeKey", "HistogramKey"];

/// Metrics-registry methods that accept `impl Into<…Key>` (so a bare
/// `&'static str` literal would silently mint an undeclared key).
const KEYED_CALLS: [&str; 14] = [
    ".incr(",
    ".incr_for(",
    ".add(",
    ".add_for(",
    ".counter(",
    ".counter_for(",
    ".set_gauge(",
    ".set_gauge_for(",
    ".gauge(",
    ".gauge_for(",
    ".observe(",
    ".observe_for(",
    ".histogram(",
    ".histogram_for(",
];

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let mut declared: Vec<(&SourceFile, usize, String)> = Vec::new();
    for file in &ws.files {
        if !is_keys_module(&file.rel) {
            continue;
        }
        for (line_no, line) in file.raw_lines() {
            let Some(name) = key_decl(line) else { continue };
            declared.push((file, line_no, name));
        }
    }

    // Dead keys: the constant's name appears nowhere outside its keys.rs.
    for (file, line_no, name) in &declared {
        let referenced = ws
            .files
            .iter()
            .chain(ws.corpus.iter())
            .filter(|f| f.rel != file.rel)
            .any(|f| word_matches(&f.scrubbed, name).next().is_some());
        if !referenced && !file.allowed(*line_no, NAME) {
            out.push(Diagnostic {
                rel: file.rel.clone(),
                line: *line_no,
                check: NAME,
                msg: format!(
                    "dead metric key `{name}`: declared but never emitted or read \
                     outside {}",
                    file.rel
                ),
            });
        }
    }

    // Undeclared emissions: inline key construction or bare-string calls
    // outside the keys modules (the metrics registry itself defines the
    // types and is exempt).
    for file in &ws.files {
        if is_keys_module(&file.rel) || file.rel.ends_with("sim/src/metrics.rs") {
            continue;
        }
        for (line_no, line) in file.scrubbed_lines() {
            let squeezed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
            for ty in KEY_TYPES {
                if squeezed.contains(&format!("{ty}::new(")) && !file.allowed(line_no, NAME) {
                    out.push(Diagnostic {
                        rel: file.rel.clone(),
                        line: line_no,
                        check: NAME,
                        msg: format!(
                            "inline `{ty}::new(…)` bypasses the crate's keys.rs; \
                             declare the key there"
                        ),
                    });
                }
            }
            for call in KEYED_CALLS {
                // After scrubbing, a string-literal argument is `("…")` with
                // a blanked body — the opening quote survives.
                if squeezed.contains(&format!("{call}\"")) && !file.allowed(line_no, NAME) {
                    out.push(Diagnostic {
                        rel: file.rel.clone(),
                        line: line_no,
                        check: NAME,
                        msg: format!(
                            "bare string key passed to `{}…)`; use a typed constant \
                             from the crate's keys.rs",
                            call.trim_start_matches('.')
                        ),
                    });
                }
            }
        }
    }
}

fn is_keys_module(rel: &str) -> bool {
    rel.ends_with("/keys.rs")
}

/// `pub const NAME: CounterKey = …` → `NAME`.
fn key_decl(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("pub const ")?;
    let colon = rest.find(':')?;
    let name = rest[..colon].trim();
    let ty = rest[colon + 1..].trim_start();
    KEY_TYPES
        .iter()
        .any(|k| ty.starts_with(k))
        .then(|| name.to_string())
}

#[cfg(test)]
mod tests {
    use super::key_decl;

    #[test]
    fn decl_parsing() {
        assert_eq!(
            key_decl("pub const NET_SENT: CounterKey = CounterKey::new(\"net.sent\");"),
            Some("NET_SENT".to_string())
        );
        assert_eq!(key_decl("pub const N: usize = 3;"), None);
        assert_eq!(key_decl("const PRIVATE: CounterKey = …;"), None);
    }
}
