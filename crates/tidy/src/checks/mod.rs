//! The check catalog.
//!
//! Each check is a pure function over the loaded [`Workspace`] that pushes
//! [`Diagnostic`]s. To add one: write a module here, give it a kebab-case
//! name (that name is what `tidy-allow(<name>)` silences), list it in
//! [`all`], document it in DESIGN.md, and seed a fixture under
//! `crates/tidy/tests/fixtures/` proving it both fires and respects an
//! allow annotation.

pub mod deps;
pub mod determinism;
pub mod directory_hygiene;
pub mod events;
pub mod metric_keys;
pub mod module_size;
pub mod panics;
pub mod wire_hygiene;

use crate::diag::Diagnostic;
use crate::walk::Workspace;

/// A registered check.
pub struct Check {
    /// The name `tidy-allow(<name>)` refers to.
    pub name: &'static str,
    /// One-line description (shown by `--list`).
    pub desc: &'static str,
    pub run: fn(&Workspace, &mut Vec<Diagnostic>),
}

/// Every check, in execution order.
pub fn all() -> Vec<Check> {
    vec![
        Check {
            name: determinism::NAME,
            desc: "protocol crates must stay deterministic: no HashMap/HashSet, \
                   Instant/SystemTime, thread_rng, or float-keyed maps",
            run: determinism::run,
        },
        Check {
            name: panics::NAME,
            desc: "hot-path modules must not panic: no unwrap/expect/panic!/indexing",
            run: panics::run,
        },
        Check {
            name: metric_keys::NAME,
            desc: "metric keys are declared once in keys.rs and actually used",
            run: metric_keys::run,
        },
        Check {
            name: events::NAME,
            desc: "every protocol-event kind is exercised by a test or golden snapshot",
            run: events::run,
        },
        Check {
            name: deps::NAME,
            desc: "crate dependencies point down the layering; only the facade and \
                   harness crates pin VsyncStack",
            run: deps::run,
        },
        Check {
            name: module_size::NAME,
            desc: "protocol modules stay under the 700-line budget",
            run: module_size::run,
        },
        Check {
            name: wire_hygiene::NAME,
            desc: "payloads are wire frames, never type-erased values: no \
                   Rc<dyn Any>, downcast, or payload::<T> in the data plane",
            run: wire_hygiene::run,
        },
        Check {
            name: directory_hygiene::NAME,
            desc: "LWG lookups go through the GroupDirectory's indexes: no \
                   full-table walks or raw record maps outside the directory \
                   module",
            run: directory_hygiene::run,
        },
    ]
}

/// Is `name` a check the allowlist may reference?
pub fn known(name: &str) -> bool {
    all().iter().any(|c| c.name == name)
}

/// Allowlist hygiene, run after every check: annotations must name a real
/// check, justify themselves, and actually silence something.
pub fn allow_hygiene(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let rs = ws.files.iter().map(|f| (f.rel.as_str(), &f.allows));
    let toml = ws.manifests.iter().map(|m| (m.rel.as_str(), &m.allows));
    for (rel, allows) in rs.chain(toml) {
        for a in allows {
            if !known(&a.check) {
                out.push(Diagnostic {
                    rel: rel.to_string(),
                    line: a.line,
                    check: "tidy-allow",
                    msg: format!("annotation names unknown check `{}`", a.check),
                });
            } else if a.reason.is_empty() {
                out.push(Diagnostic {
                    rel: rel.to_string(),
                    line: a.line,
                    check: "tidy-allow",
                    msg: format!(
                        "tidy-allow({}) needs a justification: `// tidy-allow({}): <reason>`",
                        a.check, a.check
                    ),
                });
            } else if !a.used.get() {
                out.push(Diagnostic {
                    rel: rel.to_string(),
                    line: a.line,
                    check: "tidy-allow",
                    msg: format!(
                        "stale annotation: tidy-allow({}) silences nothing — remove it",
                        a.check
                    ),
                });
            }
        }
    }
}

/// The crates whose `src/` trees carry protocol logic and therefore the
/// determinism and module-size obligations.
pub const PROTOCOL_CRATES: [&str; 6] = ["core", "hwg", "naming", "net", "sim", "vsync"];
