//! `module-size` — protocol modules stay under 700 lines.
//!
//! PR 4 split the 2,058-line `service.rs` into per-concern modules and
//! set a 700-line budget so no module regrows into a god-file. The budget
//! applies to the protocol crates' `src/` trees; a file that predates the
//! budget carries a `tidy-allow-file(module-size)` with the plan for
//! splitting it.

use crate::diag::Diagnostic;
use crate::walk::Workspace;

pub const NAME: &str = "module-size";

pub const BUDGET: usize = 700;

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for dir in super::PROTOCOL_CRATES {
        for file in ws.crate_files(dir) {
            let lines = file.raw.lines().count();
            if lines > BUDGET && !file.allowed(1, NAME) {
                out.push(Diagnostic {
                    rel: file.rel.clone(),
                    line: 1,
                    check: NAME,
                    msg: format!(
                        "{lines} lines exceeds the {BUDGET}-line module budget; \
                         split by concern (see DESIGN.md, \"Static guarantees\")"
                    ),
                });
            }
        }
    }
}
