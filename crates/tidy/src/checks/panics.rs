//! `panic` — the data/control hot path must fail typed, never abort.
//!
//! A panic inside the protocol tears down the whole simulated node (and a
//! whole real node once the service runs over sockets), turning a logic
//! slip into a correlated crash fault the membership protocol then has to
//! heal. Inside the hot-path modules every fallible step must either
//! return a typed error (`LwgError`) or early-return; `unwrap`/`expect`/
//! `panic!`-family macros and panicking slice indexing are forbidden.
//! Provably-infallible spots carry a `tidy-allow(panic): <proof>`.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::walk::Workspace;

pub const NAME: &str = "panic";

/// The modules on the send/deliver/flush path (PR 3–4's decomposition).
const HOT_PATH: [&str; 6] = [
    "crates/core/src/data_plane.rs",
    "crates/core/src/flush.rs",
    "crates/core/src/merge.rs",
    "crates/core/src/switch.rs",
    "crates/core/src/mapping.rs",
    "crates/core/src/batch.rs",
];

const CALLS: [&str; 2] = [".unwrap()", ".expect("];
const MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !HOT_PATH.contains(&file.rel.as_str()) {
            continue;
        }
        scan(file, out);
    }
}

fn scan(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (line_no, line) in file.scrubbed_lines() {
        for pat in CALLS.iter().chain(MACROS.iter()) {
            if line.contains(pat) && !file.allowed(line_no, NAME) {
                out.push(Diagnostic {
                    rel: file.rel.clone(),
                    line: line_no,
                    check: NAME,
                    msg: format!(
                        "`{pat}` in a hot-path module; return a typed `LwgError` \
                         (or prove infallibility with tidy-allow)",
                    ),
                });
            }
        }
        for pos in index_sites(line) {
            if !file.allowed(line_no, NAME) {
                out.push(Diagnostic {
                    rel: file.rel.clone(),
                    line: line_no,
                    check: NAME,
                    msg: format!(
                        "slice/array indexing at column {} can panic on \
                         out-of-bounds; use `.get(..)`",
                        pos + 1
                    ),
                });
            }
        }
    }
}

/// Byte offsets of `[` tokens that start an *index expression*: the
/// preceding non-space character is an identifier character or a closing
/// bracket. (`#[attr]`, `vec![…]`, array types/literals and slice
/// patterns all follow other characters and pass.)
fn index_sites(line: &str) -> Vec<usize> {
    const KEYWORDS: [&str; 8] = ["let", "mut", "ref", "in", "return", "else", "match", "if"];
    let mut out = Vec::new();
    for (pos, _) in line.match_indices('[') {
        let before = line[..pos].trim_end();
        let prev = before.chars().next_back();
        if !prev.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ')' || c == ']') {
            continue;
        }
        // A keyword before `[` starts a pattern or expression position
        // (`let [a, b] = …`, `return [x]`), not an index.
        let word: String = before
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if KEYWORDS.contains(&word.as_str()) {
            continue;
        }
        out.push(pos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::index_sites;

    #[test]
    fn indexing_detection() {
        assert_eq!(index_sites("let x = arr[i];").len(), 1);
        assert_eq!(index_sites("let y = f()[0];").len(), 1);
        assert!(index_sites("#[derive(Debug)]").is_empty());
        assert!(index_sites("let v = vec![1, 2];").is_empty());
        assert!(index_sites("let a: [u8; 4] = [0; 4];").is_empty());
        assert!(index_sites("if let [a, b] = &xs[..] {}").len() == 1);
    }
}
