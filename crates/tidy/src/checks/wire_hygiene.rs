//! `wire-hygiene` — payloads are bytes, never type-erased Rust values.
//!
//! PR 8 replaced the seed's `Rc<dyn Any>` payload with `plwg-wire`'s
//! `Frame` (a shared, immutable byte buffer) so that every message the
//! protocol moves has a defined wire representation and the benches can
//! count real bytes. This check keeps the type-erasure door shut in the
//! protocol crates:
//!
//! - `Rc<dyn Any>` payloads: a pointer is not a wire format — encode a
//!   `Frame` with `plwg_wire::encode_frame`.
//! - `.downcast` on payloads: decoding is `decode_frame::<T>`, which
//!   fails typed (`WireError`) instead of silently yielding `None`. The
//!   one legitimate downcast family — `Process::as_any_mut` for harness
//!   inspection of concrete process state — carries a line-scope allow.
//! - the old `payload::<T>` constructor/extractor helpers: build byte
//!   payloads with `Frame::from_u64` / `Frame::from_vec`.

use crate::diag::Diagnostic;
use crate::walk::Workspace;

pub const NAME: &str = "wire-hygiene";

/// The crates whose `src/` trees carry the data plane: the protocol
/// crates plus the codec crate itself.
const WIRE_CRATES: [&str; 6] = ["core", "hwg", "naming", "sim", "vsync", "wire"];

/// `(needle matched on whitespace-squeezed text, remedy)`.
const FORBIDDEN: [(&str, &str); 3] = [
    (
        "Rc<dynAny",
        "type-erased payload; payloads are `Frame` byte buffers — encode with \
         `plwg_wire::encode_frame`",
    ),
    (
        ".downcast",
        "payloads are never type-erased; decode a typed message with \
         `decode_frame` (harness-only process inspection may carry an allow)",
    ),
    (
        "payload::<",
        "the pre-wire downcast helper; build payloads with `Frame::from_u64` \
         or `Frame::from_vec`",
    ),
];

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for dir in WIRE_CRATES {
        for file in ws.crate_files(dir) {
            for (line_no, line) in file.scrubbed_lines() {
                let squeezed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
                for (pat, why) in FORBIDDEN {
                    if squeezed.contains(pat) && !file.allowed(line_no, NAME) {
                        out.push(Diagnostic {
                            rel: file.rel.clone(),
                            line: line_no,
                            check: NAME,
                            msg: format!("`{pat}` in the data plane ({why})"),
                        });
                    }
                }
            }
        }
    }
}
