//! Diagnostics: what a check reports and how it renders.

use std::fmt;

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// 1-based line number the finding anchors to.
    pub line: usize,
    /// The check that produced it (the name `tidy-allow` takes).
    pub check: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel, self.line, self.check, self.msg
        )
    }
}
