//! `plwg-tidy` — the workspace's in-tree static-analysis pass.
//!
//! A rustc-`tidy`-style token scanner (pure `std`, no external
//! dependencies) that enforces the project invariants the type system
//! cannot: protocol determinism, hot-path panic-freedom, metric-key and
//! protocol-event hygiene, dependency direction, and the module-size
//! budget. Run it with `cargo run -p plwg-tidy`; CI fails on any
//! diagnostic.
//!
//! Violations that are intentional carry an annotation in the source:
//!
//! ```text
//! // tidy-allow(<check>): <reason>          covers this line and the next
//! // tidy-allow-file(<check>): <reason>     covers the whole file
//! ```
//!
//! Annotations must name a real check and give a non-empty reason; stale
//! (unused) annotations are themselves diagnostics, so the allowlist can
//! only shrink over time. The check catalog lives in [`checks`]; see
//! DESIGN.md ("Static guarantees") for how to add one.

pub mod checks;
pub mod diag;
pub mod source;
pub mod walk;

use diag::Diagnostic;
use std::path::Path;

/// Runs every check over the workspace rooted at `root` and returns the
/// surviving diagnostics, sorted by file and line.
pub fn run(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let ws = walk::Workspace::load(root)?;
    let mut out = Vec::new();
    for check in checks::all() {
        (check.run)(&ws, &mut out);
    }
    // Allowlist hygiene runs last: it needs to know which annotations the
    // checks above consumed.
    checks::allow_hygiene(&ws, &mut out);
    out.sort();
    Ok(out)
}
