//! `cargo run -p plwg-tidy [--list] [root]`
//!
//! Scans the workspace (found by walking up from the current directory,
//! or the given root) and exits nonzero if any check fires.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list" => {
                for c in plwg_tidy::checks::all() {
                    println!("{:<16} {}", c.name, c.desc);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: plwg-tidy [--list] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("plwg-tidy: no workspace root found (no Cargo.toml with [workspace])");
                return ExitCode::FAILURE;
            }
        },
    };
    match plwg_tidy::run(&root) {
        Ok(diags) if diags.is_empty() => {
            println!(
                "plwg-tidy: clean ({} checks)",
                plwg_tidy::checks::all().len()
            );
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("plwg-tidy: {} diagnostic(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("plwg-tidy: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Nearest ancestor directory whose `Cargo.toml` declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
