//! Source model: a loaded file, its comment/string-scrubbed text, and its
//! `tidy-allow` annotations.
//!
//! Checks scan the **scrubbed** text — a copy of the source in which every
//! comment and every string/char-literal *body* has been blanked to spaces
//! (delimiters and newlines kept, so byte offsets and line numbers line
//! up). That way a forbidden token mentioned in a doc comment or inside a
//! string (including this tool's own pattern tables) never false-positives.

use std::cell::Cell;
use std::path::PathBuf;

/// One `tidy-allow` annotation.
#[derive(Debug)]
pub struct Allow {
    /// 1-based line the annotation sits on.
    pub line: usize,
    /// The check it silences.
    pub check: String,
    /// Whole-file scope (`tidy-allow-file`) instead of line scope.
    pub file_scope: bool,
    /// Justification text after the colon.
    pub reason: String,
    /// Set once a check consults and honours this annotation.
    pub used: Cell<bool>,
}

/// A workspace source file ready for scanning.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path.
    pub path: PathBuf,
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// `crates/<name>/…` → `<name>`; `None` for the facade's `src/`.
    pub crate_dir: Option<String>,
    /// The file as read.
    pub raw: String,
    /// Comments and literal bodies blanked (same length/lines as `raw`).
    pub scrubbed: String,
    /// Parsed `tidy-allow` annotations.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    pub fn new(path: PathBuf, rel: String, crate_dir: Option<String>, raw: String) -> Self {
        let scrubbed = scrub(&raw);
        let allows = parse_allows(&raw);
        SourceFile {
            path,
            rel,
            crate_dir,
            raw,
            scrubbed,
            allows,
        }
    }

    /// Whether a violation of `check` at `line` is covered by an
    /// annotation (same line, the line above, or a file-scoped allow).
    /// Consulting an annotation marks it used.
    pub fn allowed(&self, line: usize, check: &str) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.check != check {
                continue;
            }
            let covers = a.file_scope || a.line == line || a.line + 1 == line;
            if covers {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Iterates `(1-based line number, scrubbed line)`.
    pub fn scrubbed_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.scrubbed.lines().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// Iterates `(1-based line number, raw line)`.
    pub fn raw_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.raw.lines().enumerate().map(|(i, l)| (i + 1, l))
    }
}

/// Blanks comments and string/char-literal bodies, preserving newlines,
/// string delimiters, and overall length.
pub fn scrub(src: &str) -> String {
    scrub_inner(src, true)
}

/// Blanks string/char-literal bodies only; comments pass through (used
/// when parsing annotations, which *live* in comments).
pub fn scrub_strings(src: &str) -> String {
    scrub_inner(src, false)
}

fn scrub_inner(src: &str, blank_comments: bool) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                out.push(if blank_comments { ' ' } else { b[i] });
                i += 1;
            }
            continue;
        }
        // Block comment (nesting, as in Rust).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    for k in 0..2 {
                        out.push(if blank_comments { ' ' } else { b[i + k] });
                    }
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    for k in 0..2 {
                        out.push(if blank_comments { ' ' } else { b[i + k] });
                    }
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if blank_comments { blank(b[i]) } else { b[i] });
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"…", r#"…"#, br#"…"# etc. (`r#ident` raw
        // identifiers have no quote after the hashes and fall through).
        if c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r')) {
            let start = if c == 'b' { i + 2 } else { i + 1 };
            let mut j = start;
            while b.get(j) == Some(&'#') {
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                let hashes = j - start;
                out.extend_from_slice(&b[i..=j]);
                i = j + 1;
                // Scan for `"` followed by `hashes` hashes.
                'raw: while i < b.len() {
                    if b[i] == '"' {
                        let mut h = 0;
                        while b.get(i + 1 + h) == Some(&'#') && h < hashes {
                            h += 1;
                        }
                        if h == hashes {
                            out.extend_from_slice(&b[i..=i + hashes]);
                            i += hashes + 1;
                            break 'raw;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string (also covers b"…" via the prefix byte staying
        // plain code).
        if c == '"' {
            out.push('"');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    out.push(' ');
                    out.push(if b[i + 1] == '\n' { '\n' } else { ' ' });
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` are literals; `'a` in
        // `<'a>` is a lifetime and stays code.
        if c == '\'' {
            let is_char = match b.get(i + 1) {
                Some('\\') => true,
                Some(_) => b.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                out.push('\'');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

/// Extracts `tidy-allow(check): reason` / `tidy-allow-file(check): reason`
/// annotations from comments (`//`-style in Rust, `#`-style in TOML).
///
/// Only a **plain** comment whose content *starts* with `tidy-allow` is an
/// annotation. Doc comments (`///`, `//!`) and prose that merely mentions
/// the syntax are not, and string literals are blanked before parsing —
/// so documenting the annotation (as this file does) never creates one.
pub fn parse_allows(raw: &str) -> Vec<Allow> {
    let scrubbed = scrub_strings(raw);
    let mut out = Vec::new();
    for (idx, line) in scrubbed.lines().enumerate() {
        let comment = if let Some(s) = line.find("//") {
            let c = &line[s + 2..];
            // `///` and `//!` are documentation, not annotations.
            if c.starts_with('/') || c.starts_with('!') {
                continue;
            }
            c
        } else if let Some(s) = line.find('#') {
            // TOML comment (attributes like `#[cfg]` never start a line
            // with `# `).
            &line[s + 1..]
        } else {
            continue;
        };
        let rest = comment.trim_start();
        let Some(rest) = rest.strip_prefix("tidy-allow") else {
            continue;
        };
        let (file_scope, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let check = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(Allow {
            line: idx + 1,
            check,
            file_scope,
            reason,
            used: Cell::new(false),
        });
    }
    out
}

/// Whether the occurrence of `needle` at `pos` in `hay` is a whole-word
/// match: identifier-boundary checks apply only at the needle ends that
/// are themselves identifier characters (so `.unwrap()` matches after an
/// identifier, but `HashMap` does not match inside `MyHashMap`).
pub fn word_at(hay: &str, pos: usize, needle: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let ok_before =
        !needle.starts_with(ident) || !hay[..pos].chars().next_back().is_some_and(ident);
    let ok_after =
        !needle.ends_with(ident) || !hay[pos + needle.len()..].chars().next().is_some_and(ident);
    ok_before && ok_after
}

/// All whole-word occurrences of `needle` in `hay` (byte offsets).
pub fn word_matches<'a>(hay: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    hay.match_indices(needle)
        .filter(move |(pos, _)| word_at(hay, *pos, needle))
        .map(|(pos, _)| pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1;\n";
        let s = scrub(src);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("let y = 1;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn scrub_keeps_lifetimes_handles_chars_and_raw_strings() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nlet r = r#\"Instant\"#;\n";
        let s = scrub(src);
        assert!(s.contains("<'a>"));
        assert!(!s.contains("'x'"));
        assert!(!s.contains("Instant"));
    }

    #[test]
    fn scrub_nested_block_comment() {
        let src = "a /* x /* y */ z */ b\n";
        assert_eq!(scrub(src), "a                   b\n");
    }

    #[test]
    fn allow_parsing() {
        let src = "x\n// tidy-allow(determinism): bench-only scratch map\ny\n# tidy-allow-file(deps): harness crate\n";
        let allows = parse_allows(src);
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].line, 2);
        assert_eq!(allows[0].check, "determinism");
        assert!(!allows[0].file_scope);
        assert_eq!(allows[0].reason, "bench-only scratch map");
        assert!(allows[1].file_scope);
    }

    #[test]
    fn word_matching() {
        assert_eq!(word_matches("HashMap, MyHashMap", "HashMap").count(), 1);
        assert_eq!(word_matches("a.unwrap().unwrap()", ".unwrap()").count(), 2);
    }
}
