//! Workspace discovery: which files each check scans.
//!
//! The walker is deliberately structural, not `cargo`-driven: it reads
//! directories in sorted order (deterministic output) and classifies by
//! path, so it works unchanged on the fixture mini-workspaces under
//! `crates/tidy/tests/fixtures/`.

use crate::source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// A parsed-enough `Cargo.toml`: the crate's directory name and its
/// dependency section contents with line numbers.
#[derive(Debug)]
pub struct Manifest {
    /// `crates/<dir>` component.
    pub crate_dir: String,
    /// Workspace-relative path of the manifest.
    pub rel: String,
    /// `(section, dependency name, 1-based line)` for every dep entry.
    pub deps: Vec<(DepSection, String, usize)>,
    /// `tidy-allow` annotations (`#`-comments).
    pub allows: Vec<crate::source::Allow>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepSection {
    Normal,
    Dev,
    Build,
}

impl Manifest {
    pub fn allowed(&self, line: usize, check: &str) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.check == check && (a.file_scope || a.line == line || a.line + 1 == line) {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }
}

/// Everything the checks need, loaded once.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    /// Library/binary sources: `crates/*/src/**/*.rs` and the facade's
    /// `src/**/*.rs`.
    pub files: Vec<SourceFile>,
    /// Test-ish corpus: `crates/*/tests/**/*.rs`, root `tests/**/*.rs`,
    /// `crates/*/benches/**/*.rs`, `examples/**/*.rs`.
    pub corpus: Vec<SourceFile>,
    /// Golden snapshot contents under `tests/golden/`.
    pub golden: Vec<(String, String)>,
    /// Per-crate manifests.
    pub manifests: Vec<Manifest>,
}

impl Workspace {
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let root = root
            .canonicalize()
            .map_err(|e| format!("{}: {e}", root.display()))?;
        let mut files = Vec::new();
        let mut corpus = Vec::new();
        let mut golden = Vec::new();
        let mut manifests = Vec::new();

        for crate_path in sorted_dirs(&root.join("crates"))? {
            let dir_name = file_name(&crate_path);
            let manifest_path = crate_path.join("Cargo.toml");
            if manifest_path.is_file() {
                manifests.push(load_manifest(&root, &manifest_path, &dir_name)?);
            }
            collect_rs(&crate_path.join("src"), &root, Some(&dir_name), &mut files)?;
            // Fixture mini-workspaces are inputs for tidy's own tests, not
            // part of this workspace.
            if dir_name != "tidy" {
                collect_rs(
                    &crate_path.join("tests"),
                    &root,
                    Some(&dir_name),
                    &mut corpus,
                )?;
            }
            collect_rs(
                &crate_path.join("benches"),
                &root,
                Some(&dir_name),
                &mut corpus,
            )?;
        }
        collect_rs(&root.join("src"), &root, None, &mut files)?;
        collect_rs(&root.join("tests"), &root, None, &mut corpus)?;
        collect_rs(&root.join("examples"), &root, None, &mut corpus)?;

        let golden_dir = root.join("tests").join("golden");
        if golden_dir.is_dir() {
            for p in sorted_entries(&golden_dir)? {
                if p.is_file() {
                    let text =
                        fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
                    golden.push((rel_of(&root, &p), text));
                }
            }
        }

        Ok(Workspace {
            root,
            files,
            corpus,
            golden,
            manifests,
        })
    }

    /// Sources belonging to `crates/<dir>/src`.
    pub fn crate_files<'a>(&'a self, dir: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| f.crate_dir.as_deref() == Some(dir))
    }
}

fn file_name(p: &Path) -> String {
    p.file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn rel_of(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

fn sorted_entries(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let rd = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    Ok(sorted_entries(dir)?
        .into_iter()
        .filter(|p| p.is_dir())
        .collect())
}

/// Recursively collects `.rs` files under `dir` (skipping fixture trees).
fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_dir: Option<&str>,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    for p in sorted_entries(dir)? {
        if p.is_dir() {
            if file_name(&p) == "fixtures" {
                continue;
            }
            collect_rs(&p, root, crate_dir, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let raw = fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            out.push(SourceFile::new(
                p.clone(),
                rel_of(root, &p),
                crate_dir.map(str::to_string),
                raw,
            ));
        }
    }
    Ok(())
}

/// Line-oriented `Cargo.toml` parse: section headers and `name = …` /
/// `name.workspace = true` dependency entries.
fn load_manifest(root: &Path, path: &Path, crate_dir: &str) -> Result<Manifest, String> {
    let raw = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut deps = Vec::new();
    let mut section: Option<DepSection> = None;
    for (idx, line) in raw.lines().enumerate() {
        let t = line.trim();
        if t.starts_with('[') {
            section = match t {
                "[dependencies]" => Some(DepSection::Normal),
                "[dev-dependencies]" => Some(DepSection::Dev),
                "[build-dependencies]" => Some(DepSection::Build),
                _ => None,
            };
            continue;
        }
        let Some(sec) = section else { continue };
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some(eq) = t.find('=') {
            let name = t[..eq].trim().trim_matches('"');
            // `plwg-sim.workspace = true` spells the dep before the dot.
            let name = name.split('.').next().unwrap_or(name);
            if !name.is_empty() {
                deps.push((sec, name.to_string(), idx + 1));
            }
        }
    }
    Ok(Manifest {
        crate_dir: crate_dir.to_string(),
        rel: rel_of(root, path),
        deps,
        allows: crate::source::parse_allows(&raw),
    })
}
