//! plwg-tidy's own test suite.
//!
//! The fixture mini-workspace under `tests/fixtures/ws/` seeds at least
//! one violation of every check category *and* one `tidy-allow`-silenced
//! variant of each, so these tests prove both directions: every check
//! fires at the exact file:line it should, and every annotation form
//! (line-scope, file-scope, manifest `#`-comment) is honoured. The final
//! test runs the real workspace through the same pass and requires it
//! clean — the invariant CI enforces.

use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/tidy sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn every_check_fires_at_the_seeded_site() {
    let diags = plwg_tidy::run(&fixture_root()).expect("fixture workspace loads");
    let got: Vec<(&str, usize, &str)> = diags
        .iter()
        .map(|d| (d.rel.as_str(), d.line, d.check))
        .collect();
    let want: Vec<(&str, usize, &str)> = vec![
        ("crates/core/Cargo.toml", 6, "deps"),
        ("crates/core/src/big.rs", 1, "module-size"),
        ("crates/core/src/determinism_mix.rs", 4, "determinism"),
        ("crates/core/src/determinism_mix.rs", 5, "determinism"),
        ("crates/core/src/determinism_mix.rs", 6, "determinism"),
        ("crates/core/src/determinism_mix.rs", 9, "determinism"),
        ("crates/core/src/determinism_mix.rs", 12, "determinism"),
        ("crates/core/src/determinism_mix.rs", 13, "determinism"),
        ("crates/core/src/dir_scan.rs", 4, "directory-hygiene"),
        ("crates/core/src/dir_scan.rs", 7, "directory-hygiene"),
        ("crates/core/src/flush.rs", 4, "panic"),
        ("crates/core/src/flush.rs", 5, "panic"),
        ("crates/core/src/flush.rs", 7, "panic"),
        ("crates/core/src/hygiene.rs", 3, "tidy-allow"),
        ("crates/core/src/hygiene.rs", 4, "tidy-allow"),
        ("crates/core/src/hygiene.rs", 5, "tidy-allow"),
        ("crates/core/src/keys.rs", 4, "metric-keys"),
        ("crates/core/src/metrics_use.rs", 6, "metric-keys"),
        ("crates/core/src/metrics_use.rs", 7, "metric-keys"),
        ("crates/core/src/protocol_events.rs", 15, "event-coverage"),
        ("crates/core/src/vsync_pin.rs", 5, "deps"),
        ("crates/core/src/wire_use.rs", 6, "wire-hygiene"),
        ("crates/core/src/wire_use.rs", 9, "wire-hygiene"),
        ("crates/core/src/wire_use.rs", 13, "wire-hygiene"),
        ("crates/hwg/Cargo.toml", 5, "deps"),
    ];
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert_eq!(got, want, "full fixture output:\n{}", rendered.join("\n"));
}

#[test]
fn messages_name_the_remedy() {
    let diags = plwg_tidy::run(&fixture_root()).expect("fixture workspace loads");
    let msg_at = |rel: &str, line: usize| -> &str {
        &diags
            .iter()
            .find(|d| d.rel == rel && d.line == line)
            .unwrap_or_else(|| panic!("no diagnostic at {rel}:{line}"))
            .msg
    };
    assert!(msg_at("crates/core/src/determinism_mix.rs", 4).contains("use BTreeMap"));
    assert!(msg_at("crates/core/src/determinism_mix.rs", 13).contains("float-keyed"));
    assert!(msg_at("crates/core/src/dir_scan.rs", 4).contains("indexed query"));
    assert!(msg_at("crates/core/src/dir_scan.rs", 7).contains("GroupDirectory"));
    assert!(msg_at("crates/core/src/flush.rs", 4).contains("LwgError"));
    assert!(msg_at("crates/core/src/keys.rs", 4).contains("dead metric key `DEAD_KEY`"));
    assert!(msg_at("crates/core/src/metrics_use.rs", 6).contains("bare string key"));
    assert!(msg_at("crates/core/src/metrics_use.rs", 7).contains("inline `CounterKey::new"));
    assert!(
        msg_at("crates/core/src/protocol_events.rs", 15).contains("`fx.ghost` (FxEvent::Ghost)")
    );
    assert!(msg_at("crates/core/src/big.rs", 1).contains("707 lines"));
    assert!(msg_at("crates/core/src/hygiene.rs", 3).contains("unknown check `no-such-check`"));
    assert!(msg_at("crates/core/src/hygiene.rs", 4).contains("needs a justification"));
    assert!(msg_at("crates/core/src/hygiene.rs", 5).contains("stale annotation"));
    assert!(msg_at("crates/hwg/Cargo.toml", 5).contains("must not depend on `plwg-naming`"));
    assert!(msg_at("crates/core/src/wire_use.rs", 6).contains("encode_frame"));
    assert!(msg_at("crates/core/src/wire_use.rs", 9).contains("decode_frame"));
    assert!(msg_at("crates/core/src/wire_use.rs", 13).contains("Frame::from_u64"));
}

/// Every allow annotation the fixtures use to *silence* a violation must
/// actually silence it: none of those sites may appear in the output.
#[test]
fn allow_annotations_are_honoured() {
    let diags = plwg_tidy::run(&fixture_root()).expect("fixture workspace loads");
    let silenced: [(&str, usize); 9] = [
        ("crates/core/src/wire_use.rs", 18),        // allowed downcast
        ("crates/core/src/determinism_mix.rs", 11), // line-scope, next line
        ("crates/core/src/dir_scan.rs", 10),        // allowed directory walk
        ("crates/core/src/flush.rs", 10),           // indexing under allow
        ("crates/core/src/keys.rs", 6),             // allowed-dead key
        ("crates/core/src/metrics_use.rs", 9),      // allowed bare string
        ("crates/core/src/protocol_events.rs", 17), // allowed uncovered kind
        ("crates/core/src/vsync_pin.rs", 9),        // allowed substrate pin
        ("crates/core/Cargo.toml", 8),              // allowed manifest dep
    ];
    for (rel, line) in silenced {
        assert!(
            !diags.iter().any(|d| d.rel == rel && d.line == line),
            "tidy-allow at {rel}:{line} was not honoured"
        );
    }
    // The file-scope allow silences the whole over-budget module.
    assert!(
        !diags.iter().any(|d| d.rel.ends_with("big_allowed.rs")),
        "tidy-allow-file(module-size) was not honoured"
    );
}

/// The gate CI relies on: the real workspace passes its own tidy.
#[test]
fn real_workspace_is_clean() {
    let diags = plwg_tidy::run(&workspace_root()).expect("workspace loads");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "plwg-tidy found {} diagnostic(s) in the tree:\n{}",
        diags.len(),
        rendered.join("\n")
    );
}
