//! Fixture: the determinism check fires on each forbidden token and
//! honours a line allow.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;

pub fn scratch(rng: &mut Rng) {
    let _m: HashMap<u32, u32> = HashMap::new();
    // tidy-allow(determinism): fixture proves the annotation is honoured
    let _s: HashSet<u32> = HashSet::new();
    let _r = thread_rng();
    let _k: BTreeMap<f64, u32> = BTreeMap::new();
}
