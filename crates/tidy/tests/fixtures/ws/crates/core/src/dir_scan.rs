//! directory-hygiene fixture: scans and raw tables outside directory.rs.

fn scan(dir: &Dir) {
    for _ in dir.iter_all() {}
}
struct Shadow {
    table: BTreeMap<LwgId, LwgState>,
}
// tidy-allow(directory-hygiene): the sanctioned operator dump
fn dump(dir: &Dir) { let _ = dir.iter_all(); }
