//! Fixture: hot-path panic sites; `crates/core/src/flush.rs` is on the list.

pub fn hot(xs: &[u32]) -> u32 {
    let a = xs.first().unwrap();
    let b = xs.iter().next().expect("nonempty");
    if xs.is_empty() {
        panic!("boom");
    }
    // tidy-allow(panic): emptiness ruled out by the guard above
    let c = xs[0];
    a + b + c
}
