//! Fixture: allowlist hygiene — unknown check, missing reason, stale.

// tidy-allow(no-such-check): typo in the check name
// tidy-allow(determinism)
// tidy-allow(panic): silences nothing in this file
pub fn nothing() {}
