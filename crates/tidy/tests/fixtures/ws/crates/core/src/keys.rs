//! Fixture: metric keys — one live, one dead, one allowed-dead.

pub const LIVE_KEY: CounterKey = CounterKey::new("fx.live");
pub const DEAD_KEY: CounterKey = CounterKey::new("fx.dead");
// tidy-allow(metric-keys): reserved for the next fixture generation
pub const PARKED_KEY: GaugeKey = GaugeKey::new("fx.parked");
