//! Fixture: emission hygiene — typed key fine, bare string and inline
//! construction flagged, allow honoured.

pub fn emit(m: &mut Metrics) {
    m.incr(LIVE_KEY);
    m.incr("fx.inline");
    let _k = CounterKey::new("fx.adhoc");
    // tidy-allow(metric-keys): fixture proves the annotation is honoured
    m.observe("fx.allowed", 1);
}
