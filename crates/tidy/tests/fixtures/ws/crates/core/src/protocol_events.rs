//! Fixture: event kinds — covered by a test, by a golden file, allowed,
//! and one truly uncovered.

pub enum FxEvent {
    Seen,
    Ghost,
    Tolerated,
    Golden,
}

impl ProtocolEvent for FxEvent {
    fn kind(&self) -> &'static str {
        match self {
            FxEvent::Seen => "fx.seen",
            FxEvent::Ghost => "fx.ghost",
            // tidy-allow(event-coverage): variant reserved for the next PR
            FxEvent::Tolerated => "fx.tolerated",
            FxEvent::Golden => "fx.golden",
        }
    }
}
