//! Fixture: the substrate-generic rule — `VsyncStack` may not be named in
//! protocol-crate sources; doc-comment mentions (like this one) are fine.

pub struct Holder {
    pub stack: VsyncStack,
}

// tidy-allow(deps): fixture proves the annotation is honoured
pub type Pinned = VsyncStack;
