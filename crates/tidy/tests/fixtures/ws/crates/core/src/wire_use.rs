//! Seeds `wire-hygiene`: the pre-wire type-erased payload surface.

use std::any::Any;
use std::rc::Rc;

pub type OldPayload = Rc<dyn Any>;

pub fn peek(p: &OldPayload) -> Option<&u64> {
    p.downcast_ref::<u64>()
}

pub fn make() -> OldPayload {
    payload::<u64>(7)
}

pub fn allowed(p: &dyn Any) -> bool {
    // tidy-allow(wire-hygiene): fixture: harness-style process inspection is permitted
    p.downcast_ref::<u64>().is_some()
}
