//! Fixture corpus: exercises the `fx.seen` event kind and reads LIVE_KEY.

#[test]
fn seen_kind_is_exercised() {
    assert_eq!(trace.count("fx.seen"), 1);
    assert!(metrics.counter(LIVE_KEY) > 0);
}
