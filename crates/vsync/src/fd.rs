//! Node-level heartbeat failure detector.
//!
//! One detector per node is shared by every group that node belongs to —
//! one of the resource-sharing wins of running many groups on one stack
//! (and the reason recovery cost in the paper's Figure 2 does not grow with
//! the number of co-mapped groups). In an asynchronous system the detector
//! cannot distinguish a crashed peer from a slow or partitioned one (paper
//! §4); both appear as [`FdEvent::Suspect`], and a peer heard from again is
//! rehabilitated with [`FdEvent::Alive`] — the signal that ultimately
//! drives partition-heal discovery.

use plwg_sim::{NodeId, SimTime};
use std::collections::BTreeMap;

/// A change in the detector's opinion of a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdEvent {
    /// The peer has been silent past the timeout.
    Suspect(NodeId),
    /// A previously suspected peer was heard from again.
    Alive(NodeId),
}

/// Heartbeat-based failure detector over an explicitly watched peer set.
#[derive(Debug, Default)]
pub struct FailureDetector {
    /// watched peer → (last time heard, currently suspected, watch count).
    peers: BTreeMap<NodeId, PeerState>,
}

#[derive(Debug, Clone, Copy)]
struct PeerState {
    last_heard: SimTime,
    suspected: bool,
    /// Number of watch registrations (groups sharing the detector).
    refs: u32,
}

impl FailureDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or ref-counts) watching `peer`. A freshly watched peer is
    /// treated as heard-from `now`, so it has a full timeout to speak.
    pub fn watch(&mut self, peer: NodeId, now: SimTime) {
        self.peers
            .entry(peer)
            .and_modify(|s| s.refs += 1)
            .or_insert(PeerState {
                last_heard: now,
                suspected: false,
                refs: 1,
            });
    }

    /// Drops one watch registration of `peer`; stops monitoring when the
    /// count reaches zero.
    pub fn unwatch(&mut self, peer: NodeId) {
        if let Some(s) = self.peers.get_mut(&peer) {
            s.refs -= 1;
            if s.refs == 0 {
                self.peers.remove(&peer);
            }
        }
    }

    /// Records evidence of life from `peer` (a heartbeat or any protocol
    /// message). Returns `Some(FdEvent::Alive)` when this rehabilitates a
    /// suspected peer.
    pub fn heard_from(&mut self, peer: NodeId, now: SimTime) -> Option<FdEvent> {
        let s = self.peers.get_mut(&peer)?;
        s.last_heard = now;
        if s.suspected {
            s.suspected = false;
            Some(FdEvent::Alive(peer))
        } else {
            None
        }
    }

    /// Scans for peers silent past `timeout` and returns fresh suspicions.
    pub fn check(&mut self, now: SimTime, timeout: plwg_sim::SimDuration) -> Vec<FdEvent> {
        let mut events = Vec::new();
        for (&peer, s) in self.peers.iter_mut() {
            if !s.suspected && now.saturating_since(s.last_heard) >= timeout {
                s.suspected = true;
                events.push(FdEvent::Suspect(peer));
            }
        }
        events
    }

    /// Whether `peer` is currently suspected (unwatched peers are not).
    pub fn is_suspected(&self, peer: NodeId) -> bool {
        self.peers.get(&peer).is_some_and(|s| s.suspected)
    }

    /// All currently watched peers, in id order.
    pub fn watched(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.peers.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plwg_sim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1000)
    }
    const TO: SimDuration = SimDuration::from_millis(500);

    #[test]
    fn silent_peer_is_suspected_once() {
        let mut fd = FailureDetector::new();
        fd.watch(NodeId(1), t(0));
        assert!(fd.check(t(100), TO).is_empty());
        assert_eq!(fd.check(t(600), TO), vec![FdEvent::Suspect(NodeId(1))]);
        assert!(fd.check(t(700), TO).is_empty(), "no duplicate suspicion");
        assert!(fd.is_suspected(NodeId(1)));
    }

    #[test]
    fn heartbeat_defers_suspicion() {
        let mut fd = FailureDetector::new();
        fd.watch(NodeId(1), t(0));
        assert_eq!(fd.heard_from(NodeId(1), t(400)), None);
        assert!(fd.check(t(600), TO).is_empty());
        assert_eq!(fd.check(t(901), TO), vec![FdEvent::Suspect(NodeId(1))]);
    }

    #[test]
    fn rehabilitation_emits_alive() {
        let mut fd = FailureDetector::new();
        fd.watch(NodeId(1), t(0));
        fd.check(t(600), TO);
        assert_eq!(
            fd.heard_from(NodeId(1), t(700)),
            Some(FdEvent::Alive(NodeId(1)))
        );
        assert!(!fd.is_suspected(NodeId(1)));
        // And it can be suspected again later.
        assert_eq!(fd.check(t(1300), TO), vec![FdEvent::Suspect(NodeId(1))]);
    }

    #[test]
    fn refcounted_watch() {
        let mut fd = FailureDetector::new();
        fd.watch(NodeId(1), t(0));
        fd.watch(NodeId(1), t(0));
        fd.unwatch(NodeId(1));
        assert_eq!(fd.watched().count(), 1);
        fd.unwatch(NodeId(1));
        assert_eq!(fd.watched().count(), 0);
        // Unwatched peers never generate events.
        assert!(fd.check(t(10_000), TO).is_empty());
        assert_eq!(fd.heard_from(NodeId(1), t(10_000)), None);
    }

    #[test]
    fn unknown_peer_not_suspected() {
        let fd = FailureDetector::new();
        assert!(!fd.is_suspected(NodeId(9)));
    }
}
