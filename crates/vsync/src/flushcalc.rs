//! Pure computation at the heart of the flush protocol: given every
//! member's digest, derive the **delivery target** (the exact message set
//! the closing view will have delivered) and the **pull plan** (which
//! member retransmits which missing message).
//!
//! Kept free of protocol state so the correctness conditions can be tested
//! exhaustively — see the property tests in `tests/prop_flushcalc.rs`.

use plwg_sim::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// One member's flush digest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Digest {
    /// Per-sender contiguously-delivered prefix.
    pub prefix: BTreeMap<NodeId, u64>,
    /// Out-of-order messages sitting in the hold-back queue.
    pub extras: Vec<(NodeId, u64)>,
    /// `(sender, seq)` pairs within `prefix`/`extras` that this member
    /// holds only as subset-delivery skip markers: they count towards the
    /// target (the message exists and was sequenced), but the member cannot
    /// serve the real payload as a fill.
    pub thin: Vec<(NodeId, u64)>,
}

impl Digest {
    /// Builds a digest from its parts.
    pub fn new(
        prefix: BTreeMap<NodeId, u64>,
        extras: Vec<(NodeId, u64)>,
        thin: Vec<(NodeId, u64)>,
    ) -> Self {
        Digest {
            prefix,
            extras,
            thin,
        }
    }
}

/// The outcome of the target computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushPlan {
    /// sender → final sequence number every member must deliver.
    pub target: BTreeMap<NodeId, u64>,
    /// holder → messages it must retransmit to the group.
    pub pulls: BTreeMap<NodeId, Vec<(NodeId, u64)>>,
}

/// Computes the delivery target and pull plan from the collected digests.
///
/// ```
/// use plwg_sim::NodeId;
/// use plwg_vsync::flushcalc::{compute_plan, Digest};
/// use std::collections::BTreeMap;
///
/// let mut digests = BTreeMap::new();
/// // Member 0 delivered 3 messages from sender 9; member 1 only 1.
/// digests.insert(
///     NodeId(0),
///     Digest::new(BTreeMap::from([(NodeId(9), 3)]), vec![], vec![]),
/// );
/// digests.insert(
///     NodeId(1),
///     Digest::new(BTreeMap::from([(NodeId(9), 1)]), vec![], vec![]),
/// );
/// let plan = compute_plan(&digests);
/// assert_eq!(plan.target[&NodeId(9)], 3);
/// // Member 0 retransmits what member 1 is missing.
/// assert_eq!(plan.pulls[&NodeId(0)], vec![(NodeId(9), 2), (NodeId(9), 3)]);
/// ```
///
/// The target for sender `s` is the longest gap-free prefix of `s`'s
/// messages that *somebody* in the view holds (delivered or held back):
/// anything beyond a hole that exists nowhere was never delivered to
/// anyone and may be dropped consistently. For every `(sender, seq)` in
/// the target that some member lacks, the lowest-id member holding it is
/// scheduled to retransmit — preferring members that hold the real payload
/// over those holding only a subset-delivery skip marker.
pub fn compute_plan(digests: &BTreeMap<NodeId, Digest>) -> FlushPlan {
    // Union of what exists, per sender.
    let mut max_prefix: BTreeMap<NodeId, u64> = BTreeMap::new();
    let mut extra_set: BTreeMap<NodeId, BTreeSet<u64>> = BTreeMap::new();
    for d in digests.values() {
        for (&s, &p) in &d.prefix {
            let e = max_prefix.entry(s).or_insert(0);
            *e = (*e).max(p);
        }
        for &(s, seq) in &d.extras {
            extra_set.entry(s).or_default().insert(seq);
        }
    }
    // Target: extend each sender's max prefix through contiguous extras.
    let mut target: BTreeMap<NodeId, u64> = BTreeMap::new();
    let senders: BTreeSet<NodeId> = max_prefix.keys().chain(extra_set.keys()).copied().collect();
    for s in senders {
        let mut t = max_prefix.get(&s).copied().unwrap_or(0);
        if let Some(extras) = extra_set.get(&s) {
            while extras.contains(&(t + 1)) {
                t += 1;
            }
        }
        target.insert(s, t);
    }

    // Which messages is anyone missing, and who can supply them?
    let mut needed: BTreeSet<(NodeId, u64)> = BTreeSet::new();
    for d in digests.values() {
        let held: BTreeSet<(NodeId, u64)> = d.extras.iter().copied().collect();
        for (&s, &t) in &target {
            let have = d.prefix.get(&s).copied().unwrap_or(0);
            for seq in have + 1..=t {
                if !held.contains(&(s, seq)) {
                    needed.insert((s, seq));
                }
            }
        }
    }
    let mut pulls: BTreeMap<NodeId, Vec<(NodeId, u64)>> = BTreeMap::new();
    for (s, seq) in needed {
        let holds = |d: &Digest| {
            d.prefix.get(&s).copied().unwrap_or(0) >= seq || d.extras.contains(&(s, seq))
        };
        // Lowest-id reporter holding the *real* payload serves it; if the
        // message survives only as skip markers (sender gone, every
        // addressee lost it), the lowest marker-holder re-serves the
        // marker so everyone still reaches the target consistently.
        let real = digests
            .iter()
            .find_map(|(m, d)| (holds(d) && !d.thin.contains(&(s, seq))).then_some(*m));
        let holder = real.or_else(|| digests.iter().find_map(|(m, d)| holds(d).then_some(*m)));
        if let Some(h) = holder {
            pulls.entry(h).or_default().push((s, seq));
        }
        // A message nobody holds was never delivered anywhere; the target
        // computation above already excluded it — `holder` is always Some
        // for seqs within the target (asserted by the property tests).
    }
    FlushPlan { target, pulls }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn digest(prefix: &[(u32, u64)], extras: &[(u32, u64)]) -> Digest {
        Digest::new(
            prefix.iter().map(|&(s, p)| (n(s), p)).collect(),
            extras.iter().map(|&(s, q)| (n(s), q)).collect(),
            vec![],
        )
    }

    #[test]
    fn all_agree_no_pulls() {
        let mut d = BTreeMap::new();
        d.insert(n(0), digest(&[(0, 5), (1, 3)], &[]));
        d.insert(n(1), digest(&[(0, 5), (1, 3)], &[]));
        let plan = compute_plan(&d);
        assert_eq!(plan.target[&n(0)], 5);
        assert_eq!(plan.target[&n(1)], 3);
        assert!(plan.pulls.is_empty());
    }

    #[test]
    fn laggard_gets_fill_from_lowest_holder() {
        let mut d = BTreeMap::new();
        d.insert(n(0), digest(&[(0, 5)], &[]));
        d.insert(n(1), digest(&[(0, 5)], &[]));
        d.insert(n(2), digest(&[(0, 2)], &[]));
        let plan = compute_plan(&d);
        assert_eq!(plan.target[&n(0)], 5);
        assert_eq!(
            plan.pulls.get(&n(0)).map(Vec::as_slice),
            Some(&[(n(0), 3), (n(0), 4), (n(0), 5)][..]),
            "node 0 (lowest id) serves the laggard"
        );
    }

    #[test]
    fn holdback_extras_extend_the_target() {
        // Nobody delivered 3 (gap at 2 is filled by an extra), but member 1
        // holds 2 and 3 out of order: target extends through them.
        let mut d = BTreeMap::new();
        d.insert(n(0), digest(&[(0, 1)], &[]));
        d.insert(n(1), digest(&[(0, 1)], &[(0, 2), (0, 3)]));
        let plan = compute_plan(&d);
        assert_eq!(plan.target[&n(0)], 3);
        // Member 0 lacks 2 and 3; member 1 holds them.
        assert_eq!(
            plan.pulls.get(&n(1)).map(Vec::as_slice),
            Some(&[(n(0), 2), (n(0), 3)][..])
        );
    }

    #[test]
    fn messages_beyond_a_global_hole_are_dropped() {
        // Seq 2 exists nowhere; 3 sits in a hold-back queue. The target
        // stops at 1 — message 3 was never delivered anywhere, so dropping
        // it everywhere is consistent.
        let mut d = BTreeMap::new();
        d.insert(n(0), digest(&[(0, 1)], &[(0, 3)]));
        d.insert(n(1), digest(&[(0, 1)], &[]));
        let plan = compute_plan(&d);
        assert_eq!(plan.target[&n(0)], 1);
        assert!(plan.pulls.is_empty());
    }

    #[test]
    fn real_holder_preferred_over_thin() {
        // Member 0 (lowest id) holds seq 2 only as a skip marker; member 1
        // has the real payload. Member 2 needs it: member 1 must serve.
        let mut d = BTreeMap::new();
        let mut thin0 = digest(&[(9, 2)], &[]);
        thin0.thin = vec![(n(9), 2)];
        d.insert(n(0), thin0);
        d.insert(n(1), digest(&[(9, 2)], &[]));
        d.insert(n(2), digest(&[(9, 1)], &[]));
        let plan = compute_plan(&d);
        assert_eq!(plan.target[&n(9)], 2);
        assert_eq!(
            plan.pulls.get(&n(1)).map(Vec::as_slice),
            Some(&[(n(9), 2)][..])
        );
    }

    #[test]
    fn marker_only_message_still_serviced() {
        // The real payload of seq 2 survives nowhere (sender crashed, the
        // only addressee lost it) — the marker holder re-serves the marker
        // so the laggard can still reach the target.
        let mut d = BTreeMap::new();
        let mut thin0 = digest(&[(9, 2)], &[]);
        thin0.thin = vec![(n(9), 2)];
        d.insert(n(0), thin0);
        d.insert(n(1), digest(&[(9, 1)], &[]));
        let plan = compute_plan(&d);
        assert_eq!(plan.target[&n(9)], 2);
        assert_eq!(
            plan.pulls.get(&n(0)).map(Vec::as_slice),
            Some(&[(n(9), 2)][..])
        );
    }

    #[test]
    fn empty_digests_empty_plan() {
        let plan = compute_plan(&BTreeMap::new());
        assert!(plan.target.is_empty());
        assert!(plan.pulls.is_empty());
    }
}
