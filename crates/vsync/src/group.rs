//! The per-group endpoint state machine: data plane, flush, membership and
//! merge.
//!
//! One [`GroupEndpoint`] lives at each node for each HWG the node belongs
//! to (or is joining). The endpoint implements, in one place, the three
//! protocol roles a member can play:
//!
//! * **data plane** — FIFO, view-tagged multicast with a hold-back queue;
//! * **flush participant** — freeze, report a digest, reach the agreed
//!   delivery target, acknowledge;
//! * **flush initiator / merge leader** — the *acting coordinator* (most
//!   senior member not suspected by the local failure detector) drives view
//!   changes; coordinators of concurrent views discovered via beacons drive
//!   merges.
//!
//! ## The flush protocol (virtual synchrony)
//!
//! ```text
//!  initiator                         members
//!     | -- FlushReq(proposed) ---------> |   freeze sending, Stop upcall
//!     | <-- FlushDigest(prefix,extras) - |   (after StopOk)
//!     |   compute target T, holders      |
//!     | -- FlushTarget(T) -------------> |
//!     | -- FlushPull(missing) --> holder |   holder multicasts FlushFill
//!     | <-- FlushDone ------------------ |   once delivered == T
//!     | -- NewView -------------------->  |   install, resume
//! ```
//!
//! Every member of the closing view delivers *exactly* the target set
//! before installing the successor view, which is the virtual-synchrony
//! guarantee ("all processes that install two consecutive views deliver the
//! same set of messages between these views").

// tidy-allow-file(module-size): predates the budget; the data-plane,
// flush-participant, and initiator/merge roles are candidates for the
// same per-concern split service.rs got — tracked in ROADMAP.md.
use crate::fd::FailureDetector;
use crate::msg::{FlushId, FlushPurpose, Slot, VsMsg};
use crate::wire;
use crate::{GroupStatus, VsEvent, VsyncConfig};
use plwg_hwg::{keys, HwgId, HwgTraceEvent, View, ViewId};
use plwg_sim::{NodeId, Payload, SimTime, Transport, TransportExt};
use std::collections::{BTreeMap, BTreeSet};

/// Member-side state of an in-progress flush.
#[derive(Debug)]
struct MemberFlush {
    flush: FlushId,
    /// Waiting for the owner's `stop_ok` before sending the digest.
    awaiting_stop_ok: bool,
    digest_sent: bool,
    target: Option<BTreeMap<NodeId, u64>>,
    done_sent: bool,
    started_at: SimTime,
}

/// Initiator-side state of a running flush.
#[derive(Debug)]
struct RunningFlush {
    flush: FlushId,
    purpose: FlushPurpose,
    /// Timeout expiries so far: the first retry keeps everyone (the round
    /// may simply have lost a message); only a repeat offender is excluded.
    attempts: u32,
    /// Current-view members expected to report (not suspected at start).
    reporters: Vec<NodeId>,
    /// Reporters that will survive into the successor view (no leavers).
    survivors: Vec<NodeId>,
    joiners: Vec<NodeId>,
    digests: BTreeMap<NodeId, crate::flushcalc::Digest>,
    target_sent: bool,
    done: BTreeSet<NodeId>,
    started_at: SimTime,
}

/// Leader-side state of a running merge.
#[derive(Debug)]
struct MergeState {
    /// Invited concurrent views → their frozen report, once ready.
    participants: BTreeMap<ViewId, Option<View>>,
    /// The leader's own frozen view, once its local flush completes.
    my_frozen: Option<View>,
    started_at: SimTime,
}

/// One node's endpoint in one heavy-weight group.
#[derive(Debug)]
pub(crate) struct GroupEndpoint {
    hwg: HwgId,
    me: NodeId,
    status: GroupStatus,
    view: Option<View>,
    /// Ids of views this endpoint has installed (its lineage).
    history: BTreeSet<ViewId>,

    // --- data plane (valid while `view` is Some) ---
    send_seq: u64,
    /// Next expected FIFO seq per sender.
    expected: BTreeMap<NodeId, u64>,
    /// Received but not yet deliverable (gap or freeze).
    holdback: BTreeMap<(NodeId, u64), Slot>,
    /// Delivered messages of the current view, kept to serve retransmissions.
    store: BTreeMap<(NodeId, u64), Slot>,
    /// Application sends buffered while a flush is in progress.
    pending_send: Vec<Payload>,
    /// `(sender, seq)` slots this endpoint holds only as subset-delivery
    /// skip markers (the real payload was addressed elsewhere). Advertised
    /// as `thin` in flush digests so pulls prefer real holders.
    thin_held: BTreeSet<(NodeId, u64)>,

    // --- member-side flush ---
    flush: Option<MemberFlush>,

    // --- initiator / coordinator side ---
    pending_joins: BTreeSet<NodeId>,
    pending_leaves: BTreeSet<NodeId>,
    running: Option<RunningFlush>,
    merge: Option<MergeState>,
    /// Set while this coordinator is flushing as an invited merge
    /// participant; names the leader to report to.
    invited_merge_leader: Option<NodeId>,

    // --- loss recovery / stability ---
    /// Per sender: when the current FIFO gap was first noticed (NACK
    /// pacing).
    gap_since: BTreeMap<NodeId, SimTime>,
    /// Latest stability prefixes received from members of the current view.
    stable_info: BTreeMap<NodeId, BTreeMap<NodeId, u64>>,
    last_stability_sent: SimTime,

    // --- joining ---
    probe_attempts: u32,
    probe_deadline: Option<SimTime>,
    /// Coordinator we sent a JoinReq to (if any).
    join_target: Option<NodeId>,

    /// Consecutive beacons seen from a fellow member advertising a view
    /// we are not part of — evidence we were dropped while still connected.
    stale_beacons: u32,

    next_view_seq: u64,
    next_flush_nonce: u64,
}

impl GroupEndpoint {
    /// Creates an endpoint that will *probe* for an existing view.
    pub(crate) fn new_joining(
        hwg: HwgId,
        me: NodeId,
        ctx: &mut dyn Transport,
        cfg: &VsyncConfig,
    ) -> Self {
        let mut ep = GroupEndpoint::blank(hwg, me);
        ep.status = GroupStatus::Joining;
        ep.send_probe(ctx, cfg);
        ep
    }

    /// Creates an endpoint with an immediate singleton view (used when the
    /// caller *knows* it is creating a fresh group).
    pub(crate) fn new_created(
        hwg: HwgId,
        me: NodeId,
        ctx: &mut dyn Transport,
        events: &mut Vec<VsEvent>,
    ) -> Self {
        let mut ep = GroupEndpoint::blank(hwg, me);
        ep.status = GroupStatus::Member;
        let view = View::initial(ViewId::new(me, ep.take_view_seq()), vec![me]);
        ep.install_view(view, ctx, events);
        ep
    }

    fn blank(hwg: HwgId, me: NodeId) -> Self {
        GroupEndpoint {
            hwg,
            me,
            status: GroupStatus::Left,
            view: None,
            history: BTreeSet::new(),
            send_seq: 0,
            expected: BTreeMap::new(),
            holdback: BTreeMap::new(),
            store: BTreeMap::new(),
            pending_send: Vec::new(),
            thin_held: BTreeSet::new(),
            flush: None,
            pending_joins: BTreeSet::new(),
            pending_leaves: BTreeSet::new(),
            running: None,
            merge: None,
            invited_merge_leader: None,
            gap_since: BTreeMap::new(),
            stable_info: BTreeMap::new(),
            last_stability_sent: SimTime::ZERO,
            probe_attempts: 0,
            probe_deadline: None,
            join_target: None,
            stale_beacons: 0,
            next_view_seq: 0,
            next_flush_nonce: 0,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub(crate) fn status(&self) -> GroupStatus {
        self.status
    }

    pub(crate) fn view(&self) -> Option<&View> {
        self.view.as_ref()
    }

    /// The member that should currently be driving view changes: the most
    /// senior member not suspected by *this node's* failure detector.
    fn acting_coordinator(&self, fd: &FailureDetector) -> Option<NodeId> {
        let view = self.view.as_ref()?;
        view.senior_member_where(|m| m == self.me || !fd.is_suspected(m))
    }

    pub(crate) fn i_am_acting_coordinator(&self, fd: &FailureDetector) -> bool {
        self.acting_coordinator(fd) == Some(self.me)
    }

    fn take_view_seq(&mut self) -> u64 {
        self.next_view_seq += 1;
        self.next_view_seq
    }

    fn take_flush_nonce(&mut self) -> u64 {
        self.next_flush_nonce += 1;
        self.next_flush_nonce
    }

    /// Whether new message delivery is currently frozen (digest reported,
    /// target not yet known — delivering now could exceed the agreed set).
    fn delivery_frozen(&self) -> bool {
        match &self.flush {
            Some(f) => f.digest_sent && f.target.is_none(),
            None => false,
        }
    }

    /// Sends one already-encoded frame to every node in `to`. The frame is
    /// encoded exactly once by the caller; each copy is a refcount bump.
    fn multicast(&self, ctx: &mut dyn Transport, to: &[NodeId], frame: &Payload) {
        for &m in to {
            ctx.send(m, frame.clone());
        }
    }

    // ------------------------------------------------------------------
    // Down-calls
    // ------------------------------------------------------------------

    /// Sends a virtually-synchronous multicast.
    ///
    /// The sender's own copy is delivered synchronously (it is part of the
    /// sender's flush digest), so a message sent in response to a `Stop`
    /// upcall — before the owner confirms with `stop_ok` — is still covered
    /// by the closing view's flush. Sends after the digest went out are
    /// buffered and released in the next view.
    pub(crate) fn send_payload(
        &mut self,
        ctx: &mut dyn Transport,
        data: Payload,
        events: &mut Vec<VsEvent>,
    ) {
        if self.status == GroupStatus::Left {
            return;
        }
        let digest_out = self.flush.as_ref().is_some_and(|f| f.digest_sent);
        if self.view.is_none() || digest_out {
            self.pending_send.push(data);
            return;
        }
        self.send_seq += 1;
        let view = self.view.as_ref().expect("checked above");
        let view_members: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|&m| m != self.me)
            .collect();
        // Encoded once; every receiver copy shares this one allocation.
        let frame = wire::frame(&VsMsg::Data {
            hwg: self.hwg,
            view_id: view.id,
            sender: self.me,
            seq: self.send_seq,
            payload: Slot::Full(data.clone()),
        });
        ctx.metrics().incr(keys::DATA_SENT);
        ctx.metrics().add(keys::BYTES_MULTICAST, data.len() as u64);
        self.multicast(ctx, &view_members, &frame);
        // Synchronous self-delivery.
        self.holdback
            .insert((self.me, self.send_seq), Slot::Full(data));
        self.try_drain(ctx, events);
    }

    /// Sends a virtually-synchronous multicast delivered only to `targets`
    /// (interference-aware subset delivery). Members outside the target set
    /// receive a same-sequence [`Slot::Skip`] marker instead of the
    /// payload: the marker occupies the FIFO slot — so gap detection,
    /// stability, and flush digests are untouched — but is consumed by the
    /// receiving endpoint without an upcall.
    ///
    /// The sender always keeps (and delivers) the real payload regardless
    /// of `targets`, so NACK retransmissions always serve the real message.
    /// Sends while flushing fall back to buffered *full* multicasts (the
    /// subset is an optimisation, never required for correctness).
    pub(crate) fn send_payload_to(
        &mut self,
        ctx: &mut dyn Transport,
        targets: &BTreeSet<NodeId>,
        data: Payload,
        events: &mut Vec<VsEvent>,
    ) {
        if self.status == GroupStatus::Left {
            return;
        }
        let digest_out = self.flush.as_ref().is_some_and(|f| f.digest_sent);
        if self.view.is_none() || digest_out {
            self.pending_send.push(data);
            return;
        }
        self.send_seq += 1;
        let seq = self.send_seq;
        let view = self.view.as_ref().expect("checked above");
        // Two frames per subset multicast — the real payload and the thin
        // marker — each encoded once and refcount-shared by its receivers.
        let real = wire::frame(&VsMsg::Data {
            hwg: self.hwg,
            view_id: view.id,
            sender: self.me,
            seq,
            payload: Slot::Full(data.clone()),
        });
        let marker = wire::frame(&VsMsg::Data {
            hwg: self.hwg,
            view_id: view.id,
            sender: self.me,
            seq,
            payload: Slot::Skip,
        });
        let mut trimmed = 0u64;
        for &m in &view.members {
            if m == self.me {
                continue;
            }
            if targets.contains(&m) {
                ctx.send(m, real.clone());
            } else {
                ctx.send(m, marker.clone());
                trimmed += 1;
            }
        }
        ctx.metrics().incr(keys::DATA_SENT);
        ctx.metrics().add(keys::BYTES_MULTICAST, data.len() as u64);
        ctx.metrics().incr(keys::SUBSET_SENDS);
        ctx.metrics().add(keys::SUBSET_TRIMMED, trimmed);
        self.holdback.insert((self.me, seq), Slot::Full(data));
        self.try_drain(ctx, events);
    }

    /// Asks to leave the group.
    pub(crate) fn leave(
        &mut self,
        ctx: &mut dyn Transport,
        fd: &FailureDetector,
        events: &mut Vec<VsEvent>,
    ) {
        match self.status {
            GroupStatus::Left => {}
            GroupStatus::Joining => {
                // Not admitted anywhere yet; just stop.
                self.status = GroupStatus::Left;
                events.push(VsEvent::Left { hwg: self.hwg });
            }
            GroupStatus::Member | GroupStatus::Leaving => {
                let view = self.view.as_ref().expect("member has a view");
                if view.len() == 1 {
                    self.status = GroupStatus::Left;
                    self.view = None;
                    events.push(VsEvent::Left { hwg: self.hwg });
                    return;
                }
                self.status = GroupStatus::Leaving;
                self.pending_leaves.insert(self.me);
                self.request_leave(ctx, fd);
                self.maybe_start_flush(ctx, fd, events);
            }
        }
    }

    fn request_leave(&mut self, ctx: &mut dyn Transport, fd: &FailureDetector) {
        if let Some(coord) = self.acting_coordinator(fd) {
            if coord != self.me {
                ctx.send(coord, wire::frame(&VsMsg::LeaveReq { hwg: self.hwg }));
            }
        }
    }

    /// Owner acknowledges the `Stop` upcall; the digest can now be sent.
    pub(crate) fn stop_ok(&mut self, ctx: &mut dyn Transport) {
        let Some(f) = &mut self.flush else { return };
        if f.awaiting_stop_ok {
            f.awaiting_stop_ok = false;
            self.send_digest(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Periodic tick (driven by the stack's failure-detector timer)
    // ------------------------------------------------------------------

    pub(crate) fn on_tick(
        &mut self,
        ctx: &mut dyn Transport,
        now: SimTime,
        fd: &FailureDetector,
        cfg: &VsyncConfig,
        events: &mut Vec<VsEvent>,
    ) {
        // Joiner: probe retries / give up into a singleton view.
        if self.status == GroupStatus::Joining {
            if let Some(deadline) = self.probe_deadline {
                if now >= deadline {
                    if self.probe_attempts > cfg.probe_retries {
                        self.form_singleton(ctx, events);
                    } else {
                        self.send_probe(ctx, cfg);
                    }
                }
            }
            return;
        }

        // Leaver keeps nudging whoever currently coordinates.
        if self.status == GroupStatus::Leaving {
            self.request_leave(ctx, fd);
        }

        // Initiator watchdog: a stuck flush is retried once with the same
        // membership (a lost protocol message is the common cause under
        // loss); if it stalls again, the non-reporters are excluded.
        if let Some(running) = &self.running {
            if now.saturating_since(running.started_at) >= cfg.flush_timeout {
                let attempts = running.attempts;
                let responders: BTreeSet<NodeId> = running
                    .digests
                    .keys()
                    .chain(running.done.iter())
                    .copied()
                    .collect();
                let stragglers: Vec<NodeId> = if attempts == 0 {
                    Vec::new()
                } else {
                    running
                        .reporters
                        .iter()
                        .copied()
                        .filter(|m| !responders.contains(m) && *m != self.me)
                        .collect()
                };
                ctx.emit(|| HwgTraceEvent::FlushRestart {
                    hwg: self.hwg,
                    attempt: u64::from(attempts) + 1,
                    stragglers: stragglers.clone(),
                });
                self.running = None;
                self.start_flush_with_attempts(ctx, fd, &stragglers, events, attempts + 1);
            }
        }

        // Merge-leader watchdog: proceed without participants that never
        // reported.
        let mut conclude_merge = false;
        if let Some(merge) = &self.merge {
            if now.saturating_since(merge.started_at) >= cfg.merge_timeout {
                conclude_merge = true;
            }
        }
        if conclude_merge {
            if let Some(merge) = &mut self.merge {
                merge.participants.retain(|_, v| v.is_some());
            }
            self.try_complete_merge(ctx, events);
        }

        // Member-side flush watchdog: an initiator that vanished leaves us
        // frozen; abandon and let the acting-coordinator rule recover.
        let mut abandon = false;
        if let Some(f) = &self.flush {
            if now.saturating_since(f.started_at) >= cfg.flush_timeout.saturating_mul(2) {
                abandon = true;
            }
        }
        if abandon {
            ctx.emit(|| HwgTraceEvent::FlushAbandon { hwg: self.hwg });
            self.flush = None;
            self.merge = None;
            self.invited_merge_leader = None;
            self.maybe_start_flush(ctx, fd, events);
        }

        // Loss recovery and stability bookkeeping.
        self.check_nacks(ctx, now, cfg);
        self.stability_tick(ctx, now, cfg);

        // Acting coordinator reacts to accumulated membership changes.
        self.maybe_start_flush(ctx, fd, events);
    }

    /// Sends the coordinator's periodic view beacon (peer discovery).
    pub(crate) fn send_beacon(&self, ctx: &mut dyn Transport, fd: &FailureDetector) {
        if self.status != GroupStatus::Member && self.status != GroupStatus::Leaving {
            return;
        }
        if !self.i_am_acting_coordinator(fd) {
            return;
        }
        let view = self.view.as_ref().expect("member has a view");
        ctx.metrics().incr(keys::BEACONS);
        ctx.broadcast(wire::frame(&VsMsg::Beacon {
            hwg: self.hwg,
            view_id: view.id,
        }));
    }

    fn send_probe(&mut self, ctx: &mut dyn Transport, cfg: &VsyncConfig) {
        self.probe_attempts += 1;
        self.join_target = None;
        ctx.metrics().incr(keys::JOIN_PROBES);
        ctx.broadcast(wire::frame(&VsMsg::JoinProbe { hwg: self.hwg }));
        // The stack's tick has hb_interval granularity; the deadline is
        // checked there.
        self.probe_deadline = Some(ctx.now() + cfg.probe_timeout);
    }

    fn form_singleton(&mut self, ctx: &mut dyn Transport, events: &mut Vec<VsEvent>) {
        self.status = GroupStatus::Member;
        self.probe_deadline = None;
        let view = View::initial(ViewId::new(self.me, self.take_view_seq()), vec![self.me]);
        ctx.emit(|| HwgTraceEvent::Singleton {
            hwg: self.hwg,
            view: view.clone(),
        });
        self.install_view(view, ctx, events);
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    pub(crate) fn on_msg(
        &mut self,
        ctx: &mut dyn Transport,
        from: NodeId,
        msg: &VsMsg,
        fd: &FailureDetector,
        cfg: &VsyncConfig,
        events: &mut Vec<VsEvent>,
    ) {
        match msg {
            VsMsg::JoinProbe { .. } => self.on_join_probe(ctx, from, fd),
            VsMsg::JoinOffer { view_id, .. } => self.on_join_offer(ctx, from, *view_id, cfg),
            VsMsg::JoinReq { .. } => {
                if self.status == GroupStatus::Member || self.status == GroupStatus::Leaving {
                    self.pending_joins.insert(from);
                    self.maybe_start_flush(ctx, fd, events);
                }
            }
            VsMsg::LeaveReq { .. } => {
                if self.view.as_ref().is_some_and(|v| v.contains(from)) {
                    self.pending_leaves.insert(from);
                    self.maybe_start_flush(ctx, fd, events);
                }
            }
            VsMsg::Data {
                view_id,
                sender,
                seq,
                payload,
                ..
            } => self.on_data(ctx, *view_id, *sender, *seq, payload.clone(), events),
            VsMsg::FlushReq {
                view_id,
                flush,
                proposed,
                purpose,
                ..
            } => self.on_flush_req(ctx, from, *view_id, *flush, proposed, *purpose, cfg, events),
            VsMsg::FlushDigest {
                flush,
                prefix,
                extras,
                thin,
                ..
            } => self.on_flush_digest(ctx, from, *flush, prefix, extras, thin),
            VsMsg::FlushTarget { flush, target, .. } => {
                self.on_flush_target(ctx, *flush, target.clone(), events)
            }
            VsMsg::FlushPull { wants, .. } => self.on_flush_pull(ctx, wants),
            VsMsg::FlushFill {
                view_id,
                sender,
                seq,
                payload,
                ..
            } => self.on_flush_fill(ctx, *view_id, *sender, *seq, payload.clone(), events),
            VsMsg::FlushDone { flush, .. } => self.on_flush_done(ctx, from, *flush, events),
            VsMsg::NewView { view, .. } => self.on_new_view(ctx, view.clone(), fd, events),
            VsMsg::Nack {
                view_id,
                sender,
                missing,
                ..
            } => self.on_nack(ctx, from, *view_id, *sender, missing),
            VsMsg::Stability {
                view_id, prefix, ..
            } => self.on_stability(ctx, from, *view_id, prefix),
            VsMsg::Beacon { view_id, .. } => self.on_beacon(ctx, from, *view_id, fd, events),
            VsMsg::MergeReq {
                invitee_view,
                leader_view,
                ..
            } => self.on_merge_req(ctx, from, *invitee_view, *leader_view, fd, cfg, events),
            VsMsg::MergeReady { view, .. } => self.on_merge_ready(ctx, view.clone(), events),
            VsMsg::MergeNack { invitee_view, .. } => {
                if let Some(merge) = &mut self.merge {
                    merge.participants.remove(invitee_view);
                }
                self.try_complete_merge(ctx, events);
            }
            VsMsg::Heartbeat => {}
        }
    }

    fn on_join_probe(&mut self, ctx: &mut dyn Transport, from: NodeId, fd: &FailureDetector) {
        if self.status != GroupStatus::Member || !self.i_am_acting_coordinator(fd) {
            return;
        }
        let view = self.view.as_ref().expect("member has a view");
        if view.contains(from) {
            return; // already a member; stale probe
        }
        ctx.send(
            from,
            wire::frame(&VsMsg::JoinOffer {
                hwg: self.hwg,
                view_id: view.id,
            }),
        );
    }

    fn on_join_offer(
        &mut self,
        ctx: &mut dyn Transport,
        from: NodeId,
        _view_id: ViewId,
        cfg: &VsyncConfig,
    ) {
        if self.status != GroupStatus::Joining || self.join_target.is_some() {
            return;
        }
        self.join_target = Some(from);
        ctx.send(from, wire::frame(&VsMsg::JoinReq { hwg: self.hwg }));
        // Extend the deadline so admission has time to complete; if the
        // offering coordinator dies we fall back to probing again.
        self.probe_deadline = Some(ctx.now() + cfg.flush_timeout);
    }

    // ---------------- data plane ----------------

    fn on_data(
        &mut self,
        ctx: &mut dyn Transport,
        view_id: ViewId,
        sender: NodeId,
        seq: u64,
        data: Slot,
        events: &mut Vec<VsEvent>,
    ) {
        let Some(view) = &self.view else { return };
        if view.id != view_id {
            // Sent in a different (older or concurrent) view: never
            // delivered here (paper §5.1).
            ctx.metrics().incr(keys::DATA_FOREIGN_VIEW);
            return;
        }
        let expected = self.expected.get(&sender).copied().unwrap_or(1);
        if seq < expected || self.store.contains_key(&(sender, seq)) {
            ctx.metrics().incr(keys::DATA_DUP);
            return;
        }
        self.holdback.insert((sender, seq), data);
        self.try_drain(ctx, events);
        self.check_flush_target_reached(ctx);
    }

    /// Delivers from the hold-back queue every message that is in FIFO
    /// order and allowed by the current flush phase.
    fn try_drain(&mut self, ctx: &mut dyn Transport, events: &mut Vec<VsEvent>) {
        if self.delivery_frozen() {
            return;
        }
        let Some(view) = &self.view else { return };
        let view_id = view.id;
        let target = self.flush.as_ref().and_then(|f| f.target.clone());
        loop {
            let mut delivered_any = false;
            let senders: Vec<NodeId> = self.holdback.keys().map(|&(s, _)| s).collect();
            for sender in senders {
                let next = self.expected.get(&sender).copied().unwrap_or(1);
                // During the fill phase deliver only up to the agreed target.
                if let Some(t) = &target {
                    if next > t.get(&sender).copied().unwrap_or(0) {
                        continue;
                    }
                }
                if let Some(slot) = self.holdback.remove(&(sender, next)) {
                    self.expected.insert(sender, next + 1);
                    self.store.insert((sender, next), slot.clone());
                    match slot {
                        Slot::Skip => {
                            // Subset-delivery marker: the slot is consumed
                            // (so FIFO, stability and flush digests advance)
                            // but nothing is delivered to the layer above.
                            self.thin_held.insert((sender, next));
                            ctx.metrics().incr(keys::SUBSET_SKIPPED);
                        }
                        Slot::Full(data) => {
                            ctx.metrics().incr(keys::DATA_DELIVERED);
                            events.push(VsEvent::Data {
                                hwg: self.hwg,
                                view_id,
                                src: sender,
                                data,
                            });
                        }
                    }
                    delivered_any = true;
                }
            }
            if !delivered_any {
                break;
            }
        }
    }

    // ---------------- member-side flush ----------------

    #[allow(clippy::too_many_arguments)]
    fn on_flush_req(
        &mut self,
        ctx: &mut dyn Transport,
        from: NodeId,
        view_id: ViewId,
        flush: FlushId,
        _proposed: &[NodeId],
        purpose: FlushPurpose,
        cfg: &VsyncConfig,
        events: &mut Vec<VsEvent>,
    ) {
        let Some(view) = &self.view else { return };
        if view.id != view_id || !view.contains(from) {
            return;
        }
        let new_rank = view.rank(from).expect("checked contains");
        if let Some(current) = &self.flush {
            let cur_rank = view.rank(current.flush.initiator).unwrap_or(usize::MAX);
            let supersedes = new_rank < cur_rank
                || (current.flush.initiator == from && flush.nonce > current.flush.nonce);
            if !supersedes {
                return;
            }
        }
        ctx.emit(|| HwgTraceEvent::FlushMember {
            hwg: self.hwg,
            flush,
            from,
        });
        let awaiting = !cfg.auto_stop_ok;
        let _ = purpose;
        self.flush = Some(MemberFlush {
            flush,
            awaiting_stop_ok: awaiting,
            digest_sent: false,
            target: None,
            done_sent: false,
            started_at: ctx.now(),
        });
        events.push(VsEvent::Stop { hwg: self.hwg });
        if !awaiting {
            self.send_digest(ctx);
        }
    }

    fn send_digest(&mut self, ctx: &mut dyn Transport) {
        let Some(f) = &mut self.flush else { return };
        if f.digest_sent {
            return;
        }
        f.digest_sent = true;
        let initiator = f.flush.initiator;
        let flush = f.flush;
        let mut prefix = BTreeMap::new();
        if let Some(view) = &self.view {
            for &m in &view.members {
                prefix.insert(m, self.expected.get(&m).copied().unwrap_or(1) - 1);
            }
        }
        let extras: Vec<(NodeId, u64)> = self.holdback.keys().copied().collect();
        // Marker-held slots: consumed markers plus markers still in the
        // hold-back queue. The initiator steers pulls away from these.
        let mut thin: Vec<(NodeId, u64)> = self.thin_held.iter().copied().collect();
        thin.extend(
            self.holdback
                .iter()
                .filter(|(_, d)| d.is_skip())
                .map(|(&k, _)| k),
        );
        ctx.send(
            initiator,
            wire::frame(&VsMsg::FlushDigest {
                hwg: self.hwg,
                flush,
                prefix,
                extras,
                thin,
            }),
        );
    }

    fn on_flush_target(
        &mut self,
        ctx: &mut dyn Transport,
        flush: FlushId,
        target: BTreeMap<NodeId, u64>,
        events: &mut Vec<VsEvent>,
    ) {
        let Some(f) = &mut self.flush else { return };
        if f.flush != flush || f.target.is_some() {
            return;
        }
        f.target = Some(target.clone());
        // Discard held-back messages beyond the agreed set.
        self.holdback
            .retain(|(s, seq), _| *seq <= target.get(s).copied().unwrap_or(0));
        self.try_drain(ctx, events);
        self.check_flush_target_reached(ctx);
    }

    fn on_flush_pull(&mut self, ctx: &mut dyn Transport, wants: &[(NodeId, u64)]) {
        let Some(view) = &self.view else { return };
        let view_id = view.id;
        for &(sender, seq) in wants {
            let slot = self
                .store
                .get(&(sender, seq))
                .or_else(|| self.holdback.get(&(sender, seq)))
                .cloned();
            if let Some(slot) = slot {
                ctx.metrics().incr(keys::FLUSH_FILLS);
                let msg = wire::frame(&VsMsg::FlushFill {
                    hwg: self.hwg,
                    view_id,
                    sender,
                    seq,
                    payload: slot,
                });
                for &m in &view.members {
                    ctx.send(m, msg.clone());
                }
            }
        }
    }

    fn on_flush_fill(
        &mut self,
        ctx: &mut dyn Transport,
        view_id: ViewId,
        sender: NodeId,
        seq: u64,
        data: Slot,
        events: &mut Vec<VsEvent>,
    ) {
        let Some(view) = &self.view else { return };
        if view.id != view_id {
            return;
        }
        let expected = self.expected.get(&sender).copied().unwrap_or(1);
        if seq < expected || self.store.contains_key(&(sender, seq)) {
            // A real fill for a slot held only as a skip marker upgrades
            // the store, so this member can serve future pulls for it.
            if self.thin_held.contains(&(sender, seq)) && !data.is_skip() {
                self.store.insert((sender, seq), data);
                self.thin_held.remove(&(sender, seq));
            }
            return;
        }
        // Respect the target if known; otherwise hold.
        if let Some(f) = &self.flush {
            if let Some(t) = &f.target {
                if seq > t.get(&sender).copied().unwrap_or(0) {
                    return;
                }
            }
        }
        self.holdback.insert((sender, seq), data);
        self.try_drain(ctx, events);
        self.check_flush_target_reached(ctx);
    }

    /// Sends `FlushDone` once the delivered prefix matches the target.
    fn check_flush_target_reached(&mut self, ctx: &mut dyn Transport) {
        let Some(f) = &self.flush else { return };
        let Some(target) = &f.target else { return };
        if f.done_sent {
            return;
        }
        let reached = target
            .iter()
            .all(|(s, &t)| self.expected.get(s).copied().unwrap_or(1) > t);
        if reached {
            let initiator = f.flush.initiator;
            let flush = f.flush;
            if let Some(f) = &mut self.flush {
                f.done_sent = true;
            }
            ctx.send(
                initiator,
                wire::frame(&VsMsg::FlushDone {
                    hwg: self.hwg,
                    flush,
                }),
            );
        }
    }

    // ---------------- initiator-side flush ----------------

    /// Forces a no-change flush of the current view (used by the LWG
    /// layer's merge-views protocol as a synchronisation barrier, paper
    /// Figure 5). Only the acting coordinator honours it; ignored while
    /// another flush or merge is in progress.
    pub(crate) fn force_flush(
        &mut self,
        ctx: &mut dyn Transport,
        fd: &FailureDetector,
        events: &mut Vec<VsEvent>,
    ) {
        if self.running.is_some()
            || self.flush.is_some()
            || self.has_merge_in_progress()
            || self.view.is_none()
            || self.status != GroupStatus::Member
            || !self.i_am_acting_coordinator(fd)
        {
            return;
        }
        self.start_flush(ctx, fd, &[], events);
    }

    /// Starts a flush if this node should coordinate one and there is a
    /// reason to (suspected member, pending join/leave).
    pub(crate) fn maybe_start_flush(
        &mut self,
        ctx: &mut dyn Transport,
        fd: &FailureDetector,
        events: &mut Vec<VsEvent>,
    ) {
        if self.running.is_some() || self.view.is_none() || self.has_merge_in_progress() {
            return;
        }
        if self.status != GroupStatus::Member && self.status != GroupStatus::Leaving {
            return;
        }
        if !self.i_am_acting_coordinator(fd) {
            return;
        }
        let view = self.view.as_ref().expect("checked");
        let suspected: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|&m| m != self.me && fd.is_suspected(m))
            .collect();
        let has_joiners = self.pending_joins.iter().any(|j| !view.contains(*j));
        let has_leavers = self.pending_leaves.iter().any(|l| view.contains(*l));
        if suspected.is_empty() && !has_joiners && !has_leavers {
            return;
        }
        self.start_flush(ctx, fd, &suspected, events);
    }

    /// Starts a flush excluding `excluded` (plus FD-suspected members).
    fn start_flush(
        &mut self,
        ctx: &mut dyn Transport,
        fd: &FailureDetector,
        excluded: &[NodeId],
        events: &mut Vec<VsEvent>,
    ) {
        self.start_flush_with_attempts(ctx, fd, excluded, events, 0);
    }

    fn start_flush_with_attempts(
        &mut self,
        ctx: &mut dyn Transport,
        fd: &FailureDetector,
        excluded: &[NodeId],
        events: &mut Vec<VsEvent>,
        attempts: u32,
    ) {
        let Some(view) = self.view.clone() else {
            return;
        };
        let reporters: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|&m| m == self.me || (!fd.is_suspected(m) && !excluded.contains(&m)))
            .collect();
        let survivors: Vec<NodeId> = reporters
            .iter()
            .copied()
            .filter(|m| !self.pending_leaves.contains(m))
            .collect();
        let joiners: Vec<NodeId> = self
            .pending_joins
            .iter()
            .copied()
            .filter(|j| !view.contains(*j))
            .collect();

        if survivors.is_empty() {
            // Only leavers remain (e.g. a sole member leaving) — dissolve.
            self.status = GroupStatus::Left;
            self.view = None;
            events.push(VsEvent::Left { hwg: self.hwg });
            return;
        }

        let flush = FlushId {
            initiator: self.me,
            nonce: self.take_flush_nonce(),
        };
        let purpose = if self.merge.is_some() || self.invited_merge_leader.is_some() {
            FlushPurpose::Merge {
                leader: self.invited_merge_leader.unwrap_or(self.me),
            }
        } else {
            FlushPurpose::ViewChange
        };
        ctx.emit(|| HwgTraceEvent::FlushStart {
            hwg: self.hwg,
            flush,
            note: format!("purpose {purpose:?} reporters {reporters:?} joiners {joiners:?}"),
        });
        ctx.metrics().incr(keys::FLUSHES);
        self.running = Some(RunningFlush {
            flush,
            purpose,
            attempts,
            reporters: reporters.clone(),
            survivors,
            joiners,
            digests: BTreeMap::new(),
            target_sent: false,
            done: BTreeSet::new(),
            started_at: ctx.now(),
        });
        let msg = wire::frame(&VsMsg::FlushReq {
            hwg: self.hwg,
            view_id: view.id,
            flush,
            proposed: reporters.clone(),
            purpose,
        });
        self.multicast(ctx, &reporters, &msg);
    }

    fn on_flush_digest(
        &mut self,
        ctx: &mut dyn Transport,
        from: NodeId,
        flush: FlushId,
        prefix: &BTreeMap<NodeId, u64>,
        extras: &[(NodeId, u64)],
        thin: &[(NodeId, u64)],
    ) {
        let Some(running) = &mut self.running else {
            return;
        };
        if running.flush != flush || running.target_sent {
            return;
        }
        if !running.reporters.contains(&from) {
            return;
        }
        running.digests.insert(
            from,
            crate::flushcalc::Digest::new(prefix.clone(), extras.to_vec(), thin.to_vec()),
        );
        if running.digests.len() == running.reporters.len() {
            self.compute_and_send_target(ctx);
        }
    }

    /// With all digests in hand: compute the delivery target (the largest
    /// gap-free prefix of messages *somebody* holds), request fills for
    /// members that lack part of it, and announce it.
    fn compute_and_send_target(&mut self, ctx: &mut dyn Transport) {
        let Some(running) = &mut self.running else {
            return;
        };
        running.target_sent = true;
        let flush = running.flush;
        let reporters = running.reporters.clone();
        let plan = crate::flushcalc::compute_plan(&running.digests);

        ctx.emit(|| HwgTraceEvent::FlushTarget {
            hwg: self.hwg,
            flush,
            note: format!("target {:?}", plan.target),
        });
        let tmsg = wire::frame(&VsMsg::FlushTarget {
            hwg: self.hwg,
            flush,
            target: plan.target,
        });
        self.multicast(ctx, &reporters, &tmsg);
        for (holder, wants) in plan.pulls {
            ctx.send(
                holder,
                wire::frame(&VsMsg::FlushPull {
                    hwg: self.hwg,
                    flush,
                    wants,
                }),
            );
        }
    }

    fn on_flush_done(
        &mut self,
        ctx: &mut dyn Transport,
        from: NodeId,
        flush: FlushId,
        events: &mut Vec<VsEvent>,
    ) {
        let Some(running) = &mut self.running else {
            return;
        };
        if running.flush != flush || !running.reporters.contains(&from) {
            return;
        }
        running.done.insert(from);
        if running.done.len() == running.reporters.len() {
            self.conclude_flush(ctx, events);
        }
    }

    /// All members reached the target: either install the successor view
    /// (ordinary view change) or freeze and report to the merge leader.
    fn conclude_flush(&mut self, ctx: &mut dyn Transport, events: &mut Vec<VsEvent>) {
        let Some(running) = self.running.take() else {
            return;
        };
        let old_view = self.view.clone().expect("flushing requires a view");
        match running.purpose {
            FlushPurpose::ViewChange => {
                let mut members = running.survivors.clone();
                let mut joiners = running.joiners.clone();
                joiners.sort_unstable();
                members.extend(joiners);
                let view = View::with_predecessors(
                    ViewId::new(self.me, self.take_view_seq()),
                    members,
                    vec![old_view.id],
                );
                // Excluded reporters (leavers) also learn the outcome, so a
                // leave completes with a view that omits the leaver.
                let extra: Vec<NodeId> = running
                    .reporters
                    .iter()
                    .copied()
                    .filter(|r| !view.contains(*r))
                    .collect();
                self.distribute_view(ctx, &view);
                let msg = wire::frame(&VsMsg::NewView {
                    hwg: self.hwg,
                    view: view.clone(),
                });
                self.multicast(ctx, &extra, &msg);
            }
            FlushPurpose::Merge { leader } => {
                let frozen = View::with_predecessors(
                    old_view.id,
                    running.survivors.clone(),
                    old_view.predecessors.clone(),
                );
                if leader == self.me {
                    if let Some(merge) = &mut self.merge {
                        merge.my_frozen = Some(frozen);
                    }
                    self.try_complete_merge(ctx, events);
                } else {
                    ctx.send(
                        leader,
                        wire::frame(&VsMsg::MergeReady {
                            hwg: self.hwg,
                            view: frozen,
                        }),
                    );
                    // `invited_merge_leader` stays set until the leader's
                    // NewView installs (or the watchdog clears it), so no
                    // conflicting flush starts in the meantime.
                }
            }
        }
    }

    /// Sends `NewView` to every member of `view` (the initiator installs
    /// its own copy through the loop-back delivery).
    fn distribute_view(&mut self, ctx: &mut dyn Transport, view: &View) {
        ctx.emit(|| HwgTraceEvent::ViewDistribute {
            hwg: self.hwg,
            view: view.clone(),
        });
        let msg = wire::frame(&VsMsg::NewView {
            hwg: self.hwg,
            view: view.clone(),
        });
        self.multicast(ctx, &view.members, &msg);
    }

    // ---------------- view installation ----------------

    fn on_new_view(
        &mut self,
        ctx: &mut dyn Transport,
        view: View,
        fd: &FailureDetector,
        events: &mut Vec<VsEvent>,
    ) {
        if !view.contains(self.me) {
            // A view excluding us: if we were leaving, the leave completed.
            if self.status == GroupStatus::Leaving
                && self
                    .view
                    .as_ref()
                    .is_some_and(|v| view.predecessors.contains(&v.id))
            {
                self.status = GroupStatus::Left;
                self.view = None;
                events.push(VsEvent::Left { hwg: self.hwg });
            }
            return;
        }
        let acceptable = match (&self.view, self.status) {
            (_, GroupStatus::Joining) => true,
            (Some(cur), _) => view.predecessors.contains(&cur.id) || view.id == cur.id,
            (None, _) => false,
        };
        if !acceptable {
            return;
        }
        if self.view.as_ref().is_some_and(|cur| cur.id == view.id) {
            return; // duplicate
        }
        self.status = GroupStatus::Member;
        self.probe_deadline = None;
        self.join_target = None;
        self.install_view(view, ctx, events);
        // Membership changes may already be queued (e.g. joiners that
        // arrived mid-flush).
        self.maybe_start_flush(ctx, fd, events);
    }

    fn install_view(&mut self, view: View, ctx: &mut dyn Transport, events: &mut Vec<VsEvent>) {
        if let Some(old) = &self.view {
            self.history.insert(old.id);
        }
        ctx.emit(|| HwgTraceEvent::ViewInstall {
            hwg: self.hwg,
            view: view.clone(),
        });
        ctx.metrics().incr(keys::VIEWS_INSTALLED);
        self.stale_beacons = 0;
        self.gap_since.clear();
        self.stable_info.clear();
        self.send_seq = 0;
        self.expected = view.members.iter().map(|&m| (m, 1)).collect();
        self.holdback.clear();
        self.store.clear();
        self.thin_held.clear();
        self.flush = None;
        self.running = None;
        self.merge = None;
        self.invited_merge_leader = None;
        for m in &view.members {
            self.pending_joins.remove(m);
        }
        self.pending_leaves.retain(|l| view.contains(*l));
        self.view = Some(view.clone());
        events.push(VsEvent::View {
            hwg: self.hwg,
            view,
        });
        // Release sends buffered during the change.
        let pending = std::mem::take(&mut self.pending_send);
        for data in pending {
            self.send_payload(ctx, data, events);
        }
    }

    // ---------------- loss recovery / stability ----------------

    /// Receiver side: detect FIFO gaps that have persisted past
    /// `nack_delay` and ask the original sender to retransmit.
    fn check_nacks(&mut self, ctx: &mut dyn Transport, now: SimTime, cfg: &VsyncConfig) {
        if self.view.is_none() || self.delivery_frozen() {
            return;
        }
        // Which senders currently have a gap (something held back beyond
        // the expected seq)?
        let mut gapped: BTreeMap<NodeId, u64> = BTreeMap::new();
        for &(sender, seq) in self.holdback.keys() {
            let expected = self.expected.get(&sender).copied().unwrap_or(1);
            if seq > expected {
                let e = gapped.entry(sender).or_insert(seq);
                *e = (*e).max(seq);
            }
        }
        self.gap_since
            .retain(|sender, _| gapped.contains_key(sender));
        for (sender, max_held) in gapped {
            let since = *self.gap_since.entry(sender).or_insert(now);
            if now.saturating_since(since) < cfg.nack_delay {
                continue;
            }
            // Re-arm pacing and ask for everything missing (bounded).
            self.gap_since.insert(sender, now);
            let expected = self.expected.get(&sender).copied().unwrap_or(1);
            let missing: Vec<u64> = (expected..max_held)
                .filter(|seq| !self.holdback.contains_key(&(sender, *seq)))
                .take(32)
                .collect();
            if missing.is_empty() {
                continue;
            }
            let view_id = self.view.as_ref().expect("checked").id;
            ctx.metrics().incr(keys::NACKS_SENT);
            ctx.emit(|| HwgTraceEvent::Nack {
                hwg: self.hwg,
                sender,
                missing: missing.clone(),
            });
            ctx.send(
                sender,
                wire::frame(&VsMsg::Nack {
                    hwg: self.hwg,
                    view_id,
                    sender,
                    missing,
                }),
            );
        }
    }

    /// Sender side: serve a retransmission request from the local store.
    fn on_nack(
        &mut self,
        ctx: &mut dyn Transport,
        from: NodeId,
        view_id: ViewId,
        sender: NodeId,
        missing: &[u64],
    ) {
        let Some(view) = &self.view else { return };
        if view.id != view_id || sender != self.me {
            return;
        }
        for &seq in missing {
            // A sender's own store always holds the real payload (never a
            // skip marker), so resends serve the full message.
            if let Some(slot) = self.store.get(&(sender, seq)) {
                ctx.metrics().incr(keys::NACK_RESENDS);
                ctx.send(
                    from,
                    wire::frame(&VsMsg::Data {
                        hwg: self.hwg,
                        view_id,
                        sender,
                        seq,
                        payload: slot.clone(),
                    }),
                );
            }
        }
    }

    /// Periodically advertise the delivered prefix and garbage-collect the
    /// retransmission store below the view-wide stable point.
    fn stability_tick(&mut self, ctx: &mut dyn Transport, now: SimTime, cfg: &VsyncConfig) {
        let Some(view) = &self.view else { return };
        if view.len() < 2 || self.flush.is_some() || self.running.is_some() {
            return;
        }
        if now.saturating_since(self.last_stability_sent) < cfg.stability_interval {
            return;
        }
        self.last_stability_sent = now;
        let prefix: BTreeMap<NodeId, u64> = view
            .members
            .iter()
            .map(|&m| (m, self.expected.get(&m).copied().unwrap_or(1) - 1))
            .collect();
        // Nothing delivered since the last advertisement: peers already
        // have this exact prefix, so the multicast (and the gc pass it
        // would trigger) is pure overhead.
        if self.stable_info.get(&self.me) == Some(&prefix) {
            ctx.metrics().incr(keys::STABILITY_SUPPRESSED);
            return;
        }
        self.stable_info.insert(self.me, prefix.clone());
        let members: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|&m| m != self.me)
            .collect();
        let view_id = view.id;
        let msg = wire::frame(&VsMsg::Stability {
            hwg: self.hwg,
            view_id,
            prefix,
        });
        self.multicast(ctx, &members, &msg);
        self.gc_store(ctx);
    }

    fn on_stability(
        &mut self,
        ctx: &mut dyn Transport,
        from: NodeId,
        view_id: ViewId,
        prefix: &BTreeMap<NodeId, u64>,
    ) {
        let Some(view) = &self.view else { return };
        if view.id != view_id || !view.contains(from) {
            return;
        }
        self.stable_info.insert(from, prefix.clone());
        self.gc_store(ctx);
    }

    /// Drops stored messages that every member has contiguously delivered.
    /// Only safe once all members have reported: an unreported member's
    /// prefix is conservatively 0.
    fn gc_store(&mut self, ctx: &mut dyn Transport) {
        let Some(view) = &self.view else { return };
        if view.members.len() != self.stable_info.len() {
            return;
        }
        let mut stable: BTreeMap<NodeId, u64> = BTreeMap::new();
        for &sender in &view.members {
            let min = view
                .members
                .iter()
                .map(|m| {
                    self.stable_info
                        .get(m)
                        .and_then(|p| p.get(&sender))
                        .copied()
                        .unwrap_or(0)
                })
                .min()
                .unwrap_or(0);
            stable.insert(sender, min);
        }
        let before = self.store.len();
        self.store
            .retain(|(sender, seq), _| *seq > stable.get(sender).copied().unwrap_or(0));
        self.thin_held
            .retain(|(sender, seq)| *seq > stable.get(sender).copied().unwrap_or(0));
        let dropped = before - self.store.len();
        if dropped > 0 {
            ctx.metrics().add(keys::STORE_GC, dropped as u64);
        }
    }

    /// Number of messages currently retained for retransmission (tests).
    pub(crate) fn store_len(&self) -> usize {
        self.store.len()
    }

    // ---------------- merge ----------------

    fn on_beacon(
        &mut self,
        ctx: &mut dyn Transport,
        from: NodeId,
        their_view: ViewId,
        fd: &FailureDetector,
        events: &mut Vec<VsEvent>,
    ) {
        if from == self.me || self.status != GroupStatus::Member {
            return;
        }
        let Some(view) = &self.view else { return };
        if view.id == their_view {
            self.stale_beacons = 0;
            return; // same view, nothing to merge
        }
        // Exclusion detection: a fellow member of *our* view is advertising
        // a different view. Either our NewView is still in flight (count a
        // few beacons of grace) or we were dropped by a flush restart while
        // still connected — in that case our failure detector will never
        // fire (the sender's beacons keep it happy), so we must recover
        // here: become a singleton lineage and let the merge protocol pull
        // us back in (a leaver simply completes its leave).
        if view.contains(from) {
            self.stale_beacons += 1;
            if self.stale_beacons >= 3
                && self.flush.is_none()
                && self.running.is_none()
                && !self.has_merge_in_progress()
            {
                let old_id = view.id;
                ctx.emit(|| HwgTraceEvent::Excluded {
                    hwg: self.hwg,
                    old: old_id,
                });
                if self.status == GroupStatus::Leaving {
                    self.status = GroupStatus::Left;
                    self.view = None;
                    events.push(VsEvent::Left { hwg: self.hwg });
                } else {
                    let reborn = View::with_predecessors(
                        ViewId::new(self.me, self.take_view_seq()),
                        vec![self.me],
                        vec![old_id],
                    );
                    self.install_view(reborn, ctx, events);
                }
            }
            return;
        }
        if !self.i_am_acting_coordinator(fd) {
            return;
        }
        // Deterministic leadership: the lower node id drives the merge.
        if self.me.0 >= from.0 {
            return;
        }
        if self.running.is_some() || self.flush.is_some() {
            return; // busy; beacons will retry
        }
        let my_view = view.id;
        match &mut self.merge {
            Some(merge) => {
                // Extend an in-progress merge only before our own flush ran.
                if merge.my_frozen.is_none() {
                    merge.participants.entry(their_view).or_insert(None);
                    ctx.send(
                        from,
                        wire::frame(&VsMsg::MergeReq {
                            hwg: self.hwg,
                            invitee_view: their_view,
                            leader_view: my_view,
                        }),
                    );
                }
            }
            None => {
                ctx.emit(|| HwgTraceEvent::MergeStart {
                    hwg: self.hwg,
                    leader: self.me,
                    invitee_view: their_view,
                });
                ctx.metrics().incr(keys::MERGES_STARTED);
                let mut participants = BTreeMap::new();
                participants.insert(their_view, None);
                self.merge = Some(MergeState {
                    participants,
                    my_frozen: None,
                    started_at: ctx.now(),
                });
                ctx.send(
                    from,
                    wire::frame(&VsMsg::MergeReq {
                        hwg: self.hwg,
                        invitee_view: their_view,
                        leader_view: my_view,
                    }),
                );
                // Flush our own view as our merge contribution.
                self.start_flush(ctx, fd, &[], events);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_merge_req(
        &mut self,
        ctx: &mut dyn Transport,
        from: NodeId,
        invitee_view: ViewId,
        _leader_view: ViewId,
        fd: &FailureDetector,
        _cfg: &VsyncConfig,
        events: &mut Vec<VsEvent>,
    ) {
        let stale = self.view.as_ref().map(|v| v.id) != Some(invitee_view)
            || self.status != GroupStatus::Member
            || !self.i_am_acting_coordinator(fd)
            || self.running.is_some()
            || self.flush.is_some()
            || self.merge.is_some();
        if stale {
            ctx.send(
                from,
                wire::frame(&VsMsg::MergeNack {
                    hwg: self.hwg,
                    invitee_view,
                }),
            );
            return;
        }
        ctx.emit(|| HwgTraceEvent::MergeAccept {
            hwg: self.hwg,
            leader: from,
        });
        self.invited_merge_leader = Some(from);
        self.start_flush(ctx, fd, &[], events);
    }

    fn on_merge_ready(&mut self, ctx: &mut dyn Transport, frozen: View, events: &mut Vec<VsEvent>) {
        let Some(merge) = &mut self.merge else { return };
        if let Some(slot) = merge.participants.get_mut(&frozen.id) {
            *slot = Some(frozen);
        }
        self.try_complete_merge(ctx, events);
    }

    /// If the leader's own flush and every participant report are in,
    /// install the merged view everywhere.
    fn try_complete_merge(&mut self, ctx: &mut dyn Transport, _events: &mut Vec<VsEvent>) {
        let Some(merge) = &self.merge else { return };
        let Some(my_frozen) = &merge.my_frozen else {
            return;
        };
        if merge.participants.values().any(Option::is_none) {
            return;
        }
        let my_frozen = my_frozen.clone();
        let participants: Vec<View> = merge
            .participants
            .values()
            .map(|v| v.clone().expect("checked above"))
            .collect();
        self.merge = None;

        let mut members = my_frozen.members.clone();
        let mut predecessors = vec![my_frozen.id];
        for p in &participants {
            for &m in &p.members {
                if !members.contains(&m) {
                    members.push(m);
                }
            }
            predecessors.push(p.id);
        }
        let view = View::with_predecessors(
            ViewId::new(self.me, self.take_view_seq()),
            members,
            predecessors,
        );
        ctx.emit(|| HwgTraceEvent::MergeComplete {
            hwg: self.hwg,
            view: view.clone(),
        });
        ctx.metrics().incr(keys::MERGES_COMPLETED);
        self.distribute_view(ctx, &view);
    }
}

impl GroupEndpoint {
    /// Whether this endpoint is currently leading or contributing to a
    /// merge (used by the stack for introspection and tests).
    pub(crate) fn has_merge_in_progress(&self) -> bool {
        self.merge.is_some() || self.invited_merge_leader.is_some()
    }
}
