//! Canonical metric keys of the vsync stack.
//!
//! The substrate-level `hwg.*` keys live in [`plwg_hwg::keys`] (re-exported
//! here for convenience); this module adds the keys specific to this
//! stack's failure detector.

pub use plwg_hwg::keys::*;
use plwg_sim::CounterKey;

/// Fresh suspicions raised by the failure detector.
pub const FD_SUSPICIONS: CounterKey = CounterKey::new("fd.suspicions");
/// Incoming frames of this stack's wire family that failed to decode
/// (dropped; never panicked on).
pub const DECODE_ERRORS: CounterKey = CounterKey::new("vs.decode_errors");
