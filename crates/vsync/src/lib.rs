//! # plwg-vsync — partitionable virtually-synchronous groups (the HWG layer)
//!
//! This crate implements the *heavy-weight group* (HWG) layer the paper
//! assumes (§5.1): a group-communication service that keeps delivering views
//! in the presence of partitions, lets a group split into **concurrent
//! views** when the network splits, and merges those views when it heals.
//! It plays the role Horus played in the original system.
//!
//! Guarantees provided to the layer above (the light-weight group service in
//! `plwg-core`):
//!
//! * **View synchrony** — processes that install the same two consecutive
//!   views deliver exactly the same set of multicast messages between them
//!   (enforced by the flush protocol in the group state machine).
//! * **View-tagged delivery** — every data message carries the
//!   [`ViewId`] it was sent in and is only delivered to members of that
//!   view (paper §5.1; this is what lets the LWG layer decouple LWG merges
//!   from HWG merges).
//! * **Partitionable membership** — each network component forms its own
//!   view (coordinator = most senior reachable member); concurrent views
//!   carry *predecessor* view ids, so the partial order of views needed by
//!   the naming service's garbage collector (paper §7) is explicit.
//! * **Merge on heal** — coordinators advertise their views with periodic
//!   beacons on the physical network; when concurrent views discover each
//!   other, a leader-driven merge flushes every participating view and
//!   installs a single successor view.
//!
//! The stack is a *passive component*: the owning [`plwg_sim::Process`]
//! (an application node or the LWG service) forwards messages and timers to
//! [`VsyncStack`] and drains the resulting [`VsEvent`] upcalls — the
//! `Join/Leave/Send/StopOk` down-calls and `View/Data/Stop` up-calls of
//! Table 1 in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fd;
/// Pure flush-plan computation (digests → delivery target + pull plan).
pub mod flushcalc;
mod group;
pub mod keys;
mod msg;
mod stack;
mod substrate;
mod wire;

pub use fd::{FailureDetector, FdEvent};
pub use msg::{FlushId, FlushPurpose, Slot, VsMsg};
pub use plwg_hwg::{
    GroupStatus, HwgConfig as VsyncConfig, HwgEvent as VsEvent, HwgId, HwgSubstrate, HwgTraceEvent,
    View, ViewId,
};
pub use stack::VsyncStack;
