//! Wire messages of the HWG layer.

use plwg_hwg::{HwgId, View, ViewId};
use plwg_sim::{NodeId, Payload};
use std::collections::BTreeMap;
use std::fmt;

pub use plwg_hwg::FlushId;

/// What a flush is for: an ordinary view change installs the successor view
/// locally; a merge flush freezes the view and reports to the merge leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPurpose {
    /// Ordinary view change (join/leave/exclusion).
    ViewChange,
    /// Contribution to a merge led by `leader`.
    Merge {
        /// The node driving the merge.
        leader: NodeId,
    },
}

/// The payload carried by a data-plane sequence slot: either the real
/// application frame, or the subset-delivery *skip marker* sent to members
/// outside a subset multicast's target set. The marker occupies the
/// sender's FIFO sequence slot — so gap detection, stability tracking, and
/// flush digests work unchanged — but is never delivered to the layer
/// above. Cloning a `Full` slot bumps the frame's reference count; the
/// bytes are never copied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Slot {
    /// The real application payload.
    Full(Payload),
    /// Subset-delivery skip marker (paper §3 interference optimisation).
    Skip,
}

impl Slot {
    /// Whether this slot is a skip marker.
    pub fn is_skip(&self) -> bool {
        matches!(self, Slot::Skip)
    }

    /// The real payload, if this slot holds one.
    pub fn full(&self) -> Option<&Payload> {
        match self {
            Slot::Full(p) => Some(p),
            Slot::Skip => None,
        }
    }
}

/// The messages exchanged by the HWG layer.
///
/// Everything is tagged with the [`HwgId`] it concerns; data and
/// flush-related messages additionally carry the [`ViewId`] they belong to,
/// implementing the paper's rule that a protocol message "is only delivered
/// to members of that view" (§5.1).
#[derive(Clone)]
pub enum VsMsg {
    /// Failure-detector liveness probe.
    Heartbeat,
    /// Joiner looking for an existing view of `hwg` (physical broadcast —
    /// the stand-in for an IP-multicast probe).
    JoinProbe {
        /// Group being sought.
        hwg: HwgId,
    },
    /// Coordinator's answer to a probe.
    JoinOffer {
        /// Group the offer concerns.
        hwg: HwgId,
        /// The coordinator's current view id.
        view_id: ViewId,
    },
    /// Joiner asks the offering coordinator for admission.
    JoinReq {
        /// Group to join.
        hwg: HwgId,
    },
    /// Member asks the coordinator to be excluded from the next view.
    LeaveReq {
        /// Group to leave.
        hwg: HwgId,
    },
    /// A virtually-synchronous multicast within a view.
    Data {
        /// Group.
        hwg: HwgId,
        /// View the message was sent in.
        view_id: ViewId,
        /// Original sender.
        sender: NodeId,
        /// Per-sender FIFO sequence number within the view (1-based).
        seq: u64,
        /// Opaque payload for the layer above (or a skip marker).
        payload: Slot,
    },
    /// Coordinator starts a flush of `view_id` towards `proposed` members.
    FlushReq {
        /// Group.
        hwg: HwgId,
        /// The view being flushed.
        view_id: ViewId,
        /// Flush round identifier.
        flush: FlushId,
        /// Members that will survive into the next view.
        proposed: Vec<NodeId>,
        /// Ordinary view change or merge contribution.
        purpose: FlushPurpose,
    },
    /// Member's flush report: per-sender contiguously-delivered prefix and
    /// the (sender, seq) pairs sitting in its hold-back queue.
    FlushDigest {
        /// Group.
        hwg: HwgId,
        /// Flush round this digest answers.
        flush: FlushId,
        /// sender → highest seq delivered with no gaps.
        prefix: BTreeMap<NodeId, u64>,
        /// Out-of-order messages held back (not yet delivered).
        extras: Vec<(NodeId, u64)>,
        /// Of the messages counted above, those held only as subset-skip
        /// markers: the member knows seq exists but does not hold the real
        /// payload, so it cannot serve a pull for it.
        thin: Vec<(NodeId, u64)>,
    },
    /// Coordinator's computed delivery target: every member must deliver
    /// exactly `target[s]` messages from each sender `s` before the view
    /// changes — the mechanism behind "same set of messages between views".
    FlushTarget {
        /// Group.
        hwg: HwgId,
        /// Flush round.
        flush: FlushId,
        /// sender → final seq to deliver in the closing view.
        target: BTreeMap<NodeId, u64>,
    },
    /// Coordinator asks `wants` to be retransmitted by a member that holds
    /// them.
    FlushPull {
        /// Group.
        hwg: HwgId,
        /// Flush round.
        flush: FlushId,
        /// Messages to retransmit.
        wants: Vec<(NodeId, u64)>,
    },
    /// Retransmission of a data message during a flush (or after a pull).
    FlushFill {
        /// Group.
        hwg: HwgId,
        /// View the original message belonged to.
        view_id: ViewId,
        /// Original sender.
        sender: NodeId,
        /// Original sequence number.
        seq: u64,
        /// Original payload (or a skip marker, when only a marker holder
        /// could serve the pull).
        payload: Slot,
    },
    /// Member reports it has reached the flush target.
    FlushDone {
        /// Group.
        hwg: HwgId,
        /// Flush round.
        flush: FlushId,
    },
    /// Installs the successor view (sent by the flush initiator or the
    /// merge leader).
    NewView {
        /// Group.
        hwg: HwgId,
        /// The view to install.
        view: View,
    },
    /// Receiver-side negative acknowledgement: asks `sender` to retransmit
    /// the listed sequence numbers of the current view (recovers from
    /// mid-view message loss without waiting for a flush).
    Nack {
        /// Group.
        hwg: HwgId,
        /// View the gap is in.
        view_id: ViewId,
        /// The original sender being asked.
        sender: NodeId,
        /// Missing sequence numbers.
        missing: Vec<u64>,
    },
    /// Periodic stability advertisement: the sender's contiguously
    /// delivered prefix per group member. Once a message is delivered
    /// everywhere it can be dropped from retransmission stores.
    Stability {
        /// Group.
        hwg: HwgId,
        /// View this stability information concerns.
        view_id: ViewId,
        /// member → highest contiguously delivered seq.
        prefix: BTreeMap<NodeId, u64>,
    },
    /// Coordinator's periodic advertisement of its current view (peer
    /// discovery across partitions, paper §4).
    Beacon {
        /// Group.
        hwg: HwgId,
        /// Advertised view id.
        view_id: ViewId,
    },
    /// Merge leader invites the coordinator of a concurrent view to flush
    /// its view and report.
    MergeReq {
        /// Group.
        hwg: HwgId,
        /// The view the leader observed at the invitee (stale ⇒ rejected).
        invitee_view: ViewId,
        /// The leader's own current view.
        leader_view: ViewId,
    },
    /// A merge participant's report: its view is flushed and frozen.
    MergeReady {
        /// Group.
        hwg: HwgId,
        /// The frozen view (id + members feed the merged view).
        view: View,
    },
    /// A participant declines a merge (stale view, or busy with a more
    /// senior merge).
    MergeNack {
        /// Group.
        hwg: HwgId,
        /// The view id the leader had asked to merge.
        invitee_view: ViewId,
    },
}

impl fmt::Debug for VsMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VsMsg::Heartbeat => write!(f, "Heartbeat"),
            VsMsg::JoinProbe { hwg } => write!(f, "JoinProbe({hwg})"),
            VsMsg::JoinOffer { hwg, view_id } => write!(f, "JoinOffer({hwg},{view_id})"),
            VsMsg::JoinReq { hwg } => write!(f, "JoinReq({hwg})"),
            VsMsg::LeaveReq { hwg } => write!(f, "LeaveReq({hwg})"),
            VsMsg::Data {
                hwg,
                view_id,
                sender,
                seq,
                ..
            } => write!(f, "Data({hwg},{view_id},{sender},#{seq})"),
            VsMsg::FlushReq {
                hwg,
                view_id,
                flush,
                proposed,
                purpose,
            } => write!(
                f,
                "FlushReq({hwg},{view_id},{flush},{proposed:?},{purpose:?})"
            ),
            VsMsg::FlushDigest { hwg, flush, .. } => {
                write!(f, "FlushDigest({hwg},{flush})")
            }
            VsMsg::FlushTarget { hwg, flush, .. } => {
                write!(f, "FlushTarget({hwg},{flush})")
            }
            VsMsg::FlushPull { hwg, flush, wants } => {
                write!(f, "FlushPull({hwg},{flush},{wants:?})")
            }
            VsMsg::FlushFill {
                hwg,
                view_id,
                sender,
                seq,
                ..
            } => write!(f, "FlushFill({hwg},{view_id},{sender},#{seq})"),
            VsMsg::FlushDone { hwg, flush } => write!(f, "FlushDone({hwg},{flush})"),
            VsMsg::NewView { hwg, view } => write!(f, "NewView({hwg},{view})"),
            VsMsg::Nack {
                hwg,
                view_id,
                sender,
                missing,
            } => write!(f, "Nack({hwg},{view_id},{sender},{missing:?})"),
            VsMsg::Stability { hwg, view_id, .. } => {
                write!(f, "Stability({hwg},{view_id})")
            }
            VsMsg::Beacon { hwg, view_id } => write!(f, "Beacon({hwg},{view_id})"),
            VsMsg::MergeReq {
                hwg,
                invitee_view,
                leader_view,
            } => write!(f, "MergeReq({hwg},{invitee_view}<-{leader_view})"),
            VsMsg::MergeReady { hwg, view } => write!(f, "MergeReady({hwg},{view})"),
            VsMsg::MergeNack { hwg, invitee_view } => {
                write!(f, "MergeNack({hwg},{invitee_view})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_is_compact() {
        let m = VsMsg::Data {
            hwg: HwgId(1),
            view_id: ViewId::new(NodeId(0), 1),
            sender: NodeId(2),
            seq: 7,
            payload: Slot::Full(plwg_sim::Frame::empty()),
        };
        assert_eq!(format!("{m:?}"), "Data(hwg1,n0#1,n2,#7)");
    }

    #[test]
    fn slot_accessors() {
        let f = plwg_sim::Frame::from_u64(9);
        let full = Slot::Full(f.clone());
        assert!(!full.is_skip());
        assert_eq!(full.full(), Some(&f));
        assert!(Slot::Skip.is_skip());
        assert_eq!(Slot::Skip.full(), None);
    }

    #[test]
    fn flush_id_display() {
        let id = FlushId {
            initiator: NodeId(3),
            nonce: 9,
        };
        assert_eq!(id.to_string(), "n3@9");
    }
}
